"""Tests for the committed perf history + regression gate
(:mod:`repro.obs.bench` and ``repro-kamino bench-compare``).

Pins the gate semantics with synthetic benchmark documents: a >10%
rows/sec drop on a comparable point fails ``--gate``, a 5% drop passes,
an ``n`` mismatch is reported but never gated, and the trajectory table
renders one column per committed point.
"""

import json

from repro.cli import main
from repro.obs import (
    compare_points, environment_mismatch, extract_metrics,
    render_compare_markdown, render_trajectory_markdown, trace_digest,
)


def _point(rps_scale: float = 1.0, n: int = 800, label: str = "p",
           machine: str = "x86_64") -> dict:
    """A synthetic BENCH_exp10.json document."""
    engines = {}
    for engine, base in (("row", 1000.0), ("blocked", 4000.0),
                         ("blocked_workers4", 5000.0)):
        rps = round(base * rps_scale, 1)
        engines[engine] = {"seconds": round(n / rps, 4),
                           "rows_per_sec": rps}
    return {
        "meta": {"label": label, "machine": machine, "python": "3.11.0",
                 "numpy": "1.26.0"},
        "exp10_engines": {
            "adult": {"n": n, "engines": engines,
                      "speedup_blocked_vs_row": 4.0},
        },
    }


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


# ----------------------------------------------------------------------
# Library semantics
# ----------------------------------------------------------------------
def test_extract_metrics_flattens():
    metrics = extract_metrics(_point())
    assert metrics[("adult", "blocked")] == {
        "n": 800, "seconds": 0.2, "rows_per_sec": 4000.0}
    assert extract_metrics({}) == {}


def test_compare_flags_regression_beyond_threshold():
    rows = compare_points(_point(0.85), _point(1.0), threshold=0.10)
    assert all(r["regression"] for r in rows)
    assert all(abs(r["change"] + 0.15) < 1e-6 for r in rows)


def test_compare_passes_small_drop():
    rows = compare_points(_point(0.95), _point(1.0), threshold=0.10)
    assert not any(r["regression"] for r in rows)


def test_compare_skips_n_mismatch():
    rows = compare_points(_point(0.5, n=400), _point(1.0, n=800))
    assert rows and not any(r["comparable"] for r in rows)
    assert not any(r["regression"] for r in rows)
    text = render_compare_markdown(rows, "base")
    assert "skipped (n 800 → 400)" in text


def test_compare_ignores_engines_present_once():
    current = _point()
    del current["exp10_engines"]["adult"]["engines"]["blocked_workers4"]
    rows = compare_points(current, _point())
    assert {r["engine"] for r in rows} == {"row", "blocked"}


def test_environment_mismatch_reports_fields():
    assert environment_mismatch(_point(), _point()) == []
    diffs = environment_mismatch(_point(machine="arm64"), _point())
    assert len(diffs) == 1 and "machine" in diffs[0]


def test_render_markdown_verdicts():
    rows = compare_points(_point(0.85), _point())
    text = render_compare_markdown(rows, "0005-base")
    assert "**REGRESSION**" in text and "`0005-base`" in text
    rows = compare_points(_point(1.05), _point())
    assert "ok" in render_compare_markdown(rows, "b")


def test_render_trajectory_one_column_per_point():
    points = [("0005-a.json", _point(1.0, label="0005-a")),
              ("0006-b.json", _point(1.2, label="0006-b"))]
    text = render_trajectory_markdown(points)
    assert "0005-a" in text and "0006-b" in text
    assert "4,000.0 (n=800)" in text and "4,800.0 (n=800)" in text


def test_trace_digest_shapes():
    doc = {"engine": "blocked", "columns": [
        {"mode": "cat-fd-lane",
         "counters": {"blocks": 3, "block_rows_max": 100},
         "probes": {"probe_pair": 50}},
        {"mode": "cat-fd-lane",
         "counters": {"blocks": 2, "block_rows_max": 80},
         "probes": {"probe_pair": 30}},
        {"mode": "unconstrained", "counters": {}, "probes": {}},
    ]}
    digest = trace_digest(doc)
    assert digest["columns"] == 3
    assert digest["modes"] == {"cat-fd-lane": 2, "unconstrained": 1}
    assert digest["counters"] == {"blocks": 5, "block_rows_max": 100}
    assert digest["probes_total"] == 80


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------
def _history(tmp_path, *docs):
    directory = tmp_path / "history"
    directory.mkdir()
    for k, doc in enumerate(docs):
        _write(directory / f"{k:04d}-point.json", doc)
    return str(directory)


def test_gate_fails_on_15pct_regression(tmp_path, capsys):
    history = _history(tmp_path, _point(1.0, label="0000-point"))
    current = _write(tmp_path / "cur.json", _point(0.85))
    assert main(["bench-compare", current, "--history", history,
                 "--gate"]) == 1
    err = capsys.readouterr().err
    assert "perf regression" in err


def test_without_gate_regression_only_reports(tmp_path, capsys):
    history = _history(tmp_path, _point(1.0))
    current = _write(tmp_path / "cur.json", _point(0.85))
    assert main(["bench-compare", current, "--history", history]) == 0
    assert "REGRESSION" in capsys.readouterr().out


def test_gate_passes_5pct_drop(tmp_path, capsys):
    history = _history(tmp_path, _point(1.0))
    current = _write(tmp_path / "cur.json", _point(0.95))
    assert main(["bench-compare", current, "--history", history,
                 "--gate"]) == 0


def test_gate_skips_n_mismatch(tmp_path, capsys):
    history = _history(tmp_path, _point(1.0, n=800))
    current = _write(tmp_path / "cur.json", _point(0.5, n=400))
    assert main(["bench-compare", current, "--history", history,
                 "--gate"]) == 0
    assert "skipped" in capsys.readouterr().out


def test_gate_compares_against_newest_point(tmp_path):
    # 0.9x of the newest (1.2) point is fine; it would regress vs the
    # older 0000 point only if the baseline choice were wrong.
    history = _history(tmp_path, _point(1.0), _point(1.2))
    current = _write(tmp_path / "cur.json", _point(1.1))
    assert main(["bench-compare", current, "--history", history,
                 "--gate"]) == 0


def test_empty_history_is_not_an_error(tmp_path, capsys):
    history = tmp_path / "history"
    history.mkdir()
    current = _write(tmp_path / "cur.json", _point())
    assert main(["bench-compare", current, "--history", str(history),
                 "--gate"]) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_markdown_report_written(tmp_path, capsys):
    history = _history(tmp_path, _point(1.0))
    current = _write(tmp_path / "cur.json", _point(1.05))
    report = tmp_path / "report.md"
    assert main(["bench-compare", current, "--history", history,
                 "--markdown", str(report)]) == 0
    text = report.read_text()
    assert "Perf trajectory" in text and "Perf vs" in text


def test_env_mismatch_warns_on_stderr(tmp_path, capsys):
    history = _history(tmp_path, _point(1.0))
    current = _write(tmp_path / "cur.json", _point(1.0, machine="arm64"))
    assert main(["bench-compare", current, "--history", history,
                 "--gate"]) == 0
    assert "environment mismatch" in capsys.readouterr().err


def test_committed_history_gate_passes_on_itself():
    """The repo's own committed history must pass its own gate (the
    newest point compared against itself is a no-op diff)."""
    from repro.obs import DEFAULT_HISTORY_DIR, history_points
    points = history_points(DEFAULT_HISTORY_DIR)
    assert points, "benchmarks/history must hold at least one point"
    name, doc = points[-1]
    rows = compare_points(doc, doc)
    assert rows and not any(r["regression"] for r in rows)
    assert all("trace_digest" in entry
               for entry in doc["exp10_engines"].values())
