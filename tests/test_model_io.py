"""Tests for trained-model persistence.

Covers the bare ``save_model``/``load_model`` triple as well as the
full ``FittedKamino.save``/``load`` artifact — including the grouped
(hyper-attribute) and large-domain-fallback models that format v1
refused to persist.
"""

import math

import numpy as np
import pytest

from repro.constraints import count_violations
from repro.core import FittedKamino, Kamino, KaminoConfig
from repro.core.model_io import load_fitted, load_model, save_model
from repro.core.sampling import synthesize
from repro.datasets import load


def _cap(params):
    params.iterations = min(params.iterations, 10)
    params.embed_dim = 6


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    dataset = load("tpch", n=100, seed=0)
    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                    delta=1e-6, seed=0, params_override=_cap)
    result = kamino.fit_sample(dataset.table)
    path = tmp_path_factory.mktemp("model") / "model.npz"
    save_model(str(path), result.model, result.weights, result.params)
    return dataset, result, str(path)


def test_round_trip_metadata(trained):
    dataset, result, path = trained
    model, weights, params = load_model(path, dataset.relation)
    assert model.sequence == result.model.sequence
    assert set(model.submodels) == set(result.model.submodels)
    assert model.context_attrs == result.model.context_attrs
    assert params.num_candidates == result.params.num_candidates
    for name, w in result.weights.items():
        if math.isinf(w):
            assert math.isinf(weights[name])
        else:
            assert weights[name] == pytest.approx(w)


def test_round_trip_parameter_values(trained):
    dataset, result, path = trained
    model, _, _ = load_model(path, dataset.relation)
    np.testing.assert_allclose(model.first.probs, result.model.first.probs)
    for target, sub in result.model.submodels.items():
        reloaded = model.submodels[target]
        originals = {p.name: p.value for p in sub.parameters()}
        for p in reloaded.parameters():
            np.testing.assert_allclose(p.value, originals[p.name])


def test_reloaded_model_predicts_identically(trained):
    dataset, result, path = trained
    model, _, _ = load_model(path, dataset.relation)
    target = next(t for t, s in result.model.submodels.items()
                  if s.target_is_categorical)
    context = result.model.context_attrs[target]
    batch = {a: dataset.table.column(a)[:20] for a in context}
    np.testing.assert_allclose(
        model.conditional(target, batch),
        result.model.conditional(target, batch))


def test_reloaded_model_samples_valid_instances(trained):
    dataset, result, path = trained
    model, weights, params = load_model(path, dataset.relation)
    rng = np.random.default_rng(42)
    table = synthesize(model, dataset.relation, dataset.dcs, weights,
                       60, params, rng)
    assert table.n == 60
    for attr in dataset.relation:
        assert attr.domain.validate_column(table.column(attr.name))
    for dc in dataset.dcs:
        assert count_violations(dc, table) == 0


def test_shared_store_detected_and_restored(trained):
    dataset, result, path = trained
    model, _, _ = load_model(path, dataset.relation)
    # Sequential training shares encoders: the same encoder object must
    # be shared after the round trip too.
    shared_ids = set()
    for sub in model.submodels.values():
        for encoder in sub.encoders.values():
            shared_ids.add(id(encoder))
    total_refs = sum(len(sub.encoders) for sub in model.submodels.values())
    assert len(shared_ids) < total_refs


def test_parallel_model_round_trips(tmp_path):
    dataset = load("tpch", n=80, seed=1)
    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                    delta=1e-6, seed=1, params_override=_cap,
                    parallel_training=True)
    result = kamino.fit_sample(dataset.table)
    path = tmp_path / "parallel.npz"
    save_model(str(path), result.model, result.weights, result.params)
    model, _, _ = load_model(str(path), dataset.relation)
    for target, sub in result.model.submodels.items():
        originals = {p.name: p.value for p in sub.parameters()}
        for p in model.submodels[target].parameters():
            np.testing.assert_allclose(p.value, originals[p.name])


def test_schema_mismatch_rejected(trained):
    _, _, path = trained
    other = load("adult", n=20, seed=0)
    with pytest.raises(ValueError, match="schema mismatch"):
        load_model(path, other.relation)


def test_hyper_models_need_spec(tmp_path):
    """Bare save_model still refuses a grouped model without its spec."""
    dataset, fitted = _fit_grouped()
    with pytest.raises(ValueError, match="hyper-attribute"):
        save_model(str(tmp_path / "m.npz"), fitted.model,
                   fitted.weights, fitted.params)
    # ... but round-trips once the HyperSpec is supplied.
    path = tmp_path / "m2.npz"
    save_model(str(path), fitted.model, fitted.weights, fitted.params,
               hyper=fitted.hyper)
    model, weights, params = load_model(str(path), dataset.relation)
    assert model.sequence == fitted.model.sequence
    np.testing.assert_allclose(model.first.probs, fitted.model.first.probs)


# ----------------------------------------------------------------------
# FittedKamino persistence (format v2)
# ----------------------------------------------------------------------
def _tables_equal(a, b, relation):
    for name in relation.names:
        np.testing.assert_array_equal(a.column(name), b.column(name),
                                      err_msg=name)


def _fit_grouped():
    dataset = load("br2000", n=80, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, group_max_domain=128,
                       params_override=_cap)
    fitted = Kamino(dataset.relation, dataset.dcs, config=cfg).fit(
        dataset.table)
    assert any("+" in w for w in fitted.model.sequence), \
        "grouping did not trigger on this instance"
    return dataset, fitted


def _fit_large_domain():
    dataset = load("tax", n=120, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, large_domain_threshold=150,
                       params_override=_cap)
    fitted = Kamino(dataset.relation, dataset.dcs, config=cfg).fit(
        dataset.table)
    assert fitted.independent, "large-domain fallback did not trigger"
    return dataset, fitted


def test_fitted_round_trip_plain(tmp_path):
    dataset = load("tpch", n=100, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    fitted = Kamino(dataset.relation, dataset.dcs, config=cfg).fit(
        dataset.table)
    path = str(tmp_path / "fitted.npz")
    fitted.save(path)
    reloaded = FittedKamino.load(path, dataset.relation, dataset.dcs)
    assert reloaded.sequence == fitted.sequence
    assert reloaded.default_n == fitted.default_n
    assert reloaded.config == cfg.replace(params_override=None)
    assert reloaded.params.achieved_epsilon == pytest.approx(
        fitted.params.achieved_epsilon)
    # The default draw resumes the post-fit rng state: the reloaded
    # model reproduces the fused fit_sample output bit for bit.
    _tables_equal(reloaded.sample().table, fitted.sample().table,
                  dataset.relation)
    _tables_equal(reloaded.sample(n=40, seed=9).table,
                  fitted.sample(n=40, seed=9).table, dataset.relation)


def test_fitted_round_trip_hyper_grouped(tmp_path):
    dataset, fitted = _fit_grouped()
    path = str(tmp_path / "grouped.npz")
    fitted.save(path)
    reloaded = FittedKamino.load(path, dataset.relation, dataset.dcs)
    assert reloaded.model.sequence == fitted.model.sequence
    assert reloaded.hyper.groups == fitted.hyper.groups
    assert reloaded.hyper.working_sequence == fitted.hyper.working_sequence
    result = reloaded.sample(n=50, seed=3)
    _tables_equal(result.table, fitted.sample(n=50, seed=3).table,
                  dataset.relation)
    for attr in dataset.relation:
        assert attr.domain.validate_column(result.table.column(attr.name))
    for dc in dataset.dcs:
        if dc.hard:
            assert count_violations(dc, result.table) == 0


def test_fitted_round_trip_large_domain_fallback(tmp_path):
    dataset, fitted = _fit_large_domain()
    path = str(tmp_path / "large.npz")
    fitted.save(path)
    reloaded = FittedKamino.load(path, dataset.relation, dataset.dcs)
    assert reloaded.independent == fitted.independent
    assert set(reloaded.model.independent) == set(fitted.model.independent)
    result = reloaded.sample(n=60, seed=5)
    _tables_equal(result.table, fitted.sample(n=60, seed=5).table,
                  dataset.relation)
    for attr in dataset.relation:
        assert attr.domain.validate_column(result.table.column(attr.name))


def test_fitted_file_readable_as_bare_model(trained, tmp_path):
    dataset, _, _ = trained
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    fitted = Kamino(dataset.relation, dataset.dcs, config=cfg).fit(
        dataset.table)
    path = str(tmp_path / "fitted.npz")
    fitted.save(path)
    model, weights, params = load_model(path, dataset.relation)
    assert model.sequence == fitted.model.sequence
    assert weights == fitted.weights


def test_bare_model_rejected_by_load_fitted(trained):
    dataset, _, path = trained
    with pytest.raises(ValueError, match="bare model"):
        load_fitted(path, dataset.relation)


def test_fitted_schema_mismatch_rejected(tmp_path):
    dataset = load("tpch", n=60, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    fitted = Kamino(dataset.relation, dataset.dcs, config=cfg).fit(
        dataset.table)
    path = str(tmp_path / "fitted.npz")
    fitted.save(path)
    other = load("adult", n=20, seed=0)
    with pytest.raises(ValueError, match="schema mismatch"):
        FittedKamino.load(path, other.relation, other.dcs)
