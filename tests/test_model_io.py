"""Tests for trained-model persistence (save_model / load_model)."""

import math

import numpy as np
import pytest

from repro.constraints import count_violations
from repro.core import Kamino
from repro.core.model_io import load_model, save_model
from repro.core.sampling import synthesize
from repro.datasets import load


def _cap(params):
    params.iterations = min(params.iterations, 10)
    params.embed_dim = 6


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    dataset = load("tpch", n=100, seed=0)
    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                    delta=1e-6, seed=0, params_override=_cap)
    result = kamino.fit_sample(dataset.table)
    path = tmp_path_factory.mktemp("model") / "model.npz"
    save_model(str(path), result.model, result.weights, result.params)
    return dataset, result, str(path)


def test_round_trip_metadata(trained):
    dataset, result, path = trained
    model, weights, params = load_model(path, dataset.relation)
    assert model.sequence == result.model.sequence
    assert set(model.submodels) == set(result.model.submodels)
    assert model.context_attrs == result.model.context_attrs
    assert params.num_candidates == result.params.num_candidates
    for name, w in result.weights.items():
        if math.isinf(w):
            assert math.isinf(weights[name])
        else:
            assert weights[name] == pytest.approx(w)


def test_round_trip_parameter_values(trained):
    dataset, result, path = trained
    model, _, _ = load_model(path, dataset.relation)
    np.testing.assert_allclose(model.first.probs, result.model.first.probs)
    for target, sub in result.model.submodels.items():
        reloaded = model.submodels[target]
        originals = {p.name: p.value for p in sub.parameters()}
        for p in reloaded.parameters():
            np.testing.assert_allclose(p.value, originals[p.name])


def test_reloaded_model_predicts_identically(trained):
    dataset, result, path = trained
    model, _, _ = load_model(path, dataset.relation)
    target = next(t for t, s in result.model.submodels.items()
                  if s.target_is_categorical)
    context = result.model.context_attrs[target]
    batch = {a: dataset.table.column(a)[:20] for a in context}
    np.testing.assert_allclose(
        model.conditional(target, batch),
        result.model.conditional(target, batch))


def test_reloaded_model_samples_valid_instances(trained):
    dataset, result, path = trained
    model, weights, params = load_model(path, dataset.relation)
    rng = np.random.default_rng(42)
    table = synthesize(model, dataset.relation, dataset.dcs, weights,
                       60, params, rng)
    assert table.n == 60
    for attr in dataset.relation:
        assert attr.domain.validate_column(table.column(attr.name))
    for dc in dataset.dcs:
        assert count_violations(dc, table) == 0


def test_shared_store_detected_and_restored(trained):
    dataset, result, path = trained
    model, _, _ = load_model(path, dataset.relation)
    # Sequential training shares encoders: the same encoder object must
    # be shared after the round trip too.
    shared_ids = set()
    for sub in model.submodels.values():
        for encoder in sub.encoders.values():
            shared_ids.add(id(encoder))
    total_refs = sum(len(sub.encoders) for sub in model.submodels.values())
    assert len(shared_ids) < total_refs


def test_parallel_model_round_trips(tmp_path):
    dataset = load("tpch", n=80, seed=1)
    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                    delta=1e-6, seed=1, params_override=_cap,
                    parallel_training=True)
    result = kamino.fit_sample(dataset.table)
    path = tmp_path / "parallel.npz"
    save_model(str(path), result.model, result.weights, result.params)
    model, _, _ = load_model(str(path), dataset.relation)
    for target, sub in result.model.submodels.items():
        originals = {p.name: p.value for p in sub.parameters()}
        for p in model.submodels[target].parameters():
            np.testing.assert_allclose(p.value, originals[p.name])


def test_schema_mismatch_rejected(trained):
    _, _, path = trained
    other = load("adult", n=20, seed=0)
    with pytest.raises(ValueError, match="schema mismatch"):
        load_model(path, other.relation)


def test_hyper_models_rejected(tmp_path):
    dataset = load("br2000", n=80, seed=0)
    kamino = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                    delta=1e-6, seed=0, params_override=_cap,
                    group_max_domain=128)
    result = kamino.fit_sample(dataset.table)
    if not any("+" in w for w in result.model.sequence):
        pytest.skip("grouping did not trigger on this instance")
    with pytest.raises(ValueError, match="hyper-attribute"):
        save_model(str(tmp_path / "m.npz"), result.model,
                   result.weights, result.params)
