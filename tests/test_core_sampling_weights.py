"""Tests for Algorithm 3 (sampling), Algorithm 5 (weights), and the
end-to-end Kamino pipeline."""

import math

import numpy as np
import pytest

from repro.constraints import count_violations, parse_dc
from repro.core import Kamino
from repro.core.hyper import HyperSpec
from repro.core.params import KaminoParams
from repro.core.sampling import ar_sample, synthesize
from repro.core.training import train_model
from repro.core.weights import learn_dc_weights
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def fd_relation():
    return Relation([
        Attribute("g", CategoricalDomain(["a", "b", "c", "d"])),
        Attribute("h", CategoricalDomain(["p", "q", "r", "s"])),
        Attribute("x", NumericalDomain(0, 20, integer=True, bins=21)),
    ])


def fd_table(n=250, seed=0):
    rng = np.random.default_rng(seed)
    g = rng.integers(0, 4, n)
    h = (g + 1) % 4                 # hard FD g -> h
    x = g * 4.0 + rng.integers(0, 3, n)
    return Table(fd_relation(), {"g": g, "h": h, "x": x})


FD = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
FD_NUM = parse_dc("not(ti.g == tj.g and ti.x != tj.x)", "fd_num")


def trained_model(table, T=120, seed=0):
    params = KaminoParams(epsilon=math.inf, delta=1e-6, iterations=T,
                          embed_dim=8, lr=0.1, n=table.n, k=3)
    rng = np.random.default_rng(seed)
    model = train_model(table, table.relation, ["g", "h", "x"], params,
                        rng, private=False)
    return model, params, rng


class TestSynthesize:
    def test_hard_fd_categorical_enforced(self):
        table = fd_table()
        model, params, rng = trained_model(table)
        out = synthesize(model, table.relation, [FD], {"fd": math.inf},
                         200, params, rng)
        assert count_violations(FD, out) == 0

    def test_hard_fd_numerical_enforced(self):
        """The dependent is numeric: candidate augmentation must supply
        the forced value."""
        table = fd_table()
        model, params, rng = trained_model(table)
        out = synthesize(model, table.relation, [FD_NUM],
                         {"fd_num": math.inf}, 200, params, rng)
        assert count_violations(FD_NUM, out) == 0

    def test_unconstrained_matches_schema(self):
        table = fd_table()
        model, params, rng = trained_model(table, T=30)
        out = synthesize(model, table.relation, [], {}, 150, params, rng)
        assert out.n == 150
        assert out.relation.names == table.relation.names
        for attr in out.relation:
            assert attr.domain.validate_column(out.column(attr.name))

    def test_soft_dc_penalty_reduces_violations(self):
        table = fd_table()
        model, params, rng = trained_model(table, T=30)
        soft = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "soft",
                        hard=False)
        heavy = synthesize(model, table.relation, [soft], {"soft": 8.0},
                           150, params, np.random.default_rng(1))
        light = synthesize(model, table.relation, [soft], {"soft": 0.0},
                           150, params, np.random.default_rng(1))
        assert (count_violations(soft, heavy)
                <= count_violations(soft, light))

    def test_mcmc_resampling_runs(self):
        table = fd_table()
        model, params, rng = trained_model(table, T=30)
        params.mcmc_m = 50
        out = synthesize(model, table.relation, [FD], {"fd": math.inf},
                         120, params, rng)
        assert count_violations(FD, out) == 0

    def test_fd_lookup_fast_path_consistent(self):
        table = fd_table()
        model, params, rng = trained_model(table)
        out = synthesize(model, table.relation, [FD], {"fd": math.inf},
                         200, params, np.random.default_rng(3),
                         use_fd_lookup=True)
        assert count_violations(FD, out) == 0

    def test_hyper_grouping_sampling(self):
        table = fd_table()
        spec = HyperSpec(table.relation, [["g", "h"], ["x"]])
        working = spec.encode_table(table)
        params = KaminoParams(epsilon=math.inf, delta=1e-6, iterations=60,
                              embed_dim=8, lr=0.1, n=table.n, k=2)
        rng = np.random.default_rng(0)
        model = train_model(working, spec.working_relation,
                            spec.working_sequence, params, rng,
                            private=False)
        out = synthesize(model, table.relation, [FD], {"fd": math.inf},
                         150, params, rng, hyper=spec)
        assert out.relation.names == table.relation.names
        assert count_violations(FD, out) == 0


class TestArSampling:
    def test_runs_and_respects_schema(self):
        table = fd_table()
        model, params, rng = trained_model(table, T=60)
        out = ar_sample(model, table.relation, [FD], {"fd": math.inf},
                        100, params, rng, max_tries=50)
        assert out.n == 100

    def test_soft_dcs_suppressed(self):
        table = fd_table()
        model, params, rng = trained_model(table, T=30)
        soft = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "soft",
                        hard=False)
        accepted = ar_sample(model, table.relation, [soft], {"soft": 6.0},
                             120, params, np.random.default_rng(5))
        free = ar_sample(model, table.relation, [soft], {"soft": 0.0},
                         120, params, np.random.default_rng(5))
        assert (count_violations(soft, accepted)
                <= count_violations(soft, free))


class TestLearnWeights:
    def _params(self):
        return KaminoParams(epsilon=1.0, delta=1e-6, L_w=60,
                            iterations_w=30, batch_w=2, sigma_w=0.3,
                            weight_init=5.0, lr_w=0.5)

    def test_hard_dcs_infinite(self):
        table = fd_table()
        weights = learn_dc_weights(table, [FD], ["g", "h", "x"],
                                   self._params(), np.random.default_rng(0))
        assert weights["fd"] == math.inf

    def test_violated_soft_dc_decays(self):
        rng = np.random.default_rng(0)
        n = 200
        g = rng.integers(0, 4, n)
        h = rng.integers(0, 4, n)      # no FD at all -> many violations
        x = rng.integers(0, 21, n)
        table = Table(fd_relation(), {"g": g, "h": h, "x": x})
        soft = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "soft",
                        hard=False)
        weights = learn_dc_weights(table, [soft], ["g", "h", "x"],
                                   self._params(),
                                   np.random.default_rng(1), private=False)
        assert weights["soft"] < 5.0

    def test_clean_soft_dc_stays_high(self):
        table = fd_table()  # FD holds exactly
        soft = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "soft",
                        hard=False)
        weights = learn_dc_weights(table, [soft], ["g", "h", "x"],
                                   self._params(),
                                   np.random.default_rng(2), private=False)
        assert weights["soft"] == pytest.approx(5.0, abs=0.5)

    def test_weights_bounded(self):
        table = fd_table()
        soft = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "soft",
                        hard=False)
        params = self._params()
        weights = learn_dc_weights(table, [soft, FD], ["g", "h", "x"],
                                   params, np.random.default_rng(3))
        assert 0.0 <= weights["soft"] <= params.weight_max


class TestKaminoEndToEnd:
    def _override(self, p):
        p.iterations = min(p.iterations, 30)
        p.embed_dim = 6

    def test_private_run_meets_budget(self):
        table = fd_table()
        kam = Kamino(table.relation, [FD], epsilon=1.5, delta=1e-6,
                     seed=0, params_override=self._override)
        result = kam.fit_sample(table)
        assert result.params.achieved_epsilon <= 1.5
        assert result.table.n == table.n
        assert count_violations(FD, result.table) == 0

    def test_nonprivate_run(self):
        table = fd_table()
        kam = Kamino(table.relation, [FD], epsilon=math.inf, seed=0,
                     params_override=self._override)
        result = kam.fit_sample(table)
        assert count_violations(FD, result.table) == 0

    def test_result_fields(self):
        table = fd_table()
        kam = Kamino(table.relation, [FD], epsilon=2.0, seed=0,
                     params_override=self._override)
        result = kam.fit_sample(table, n=50)
        assert result.table.n == 50
        assert sorted(result.timings) == ["DC.W.", "Sam.", "Seq.", "Tra."]
        assert result.total_seconds > 0
        assert result.weights["fd"] == math.inf
        assert sorted(result.sequence) == sorted(table.relation.names)

    def test_override_cannot_break_budget(self):
        table = fd_table()

        def bad_override(p):
            p.iterations = 100_000
            p.sigma_d = 0.5

        kam = Kamino(table.relation, [FD], epsilon=1.0, seed=0,
                     params_override=bad_override)
        with pytest.raises(ValueError):
            kam.fit_sample(table)

    def test_known_weights_skip_learning(self):
        table = fd_table()
        soft = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "soft",
                        hard=False)
        kam = Kamino(table.relation, [soft], epsilon=2.0, seed=0,
                     params_override=self._override)
        result = kam.fit_sample(table, weights={"soft": 7.5})
        assert result.weights["soft"] == 7.5

    def test_grouping_end_to_end(self):
        table = fd_table()
        kam = Kamino(table.relation, [FD], epsilon=2.0, seed=0,
                     group_max_domain=16,
                     params_override=self._override)
        result = kam.fit_sample(table)
        assert count_violations(FD, result.table) == 0

    def test_ar_variant(self):
        table = fd_table()
        kam = Kamino(table.relation, [FD], epsilon=2.0, seed=0,
                     params_override=self._override)
        result = kam.fit_sample_ar(table, max_tries=40)
        assert result.table.n == table.n
