"""Tests for the block-scheduled vectorized sampling engine.

Pins the engine's contract:

* scheduling invariance — the draw is a pure function of
  ``(model, DCs, weights, n, seed)``: block size, worker count, and
  the ``use_violation_index`` probe mechanism never change a cell;
* statistical equivalence with the row engine — same marginals and
  violation behaviour (the engines share a sampling law and differ
  only in rng scheme);
* hard-DC enforcement, the staged/config/CLI surface (``engine`` knob,
  ``workers``), and model-format round-trips (engine + counter-rng
  spec persisted; legacy files default to the row engine);
* the forced-value bugfix: rows short-circuited by one hard-FD lookup
  index are recorded in *every* FD index sharing the dependent.
"""

import copy
import json
import os
import tracemalloc
from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.engine as engine_mod
from repro.constraints import count_violations, parse_dc
from repro.core import FittedKamino, Kamino, KaminoConfig
from repro.core.engine import (
    _NOISE_CACHE_CHUNKS, _CellNoise, _LRU, synthesize_engine,
    synthesize_stream,
)
from repro.core.hyper import HyperSpec
from repro.core.sampling import (
    PrefixScanRequired, _allocate_columns, _allocate_working,
    _ColumnSampler, _fill_column,
)
from repro.obs.trace import RunTrace
from repro.datasets import load
from repro.evaluation import total_variation_distance
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def _cap(params):
    params.iterations = min(params.iterations, 10)
    params.embed_dim = 6


def _assert_tables_equal(a, b, msg=""):
    for name in a.relation.names:
        np.testing.assert_array_equal(a.column(name), b.column(name),
                                      err_msg=f"{msg}:{name}")


@pytest.fixture(scope="module", params=["tpch", "adult", "tax"])
def fitted(request):
    ds = load(request.param, n=160, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    return ds, Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)


# ----------------------------------------------------------------------
# Scheduling invariance
# ----------------------------------------------------------------------
def test_block_size_invariance(fitted):
    ds, model = fitted
    args = (model.model, ds.relation, model.dcs, model.weights, 120,
            model.params, 11)
    singleton = synthesize_engine(*args, hyper=model.hyper,
                                  max_block_rows=1)
    small = synthesize_engine(*args, hyper=model.hyper, max_block_rows=17)
    default = synthesize_engine(*args, hyper=model.hyper)
    _assert_tables_equal(singleton, default, "singleton-vs-default")
    _assert_tables_equal(small, default, "17-vs-default")


def test_probe_mechanism_invariance(fitted):
    """Scan probes and index probes must yield the same draw."""
    ds, model = fitted
    args = (model.model, ds.relation, model.dcs, model.weights, 120,
            model.params, 11)
    indexed = synthesize_engine(*args, hyper=model.hyper)
    scanned = synthesize_engine(*args, hyper=model.hyper,
                                use_violation_index=False)
    _assert_tables_equal(indexed, scanned, "index-vs-scan")


def test_workers_bit_identical(fitted):
    ds, model = fitted
    one = model.sample(n=200, seed=5, workers=1)
    four = model.sample(n=200, seed=5, workers=4)
    _assert_tables_equal(one.table, four.table, "workers")


def test_same_seed_same_draw_and_seeds_differ(fitted):
    ds, model = fitted
    a = model.sample(n=100, seed=3)
    b = model.sample(n=100, seed=3)
    c = model.sample(n=100, seed=4)
    _assert_tables_equal(a.table, b.table, "repeat")
    assert any(not np.array_equal(a.table.column(x), c.table.column(x))
               for x in ds.relation.names)


# ----------------------------------------------------------------------
# Semantics
# ----------------------------------------------------------------------
def test_blocked_enforces_hard_dcs(fitted):
    ds, model = fitted
    result = model.sample(n=150, seed=9)
    for dc in ds.dcs:
        if dc.hard:
            assert count_violations(dc, result.table) == 0, dc.name


def test_blocked_row_statistical_equivalence():
    """Same law, different rng scheme: marginals must agree closely.

    Hard-FD *dependents* are excluded from the marginal comparison —
    their marginal is dominated by one draw per determinant group (two
    row-engine seeds differ just as much), so the meaningful check
    there is FD consistency, asserted for both engines below.
    """
    ds = load("adult", n=500, seed=1)
    cfg = KaminoConfig(epsilon=float("inf"), seed=0, params_override=_cap)
    model = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)
    blocked = model.sample(n=500, seed=2).table
    row = model.sample(n=500, seed=2, engine="row").table
    row_b = model.sample(n=500, seed=3, engine="row").table
    hard_attrs: set = set()
    for dc in ds.dcs:
        if dc.hard and not dc.is_unary:
            hard_attrs |= dc.attributes
    for attr in ds.relation.names:
        cross = total_variation_distance(blocked, row, (attr,))
        if attr in hard_attrs:
            # Hard-DC attributes are constraint-dominated: a few early
            # draws pin whole groups, so even two row-engine seeds
            # differ substantially.  Demand no more divergence across
            # engines than across seeds within one engine.
            floor = total_variation_distance(row, row_b, (attr,))
            assert cross < floor + 0.15, \
                f"{attr}: TVD {cross:.3f} vs seed-noise {floor:.3f}"
        else:
            assert cross < 0.3, f"{attr}: TVD {cross:.3f}"
    for dc in ds.dcs:
        if dc.hard:
            assert count_violations(dc, blocked) == 0
            assert count_violations(dc, row) == 0


def test_row_engine_default_draw_resumes_fit_state():
    """engine='row' keeps the legacy fused-pipeline replay intact."""
    ds = load("tpch", n=80, seed=0)
    make = lambda: Kamino(  # noqa: E731
        ds.relation, ds.dcs, config=KaminoConfig(
            epsilon=1.0, seed=0, engine="row", params_override=_cap))
    fused = make().fit_sample(ds.table)
    staged = make().fit(ds.table).sample()
    _assert_tables_equal(fused.table, staged.table, "row-replay")


# ----------------------------------------------------------------------
# Config / API surface
# ----------------------------------------------------------------------
def test_engine_knob_validated():
    with pytest.raises(ValueError, match="engine"):
        KaminoConfig(epsilon=1.0, engine="warp")
    assert KaminoConfig(epsilon=1.0).engine == "blocked"
    assert KaminoConfig(epsilon=1.0, engine="row").engine == "row"


def test_kamino_shim_accepts_engine_knob():
    ds = load("tpch", n=60, seed=0)
    kam = Kamino(ds.relation, ds.dcs, 1.0, engine="row")
    assert kam.config.engine == "row"


def test_workers_require_blocked_engine(fitted):
    _, model = fitted
    with pytest.raises(ValueError, match="workers"):
        model.sample(n=10, seed=0, engine="row", workers=2)
    with pytest.raises(ValueError, match="engine"):
        model.sample(n=10, seed=0, engine="warp")


def test_sample_engine_override(fitted):
    """A fitted model can serve either engine per draw."""
    ds, model = fitted
    blocked = model.sample(n=60, seed=7)
    row = model.sample(n=60, seed=7, engine="row")
    again = model.sample(n=60, seed=7, engine="blocked")
    _assert_tables_equal(blocked.table, again.table, "override")
    assert blocked.table.n == row.table.n == 60


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def test_model_io_persists_engine_and_rng_spec(tmp_path):
    ds = load("tpch", n=80, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    model = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)
    path = str(tmp_path / "m.npz")
    model.save(path)
    reloaded = FittedKamino.load(path, ds.relation, ds.dcs)
    assert reloaded.config.engine == "blocked"
    assert reloaded.rng_spec == model.rng_spec
    assert reloaded.rng_spec["scheme"] == "philox-cell"
    _assert_tables_equal(model.sample(n=70, seed=4).table,
                         reloaded.sample(n=70, seed=4).table, "roundtrip")


def test_legacy_model_files_default_to_row_engine(tmp_path):
    """Files saved before the engine knob replay with the row engine."""
    ds = load("tpch", n=80, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    model = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)
    path = str(tmp_path / "m.npz")
    model.save(path)
    # Strip the new fields, as a pre-engine writer would have.
    with np.load(path, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files}
    meta = json.loads(str(arrays["meta.json"]))
    del meta["fitted"]["config"]["engine"]
    del meta["fitted"]["rng_spec"]
    arrays["meta.json"] = np.array(json.dumps(meta))
    np.savez(path, **arrays)
    legacy = FittedKamino.load(path, ds.relation, ds.dcs)
    assert legacy.config.engine == "row"
    assert legacy.rng_spec is None
    # The historical default draw resumes the persisted sampler state.
    _assert_tables_equal(model.sample(engine="row").table,
                         legacy.sample().table, "legacy-replay")


# ----------------------------------------------------------------------
# Process pool, group-disjoint sub-schedules, streaming
# ----------------------------------------------------------------------
#: Above the sharding floor (2 x _MIN_SHARD_ROWS) so constrained
#: columns actually split into group-disjoint sub-schedules.
_SHARD_N = 4608


def test_process_pool_bit_identical(fitted):
    ds, model = fitted
    one = model.sample(n=_SHARD_N, seed=5, workers=1)
    proc = model.sample(n=_SHARD_N, seed=5, workers=4, pool="process")
    _assert_tables_equal(one.table, proc.table, "process-pool")


def test_thread_pool_sharded_bit_identical(fitted):
    ds, model = fitted
    one = model.sample(n=_SHARD_N, seed=6, workers=1)
    thr = model.sample(n=_SHARD_N, seed=6, workers=3, pool="thread")
    _assert_tables_equal(one.table, thr.table, "thread-sharded")


def test_sharded_lanes_engage_and_stitch(fitted):
    """Every benchmark dataset has >= 1 constrained column that splits
    into group-disjoint sub-schedules at this n, and the stitch timer
    records the scatter."""
    ds, model = fitted
    trace = RunTrace()
    model.sample(n=_SHARD_N, seed=6, workers=4, trace=trace)
    sharded = [c for c in trace.samples[0].columns
               if c.mode in ("cat-sharded", "num-sharded")]
    assert sharded, [c.mode for c in trace.samples[0].columns]
    for col in sharded:
        assert col.counters.get("shards", 0) >= 2
        assert "stitch_us" in col.counters


def test_row_engine_process_pool_bit_identical(fitted):
    """Row engine + pool='process' = the whole sequential draw in one
    subprocess; same computation, other address space."""
    ds, model = fitted
    base = model.sample(n=120, seed=3, engine="row")
    proc = model.sample(n=120, seed=3, engine="row", pool="process")
    _assert_tables_equal(base.table, proc.table, "row-subprocess")


def test_stream_concat_bit_identical_both_engines(fitted):
    ds, model = fitted
    single = model.sample(n=1500, seed=8).table
    chunks = list(model.sample_stream(n=1500, seed=8, chunk_rows=367))
    assert sum(c.n for c in chunks) == 1500
    for name in ds.relation.names:
        np.testing.assert_array_equal(
            single.column(name),
            np.concatenate([c.column(name) for c in chunks]),
            err_msg=f"stream:{name}")
    row = model.sample(n=200, seed=8, engine="row").table
    row_chunks = list(model.sample_stream(n=200, seed=8, chunk_rows=64,
                                          engine="row"))
    for name in ds.relation.names:
        np.testing.assert_array_equal(
            row.column(name),
            np.concatenate([c.column(name) for c in row_chunks]),
            err_msg=f"row-stream:{name}")


def test_stream_chunk_size_invariance(fitted):
    ds, model = fitted
    single = model.sample(n=60, seed=12).table
    for chunk_rows in (1, 23, 1000):
        chunks = list(model.sample_stream(n=60, seed=12,
                                          chunk_rows=chunk_rows))
        for name in ds.relation.names:
            np.testing.assert_array_equal(
                single.column(name),
                np.concatenate([c.column(name) for c in chunks]),
                err_msg=f"chunk_rows={chunk_rows}:{name}")


def test_workers_auto_resolves_at_draw_time(fitted):
    ds, model = fitted
    trace = RunTrace()
    auto = model.sample(n=64, seed=2, workers=0, trace=trace)
    assert trace.samples[0].workers == (os.cpu_count() or 1)
    one = model.sample(n=64, seed=2, workers=1)
    _assert_tables_equal(auto.table, one.table, "auto-workers")
    # The sequential row engine's thread lane resolves auto to 1.
    model.sample(n=20, seed=2, engine="row", workers=0)
    with pytest.raises(ValueError, match="workers"):
        model.sample(n=20, seed=2, workers=-1)


def test_pool_knob_validated(fitted):
    ds, model = fitted
    with pytest.raises(ValueError, match="pool"):
        model.sample(n=10, seed=0, pool="fiber")
    with pytest.raises(ValueError, match="pool"):
        KaminoConfig(epsilon=1.0, pool="fiber")


def test_stream_rejects_mcmc(fitted):
    ds, model = fitted
    params = copy.copy(model.params)
    params.mcmc_m = 2
    with pytest.raises(ValueError, match="mcmc"):
        list(synthesize_stream(model.model, ds.relation, model.dcs,
                               model.weights, 10, params, 3,
                               hyper=model.hyper))


def test_stream_strict_raises_instead_of_prefix_scan(fitted):
    """Without the violation indexes, a constrained chunk would need
    the full sampled prefix; streaming refuses rather than silently
    answering from the chunk-local one."""
    ds, model = fitted
    with pytest.raises(PrefixScanRequired):
        list(synthesize_stream(model.model, ds.relation, model.dcs,
                               model.weights, 200, model.params, 3,
                               hyper=model.hyper,
                               use_violation_index=False,
                               chunk_rows=64))


def test_stream_bounded_memory():
    """A streamed draw's peak allocation is set by the chunk size, not
    by n (the n=10M enabler): quadrupling the row count leaves the
    peak essentially flat, where a materialized table would quadruple.
    """
    ds = load("adult", n=300, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    model = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)

    def stream_peak(n):
        stream = model.sample_stream(n=n, seed=3, chunk_rows=2048)
        tracemalloc.start()
        rows = sum(chunk.n for chunk in stream)
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        assert rows == n
        return peak

    small, large = stream_peak(12_000), stream_peak(48_000)
    # Slack for the per-column index state, the one O(n) structure the
    # constrained lanes genuinely need; it is dwarfed by the fixed
    # chunk-sized working set (model activations + noise cache).
    assert large < small * 1.25 + 4 * 12_000 * 8, (
        f"peak grew with n: {small} -> {large}")


def test_lru_bounds_noise_and_base_caches():
    lru = _LRU(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1     # refresh a
    lru.put("c", 3)              # evicts b, the least recent
    assert "b" not in lru and "a" in lru and "c" in lru
    assert len(lru) == 2

    noise = _CellNoise(123, 4, 6, 32, 10_000)
    first = noise.rows(0, 32).copy()
    for lo in range(0, 10_000, 32):
        noise.rows(lo, min(lo + 32, 10_000))
    assert len(noise._cache) <= _NOISE_CACHE_CHUNKS
    # Regeneration after eviction is bit-identical (counter-based).
    np.testing.assert_array_equal(noise.rows(0, 32), first)


@pytest.fixture(scope="module")
def tpch_fitted():
    ds = load("tpch", n=120, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    return ds, Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)


@settings(max_examples=12, deadline=None)
@given(n=st.integers(1, 220), chunk_rows=st.integers(1, 97),
       workers=st.integers(1, 4))
def test_schedule_sweep_bit_identical(tpch_fitted, n, chunk_rows,
                                      workers):
    """Hypothesis sweep over (n, chunk_rows, workers): chunked streams
    and sharded draws (floor lowered so tiny n shards too) always equal
    the sequential single-shot draw."""
    ds, model = tpch_fitted
    args = (model.model, ds.relation, model.dcs, model.weights, n,
            model.params, 13)
    single = synthesize_engine(*args, hyper=model.hyper)
    with mock.patch.object(engine_mod, "_MIN_SHARD_ROWS", 8):
        sharded = synthesize_engine(*args, hyper=model.hyper,
                                    workers=workers)
    chunks = list(synthesize_stream(*args, hyper=model.hyper,
                                    chunk_rows=chunk_rows))
    for name in ds.relation.names:
        np.testing.assert_array_equal(
            single.column(name), sharded.column(name),
            err_msg=f"sharded:{name}")
        np.testing.assert_array_equal(
            single.column(name),
            np.concatenate([c.column(name) for c in chunks]),
            err_msg=f"stream:{name}")


# ----------------------------------------------------------------------
# Forced-value recording bugfix
# ----------------------------------------------------------------------
def _shared_dependent_dataset(n=80, seed=0):
    rng = np.random.default_rng(seed)
    relation = Relation([
        Attribute("x", CategoricalDomain([f"x{i}" for i in range(12)])),
        Attribute("y", CategoricalDomain([f"y{i}" for i in range(12)])),
        Attribute("z", NumericalDomain(0, 30, integer=True, bins=16)),
    ])
    x = rng.integers(0, 10, n)
    y = (x + 1) % 10          # x <-> y aligned, so both FDs can hold
    z = (x * 3 % 30).astype(np.float64)
    table = Table(relation, {"x": x, "y": y, "z": z})
    dcs = [
        parse_dc("not(ti.x == tj.x and ti.z != tj.z)", name="fd_xz",
                 hard=True, relation=relation),
        parse_dc("not(ti.y == tj.y and ti.z != tj.z)", name="fd_yz",
                 hard=True, relation=relation),
    ]
    return relation, table, dcs


def test_forced_rows_recorded_in_all_fd_indexes():
    relation, table, dcs = _shared_dependent_dataset()
    cfg = KaminoConfig(epsilon=float("inf"), seed=0, use_fd_lookup=True,
                       params_override=_cap)
    model = Kamino(relation, dcs, config=cfg).fit(table)
    # Impose x, y, z order so both FD determinants precede the shared
    # dependent (the sampler accepts any sequence whose contexts the
    # model can serve; z's context is a subset of {x, y}).
    hyper = HyperSpec.trivial(relation, ["x", "y", "z"])
    sampler = _ColumnSampler(
        model.model, relation, hyper, model.dcs, model.weights,
        model.params, np.random.default_rng(0), use_fd_lookup=True)
    j = 2
    n = 3
    cols = _allocate_columns(relation, n)
    wcols = _allocate_working(sampler, cols, n)
    # Row 0 seeds both indexes; row 1 shares x (forced by the x-index)
    # but introduces a new y; row 2 carries an unseen x and row 1's y —
    # only the y-index can force it, and only if row 1 was recorded.
    cols["x"][:] = [0, 0, 7]
    cols["y"][:] = [1, 4, 4]
    fd_indexes = sampler.fd_indexes_for(j)
    assert len(fd_indexes) == 2
    _fill_column(sampler, j, cols, wcols, n, fd_indexes=fd_indexes)
    by_det = {index.determinant: index for index in fd_indexes}
    z = cols["z"]
    # Every (determinant, dependent) binding of the sampled rows must be
    # present in *both* indexes — including rows the other index forced.
    assert by_det[("y",)].forced_value({"y": cols["y"][1]}) == z[1]
    assert by_det[("x",)].forced_value({"x": cols["x"][2]}) == z[2]
    assert z[2] == z[1]  # forced through the y-index's recording
    for dc in model.dcs:
        assert count_violations(dc, Table(relation, cols,
                                          validate=False)) == 0
