"""Cross-module integration tests: the full pipeline on each workload,
structural optimisations end-to-end, and the paper's headline claims at
tiny scale."""

import math

import numpy as np
import pytest

from repro.baselines import PrivBayes, repair_violations
from repro.constraints import (
    count_violations, discover_dcs, violating_pair_percentage,
)
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import (
    marginal_distances, run_method, total_variation_distance,
)


def _cap(params):
    params.iterations = min(params.iterations, 25)
    params.embed_dim = 6


@pytest.mark.parametrize("name", ["adult", "br2000", "tax", "tpch"])
def test_full_pipeline_on_every_workload(name):
    dataset = load(name, n=220, seed=0)
    kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
                 seed=0, params_override=_cap)
    result = kam.fit_sample(dataset.table)
    assert result.table.n == dataset.n
    assert result.params.achieved_epsilon <= 1.0
    for attr in dataset.relation:
        assert attr.domain.validate_column(
            result.table.column(attr.name)), attr.name
    for dc in dataset.hard_dcs():
        assert violating_pair_percentage(dc, result.table) < 1.0, dc.name


def test_headline_claim_kamino_beats_iid_baseline():
    """Table 2's shape at tiny scale: Kamino's hard-DC violations are
    below an i.i.d. synthesizer's by a wide margin."""
    dataset = load("adult", n=220, seed=1)
    kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
                 seed=0, params_override=_cap)
    kamino_out = kam.fit_sample(dataset.table).table
    privbayes_out = PrivBayes(1.0, seed=0).fit_sample(dataset.table)
    for dc in dataset.dcs:
        assert (violating_pair_percentage(dc, kamino_out)
                < violating_pair_percentage(dc, privbayes_out))


def test_tax_uses_large_domain_fallback():
    dataset = load("tax", n=220, seed=0)
    kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
                 seed=0, large_domain_threshold=1000,
                 params_override=_cap)
    result = kam.fit_sample(dataset.table)
    assert "zip" in result.model.independent
    # zip never appears as a sub-model context.
    for target, context in result.model.context_attrs.items():
        assert "zip" not in context


def test_br2000_grouping_reduces_submodels():
    dataset = load("br2000", n=220, seed=0)
    grouped = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=0, group_max_domain=64,
                     params_override=_cap)
    plain = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                   delta=1e-6, seed=0, params_override=_cap)
    res_grouped = grouped.fit_sample(dataset.table)
    res_plain = plain.fit_sample(dataset.table)
    assert (len(res_grouped.model.submodels)
            < len(res_plain.model.submodels))
    assert res_grouped.table.n == dataset.n


def test_discovered_dcs_feed_kamino():
    """Experiment 8's pipeline: discovery output is valid Kamino input."""
    dataset = load("adult", n=220, seed=0)
    discovered = discover_dcs(dataset.table, max_violation_rate=2.0,
                              limit=6, sample_size=150, seed=0)
    assert discovered
    kam = Kamino(dataset.relation, discovered, epsilon=1.0, delta=1e-6,
                 seed=0, params_override=_cap)
    result = kam.fit_sample(dataset.table)
    assert set(result.weights) == {dc.name for dc in discovered}


def test_nonprivate_beats_private_on_marginals():
    """Figure 6's shape: epsilon = inf produces better marginals than a
    tight budget."""
    dataset = load("adult", n=300, seed=0)

    def richer(params):
        params.iterations = min(params.iterations, 120)
        params.embed_dim = 8

    tight = Kamino(dataset.relation, dataset.dcs, epsilon=0.1,
                   delta=1e-6, seed=0, params_override=_cap)
    free = Kamino(dataset.relation, dataset.dcs, epsilon=math.inf,
                  seed=0, params_override=richer)
    tvd_tight = np.mean([d for _, d in marginal_distances(
        dataset.table, tight.fit_sample(dataset.table).table, alpha=1)])
    tvd_free = np.mean([d for _, d in marginal_distances(
        dataset.table, free.fit_sample(dataset.table).table, alpha=1)])
    assert tvd_free <= tvd_tight + 0.05


def test_cleaning_pipeline_fixes_baseline_output():
    """Figure 1's setup end-to-end: baseline output has violations,
    repair removes (most of) them."""
    dataset = load("tpch", n=220, seed=0)
    synth, _ = run_method("DP-VAE", dataset, epsilon=1.0, seed=0)
    before = sum(count_violations(dc, synth) for dc in dataset.dcs)
    repaired = repair_violations(synth, dataset.dcs, seed=0)
    after = sum(count_violations(dc, repaired) for dc in dataset.dcs)
    assert before > 0
    assert after < before


def test_synthetic_output_is_deterministic_per_seed():
    dataset = load("adult", n=200, seed=0)
    outs = []
    for _ in range(2):
        kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=42, params_override=_cap)
        outs.append(kam.fit_sample(dataset.table).table)
    for name in dataset.relation.names:
        np.testing.assert_array_equal(outs[0].column(name),
                                      outs[1].column(name))


def test_different_seeds_differ():
    dataset = load("adult", n=200, seed=0)
    a = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
               seed=1, params_override=_cap).fit_sample(dataset.table)
    b = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
               seed=2, params_override=_cap).fit_sample(dataset.table)
    same = all(np.array_equal(a.table.column(n), b.table.column(n))
               for n in dataset.relation.names)
    assert not same


def test_synthesize_more_rows_than_input():
    """The sampler is a generative model: n_out > n_in must work."""
    dataset = load("tpch", n=150, seed=0)
    kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
                 seed=0, params_override=_cap)
    result = kam.fit_sample(dataset.table, n=400)
    assert result.table.n == 400
    for dc in dataset.hard_dcs():
        assert violating_pair_percentage(dc, result.table) < 1.0
