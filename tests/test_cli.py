"""Tests for the repro-kamino command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, infer_schema, main
from repro.datasets import load
from repro.io import load_bundle, save_bundle
from repro.privacy.ledger import PrivacyLedger


@pytest.fixture
def tpch_bundle(tmp_path):
    dataset = load("tpch", n=80, seed=0)
    directory = tmp_path / "tpch"
    save_bundle(str(directory), dataset.table, dataset.dcs)
    return str(directory)


# ----------------------------------------------------------------------
# Schema inference
# ----------------------------------------------------------------------
def test_infer_schema_mixed_types(tmp_path):
    path = tmp_path / "raw.csv"
    rows = ["name,score,age"]
    rng = np.random.default_rng(0)
    for i in range(60):
        rows.append(f"user{i % 3},{rng.uniform():.6f},{20 + i}")
    path.write_text("\n".join(rows) + "\n")
    rel = infer_schema(str(path))
    assert rel["name"].is_categorical
    assert rel["name"].domain.size == 3
    assert rel["score"].is_numerical and not rel["score"].domain.integer
    assert rel["age"].is_numerical and rel["age"].domain.integer


def test_infer_schema_numeric_small_cardinality_is_categorical(tmp_path):
    path = tmp_path / "raw.csv"
    lines = ["flag"] + [str(i % 2) for i in range(50)]
    path.write_text("\n".join(lines) + "\n")
    rel = infer_schema(str(path), categorical_threshold=20)
    assert rel["flag"].is_categorical


def test_infer_schema_rejects_empty(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("a,b\n")
    with pytest.raises(ValueError, match="no data rows"):
        infer_schema(str(path))


def test_infer_schema_rejects_ragged(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("a,b\n1\n")
    with pytest.raises(ValueError, match="cells"):
        infer_schema(str(path))


def test_cmd_infer_schema_writes_file(tmp_path, capsys):
    path = tmp_path / "raw.csv"
    path.write_text("x\n" + "\n".join(str(i) for i in range(30)) + "\n")
    out = tmp_path / "schema.json"
    assert main(["infer-schema", str(path), "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["format"] == "repro.schema/1"


def test_cmd_infer_schema_stdout(tmp_path, capsys):
    path = tmp_path / "raw.csv"
    path.write_text("x\na\nb\n")
    assert main(["infer-schema", str(path)]) == 0
    out = capsys.readouterr().out
    assert '"categorical"' in out


# ----------------------------------------------------------------------
# check / discover
# ----------------------------------------------------------------------
def test_cmd_check_reports_violations(tpch_bundle, capsys):
    assert main(["check", tpch_bundle]) == 0
    out = capsys.readouterr().out
    assert "phi_h1" in out and "hard" in out


def test_cmd_check_without_dcs(tmp_path, capsys):
    dataset = load("tpch", n=20, seed=0)
    directory = tmp_path / "nodc"
    save_bundle(str(directory), dataset.table)
    assert main(["check", str(directory)]) == 0
    assert "no DCs" in capsys.readouterr().out


def test_cmd_discover_prints_parseable_dcs(tpch_bundle, capsys):
    assert main(["discover", tpch_bundle, "--limit", "4"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert 0 < len(out) <= 4
    from repro.constraints.parser import parse_dc
    for line in out:
        head, _, body = line.partition(":")
        parse_dc(body.strip())  # must round-trip through the grammar


def test_cmd_discover_minimize_prunes(tpch_bundle, capsys):
    assert main(["discover", tpch_bundle, "--limit", "32"]) == 0
    full = len(capsys.readouterr().out.strip().splitlines())
    assert main(["discover", tpch_bundle, "--limit", "32",
                 "--minimize"]) == 0
    minimized = len(capsys.readouterr().out.strip().splitlines())
    assert 0 < minimized <= full


# ----------------------------------------------------------------------
# synthesize / evaluate / ledger
# ----------------------------------------------------------------------
def test_cmd_synthesize_and_evaluate(tpch_bundle, tmp_path, capsys):
    out_dir = tmp_path / "synth"
    ledger_path = tmp_path / "ledger.json"
    code = main(["synthesize", tpch_bundle, "--epsilon", "1.0",
                 "--out", str(out_dir), "--max-iterations", "8",
                 "--ledger", str(ledger_path)])
    assert code == 0
    text = capsys.readouterr().out
    assert "privacy: epsilon=" in text
    assert "ledger" in text

    bundle = load_bundle(str(out_dir))
    assert bundle.n == 80
    ledger = PrivacyLedger.load(str(ledger_path))
    assert len(ledger) == 1
    assert 0 < ledger.spent_epsilon() <= 1.0 + 1e-6

    code = main(["evaluate", tpch_bundle, str(out_dir), "--alpha", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Metric I" in out and "Metric III" in out


def test_cmd_synthesize_non_private(tpch_bundle, tmp_path, capsys):
    out_dir = tmp_path / "synth_np"
    code = main(["synthesize", tpch_bundle, "--epsilon", "inf",
                 "--out", str(out_dir), "--max-iterations", "8",
                 "--n", "40"])
    assert code == 0
    bundle = load_bundle(str(out_dir))
    assert bundle.n == 40
    assert "privacy:" not in capsys.readouterr().out


def test_cmd_fit_then_sample_many(tpch_bundle, tmp_path, capsys):
    """fit once -> two samples at different seeds/sizes, no retraining."""
    model_path = tmp_path / "model.npz"
    ledger_path = tmp_path / "ledger.json"
    code = main(["fit", tpch_bundle, "--epsilon", "1.0",
                 "--max-iterations", "8", "--out", str(model_path),
                 "--ledger", str(ledger_path)])
    assert code == 0
    text = capsys.readouterr().out
    assert "wrote fitted model" in text and "privacy: epsilon=" in text

    schema = f"{tpch_bundle}/schema.json"
    dcs = f"{tpch_bundle}/dcs.txt"
    out_a, out_b = tmp_path / "synth_a", tmp_path / "synth_b"
    for out, n, seed in ((out_a, "40", "1"), (out_b, "120", "2")):
        code = main(["sample", str(model_path), "--schema", schema,
                     "--dcs", dcs, "--out", str(out), "--n", n,
                     "--seed", seed])
        assert code == 0
        assert "no privacy spend" in capsys.readouterr().out
    assert load_bundle(str(out_a)).n == 40
    assert load_bundle(str(out_b)).n == 120

    # Only the fit consumed budget: one ledger entry, within epsilon.
    ledger = PrivacyLedger.load(str(ledger_path))
    assert len(ledger) == 1
    assert 0 < ledger.spent_epsilon() <= 1.0 + 1e-6

    # The sampled bundles evaluate cleanly against the truth.
    assert main(["evaluate", tpch_bundle, str(out_b)]) == 0
    out = capsys.readouterr().out
    assert "Metric I" in out and "Metric III" in out


def test_cmd_sample_deterministic_per_seed(tpch_bundle, tmp_path, capsys):
    model_path = tmp_path / "model.npz"
    assert main(["fit", tpch_bundle, "--epsilon", "inf",
                 "--max-iterations", "8", "--out", str(model_path)]) == 0
    schema = f"{tpch_bundle}/schema.json"
    outs = []
    for name in ("s1", "s2"):
        out = tmp_path / name
        assert main(["sample", str(model_path), "--schema", schema,
                     "--out", str(out), "--n", "30", "--seed", "7"]) == 0
        outs.append(load_bundle(str(out)).table)
    capsys.readouterr()
    for attr in outs[0].relation.names:
        np.testing.assert_array_equal(outs[0].column(attr),
                                      outs[1].column(attr))


def test_cmd_synthesize_save_model_round_trip(tpch_bundle, tmp_path,
                                              capsys):
    out_dir = tmp_path / "synth"
    model_path = tmp_path / "model.npz"
    code = main(["synthesize", tpch_bundle, "--epsilon", "1.0",
                 "--out", str(out_dir), "--max-iterations", "8",
                 "--save-model", str(model_path)])
    assert code == 0
    assert "wrote fitted model" in capsys.readouterr().out
    # The saved model reproduces the synthesize draw (default state).
    resampled = tmp_path / "resampled"
    assert main(["sample", str(model_path),
                 "--schema", f"{tpch_bundle}/schema.json",
                 "--dcs", f"{tpch_bundle}/dcs.txt",
                 "--out", str(resampled)]) == 0
    capsys.readouterr()
    a = load_bundle(str(out_dir)).table
    b = load_bundle(str(resampled)).table
    for attr in a.relation.names:
        np.testing.assert_array_equal(a.column(attr), b.column(attr))


def test_cmd_evaluate_alpha_defaults(tpch_bundle, tmp_path, capsys):
    """--alpha has a true parser-level default of (1, 2)."""
    from repro.cli import build_parser
    parser = build_parser()
    args = parser.parse_args(["evaluate", "a", "b"])
    assert tuple(args.alpha) == (1, 2)
    args = parser.parse_args(["evaluate", "a", "b", "--alpha", "3"])
    assert args.alpha == [3]
    args = parser.parse_args(["evaluate", "a", "b",
                              "--alpha", "1", "--alpha", "3"])
    assert args.alpha == [1, 3]
    # The default tuple is never mutated by an invocation.
    args = parser.parse_args(["evaluate", "a", "b"])
    assert tuple(args.alpha) == (1, 2)


def test_cmd_evaluate_schema_mismatch(tpch_bundle, tmp_path, capsys):
    other = load("adult", n=20, seed=0)
    directory = tmp_path / "adult"
    save_bundle(str(directory), other.table, other.dcs)
    assert main(["evaluate", tpch_bundle, str(directory)]) == 2


def test_cmd_ledger_summary(tmp_path, capsys):
    ledger = PrivacyLedger(delta=1e-6)
    ledger.record_gaussian("hist", sigma=2.0)
    path = tmp_path / "ledger.json"
    ledger.save(str(path))
    assert main(["ledger", str(path)]) == 0
    assert "TOTAL" in capsys.readouterr().out


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cmd_check_show_rows(tmp_path, capsys):
    dataset = load("br2000", n=60, seed=0)  # soft DCs -> violations exist
    directory = tmp_path / "br"
    save_bundle(str(directory), dataset.table, dataset.dcs)
    assert main(["check", str(directory), "--show-rows", "2"]) == 0
    out = capsys.readouterr().out
    assert "violation: row" in out


def test_cmd_sample_engine_and_workers_flags(tpch_bundle, tmp_path,
                                             capsys):
    """--workers draws are bit-identical; --engine row/blocked both work;
    --engine at fit time persists into the model config."""
    model_path = tmp_path / "model.npz"
    assert main(["fit", tpch_bundle, "--epsilon", "inf",
                 "--max-iterations", "8", "--engine", "blocked",
                 "--out", str(model_path)]) == 0
    schema = f"{tpch_bundle}/schema.json"
    dcs = f"{tpch_bundle}/dcs.txt"
    tables = {}
    for name, extra in (("w1", []), ("w4", ["--workers", "4"]),
                        ("row", ["--engine", "row"])):
        out = tmp_path / name
        assert main(["sample", str(model_path), "--schema", schema,
                     "--dcs", dcs, "--out", str(out), "--n", "60",
                     "--seed", "5"] + extra) == 0
        tables[name] = load_bundle(str(out)).table
    text = capsys.readouterr().out
    assert "blocked engine, workers=4" in text
    assert "row engine" in text
    for attr in tables["w1"].relation.names:
        np.testing.assert_array_equal(tables["w1"].column(attr),
                                      tables["w4"].column(attr),
                                      err_msg=attr)
    assert tables["row"].n == 60


# ----------------------------------------------------------------------
# --method (the multi-backend registry paths)
# ----------------------------------------------------------------------
def test_cmd_synthesize_method_privbayes(tpch_bundle, tmp_path, capsys):
    out = tmp_path / "synth"
    assert main(["synthesize", tpch_bundle, "--method", "privbayes",
                 "--epsilon", "1.0", "--n", "50", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "method=privbayes" in text
    assert "budget ledger:" in text and "TOTAL: epsilon=1" in text
    assert load_bundle(str(out)).table.n == 50


def test_cmd_fit_sample_round_trip_backend(tpch_bundle, tmp_path, capsys):
    """A non-Kamino artifact serves deterministic draws via 'sample'."""
    model = tmp_path / "pb.npz"
    assert main(["fit", tpch_bundle, "--method", "privbayes",
                 "--epsilon", "1.0", "--out", str(model)]) == 0
    schema = f"{tpch_bundle}/schema.json"
    tables = {}
    for name in ("a", "b"):
        out = tmp_path / name
        assert main(["sample", str(model), "--schema", schema,
                     "--out", str(out), "--n", "40", "--seed", "9"]) == 0
    text = capsys.readouterr().out
    assert "method=privbayes" in text
    a = load_bundle(str(tmp_path / "a")).table
    b = load_bundle(str(tmp_path / "b")).table
    for attr in a.relation.names:
        np.testing.assert_array_equal(a.column(attr), b.column(attr),
                                      err_msg=attr)


def test_cmd_sample_method_mismatch_fails(tpch_bundle, tmp_path, capsys):
    model = tmp_path / "mst.npz"
    assert main(["fit", tpch_bundle, "--method", "nist_mst",
                 "--epsilon", "1.0", "--out", str(model)]) == 0
    assert main(["sample", str(model), "--method", "privbayes",
                 "--schema", f"{tpch_bundle}/schema.json",
                 "--out", str(tmp_path / "x")]) == 2
    assert "not 'privbayes'" in capsys.readouterr().err


def test_cmd_synthesize_method_auto_routes_on_dcs(tpch_bundle, tmp_path,
                                                  capsys):
    """tpch ships DCs, so 'auto' must route to kamino."""
    out = tmp_path / "synth"
    assert main(["synthesize", tpch_bundle, "--method", "auto",
                 "--epsilon", "inf", "--max-iterations", "4",
                 "--n", "30", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "routed to 'kamino'" in text
    assert load_bundle(str(out)).table.n == 30
