"""Classifier-panel tests: every model must learn simple structure, and
the feature/metric utilities must behave."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    CLASSIFIER_PANEL, FeatureEncoder, accuracy_score, binarize_target,
    f1_score, DecisionTree, RegressionTree,
)
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def make_xor_free_data(n=500, seed=0):
    """Linearly separable data with label noise."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 8))
    y = ((X[:, 0] + 0.8 * X[:, 1] - 0.5 * X[:, 2]
          + 0.3 * rng.normal(size=n)) > 0).astype(np.int64)
    return X[:350], y[:350], X[350:], y[350:]


def make_xor_data(n=600, seed=0):
    """Non-linear XOR — trees/boosting/MLP must beat a linear model."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
    return X[:400], y[:400], X[400:], y[400:]


class TestPanelOnLinearData:
    @pytest.mark.parametrize("name", sorted(CLASSIFIER_PANEL))
    def test_beats_chance_substantially(self, name):
        Xtr, ytr, Xte, yte = make_xor_free_data()
        clf = CLASSIFIER_PANEL[name](seed=0).fit(Xtr, ytr)
        assert accuracy_score(yte, clf.predict(Xte)) > 0.75

    @pytest.mark.parametrize("name", sorted(CLASSIFIER_PANEL))
    def test_predictions_are_binary(self, name):
        Xtr, ytr, Xte, yte = make_xor_free_data()
        pred = CLASSIFIER_PANEL[name](seed=0).fit(Xtr, ytr).predict(Xte)
        assert set(np.unique(pred)) <= {0, 1}

    @pytest.mark.parametrize("name", sorted(CLASSIFIER_PANEL))
    def test_unfit_raises(self, name):
        clf = CLASSIFIER_PANEL[name](seed=0)
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((2, 3)))


class TestNonLinear:
    @pytest.mark.parametrize("name", ["DecisionTree", "RandomForest",
                                      "GradientBoost", "XGBoost", "MLP",
                                      "Bagging"])
    def test_solves_xor(self, name):
        Xtr, ytr, Xte, yte = make_xor_data()
        clf = CLASSIFIER_PANEL[name](seed=0).fit(Xtr, ytr)
        assert accuracy_score(yte, clf.predict(Xte)) > 0.8

    def test_regression_tree_fits_step(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(300, 1))
        grad = np.where(X[:, 0] > 0.5, -2.0, 2.0)  # leaf values ~ -grad
        tree = RegressionTree(max_depth=2, lam=0.0).fit(X, grad)
        pred = tree.predict(np.array([[0.25], [0.75]]))
        assert pred[0] < -1.0 and pred[1] > 1.0

    def test_decision_tree_sample_weights(self):
        # Weighting one class heavily should pull predictions that way.
        X = np.array([[0.0], [0.0], [0.0], [1.0]])
        y = np.array([0, 0, 0, 1])
        heavy = np.array([1.0, 1.0, 1.0, 100.0])
        tree = DecisionTree(max_depth=1, min_samples_leaf=1)
        tree.fit(X, y, sample_weight=heavy)
        assert tree.predict(np.array([[1.0]]))[0] == 1


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 0])
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_f1_perfect(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_f1_no_positives(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_f1_known_value(self):
        # tp=1, fp=1, fn=1 -> f1 = 2/(2+1+1) = 0.5
        assert f1_score([1, 1, 0], [1, 0, 1]) == pytest.approx(0.5)

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                    min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_f1_bounded(self, pairs):
        y_true = np.array([a for a, _ in pairs])
        y_pred = np.array([b for _, b in pairs])
        assert 0.0 <= f1_score(y_true, y_pred) <= 1.0


class TestFeatures:
    def setup_method(self):
        self.relation = Relation([
            Attribute("c", CategoricalDomain(["a", "b", "c"])),
            Attribute("x", NumericalDomain(0, 100)),
            Attribute("label", CategoricalDomain(["n", "y"])),
        ])
        self.table = Table.from_rows(self.relation, [
            ["a", 10.0, "n"], ["b", 90.0, "y"], ["c", 50.0, "y"],
        ])

    def test_dim_counts(self):
        enc = FeatureEncoder(self.relation, exclude=("label",))
        assert enc.dim == 3 + 1

    def test_one_hot_block(self):
        enc = FeatureEncoder(self.relation, exclude=("label", "x"))
        X = enc.transform(self.table)
        assert X.tolist() == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_numeric_standardized(self):
        enc = FeatureEncoder(self.relation, exclude=("label", "c"))
        X = enc.transform(self.table)
        assert X[0, 0] < 0 < X[1, 0]

    def test_binarize_categorical_majority(self):
        labels = binarize_target(self.table, "label")
        # Majority value of label is "y" (two of three rows).
        assert labels.tolist() == [0, 1, 1]

    def test_binarize_numeric_median(self):
        labels = binarize_target(self.table, "x")
        assert labels.tolist() == [0, 1, 0]

    def test_binarize_uses_reference(self):
        other = Table.from_rows(self.relation, [
            ["a", 95.0, "n"], ["a", 99.0, "n"],
        ])
        # Reference median comes from self.table (50), so both rows of
        # `other` are above it.
        labels = binarize_target(other, "x", reference=self.table)
        assert labels.tolist() == [1, 1]
