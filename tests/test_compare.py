"""Tests for the one-call method comparison API."""

import pytest

from repro.datasets import load
from repro.evaluation import ReportCollection, compare_methods


@pytest.fixture(scope="module")
def comparison():
    dataset = load("tpch", n=120, seed=0)
    return dataset, compare_methods(
        dataset, methods=["PrivBayes", "Kamino"], epsilon=1.0, seed=0,
        max_marginal_sets=5)


def test_returns_report_collection(comparison):
    _, collection = comparison
    assert isinstance(collection, ReportCollection)
    ids = [r.exp_id for r in collection.reports]
    assert ids == ["Runtime", "Metric I", "Metric III"]


def test_runtime_section_has_one_row_per_method(comparison):
    _, collection = comparison
    runtime = collection.reports[0]
    assert [r["method"] for r in runtime.rows] == ["PrivBayes", "Kamino"]
    assert all(r["seconds"] > 0 for r in runtime.rows)


def test_violation_section_covers_every_dc(comparison):
    dataset, collection = comparison
    violations = collection.reports[1]
    assert [r["dc"] for r in violations.rows] == \
        [dc.name for dc in dataset.dcs]
    for row in violations.rows:
        assert set(row) >= {"dc", "truth", "PrivBayes", "Kamino"}


def test_kamino_hard_dc_claim_checked(comparison):
    _, collection = comparison
    violations = collection.reports[1]
    assert len(violations.claims) == 1
    assert violations.claims[0].holds  # Kamino preserves TPC-H keys


def test_marginal_section_has_both_alphas(comparison):
    _, collection = comparison
    marginals = collection.reports[2]
    for row in marginals.rows:
        assert 0.0 <= row["1-way"] <= 1.0
        assert 0.0 <= row["2-way"] <= 1.0


def test_markdown_renders(comparison):
    _, collection = comparison
    text = collection.to_markdown()
    assert "# Method comparison on tpch" in text
    assert "Metric I" in text and "Metric III" in text


def test_classify_adds_metric_ii():
    dataset = load("tpch", n=90, seed=1)
    collection = compare_methods(
        dataset, methods=["PrivBayes"], epsilon=1.0, seed=0,
        classify=True, classify_targets=["o_orderstatus"],
        max_marginal_sets=3)
    ids = [r.exp_id for r in collection.reports]
    assert "Metric II" in ids
    panel = collection.reports[ids.index("Metric II")]
    assert [r["method"] for r in panel.rows] == ["PrivBayes", "Truth"]
