"""Tests for the growing-database update policy (paper §3.2 / future
work).  All runs use tiny instances with capped iterations."""

import numpy as np
import pytest

from repro.core.growing import (
    RESAMPLE,
    RESEQUENCE,
    RETRAIN,
    GrowingSynthesizer,
    fingerprint_distance,
    noisy_fingerprint,
)
from repro.constraints.dc import DenialConstraint
from repro.datasets import load
from repro.privacy.ledger import PrivacyLedger
from repro.schema.table import Table


def _cap(params):
    params.iterations = min(params.iterations, 10)
    params.embed_dim = 6


def _grown_version(table, extra: int = 30, seed: int = 99):
    """The same population, grown: original rows plus a bootstrap of
    ``extra`` more (different seeds of the tpch *generator* produce
    different populations, so this is how stable growth is modeled)."""
    rng = np.random.default_rng(seed)
    new_rows = rng.integers(0, table.n, size=extra)
    return table.take(np.concatenate([np.arange(table.n), new_rows]))


def _make(dataset, **kwargs):
    # Detection power scales with n * fingerprint_epsilon; tiny test
    # instances need a loose fingerprint budget (documented behaviour).
    defaults = dict(fingerprint_epsilon=20.0, shift_threshold=0.2,
                    seed=0, params_override=_cap)
    defaults.update(kwargs)
    return GrowingSynthesizer(dataset.relation, dataset.dcs, epsilon=1.0,
                              delta=1e-6, **defaults)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_has_one_histogram_per_attribute():
    dataset = load("tpch", n=60, seed=0)
    rng = np.random.default_rng(0)
    fp = noisy_fingerprint(dataset.table, sigma=1.0, rng=rng)
    assert len(fp) == dataset.relation.arity
    for attr, hist in zip(dataset.relation, fp):
        assert hist.ndim == 1
        assert np.all(hist >= 0.0)  # post-processing clip


def test_fingerprint_distance_zero_for_identical():
    dataset = load("tpch", n=60, seed=0)
    rng = np.random.default_rng(0)
    fp = noisy_fingerprint(dataset.table, sigma=1.0, rng=rng)
    assert fingerprint_distance(fp, fp) == 0.0


def test_fingerprint_distance_detects_shift():
    dataset = load("tpch", n=200, seed=0)
    rng = np.random.default_rng(0)
    low_noise = 1e-6
    fp_a = noisy_fingerprint(dataset.table, low_noise, rng)
    shifted = dataset.table.copy()
    col = shifted.columns["o_totalprice"]
    col[:] = col.max()  # collapse a numerical column
    fp_b = noisy_fingerprint(shifted, low_noise, rng)
    assert fingerprint_distance(fp_a, fp_b) > 0.3


def test_fingerprint_distance_requires_matching_length():
    with pytest.raises(ValueError, match="different attribute counts"):
        fingerprint_distance([np.ones(2)], [np.ones(2), np.ones(2)])


# ----------------------------------------------------------------------
# Update policy
# ----------------------------------------------------------------------
def test_publish_then_resample_on_stable_data():
    dataset = load("tpch", n=150, seed=0)
    synth = _make(dataset)
    first = synth.publish(dataset.table)
    assert first.action == RESEQUENCE
    assert first.result.table.n == dataset.n
    assert synth.published

    # Same population, grown by 20% (bootstrap of the same rows).
    grown = _grown_version(dataset.table)
    update = synth.update(grown)
    assert update.action == RESAMPLE
    assert update.epsilon_spent == pytest.approx(20.0)  # fingerprint only
    assert update.result.table.n == grown.n


def test_update_retrains_on_distribution_shift():
    dataset = load("tpch", n=150, seed=0)
    synth = _make(dataset, shift_threshold=0.1)
    synth.publish(dataset.table)

    shifted = dataset.table.copy()
    shifted.columns["o_totalprice"][:] = \
        shifted.columns["o_totalprice"].max()
    shifted.columns["o_orderstatus"][:] = 0
    decision = synth.update(shifted)
    assert decision.action == RETRAIN
    assert decision.shift > 0.1
    assert decision.epsilon_spent > 20.0  # fingerprint + full run


def test_update_reruns_on_sequence_changing_dcs():
    dataset = load("tpch", n=120, seed=0)
    synth = _make(dataset)
    synth.publish(dataset.table)
    # Dropping down to one FD with a different determinant changes
    # Algorithm 4's output.
    new_dcs = [DenialConstraint.fd("only", "o_orderstatus",
                                   "o_orderpriority", hard=False)]
    decision = synth.update(dataset.table, dcs=new_dcs)
    assert decision.action == RESEQUENCE
    assert "sequence" in decision.reason


def test_update_same_sequence_new_soft_dc_gets_weight():
    """A DC added without changing the sequence must still be enforced
    by later draws: it gets the Algorithm 5 initial weight."""
    from repro.core.sequencing import sequence_attributes

    dataset = load("tpch", n=150, seed=0)
    synth = _make(dataset)
    synth.publish(dataset.table)
    extra = DenialConstraint.fd("extra_soft", "c_custkey",
                                "c_mktsegment", hard=False)
    new_dcs = list(dataset.dcs) + [extra]
    bound = [dc.bind(dataset.relation) for dc in new_dcs]
    if sequence_attributes(dataset.relation, bound) != synth._sequence:
        pytest.skip("added DC changes the sequence on this instance")
    decision = synth.update(_grown_version(dataset.table), dcs=new_dcs)
    assert decision.action == RESAMPLE
    assert synth._fitted.weights["extra_soft"] == pytest.approx(
        synth._fitted.params.weight_init)


def test_ledger_accumulates_across_updates():
    dataset = load("tpch", n=120, seed=0)
    ledger = PrivacyLedger(delta=1e-6)
    synth = _make(dataset, ledger=ledger)
    synth.publish(dataset.table)
    spent_after_publish = ledger.spent_epsilon()
    assert spent_after_publish > 0
    # One Kamino run + one fingerprint recorded.
    assert len(ledger) == 2

    synth.update(_grown_version(dataset.table))
    # Resample adds only the fingerprint entry.
    assert len(ledger) == 3
    assert ledger.spent_epsilon() > spent_after_publish


def test_update_before_publish_raises():
    dataset = load("tpch", n=60, seed=0)
    synth = _make(dataset)
    with pytest.raises(RuntimeError, match="publish"):
        synth.update(dataset.table)


def test_double_publish_raises():
    dataset = load("tpch", n=60, seed=0)
    synth = _make(dataset)
    synth.publish(dataset.table)
    with pytest.raises(RuntimeError, match="already published"):
        synth.publish(dataset.table)


def test_constructor_validation():
    dataset = load("tpch", n=20, seed=0)
    with pytest.raises(ValueError, match="fingerprint_epsilon"):
        GrowingSynthesizer(dataset.relation, dataset.dcs, 1.0,
                           fingerprint_epsilon=0.0)
    with pytest.raises(ValueError, match="shift_threshold"):
        GrowingSynthesizer(dataset.relation, dataset.dcs, 1.0,
                           shift_threshold=1.5)


def test_resampled_instance_respects_hard_dcs():
    dataset = load("tpch", n=150, seed=0)
    synth = _make(dataset)
    synth.publish(dataset.table)
    update = synth.update(_grown_version(dataset.table))
    assert update.action == RESAMPLE
    from repro.constraints import count_violations
    for dc in dataset.dcs:
        assert count_violations(dc, update.result.table) == 0
