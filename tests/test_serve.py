"""Tests for the serving layer (:mod:`repro.serve`).

Covers the four layers in isolation — registry (content-digest
versions, single-flight cold loads, LRU hot-cache eviction), draw cache
(strong ETags, size-bounded LRU, disk rebuild), executor (coalescing,
backpressure) — plus the end-to-end HTTP contract the acceptance
criterion names: a served draw's bytes equal the direct
``FittedKamino.sample`` export through :mod:`repro.io.stream`, a repeat
request hits the draw cache (visible in ``/metrics``), and
``If-None-Match`` revalidation returns 304.
"""

import contextlib
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

import repro.faults as faults
from repro.core.kamino import Kamino
from repro.datasets import load
from repro.io.dc_text import save_dcs
from repro.io.schema_json import save_relation
from repro.io.stream import write_table_stream
from repro.serve import (
    DrawCache,
    DrawExecutor,
    DrawTimeoutError,
    KaminoServer,
    ModelRegistry,
    QuarantinedModelError,
    QueueFullError,
    ServeClient,
    ServeConfig,
    UnknownModelError,
    body_etag,
    content_version,
    draw_key,
)
from repro.synth import make_synthesizer


# ----------------------------------------------------------------------
# Shared fitted artifacts (expensive: built once per module)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tpch(tmp_path_factory):
    """A fitted tiny-tpch Kamino artifact plus its public sidecars."""
    root = tmp_path_factory.mktemp("artifacts")
    ds = load("tpch", n=60, seed=0)

    def cap(params):
        params.iterations = min(params.iterations, 6)

    fitted = Kamino(ds.relation, ds.dcs, epsilon=1.0, seed=0,
                    params_override=cap).fit(ds.table)
    paths = {
        "model": str(root / "model.npz"),
        "schema": str(root / "schema.json"),
        "dcs": str(root / "dcs.txt"),
    }
    fitted.save(paths["model"])
    save_relation(ds.relation, paths["schema"])
    save_dcs(ds.dcs, paths["dcs"], relation=ds.relation)
    return {"dataset": ds, "fitted": fitted, **paths}


@pytest.fixture(scope="module")
def privbayes(tmp_path_factory):
    """A fitted PrivBayes artifact (the ``repro.synth/1`` format)."""
    root = tmp_path_factory.mktemp("pb")
    ds = load("tpch", n=60, seed=0)
    fitted = make_synthesizer("privbayes", 1.0, seed=0).fit(ds.table)
    paths = {"model": str(root / "pb.npz"),
             "schema": str(root / "schema.json")}
    fitted.save(paths["model"])
    save_relation(ds.relation, paths["schema"])
    return {"dataset": ds, "fitted": fitted, **paths}


@pytest.fixture(scope="module")
def server(tmp_path_factory, tpch, privbayes):
    """One running server with both artifacts registered."""
    root = tmp_path_factory.mktemp("serve")
    srv = KaminoServer(ServeConfig(str(root / "models"), port=0,
                                   quiet=True, timeout=30.0))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(srv.base_url)
    client.register("tpch", tpch["model"], tpch["schema"],
                    dcs=tpch["dcs"])
    client.register("tpch-pb", privbayes["model"], privbayes["schema"])
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture
def client(server):
    return ServeClient(server.base_url)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_register_uses_content_digest_version(tmp_path, tpch):
    registry = ModelRegistry(str(tmp_path))
    record = registry.register("m", tpch["model"], tpch["schema"],
                               dcs_path=tpch["dcs"])
    assert record.version == content_version(tpch["model"])
    assert record.method == "kamino"
    assert record.path.endswith(".kamino")
    # Idempotent: same bytes, same version, still one registered version.
    again = registry.register("m", tpch["model"], tpch["schema"])
    assert again.version == record.version
    assert len(registry.versions("m")) == 1


def test_register_synth_payload_suffix(tmp_path, privbayes):
    registry = ModelRegistry(str(tmp_path))
    record = registry.register("pb", privbayes["model"],
                               privbayes["schema"])
    assert record.method == "privbayes"
    assert record.path.endswith(".synth")
    assert record.supports_native_stream() is False


def test_registry_unknown_and_invalid_names(tmp_path, tpch):
    registry = ModelRegistry(str(tmp_path))
    with pytest.raises(UnknownModelError):
        registry.resolve("ghost")
    registry.register("m", tpch["model"], tpch["schema"])
    with pytest.raises(UnknownModelError):
        registry.resolve("m", "feedbeefcafe")
    with pytest.raises(ValueError):
        registry.register("../escape", tpch["model"], tpch["schema"])


def test_registry_parallel_cold_requests_load_once(tmp_path, tpch):
    """The ISSUE's concurrency pin: one load, no torn reads."""
    registry = ModelRegistry(str(tmp_path))
    record = registry.register("m", tpch["model"], tpch["schema"],
                               dcs_path=tpch["dcs"])
    real_load = registry._load
    calls = []

    def slow_load(rec):
        calls.append(rec.version)
        time.sleep(0.15)  # widen the race window
        return real_load(rec)

    registry._load = slow_load
    results, errors = [], []

    def worker():
        try:
            results.append(registry.get("m"))
        except Exception as exc:  # pragma: no cover - fail loudly below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(calls) == 1
    assert registry.load_counts[("m", record.version)] == 1
    # Every thread saw the same loaded object — no torn reads.
    assert len({id(r) for r in results}) == 1
    assert results[0].fitted is not None


def test_registry_eviction_under_two_model_limit(tmp_path, tpch,
                                                 privbayes):
    registry = ModelRegistry(str(tmp_path), hot_limit=2)
    registry.register("a", tpch["model"], tpch["schema"],
                      dcs_path=tpch["dcs"])
    registry.register("b", privbayes["model"], privbayes["schema"])
    registry.register("c", tpch["model"], tpch["schema"],
                      dcs_path=tpch["dcs"])
    va = registry.get("a").record.version
    registry.get("b")
    assert [k[0] for k in registry.hot_keys()] == ["a", "b"]
    registry.get("c")  # evicts the least recently used ("a")
    assert [k[0] for k in registry.hot_keys()] == ["b", "c"]
    registry.get("a")  # cold again: reloads, evicts "b"
    assert registry.load_counts[("a", va)] == 2
    assert [k[0] for k in registry.hot_keys()] == ["c", "a"]


# ----------------------------------------------------------------------
# Draw cache
# ----------------------------------------------------------------------
def _put(cache, key, payload: bytes, content_type="text/csv"):
    tmp = cache.begin(key)
    with open(tmp, "wb") as f:
        f.write(payload)
    return cache.put(key, tmp, content_type)


def test_cache_roundtrip_and_strong_etag(tmp_path):
    cache = DrawCache(str(tmp_path))
    assert cache.get("k") is None  # miss
    entry = _put(cache, "k", b"hello,world\n")
    hit = cache.get("k")
    assert hit is entry
    assert hit.etag.startswith('"') and hit.etag.endswith('"')
    assert hit.etag == body_etag(hit.path)
    assert open(hit.path, "rb").read() == b"hello,world\n"
    stats = cache.stats()
    assert (stats["hits"], stats["misses"]) == (1, 1)
    assert stats["hit_rate"] == 0.5


def test_cache_lru_eviction_by_bytes(tmp_path):
    cache = DrawCache(str(tmp_path), max_bytes=100)
    _put(cache, "a", b"x" * 60)
    _put(cache, "b", b"y" * 60)  # a evicted: 120 > 100
    assert cache.peek("a") is None
    assert cache.peek("b") is not None
    assert cache.stats()["evictions"] == 1
    # The newest entry survives its own put even when oversized.
    entry = _put(cache, "big", b"z" * 500)
    assert cache.peek("big") is entry
    assert cache.peek("b") is None


def test_cache_rebuilds_index_from_disk(tmp_path):
    first = DrawCache(str(tmp_path))
    entry = _put(first, "k", b"payload", content_type="text/csv; x")
    reopened = DrawCache(str(tmp_path))
    found = reopened.peek("k")
    assert found is not None
    assert found.etag == entry.etag
    assert found.content_type == "text/csv; x"
    assert reopened.total_bytes == len(b"payload")


def test_draw_key_covers_every_dimension():
    base = draw_key("v1", 100, 7, "csv")
    assert draw_key("v1", 100, 7, "csv") == base
    assert draw_key("v2", 100, 7, "csv") != base
    assert draw_key("v1", 101, 7, "csv") != base
    assert draw_key("v1", 100, 8, "csv") != base
    assert draw_key("v1", 100, 7, "parquet") != base
    assert draw_key("v1", None, None, "csv") != base


# ----------------------------------------------------------------------
# Executor (queue + batcher)
# ----------------------------------------------------------------------
def test_executor_coalesces_identical_requests():
    executor = DrawExecutor(max_pending=4, timeout=10.0)
    calls = []

    def render():
        calls.append(1)
        time.sleep(0.15)
        return "body"

    results = []
    threads = [
        threading.Thread(
            target=lambda: results.append(
                executor.run("k", ("m", "v"), render)))
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(calls) == 1
    assert results == ["body"] * 4
    assert executor.coalesced == 3
    assert executor.depth == 0


def test_executor_bounded_queue_rejects():
    executor = DrawExecutor(max_pending=1, timeout=10.0)
    release = threading.Event()
    started = threading.Event()

    def blocker():
        started.set()
        release.wait(5)
        return "slow"

    t = threading.Thread(
        target=lambda: executor.run("k1", ("m", "v"), blocker))
    t.start()
    assert started.wait(5)
    with pytest.raises(QueueFullError):
        executor.run("k2", ("m", "v"), lambda: "fast")
    release.set()
    t.join()
    assert executor.rejected == 1


def test_executor_waiter_timeout():
    executor = DrawExecutor(max_pending=4, timeout=10.0)
    release = threading.Event()
    started = threading.Event()

    def blocker():
        started.set()
        release.wait(5)
        return "slow"

    t = threading.Thread(
        target=lambda: executor.run("k", ("m", "v"), blocker))
    t.start()
    assert started.wait(5)
    with pytest.raises(DrawTimeoutError):
        executor.run("k", ("m", "v"), lambda: "x", timeout=0.05)
    release.set()
    t.join()
    assert executor.timeouts == 1


def test_executor_model_lock_serializes_distinct_keys():
    executor = DrawExecutor(max_pending=4, timeout=10.0)
    release = threading.Event()
    started = threading.Event()

    def blocker():
        started.set()
        release.wait(5)
        return "a"

    t = threading.Thread(
        target=lambda: executor.run("ka", ("m", "v"), blocker))
    t.start()
    assert started.wait(5)
    # Distinct key, same model: must wait for the model lock.
    with pytest.raises(DrawTimeoutError):
        executor.run("kb", ("m", "v"), lambda: "b", timeout=0.05)
    # Distinct model renders immediately.
    assert executor.run("kc", ("other", "v"), lambda: "c") == "c"
    release.set()
    t.join()


def test_executor_propagates_render_errors():
    executor = DrawExecutor(max_pending=4, timeout=10.0)

    def boom():
        raise ValueError("render failed")

    with pytest.raises(ValueError, match="render failed"):
        executor.run("k", ("m", "v"), boom)
    assert executor.depth == 0  # failed job unregistered


# ----------------------------------------------------------------------
# Protocol-level sample_stream (the optional capability)
# ----------------------------------------------------------------------
def _concat_columns(relation, chunks):
    chunks = list(chunks)
    return {a: np.concatenate([c.column(a) for c in chunks])
            for a in relation.names}


def test_default_sample_stream_chunks_single_shot(privbayes):
    fitted = privbayes["fitted"]
    assert fitted.supports_native_stream is False
    relation = privbayes["dataset"].relation
    single = fitted.sample(50, seed=5)
    streamed = _concat_columns(
        relation, fitted.sample_stream(50, seed=5, chunk_rows=7))
    for attr in relation.names:
        np.testing.assert_array_equal(streamed[attr],
                                      single.column(attr), err_msg=attr)


def test_kamino_adapter_streams_natively(tpch):
    from repro.synth.kamino import FittedKaminoSynthesizer

    adapter = FittedKaminoSynthesizer(tpch["fitted"])
    assert adapter.supports_native_stream is True
    relation = tpch["dataset"].relation
    single = adapter.sample(40, seed=3)
    streamed = _concat_columns(
        relation, adapter.sample_stream(40, seed=3, chunk_rows=16))
    for attr in relation.names:
        np.testing.assert_array_equal(streamed[attr],
                                      single.column(attr), err_msg=attr)


def test_sample_stream_validates_chunk_rows(privbayes):
    with pytest.raises(ValueError, match="chunk_rows"):
        list(privbayes["fitted"].sample_stream(10, seed=0, chunk_rows=0))


def test_sample_stream_traced_draw_unchanged(tpch):
    from repro.obs import RunTrace
    from repro.synth.kamino import FittedKaminoSynthesizer

    adapter = FittedKaminoSynthesizer(tpch["fitted"])
    relation = tpch["dataset"].relation
    trace = RunTrace(label="stream")
    traced = _concat_columns(
        relation, adapter.sample_stream(30, seed=4, chunk_rows=8,
                                        trace=trace))
    plain = _concat_columns(
        relation, adapter.sample_stream(30, seed=4, chunk_rows=8))
    for attr in relation.names:
        np.testing.assert_array_equal(traced[attr], plain[attr])
    (run,) = trace.samples
    assert run.n == 30 and run.engine.endswith("-stream")
    assert run.seconds > 0


# ----------------------------------------------------------------------
# End-to-end HTTP contract (the acceptance criterion)
# ----------------------------------------------------------------------
def test_serving_determinism_contract(server, client, tpch, tmp_path):
    """Served bytes == direct engine export; repeat hits the cache
    (visible in /metrics); If-None-Match revalidates to 304."""
    first = client.sample("tpch", n=40, seed=3)
    assert first.status == 200
    assert first.cache_state == "miss"

    # The response bytes equal a direct FittedKamino.sample export
    # through io/stream.py.
    direct_path = tmp_path / "direct.csv"
    result = tpch["fitted"].sample(n=40, seed=3)
    write_table_stream(str(direct_path), tpch["dataset"].relation,
                       iter([result.table]), fmt="csv")
    assert first.body == direct_path.read_bytes()

    # Repeat request: served from the draw cache, byte-identical.
    before = client.metrics_json()["cache"]["hits"]
    second = client.sample("tpch", n=40, seed=3)
    assert second.status == 200
    assert second.cache_state == "hit"
    assert second.body == first.body
    assert second.etag == first.etag
    after = client.metrics_json()["cache"]
    assert after["hits"] > before
    assert after["hit_rate"] > 0

    # ETag revalidation: If-None-Match returns 304 with no body.
    third = client.sample("tpch", n=40, seed=3, etag=first.etag)
    assert third.status == 304
    assert third.body == b""
    assert third.etag == first.etag


def test_serve_distinct_requests_differ(client):
    a = client.sample("tpch", n=30, seed=1)
    b = client.sample("tpch", n=30, seed=2)
    c = client.sample("tpch", n=20, seed=1)
    assert a.status == b.status == c.status == 200
    assert a.body != b.body
    assert a.body.count(b"\n") - 1 == 30
    assert c.body.count(b"\n") - 1 == 20
    assert len({a.etag, b.etag, c.etag}) == 3


def test_serve_synth_payload_backend(client, privbayes, tmp_path):
    """Non-Kamino artifacts serve through the same endpoint."""
    first = client.sample("tpch-pb", n=25, seed=6)
    assert first.status == 200
    direct_path = tmp_path / "pb.csv"
    table = privbayes["fitted"].sample(25, seed=6)
    write_table_stream(str(direct_path), privbayes["dataset"].relation,
                       iter([table]), fmt="csv")
    assert first.body == direct_path.read_bytes()
    assert client.sample("tpch-pb", n=25, seed=6).cache_state == "hit"


def test_serve_models_listing(client):
    models = {m["name"]: m for m in client.models()}
    assert models["tpch"]["method"] == "kamino"
    assert models["tpch"]["supports_native_stream"] is True
    assert models["tpch-pb"]["method"] == "privbayes"
    assert models["tpch-pb"]["supports_native_stream"] is False
    assert models["tpch"]["version"]  # content digest, non-empty


def test_serve_version_pinning(client, server):
    version = server.registry.resolve("tpch").version
    pinned = client.sample("tpch", n=15, seed=0, version=version)
    assert pinned.status == 200
    assert pinned.headers.get("X-Model-Version") == version
    missing = client.sample("tpch", n=15, seed=0, version="000000000000")
    assert missing.status == 404


def test_serve_error_statuses(client):
    assert client.sample("ghost").status == 404
    assert client._request("GET", "/sample").status == 400
    assert client._request("GET", "/sample?model=tpch&n=nope").status \
        == 400
    assert client._request(
        "GET", "/sample?model=tpch&format=xml").status == 400
    assert client._request("GET", "/nowhere").status == 404


def test_serve_columnar_format_gated_without_pyarrow(client):
    try:
        import pyarrow  # noqa: F401
        pytest.skip("pyarrow installed; the columnar path would serve")
    except ImportError:
        pass
    resp = client.sample("tpch", n=10, seed=0, fmt="parquet")
    assert resp.status == 501
    assert b"pyarrow" in resp.body


def test_serve_healthz_and_prometheus_metrics(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["models"] >= 2
    text = client.metrics()
    assert "kamino_serve_requests_total" in text
    assert "kamino_serve_cache_hit_rate" in text
    assert "kamino_serve_queue_depth" in text
    assert "kamino_serve_models_loaded" in text
    doc = client.metrics_json()
    assert doc["queue"]["depth"] == 0
    assert doc["models_loaded"] >= 1
    # RunTrace threading: rendered draws leave trace documents behind.
    assert doc["recent_traces"]
    assert any(s["engine"].endswith("-stream")
               for t in doc["recent_traces"] for s in t["samples"])


def test_serve_register_requires_fields(client):
    resp = client._request("POST", "/models", body=b"{}",
                           content_type="application/json")
    assert resp.status == 400
    resp = client._request(
        "POST", "/models",
        body=b'{"name": "x", "model": "/no/such", "schema": "/no"}',
        content_type="application/json")
    assert resp.status == 400


def test_cache_rebuild_drops_corrupted_entries(tmp_path):
    """Disk rebuild re-hashes every body against its recorded ETag and
    silently drops (and deletes) anything that no longer verifies."""
    cache = DrawCache(str(tmp_path))
    _put(cache, "good", b"intact payload")
    bad = _put(cache, "bad", b"original payload")
    with open(bad.path, "wb") as f:
        f.write(b"truncat")  # torn write / bit rot
    reopened = DrawCache(str(tmp_path))
    assert reopened.peek("good") is not None
    assert reopened.peek("bad") is None
    assert not os.path.exists(bad.path)
    assert reopened.stats()["corrupt_dropped"] == 1
    assert reopened.total_bytes == len(b"intact payload")


# ----------------------------------------------------------------------
# Quarantine: broken artifacts are fenced, not 500s
# ----------------------------------------------------------------------
def test_registry_quarantines_corrupt_artifact(tmp_path, tpch):
    registry = ModelRegistry(str(tmp_path))
    record = registry.register("m", tpch["model"], tpch["schema"],
                               dcs_path=tpch["dcs"])
    with open(record.path, "r+b") as f:
        f.write(b"\x00" * 64)  # clobber the stored bytes
    with pytest.raises(QuarantinedModelError) as excinfo:
        registry.get("m")
    assert "digest" in str(excinfo.value)
    assert excinfo.value.name == "m"
    # Still quarantined on the next request — no repeated load attempts.
    with pytest.raises(QuarantinedModelError):
        registry.get("m")
    assert registry.load_counts.get(("m", record.version), 0) == 0
    (listed,) = registry.list_models()
    assert listed["quarantined"]


def test_registry_quarantines_load_failure(tmp_path, tpch):
    registry = ModelRegistry(str(tmp_path))
    registry.register("m", tpch["model"], tpch["schema"],
                      dcs_path=tpch["dcs"])
    with faults.injected("registry.load=error"):
        with pytest.raises(QuarantinedModelError, match="FaultInjected"):
            registry.get("m")


@contextlib.contextmanager
def _running_server(root, tpch, **cfg):
    srv = KaminoServer(ServeConfig(str(root), port=0, quiet=True, **cfg))
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    client = ServeClient(srv.base_url)
    client.register("tpch", tpch["model"], tpch["schema"],
                    dcs=tpch["dcs"])
    try:
        yield srv, client
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def test_serve_quarantined_model_is_clean_503(tmp_path, tpch):
    with _running_server(tmp_path / "models", tpch) as (srv, client):
        record = srv.registry.resolve("tpch")
        with open(record.path, "r+b") as f:
            f.write(b"\x00" * 64)
        resp = client.sample("tpch", n=10, seed=0)
        assert resp.status == 503
        assert b"quarantined" in resp.body
        doc = client.metrics_json()
        assert doc["events"]["quarantine_rejects"] >= 1
        (listed,) = client.models()
        assert listed["quarantined"]
        text = client.metrics()
        assert 'kamino_serve_events_total{event="quarantine_rejects"}' \
            in text


# ----------------------------------------------------------------------
# ENOSPC: the draw cache fills up, draws keep serving
# ----------------------------------------------------------------------
def test_serve_enospc_degrades_to_uncached_stream(tmp_path, tpch):
    with _running_server(tmp_path / "models", tpch) as (srv, client):
        with faults.injected("cache.put=enospcx*"):
            resp = client.sample("tpch", n=40, seed=3)
        assert resp.status == 200
        assert resp.cache_state == "bypass"
        assert resp.etag is None  # uncached: no strong validator
        direct = tmp_path / "direct.csv"
        write_table_stream(str(direct), tpch["dataset"].relation,
                           iter([tpch["fitted"].sample(n=40,
                                                       seed=3).table]))
        assert resp.body == direct.read_bytes()
        assert client.metrics_json()["events"]["degraded_streams"] >= 1
        # Cache healthy again: the same request renders and caches.
        assert client.sample("tpch", n=40, seed=3).status == 200
        assert client.sample("tpch", n=40, seed=3).cache_state == "hit"


def test_serve_enospc_columnar_asks_for_csv(tmp_path, tpch):
    with _running_server(tmp_path / "models", tpch) as (srv, client):
        with faults.injected("cache.put=enospcx*"):
            resp = client.sample("tpch", n=10, seed=0, fmt="parquet")
        assert resp.status in (501, 503)  # 501 without pyarrow
        if resp.status == 503:
            assert b"csv" in resp.body
            assert resp.headers.get("Retry-After")


# ----------------------------------------------------------------------
# Render deadline + clean 500s
# ----------------------------------------------------------------------
def test_serve_render_deadline_returns_503(tmp_path, tpch):
    with _running_server(tmp_path / "models", tpch, timeout=0.2,
                         chunk_rows=8) as (srv, client):
        with faults.injected("stream.write=sleep:0.35x*"):
            resp = client.sample("tpch", n=32, seed=1)
        assert resp.status == 503
        assert b"deadline" in resp.body
        events = client.metrics_json()["events"]
        assert events["render_deadline_exceeded"] >= 1


def test_serve_render_fault_is_clean_500(tmp_path, tpch):
    with _running_server(tmp_path / "models", tpch) as (srv, client):
        with faults.injected("stream.write=error"):
            resp = client.sample("tpch", n=10, seed=0)
        assert resp.status == 500
        assert b"injected" in resp.body
        assert resp.json()["error"]  # JSON error doc, not a traceback


# ----------------------------------------------------------------------
# Client retry/backoff against a flaky stub server
# ----------------------------------------------------------------------
class _FlakyHandler(BaseHTTPRequestHandler):
    """Scripted responses: each element is (status, headers, body) or
    the string "reset" (drop the connection without answering)."""

    script: list = []
    attempts = 0

    def do_GET(self):
        self._step()

    def do_POST(self):
        self._step()

    def _step(self):
        cls = type(self)
        step = cls.script[min(cls.attempts, len(cls.script) - 1)]
        cls.attempts += 1
        if step == "reset":
            self.connection.shutdown(socket.SHUT_RDWR)
            return
        status, headers, body = step
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):
        pass


@contextlib.contextmanager
def _flaky_server(script):
    handler = type("Handler", (_FlakyHandler,),
                   {"script": script, "attempts": 0})
    srv = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{srv.server_address[1]}", handler
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def test_client_retries_backpressure_honoring_retry_after():
    script = [(429, {"Retry-After": "0"}, b"busy"),
              (503, {}, b"still busy"),
              (200, {}, b"payload")]
    with _flaky_server(script) as (url, handler):
        sleeps = []
        client = ServeClient(url, retries=3, backoff=0.01,
                             sleep=sleeps.append)
        resp = client._request("GET", "/sample?model=m")
        assert resp.status == 200
        assert resp.body == b"payload"
        assert handler.attempts == 3
        # First wait obeyed Retry-After: 0; second used the backoff.
        assert sleeps[0] == 0.0
        assert sleeps[1] == pytest.approx(0.02)  # backoff * 2^1


def test_client_retry_attempts_are_hard_capped():
    with _flaky_server([(503, {}, b"down")]) as (url, handler):
        client = ServeClient(url, retries=2, backoff=0.001,
                             sleep=lambda s: None)
        resp = client._request("GET", "/anything")
        assert resp.status == 503  # last answer returned, not raised
        assert handler.attempts == 3  # 1 try + 2 retries, no more


def test_client_retries_connection_reset():
    script = ["reset", (200, {}, b"recovered")]
    with _flaky_server(script) as (url, handler):
        client = ServeClient(url, retries=2, backoff=0.001,
                             sleep=lambda s: None)
        resp = client._request("GET", "/x")
        assert resp.status == 200
        assert resp.body == b"recovered"
        assert handler.attempts == 2


def test_client_never_retries_posts():
    with _flaky_server([(503, {}, b"down")]) as (url, handler):
        client = ServeClient(url, retries=5, backoff=0.001,
                             sleep=lambda s: None)
        resp = client._request("POST", "/models", body=b"{}",
                               content_type="application/json")
        assert resp.status == 503
        assert handler.attempts == 1


def test_client_exhausted_transport_retries_raise():
    # A port with nothing listening: every attempt fails in transport.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    sleeps = []
    client = ServeClient(f"http://127.0.0.1:{port}", retries=2,
                         backoff=0.001, sleep=sleeps.append)
    with pytest.raises(OSError):
        client._request("GET", "/healthz")
    assert len(sleeps) == 2  # slept between the 3 attempts


def test_serve_cli_parser_wiring():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--models-dir", "m", "--port", "0",
         "--register", "a:model.npz:schema.json",
         "--workers", "2", "--quiet"])
    assert args.models_dir == "m"
    assert args.register == ["a:model.npz:schema.json"]
    assert args.workers == 2
    assert args.fn.__name__ == "cmd_serve"
