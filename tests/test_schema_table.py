"""Unit tests for Relation and Table."""

import numpy as np
import pytest

from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
    train_test_split,
)


@pytest.fixture
def relation():
    return Relation([
        Attribute("color", CategoricalDomain(["red", "green", "blue"])),
        Attribute("size", NumericalDomain(0, 100)),
    ])


@pytest.fixture
def table(relation):
    return Table.from_rows(relation, [
        ["red", 10.0], ["green", 20.0], ["blue", 30.0], ["red", 40.0],
    ])


class TestRelation:
    def test_lookup(self, relation):
        assert relation["color"].is_categorical
        assert relation["size"].is_numerical

    def test_unknown_attribute(self, relation):
        with pytest.raises(KeyError):
            relation["nope"]

    def test_names_order(self, relation):
        assert relation.names == ["color", "size"]

    def test_arity(self, relation):
        assert relation.arity == 2 and len(relation) == 2

    def test_contains(self, relation):
        assert "color" in relation and "nope" not in relation

    def test_index_of(self, relation):
        assert relation.index_of("size") == 1

    def test_project(self, relation):
        assert relation.project(["size"]).names == ["size"]

    def test_reorder(self, relation):
        assert relation.reorder(["size", "color"]).names == ["size", "color"]

    def test_reorder_requires_permutation(self, relation):
        with pytest.raises(ValueError):
            relation.reorder(["size"])

    def test_duplicate_names_rejected(self):
        attr = Attribute("a", CategoricalDomain(["x"]))
        with pytest.raises(ValueError):
            Relation([attr, attr])

    def test_log2_domain_size(self, relation):
        expected = np.log2(3) + np.log2(relation["size"].domain.size)
        assert relation.log2_domain_size() == pytest.approx(expected)


class TestTable:
    def test_from_rows_encodes(self, table):
        assert table.column("color").tolist() == [0, 1, 2, 0]

    def test_len(self, table):
        assert len(table) == 4 and table.n == 4

    def test_row_and_decoded_row(self, table):
        assert table.row(1)["color"] == 1
        assert table.decoded_row(1) == {"color": "green", "size": 20.0}

    def test_take(self, table):
        sub = table.take([2, 0])
        assert sub.column("size").tolist() == [30.0, 10.0]

    def test_take_is_a_copy(self, table):
        sub = table.take([0])
        sub.column("size")[0] = 999.0
        assert table.column("size")[0] == 10.0

    def test_head(self, table):
        assert table.head(2).n == 2

    def test_project(self, table):
        proj = table.project(["size"])
        assert proj.relation.names == ["size"]
        assert proj.n == 4

    def test_copy_independent(self, table):
        dup = table.copy()
        dup.column("color")[0] = 2
        assert table.column("color")[0] == 0

    def test_matrix(self, table):
        m = table.matrix()
        assert m.shape == (4, 2)
        assert m[0].tolist() == [0.0, 10.0]

    def test_missing_column_rejected(self, relation):
        with pytest.raises(ValueError):
            Table(relation, {"color": np.array([0])})

    def test_extra_column_rejected(self, relation):
        with pytest.raises(ValueError):
            Table(relation, {"color": np.array([0]),
                             "size": np.array([1.0]),
                             "bogus": np.array([1])})

    def test_ragged_columns_rejected(self, relation):
        with pytest.raises(ValueError):
            Table(relation, {"color": np.array([0, 1]),
                             "size": np.array([1.0])})

    def test_domain_validation(self, relation):
        with pytest.raises(ValueError):
            Table(relation, {"color": np.array([7]),
                             "size": np.array([1.0])})

    def test_empty_canvas(self, relation):
        empty = Table.empty(relation, 5)
        assert empty.n == 5
        assert empty.column("size").tolist() == [0.0] * 5

    def test_csv_roundtrip(self, table, tmp_path):
        path = str(tmp_path / "t.csv")
        table.to_csv(path)
        back = Table.from_csv(table.relation, path)
        assert back.column("color").tolist() == table.column("color").tolist()
        np.testing.assert_allclose(back.column("size"),
                                   table.column("size"))

    def test_csv_header_mismatch(self, table, relation, tmp_path):
        path = str(tmp_path / "t.csv")
        with open(path, "w") as f:
            f.write("wrong,header\n")
        with pytest.raises(ValueError):
            Table.from_csv(relation, path)


class TestSplit:
    def test_sizes(self, table):
        train, test = train_test_split(table, 0.25, seed=1)
        assert test.n == 1 and train.n == 3

    def test_aligned_across_tables(self, table):
        other = table.copy()
        train_a, test_a = train_test_split(table, 0.25, seed=7)
        train_b, test_b = train_test_split(other, 0.25, seed=7)
        assert test_a.column("size").tolist() == test_b.column("size").tolist()

    def test_bad_fraction(self, table):
        with pytest.raises(ValueError):
            train_test_split(table, 0.0)
        with pytest.raises(ValueError):
            train_test_split(table, 1.0)

    def test_degenerate_split(self, relation):
        tiny = Table.from_rows(relation, [["red", 1.0]])
        with pytest.raises(ValueError):
            train_test_split(tiny, 0.5)
