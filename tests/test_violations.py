"""Violation-counting engine tests, including brute-force cross-checks
and hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import (
    DenialConstraint, count_violations, candidate_violation_counts,
    incremental_violations, multi_candidate_violation_counts, parse_dc,
    violating_pair_percentage, violating_pairs, violation_matrix,
)
from repro.datasets import load
from repro.constraints.predicate import TUPLE_I, TUPLE_J
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def small_relation():
    return Relation([
        Attribute("a", NumericalDomain(0, 5, integer=True, bins=6)),
        Attribute("b", NumericalDomain(0, 5, integer=True, bins=6)),
        Attribute("c", CategoricalDomain(["x", "y", "z"])),
    ])


def make_table(rows):
    return Table.from_rows(small_relation(), rows, encoded=True)


FD = parse_dc("not(ti.c == tj.c and ti.a != tj.a)", name="fd")
ORDER = parse_dc("not(ti.a > tj.a and ti.b < tj.b)", name="ord")
UNARY = parse_dc("not(ti.a > 3 and ti.b < 2)", name="un")


def brute_force_pairs(dc, table):
    """O(n^2) reference implementation of unordered-pair counting."""
    cols = {a: table.column(a) for a in dc.attributes}
    count = 0
    for i in range(table.n):
        for j in range(i + 1, table.n):
            for x, y in ((i, j), (j, i)):
                ok = all(
                    p.evaluate(lambda var, attr:
                               cols[attr][x] if var == TUPLE_I
                               else cols[attr][y])
                    for p in dc.predicates)
                if ok:
                    count += 1
                    break
    return count


class TestCountViolations:
    def test_fd_simple(self):
        t = make_table([[1, 0, 0], [2, 0, 0], [1, 0, 1]])
        # rows 0,1 share c=0 but differ in a -> 1 violating pair.
        assert count_violations(FD, t) == 1

    def test_fd_matches_brute_force(self):
        rng = np.random.default_rng(0)
        rows = np.column_stack([rng.integers(0, 4, 40),
                                rng.integers(0, 4, 40),
                                rng.integers(0, 3, 40)])
        t = make_table(rows.tolist())
        assert count_violations(FD, t) == brute_force_pairs(FD, t)

    def test_order_matches_brute_force(self):
        rng = np.random.default_rng(1)
        rows = np.column_stack([rng.integers(0, 4, 30),
                                rng.integers(0, 4, 30),
                                rng.integers(0, 3, 30)])
        t = make_table(rows.tolist())
        assert count_violations(ORDER, t) == brute_force_pairs(ORDER, t)

    def test_unary(self):
        t = make_table([[4, 0, 0], [4, 3, 0], [1, 0, 0]])
        assert count_violations(UNARY, t) == 1

    def test_no_violations(self):
        t = make_table([[1, 1, 0], [1, 1, 1], [1, 1, 2]])
        assert count_violations(FD, t) == 0
        assert count_violations(ORDER, t) == 0

    def test_percentage(self):
        t = make_table([[1, 0, 0], [2, 0, 0], [1, 0, 1], [1, 0, 2]])
        pct = violating_pair_percentage(FD, t)
        assert pct == pytest.approx(100.0 / 6)

    def test_percentage_unary(self):
        t = make_table([[4, 0, 0], [1, 0, 0]])
        assert violating_pair_percentage(UNARY, t) == pytest.approx(50.0)

    def test_percentage_tiny_table(self):
        t = make_table([[1, 0, 0]])
        assert violating_pair_percentage(FD, t) == 0.0

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                              st.integers(0, 2)),
                    min_size=2, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force(self, rows):
        t = make_table([list(r) for r in rows])
        for dc in (FD, ORDER):
            assert count_violations(dc, t) == brute_force_pairs(dc, t)


class TestIncremental:
    def test_chain_decomposition_sums_to_total(self):
        """Eqn. (3): sum_i |V(phi, t_i | D_:i)| == |V(phi, D)|."""
        rng = np.random.default_rng(2)
        rows = np.column_stack([rng.integers(0, 4, 25),
                                rng.integers(0, 4, 25),
                                rng.integers(0, 3, 25)])
        t = make_table(rows.tolist())
        for dc in (FD, ORDER):
            cols = {a: t.column(a) for a in dc.attributes}
            total = sum(
                incremental_violations(
                    dc, {a: cols[a][i] for a in dc.attributes},
                    {a: cols[a][:i] for a in dc.attributes})
                for i in range(t.n))
            assert total == count_violations(dc, t)

    def test_unary_incremental(self):
        row = {"a": 5, "b": 0}
        assert incremental_violations(UNARY, row, {}) == 1
        assert incremental_violations(UNARY, {"a": 1, "b": 0}, {}) == 0


class TestCandidateCounts:
    def test_fd_candidates(self):
        t = make_table([[1, 0, 0], [2, 0, 1]])
        prefix = {a: t.column(a) for a in FD.attributes}
        counts = candidate_violation_counts(
            FD, "a", np.array([1, 2, 3]), {"c": 0}, prefix)
        # Prefix has c=0 -> a=1 and c=1 -> a=2; new tuple has c=0.
        assert counts.tolist() == [0, 1, 1]

    def test_empty_prefix(self):
        counts = candidate_violation_counts(
            FD, "a", np.array([1, 2]), {"c": 0}, {})
        assert counts.tolist() == [0, 0]

    def test_multi_candidate(self):
        t = make_table([[1, 1, 0]])
        prefix = {a: t.column(a) for a in FD.attributes}
        counts = multi_candidate_violation_counts(
            FD, {"a": np.array([1, 2]), "c": np.array([0, 0])}, {}, prefix)
        assert counts.tolist() == [0, 1]

    def test_multi_candidate_ragged_rejected(self):
        with pytest.raises(ValueError):
            multi_candidate_violation_counts(
                FD, {"a": np.array([1, 2]), "c": np.array([0])}, {}, {})

    def test_consistency_with_incremental(self):
        rng = np.random.default_rng(3)
        rows = np.column_stack([rng.integers(0, 4, 20),
                                rng.integers(0, 4, 20),
                                rng.integers(0, 3, 20)])
        t = make_table(rows.tolist())
        cols = {a: t.column(a) for a in ORDER.attributes}
        i = 15
        row = {a: cols[a][i] for a in ORDER.attributes}
        prefix = {a: cols[a][:i] for a in ORDER.attributes}
        single = incremental_violations(ORDER, row, prefix)
        vec = candidate_violation_counts(
            ORDER, "a", np.array([row["a"]]),
            {k: v for k, v in row.items() if k != "a"}, prefix)
        assert vec[0] == single


class TestViolationMatrix:
    def test_shape_and_symmetry(self):
        t = make_table([[1, 0, 0], [2, 0, 0], [3, 3, 1]])
        m = violation_matrix(t, [FD, ORDER])
        assert m.shape == (3, 2)
        # FD: rows 0 and 1 each participate in the single violation.
        assert m[0, 0] == 1 and m[1, 0] == 1 and m[2, 0] == 0

    def test_row_sums_double_count_pairs(self):
        rng = np.random.default_rng(4)
        rows = np.column_stack([rng.integers(0, 3, 30),
                                rng.integers(0, 3, 30),
                                rng.integers(0, 2, 30)])
        t = make_table(rows.tolist())
        m = violation_matrix(t, [FD])
        # Every violating pair contributes to exactly two rows.
        assert m[:, 0].sum() == 2 * count_violations(FD, t)

    def test_unary_column(self):
        t = make_table([[4, 0, 0], [1, 1, 0]])
        m = violation_matrix(t, [UNARY])
        assert m[:, 0].tolist() == [1.0, 0.0]


class TestViolatingPairs:
    def _table(self):
        rel = Relation([
            Attribute("g", CategoricalDomain(["a", "b"])),
            Attribute("v", NumericalDomain(0, 9, integer=True)),
        ])
        # Rows 0 and 2 share g with different v; row 3 has v > 8.
        return Table(rel, {"g": np.array([0, 1, 0, 1]),
                           "v": np.array([1.0, 2.0, 3.0, 9.0])})

    def test_binary_pairs_sorted_and_complete(self):
        table = self._table()
        fd = DenialConstraint.fd("fd", "g", "v")
        pairs = violating_pairs(fd, table)
        assert pairs == [(0, 2), (1, 3)]
        assert len(pairs) == count_violations(fd, table)

    def test_unary_pairs_are_singletons(self):
        table = self._table()
        dc = parse_dc("not(ti.v > 8)", name="u", relation=table.relation)
        assert violating_pairs(dc, table) == [(3,)]

    def test_limit_truncates(self):
        table = self._table()
        fd = DenialConstraint.fd("fd", "g", "v")
        assert violating_pairs(fd, table, limit=1) == [(0, 2)]
        assert violating_pairs(fd, table, limit=0) == []

    def test_limit_validation(self):
        table = self._table()
        fd = DenialConstraint.fd("fd", "g", "v")
        with pytest.raises(ValueError):
            violating_pairs(fd, table, limit=-1)

    def test_matches_count_on_dataset(self):
        dataset = load("br2000", n=80, seed=0)
        for dc in dataset.dcs:
            pairs = violating_pairs(dc, dataset.table)
            assert len(pairs) == count_violations(dc, dataset.table)
            assert all(a < b for a, b in pairs)
            assert len(set(pairs)) == len(pairs)
