"""Evaluation-metric and harness tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import load
from repro.evaluation import (
    METHODS, classification_report, dc_violation_report,
    marginal_distances, run_method, total_variation_distance,
    train_on_synthetic_test_on_true,
)
from repro.evaluation.harness import format_table, make_synthesizer
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


@pytest.fixture(scope="module")
def adult_small():
    return load("adult", n=220, seed=0)


class TestTvd:
    def setup_method(self):
        self.relation = Relation([
            Attribute("c", CategoricalDomain(["a", "b"])),
            Attribute("x", NumericalDomain(0, 10)),
        ])
        self.table = Table.from_rows(self.relation, [
            ["a", 1.0], ["a", 2.0], ["b", 8.0], ["b", 9.0],
        ])

    def test_identity_is_zero(self):
        assert total_variation_distance(self.table, self.table,
                                        ("c",)) == 0.0
        assert total_variation_distance(self.table, self.table,
                                        ("c", "x")) == 0.0

    def test_disjoint_is_large(self):
        other = Table.from_rows(self.relation, [
            ["b", 1.0], ["b", 1.0], ["b", 1.0], ["b", 1.0],
        ])
        assert total_variation_distance(self.table, other,
                                        ("c",)) == pytest.approx(0.5)

    def test_l1_mode_geq_max_mode(self):
        other = Table.from_rows(self.relation, [
            ["a", 5.0], ["b", 5.0], ["b", 5.0], ["b", 5.0],
        ])
        d_max = total_variation_distance(self.table, other, ("c", "x"))
        d_l1 = total_variation_distance(self.table, other, ("c", "x"),
                                        mode="l1")
        assert d_l1 >= d_max

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            total_variation_distance(self.table, self.table, ("c",),
                                     mode="huh")

    def test_marginal_distances_counts(self):
        out1 = marginal_distances(self.table, self.table, alpha=1)
        assert len(out1) == 2
        out2 = marginal_distances(self.table, self.table, alpha=2)
        assert len(out2) == 1
        assert all(d == 0.0 for _, d in out1 + out2)

    def test_marginal_sampling(self, adult_small):
        out = marginal_distances(adult_small.table, adult_small.table,
                                 alpha=2, max_sets=5)
        assert len(out) == 5

    @given(st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_bounded_01(self, seed):
        rng = np.random.default_rng(seed)
        a = Table(self.relation, {
            "c": rng.integers(0, 2, 30), "x": rng.uniform(0, 10, 30)})
        b = Table(self.relation, {
            "c": rng.integers(0, 2, 30), "x": rng.uniform(0, 10, 30)})
        d = total_variation_distance(a, b, ("c", "x"))
        assert 0.0 <= d <= 1.0


class TestModelTrainingMetric:
    def test_truth_scores_high(self, adult_small):
        scores = train_on_synthetic_test_on_true(
            adult_small.table, adult_small.table, "income")
        assert scores["accuracy"] > 0.7

    def test_garbage_synth_scores_low(self, adult_small):
        rng = np.random.default_rng(0)
        cols = {}
        for attr in adult_small.relation:
            if attr.is_categorical:
                cols[attr.name] = rng.integers(0, attr.domain.size,
                                               adult_small.n)
            else:
                cols[attr.name] = attr.domain.clip(
                    rng.uniform(attr.domain.low, attr.domain.high,
                                adult_small.n))
        garbage = Table(adult_small.relation, cols)
        truth = train_on_synthetic_test_on_true(
            adult_small.table, adult_small.table, "income")
        noise = train_on_synthetic_test_on_true(
            adult_small.table, garbage, "income")
        assert noise["accuracy"] <= truth["accuracy"] + 0.05

    def test_degenerate_labels_handled(self, adult_small):
        constant = adult_small.table.copy()
        constant.column("income")[:] = 0
        scores = train_on_synthetic_test_on_true(
            adult_small.table, constant, "income")
        assert 0.0 <= scores["accuracy"] <= 1.0

    def test_report_shape(self, adult_small):
        rows = classification_report(adult_small.table, adult_small.table,
                                     targets=["income", "sex"])
        assert [r["target"] for r in rows] == ["income", "sex"]
        assert all(0 <= r["f1"] <= 1 for r in rows)


class TestHarness:
    def test_methods_list(self):
        assert set(METHODS) == {"DP-VAE", "NIST", "PrivBayes",
                                "PATE-GAN", "Kamino"}

    def test_unknown_method(self, adult_small):
        with pytest.raises(KeyError):
            make_synthesizer("nope", adult_small, 1.0)

    def test_run_method_returns_table_and_time(self, adult_small):
        table, secs = run_method("PrivBayes", adult_small, epsilon=1.0,
                                 seed=0, n=60)
        assert table.n == 60 and secs >= 0

    def test_violation_report(self, adult_small):
        table, _ = run_method("PrivBayes", adult_small, epsilon=1.0,
                              seed=0, n=80)
        rows = dc_violation_report(adult_small.dcs, adult_small.table,
                                   {"PrivBayes": table})
        assert len(rows) == len(adult_small.dcs)
        assert all("truth" in r and "PrivBayes" in r for r in rows)
        assert all(r["truth"] == 0.0 for r in rows)

    def test_format_table(self):
        text = format_table([{"dc": "x", "truth": 0.1234}],
                            ["dc", "truth"])
        assert "x" in text and "0.123" in text
