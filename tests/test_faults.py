"""Chaos tests: the fault-injection harness and every recovery path.

The :mod:`repro.faults` injector turns "what if the worker dies / the
disk fills / the artifact rots" into deterministic, assertable events.
This suite proves each recovery path the ISSUE names:

* a killed process-pool worker degrades the draw to the thread pool —
  bit-identical output, a ``pool_broken`` trace counter, a warning;
* a killed row-engine subprocess retries in-process — bit-identical;
* an interrupted streamed draw (in-process error or a killed CLI
  subprocess) never leaves a truncated file at ``--out``;
* corrupt or truncated model artifacts raise a typed
  :class:`ModelFormatError` naming the file and failing section, and
  atomic saves never clobber a good artifact with a partial one.
"""

import logging
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro.faults as faults
from repro.core.kamino import FittedKamino, Kamino
from repro.core.model_io import ModelFormatError, atomic_savez
from repro.core.sampling import PrefixScanRequired
from repro.datasets import load
from repro.faults import FaultInjected, FaultSpec, parse_spec
from repro.io.dc_text import save_dcs
from repro.io.schema_json import save_relation
from repro.io.stream import write_table_stream
from repro.obs import RunTrace

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


# ----------------------------------------------------------------------
# Shared fitted artifact (expensive: built once per module)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos")
    ds = load("tpch", n=60, seed=0)

    def cap(params):
        params.iterations = min(params.iterations, 6)

    fitted = Kamino(ds.relation, ds.dcs, epsilon=1.0, seed=0,
                    params_override=cap).fit(ds.table)
    paths = {
        "model": str(root / "model.npz"),
        "schema": str(root / "schema.json"),
        "dcs": str(root / "dcs.txt"),
    }
    fitted.save(paths["model"])
    save_relation(ds.relation, paths["schema"])
    save_dcs(ds.dcs, paths["dcs"], relation=ds.relation)
    return {"dataset": ds, "fitted": fitted, **paths}


# ----------------------------------------------------------------------
# The injector itself
# ----------------------------------------------------------------------
def test_parse_spec_grammar():
    (spec,) = parse_spec("engine.worker=kill")
    assert spec == FaultSpec(site="engine.worker", action="kill")
    (spec,) = parse_spec("registry.load=sleep:0.25")
    assert spec.action == "sleep" and spec.arg == 0.25
    (spec,) = parse_spec("stream.write=enospc@3")
    assert spec.after == 3 and spec.times == 1
    (spec,) = parse_spec("model_io.read=error@2x4")
    assert spec.after == 2 and spec.times == 4
    assert [spec.fires_at(h) for h in (1, 2, 5, 6)] == \
        [False, True, True, False]
    (spec,) = parse_spec("a=errorx*")
    assert spec.fires_at(10 ** 9)
    two = parse_spec("a=error, b=enospc@2")
    assert [s.site for s in two] == ["a", "b"]


def test_parse_spec_rejects_malformed():
    with pytest.raises(ValueError, match="site=action"):
        parse_spec("no-equals-sign")
    with pytest.raises(ValueError, match="unknown action"):
        parse_spec("a=explode")
    with pytest.raises(ValueError, match="sleep needs"):
        parse_spec("a=sleep")


def test_fault_point_is_noop_when_disarmed():
    assert faults.active() is None
    faults.fault_point("anything")  # must not raise or record


def test_injected_context_fires_and_disarms():
    with faults.injected("site.x=error@2") as injector:
        faults.fault_point("site.x")  # hit 1: below @2, no fire
        with pytest.raises(FaultInjected, match="site.x"):
            faults.fault_point("site.x")
        faults.fault_point("site.x")  # hit 3: past the window
        faults.fault_point("site.other")  # unarmed site never fires
    assert faults.active() is None
    assert injector.hits("site.x") == 3
    assert [(r.site, r.action, r.hit) for r in injector.fired] == \
        [("site.x", "error", 2)]


def test_enospc_action_raises_errno():
    import errno

    with faults.injected("disk=enospc"):
        with pytest.raises(OSError) as excinfo:
            faults.fault_point("disk")
    assert excinfo.value.errno == errno.ENOSPC


def test_env_var_arms_injection_in_subprocess():
    env = dict(os.environ, REPRO_FAULTS="x=error", PYTHONPATH=SRC_DIR)
    code = ("import repro.faults as F, sys; "
            "sys.exit(0 if F.active() is not None else 1)")
    assert subprocess.run([sys.executable, "-c", code],
                          env=env).returncode == 0


# ----------------------------------------------------------------------
# Self-healing parallel draws
# ----------------------------------------------------------------------
def test_pool_worker_death_heals_bit_identical(artifacts, caplog):
    """A killed process-pool worker degrades the draw to the thread
    pool: same bytes as workers=1, a pool_broken counter, a warning."""
    ds, model = artifacts["dataset"], artifacts["fitted"]
    reference = model.sample(n=4096, seed=9, workers=1)
    trace = RunTrace(label="chaos")
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        with faults.injected("engine.worker=kill"):
            healed = model.sample(n=4096, seed=9, workers=2,
                                  pool="process", trace=trace)
    for name in ds.relation.names:
        np.testing.assert_array_equal(healed.table.column(name),
                                      reference.table.column(name),
                                      err_msg=name)
    broken = sum(col.counters.get("pool_broken", 0)
                 for sample in trace.samples for col in sample.columns)
    assert broken >= 1
    assert any("worker" in rec.message for rec in caplog.records)


def test_row_subprocess_death_retries_in_process(artifacts, caplog):
    ds, model = artifacts["dataset"], artifacts["fitted"]
    reference = model.sample(n=30, seed=5, engine="row")
    with caplog.at_level(logging.WARNING, logger="repro.engine"):
        with faults.injected("engine.worker=kill"):
            healed = model.sample(n=30, seed=5, engine="row",
                                  pool="process")
    for name in ds.relation.names:
        np.testing.assert_array_equal(healed.table.column(name),
                                      reference.table.column(name),
                                      err_msg=name)
    assert any("retrying" in rec.message for rec in caplog.records)


# ----------------------------------------------------------------------
# Interrupted streamed draws never leave partial files
# ----------------------------------------------------------------------
def test_stream_write_failure_leaves_no_partial_file(artifacts, tmp_path):
    ds, model = artifacts["dataset"], artifacts["fitted"]
    out = tmp_path / "draw.csv"
    with faults.injected("stream.write=error@2"):
        with pytest.raises(FaultInjected):
            write_table_stream(str(out), ds.relation,
                               model.sample_stream(n=48, seed=3,
                                                   chunk_rows=16))
    assert not out.exists()
    assert list(tmp_path.iterdir()) == []  # tmp file cleaned up too


def test_prefix_scan_refusal_leaves_no_partial_file(artifacts, tmp_path):
    """The engine declining a stream (PrefixScanRequired) after a chunk
    already landed still never publishes a truncated file."""
    ds, model = artifacts["dataset"], artifacts["fitted"]
    chunk = model.sample(n=8, seed=0).table

    def declining():
        yield chunk
        raise PrefixScanRequired("this draw needs the sampled prefix")

    out = tmp_path / "draw.csv"
    with pytest.raises(PrefixScanRequired):
        write_table_stream(str(out), ds.relation, declining())
    assert not out.exists()
    assert list(tmp_path.iterdir()) == []


def test_killed_cli_sample_leaves_no_partial_out(artifacts, tmp_path):
    """SIGKILL-grade interruption (os._exit in the fault): the CLI
    process dies mid-stream and --out never appears; a fresh draw then
    matches the single-shot export byte for byte."""
    out = tmp_path / "draw.csv"
    argv = ["sample", artifacts["model"], "--schema", artifacts["schema"],
            "--dcs", artifacts["dcs"], "--out", str(out),
            "--n", "64", "--seed", "3", "--chunk-rows", "16"]
    env = dict(os.environ, REPRO_FAULTS="stream.write=kill@2",
               PYTHONPATH=SRC_DIR)
    proc = subprocess.run([sys.executable, "-m", "repro.cli"] + argv,
                          env=env, capture_output=True)
    assert proc.returncode == 3  # the injected os._exit
    assert not out.exists()

    from repro.cli import main

    assert main(argv) == 0
    assert out.exists()
    ds, model = artifacts["dataset"], artifacts["fitted"]
    single = tmp_path / "single.csv"
    write_table_stream(str(single), ds.relation,
                       iter([model.sample(n=64, seed=3).table]))
    assert out.read_bytes() == single.read_bytes()


# ----------------------------------------------------------------------
# Atomic model saves + typed corruption errors
# ----------------------------------------------------------------------
def test_failed_save_preserves_existing_artifact(artifacts, tmp_path):
    model = artifacts["fitted"]
    path = tmp_path / "model.npz"
    model.save(str(path))
    good = path.read_bytes()
    with faults.injected("model_io.save=error"):
        with pytest.raises(FaultInjected):
            model.save(str(path))
    assert path.read_bytes() == good  # old artifact untouched
    assert list(tmp_path.iterdir()) == [path]  # no tmp litter


def test_truncated_model_raises_typed_error(artifacts, tmp_path):
    ds = artifacts["dataset"]
    path = tmp_path / "model.npz"
    artifacts["fitted"].save(str(path))
    raw = path.read_bytes()
    path.write_bytes(raw[:len(raw) // 2])
    with pytest.raises(ModelFormatError) as excinfo:
        FittedKamino.load(str(path), ds.relation, ds.dcs)
    assert str(path) in str(excinfo.value)
    assert excinfo.value.section  # names what failed to parse


def test_npz_without_metadata_raises_typed_error(artifacts, tmp_path):
    ds = artifacts["dataset"]
    path = tmp_path / "not-a-model.npz"
    np.savez(str(path), stray=np.zeros(3))
    with pytest.raises(ModelFormatError, match="meta.json"):
        FittedKamino.load(str(path), ds.relation, ds.dcs)


def test_garbage_bytes_raise_typed_error(artifacts, tmp_path):
    ds = artifacts["dataset"]
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"\x00\x01\x02 not a zip archive")
    with pytest.raises(ModelFormatError, match="container"):
        FittedKamino.load(str(path), ds.relation, ds.dcs)


def test_corrupt_synth_payload_raises_typed_error(tmp_path):
    from repro.synth import make_synthesizer
    from repro.synth.io import load_payload

    ds = load("tpch", n=60, seed=0)
    fitted = make_synthesizer("privbayes", 1.0, seed=0).fit(ds.table)
    path = tmp_path / "pb.npz"
    fitted.save(str(path))
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 3])
    with pytest.raises(ModelFormatError) as excinfo:
        load_payload(str(path))
    assert str(path) in str(excinfo.value)


def test_missing_model_still_plain_file_not_found(artifacts, tmp_path):
    ds = artifacts["dataset"]
    with pytest.raises(FileNotFoundError):
        FittedKamino.load(str(tmp_path / "absent.npz"), ds.relation,
                          ds.dcs)


def test_atomic_savez_suffixless_path(tmp_path):
    """np.savez appends .npz to bare paths; the atomic writer must
    land on exactly the requested name regardless."""
    target = tmp_path / "checkpoint"  # no suffix
    atomic_savez(str(target), {"a": np.arange(4)})
    assert target.exists()
    with np.load(str(target)) as data:
        np.testing.assert_array_equal(data["a"], np.arange(4))
