"""Tests for Algorithm 4 (sequencing) and the §4.3 structural helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import DenialConstraint, parse_dc
from repro.core import group_small_domains, sequence_attributes
from repro.core.hyper import HyperSpec
from repro.core.sequencing import large_domain_attributes
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def relation_with_sizes(sizes: dict) -> Relation:
    attrs = []
    for name, size in sizes.items():
        attrs.append(Attribute(
            name, CategoricalDomain([f"{name}{i}" for i in range(size)])))
    return Relation(attrs)


class TestSequencing:
    def test_fd_lhs_before_rhs(self):
        rel = relation_with_sizes({"x": 4, "y": 9, "z": 2})
        fd = DenialConstraint.fd("f", "y", "x")
        seq = sequence_attributes(rel, [fd])
        assert seq.index("y") < seq.index("x")

    def test_permutation(self):
        rel = relation_with_sizes({"a": 3, "b": 5, "c": 2})
        seq = sequence_attributes(rel, [])
        assert sorted(seq) == ["a", "b", "c"]

    def test_no_fds_sorted_by_domain(self):
        rel = relation_with_sizes({"big": 9, "small": 2, "mid": 5})
        assert sequence_attributes(rel, []) == ["small", "mid", "big"]

    def test_fds_sorted_by_min_lhs_domain(self):
        rel = relation_with_sizes({"a": 2, "b": 9, "c": 5, "d": 3})
        fd_big = DenialConstraint.fd("big", "b", "c")    # lhs domain 9
        fd_small = DenialConstraint.fd("small", "a", "d")  # lhs domain 2
        seq = sequence_attributes(rel, [fd_big, fd_small])
        assert seq.index("a") < seq.index("b")

    def test_composite_lhs_sorted_by_size(self):
        rel = relation_with_sizes({"p": 7, "q": 2, "y": 4})
        fd = DenialConstraint.fd("f", ["p", "q"], "y")
        seq = sequence_attributes(rel, [fd])
        assert seq.index("q") < seq.index("p") < seq.index("y")

    def test_non_fd_dcs_ignored_for_order(self):
        rel = relation_with_sizes({"a": 3, "b": 5})
        order = parse_dc("not(ti.a > tj.a and ti.b < tj.b)", "o")
        assert sequence_attributes(rel, [order]) == ["a", "b"]


class TestGrouping:
    def test_groups_adjacent_small(self):
        rel = relation_with_sizes({"a": 2, "b": 2, "c": 2, "d": 50})
        groups = group_small_domains(rel, ["a", "b", "c", "d"],
                                     max_group_domain=8)
        assert groups == [["a", "b", "c"], ["d"]]

    def test_respects_cap(self):
        rel = relation_with_sizes({"a": 4, "b": 4, "c": 4})
        groups = group_small_domains(rel, ["a", "b", "c"],
                                     max_group_domain=16)
        assert groups == [["a", "b"], ["c"]]

    def test_numerical_breaks_group(self):
        rel = Relation([
            Attribute("a", CategoricalDomain(["0", "1"])),
            Attribute("x", NumericalDomain(0, 10)),
            Attribute("b", CategoricalDomain(["0", "1"])),
        ])
        groups = group_small_domains(rel, ["a", "x", "b"], 8)
        assert groups == [["a"], ["x"], ["b"]]

    def test_partition_covers_sequence(self):
        rel = relation_with_sizes({"a": 2, "b": 3, "c": 7, "d": 2})
        seq = ["b", "a", "d", "c"]
        groups = group_small_domains(rel, seq, 12)
        flat = [x for g in groups for x in g]
        assert flat == seq

    def test_large_domain_attributes(self):
        rel = relation_with_sizes({"zip": 2000, "city": 400, "s": 2})
        assert large_domain_attributes(rel, 1000) == ["zip"]
        assert large_domain_attributes(rel, 100) == ["zip", "city"]


class TestHyperSpec:
    def _spec(self):
        rel = relation_with_sizes({"a": 2, "b": 3, "c": 5})
        return rel, HyperSpec(rel, [["a", "b"], ["c"]])

    def test_working_relation(self):
        rel, spec = self._spec()
        assert spec.working_sequence == ["a+b", "c"]
        assert spec.working_relation["a+b"].domain.size == 6

    def test_is_hyper(self):
        _, spec = self._spec()
        assert spec.is_hyper("a+b") and not spec.is_hyper("c")
        assert spec.original_attrs("a+b") == ["a", "b"]
        assert spec.original_attrs("c") == ["c"]

    def test_encode_decode_roundtrip(self):
        rel, spec = self._spec()
        rng = np.random.default_rng(0)
        table = Table(rel, {
            "a": rng.integers(0, 2, 30),
            "b": rng.integers(0, 3, 30),
            "c": rng.integers(0, 5, 30),
        })
        working = spec.encode_table(table)
        back = spec.decode_table(working, rel)
        for name in rel.names:
            assert np.array_equal(back.column(name), table.column(name))

    def test_code_roundtrip_all_values(self):
        _, spec = self._spec()
        codes = np.arange(6)
        members = spec.decode_codes("a+b", codes)
        again = spec.encode_codes("a+b", members)
        assert np.array_equal(again, codes)

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 2),
                              st.integers(0, 4)), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, rows):
        rel, spec = self._spec()
        a, b, c = (np.array(x) for x in zip(*rows))
        table = Table(rel, {"a": a, "b": b, "c": c})
        back = spec.decode_table(spec.encode_table(table), rel)
        for name in rel.names:
            assert np.array_equal(back.column(name), table.column(name))

    def test_trivial_spec(self):
        rel, _ = self._spec()
        spec = HyperSpec.trivial(rel, ["a", "b", "c"])
        assert spec.working_sequence == ["a", "b", "c"]
        assert not any(spec.is_hyper(w) for w in spec.working_sequence)
