"""Crash-safe checkpointed fits (:mod:`repro.core.checkpoint`).

The acceptance criterion: a fit killed after **any** budget-consuming
phase resumes from its checkpoint bit-identical to an uninterrupted fit
— same model arrays, same weights, same draws — and the
:class:`~repro.synth.ledger.BudgetLedger` shows the already-spent
epsilon as *resumed*, never re-spent.  Interruption is injected with
:mod:`repro.faults` (``fit.<stage>=error`` fires right after the
stage's checkpoint lands), so every kill point is deterministic.
"""

import os

import numpy as np
import pytest

import repro.faults as faults
from repro.core.checkpoint import (
    STAGES, FitCheckpoint, fit_key, table_digest,
)
from repro.core.kamino import Kamino, KaminoConfig
from repro.datasets import load
from repro.faults import FaultInjected
from repro.synth.ledger import BudgetLedger


def _cap(params):
    params.iterations = min(params.iterations, 6)


def _make(ds, epsilon=1.0):
    return Kamino(ds.relation, ds.dcs, epsilon=epsilon, seed=0,
                  params_override=_cap)


@pytest.fixture(scope="module")
def ds():
    return load("tpch", n=60, seed=0)


@pytest.fixture(scope="module")
def reference(ds):
    """The uninterrupted fit every resumed fit must match bit for bit."""
    return _make(ds).fit(ds.table)


def _assert_identical(fitted, reference, ds):
    assert fitted.weights == reference.weights
    assert fitted.sampling_state == reference.sampling_state
    assert fitted.params.achieved_epsilon == \
        reference.params.achieved_epsilon
    a = fitted.sample(n=50, seed=7)
    b = reference.sample(n=50, seed=7)
    for name in ds.relation.names:
        np.testing.assert_array_equal(a.table.column(name),
                                      b.table.column(name), err_msg=name)


# ----------------------------------------------------------------------
# The acceptance criterion: kill after each phase, resume bit-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stage", STAGES)
def test_kill_after_each_stage_resumes_bit_identical(ds, reference,
                                                     stage, tmp_path):
    ckdir = str(tmp_path / "ck")
    with faults.injected(f"fit.{stage}=error"):
        with pytest.raises(FaultInjected):
            _make(ds).fit(ds.table, checkpoint_dir=ckdir)
    assert os.path.exists(os.path.join(ckdir, f"ckpt-{stage}.npz"))

    fitted = _make(ds).fit(ds.table, checkpoint_dir=ckdir)
    assert fitted.resumed_from == stage
    _assert_identical(fitted, reference, ds)

    # Budget accounting: epsilon spent before the kill is recorded as
    # resumed, never re-spent; the ledger total is still the full bill.
    ledger = fitted.ledger
    assert ledger is not None
    assert ledger.total_epsilon() == \
        pytest.approx(reference.params.achieved_epsilon)
    if stage in ("dp_sgd", "weights"):
        assert ledger.fresh_epsilon() == 0.0  # training already paid
    else:
        assert ledger.fresh_epsilon() == \
            pytest.approx(ledger.total_epsilon())

    # The completed fit supersedes its checkpoints.
    assert [n for n in os.listdir(ckdir) if n.startswith("ckpt-")] == []


def test_uninterrupted_checkpointed_fit_matches_plain(ds, reference,
                                                      tmp_path):
    fitted = _make(ds).fit(ds.table, checkpoint_dir=str(tmp_path / "ck"))
    assert fitted.resumed_from is None
    assert fitted.ledger.fresh_epsilon() == \
        pytest.approx(fitted.ledger.total_epsilon())
    _assert_identical(fitted, reference, ds)


def test_checkpoint_from_other_config_never_resumes(ds, tmp_path):
    """A different budget means a different fit key: the stale
    checkpoint is ignored and the fit runs fresh end to end."""
    ckdir = str(tmp_path / "ck")
    with faults.injected("fit.dp_sgd=error"):
        with pytest.raises(FaultInjected):
            _make(ds).fit(ds.table, checkpoint_dir=ckdir)
    fitted = _make(ds, epsilon=2.0).fit(ds.table, checkpoint_dir=ckdir)
    assert fitted.resumed_from is None
    assert fitted.ledger.fresh_epsilon() == \
        pytest.approx(fitted.ledger.total_epsilon())


def test_corrupted_checkpoint_falls_back_to_older_stage(ds, reference,
                                                        tmp_path):
    """A truncated newest checkpoint is skipped (digest mismatch) and
    resume picks up from the next-older valid stage — still
    bit-identical, with the lost stage honestly re-spent."""
    ckdir = str(tmp_path / "ck")
    with faults.injected("fit.dp_sgd=error"):
        with pytest.raises(FaultInjected):
            _make(ds).fit(ds.table, checkpoint_dir=ckdir)
    newest = os.path.join(ckdir, "ckpt-dp_sgd.npz")
    raw = open(newest, "rb").read()
    with open(newest, "wb") as handle:
        handle.write(raw[: len(raw) // 2])

    fitted = _make(ds).fit(ds.table, checkpoint_dir=ckdir)
    assert fitted.resumed_from == "params"
    _assert_identical(fitted, reference, ds)
    # The dp_sgd checkpoint was lost, so its epsilon really was
    # re-spent against the instance — the ledger must say so.
    assert fitted.ledger.fresh_epsilon() == \
        pytest.approx(fitted.ledger.total_epsilon())


# ----------------------------------------------------------------------
# Keys and formats
# ----------------------------------------------------------------------
def test_fit_key_binds_config_table_and_weights(ds):
    other = load("tpch", n=50, seed=1)
    cfg = KaminoConfig(epsilon=1.0, seed=0)
    base = fit_key(cfg, ds.table)
    assert fit_key(cfg, ds.table) == base  # deterministic
    assert fit_key(KaminoConfig(epsilon=2.0, seed=0), ds.table) != base
    assert fit_key(cfg, other.table) != base
    assert fit_key(cfg, ds.table,
                   known_weights={"dc0": 1.5}) != base


def test_table_digest_tracks_content(ds):
    other = load("tpch", n=50, seed=1)
    assert table_digest(ds.table) == table_digest(ds.table)
    assert table_digest(ds.table) != table_digest(other.table)


def test_load_latest_rejects_foreign_key(ds, tmp_path):
    ckdir = str(tmp_path / "ck")
    with faults.injected("fit.params=error"):
        with pytest.raises(FaultInjected):
            _make(ds).fit(ds.table, checkpoint_dir=ckdir)
    assert FitCheckpoint(ckdir, "0" * 64).load_latest(ds.relation) is None


def test_empty_directory_resumes_nothing(ds, tmp_path):
    ck = FitCheckpoint(str(tmp_path), fit_key(KaminoConfig(epsilon=1.0),
                                              ds.table))
    assert ck.load_latest(ds.relation) is None


# ----------------------------------------------------------------------
# Ledger semantics
# ----------------------------------------------------------------------
def test_ledger_resumed_spends_roundtrip():
    ledger = BudgetLedger()
    ledger.spend("m1", 0.5, 1e-6)
    ledger.spend("m2", 0.25, resumed=True)
    assert ledger.total_epsilon() == pytest.approx(0.75)
    assert ledger.fresh_epsilon() == pytest.approx(0.5)
    assert "[resumed]" in ledger.summary()
    again = BudgetLedger.from_dict(ledger.to_dict())
    assert again.total_epsilon() == pytest.approx(0.75)
    assert again.fresh_epsilon() == pytest.approx(0.5)


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_fit_checkpoint_resume(ds, tmp_path, capsys):
    from repro.cli import main
    from repro.io import save_bundle

    bundle = tmp_path / "bundle"
    save_bundle(str(bundle), ds.table, ds.dcs)
    model = tmp_path / "model.npz"
    ckdir = tmp_path / "ck"
    argv = ["fit", str(bundle), "--epsilon", "1.0", "--seed", "0",
            "--max-iterations", "6", "--out", str(model),
            "--checkpoint-dir", str(ckdir)]
    with faults.injected("fit.dp_sgd=error"):
        with pytest.raises(FaultInjected):
            main(argv)
    assert not model.exists()
    assert (ckdir / "ckpt-dp_sgd.npz").exists()

    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "resumed from checkpoint" in out
    assert "dp_sgd" in out
    assert model.exists()
