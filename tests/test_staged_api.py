"""Tests for the staged fit/sample API.

Pins the redesign's contract: ``KaminoConfig`` validation and the
back-compat constructor shim, ``fit()`` + ``FittedKamino.sample()``
bit-identical to the fused ``fit_sample`` across private / non-private
/ grouped / FD-lookup / AR configurations, and sample-many semantics
(any size, any seed, no retraining).
"""

import math

import numpy as np
import pytest

from repro.constraints import count_violations
from repro.core import FittedKamino, Kamino, KaminoConfig
from repro.core.kamino import KaminoResult
from repro.datasets import load


def _cap(params):
    params.iterations = min(params.iterations, 10)
    params.embed_dim = 6


def _assert_tables_equal(a, b):
    assert a.relation.names == b.relation.names
    for name in a.relation.names:
        np.testing.assert_array_equal(a.column(name), b.column(name),
                                      err_msg=name)


# ----------------------------------------------------------------------
# KaminoConfig
# ----------------------------------------------------------------------
def test_config_is_frozen():
    cfg = KaminoConfig(epsilon=1.0)
    with pytest.raises(AttributeError):
        cfg.epsilon = 2.0


def test_config_defaults_match_paper():
    cfg = KaminoConfig(epsilon=1.0)
    assert cfg.delta == 1e-6
    assert cfg.large_domain_threshold == 1000
    assert cfg.group_max_domain is None
    assert cfg.use_violation_index and not cfg.use_fd_lookup
    assert cfg.constraint_aware_sampling
    assert cfg.weight_estimator == "matrix"
    assert cfg.private


def test_config_validation():
    with pytest.raises(ValueError, match="epsilon"):
        KaminoConfig(epsilon=0.0)
    with pytest.raises(ValueError, match="epsilon"):
        KaminoConfig(epsilon=-1.0)
    with pytest.raises(ValueError, match="delta"):
        KaminoConfig(epsilon=1.0, delta=0.0)
    with pytest.raises(ValueError, match="delta"):
        KaminoConfig(epsilon=1.0, delta=1.5)
    with pytest.raises(ValueError, match="group_max_domain"):
        KaminoConfig(epsilon=1.0, group_max_domain=1)
    with pytest.raises(ValueError, match="large_domain_threshold"):
        KaminoConfig(epsilon=1.0, large_domain_threshold=0)
    with pytest.raises(ValueError, match="weight_estimator"):
        KaminoConfig(epsilon=1.0, weight_estimator="bogus")
    with pytest.raises(ValueError, match="params_override"):
        KaminoConfig(epsilon=1.0, params_override="not callable")


def test_config_infinite_epsilon_is_non_private():
    cfg = KaminoConfig(epsilon=math.inf)
    assert not cfg.private


def test_config_replace_revalidates():
    cfg = KaminoConfig(epsilon=1.0)
    assert cfg.replace(seed=5).seed == 5
    assert cfg.replace(seed=5) is not cfg
    with pytest.raises(ValueError):
        cfg.replace(epsilon=-3.0)


# ----------------------------------------------------------------------
# Kamino constructor shim
# ----------------------------------------------------------------------
def test_kamino_accepts_config_object():
    ds = load("tpch", n=20, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=3, use_fd_lookup=True)
    kam = Kamino(ds.relation, ds.dcs, config=cfg)
    assert kam.config is cfg
    assert kam.seed == 3 and kam.use_fd_lookup


def test_kamino_kwargs_shim_builds_config():
    ds = load("tpch", n=20, seed=0)
    kam = Kamino(ds.relation, ds.dcs, 1.0, seed=3, use_fd_lookup=True)
    assert kam.config == KaminoConfig(epsilon=1.0, seed=3,
                                      use_fd_lookup=True)


def test_kamino_rejects_epsilon_and_config_together():
    ds = load("tpch", n=20, seed=0)
    cfg = KaminoConfig(epsilon=1.0)
    with pytest.raises(TypeError, match="config"):
        Kamino(ds.relation, ds.dcs, 1.0, config=cfg)
    with pytest.raises(TypeError, match="epsilon"):
        Kamino(ds.relation, ds.dcs)


def test_kamino_rejects_knobs_alongside_config():
    """No knob is silently dropped when config= is given."""
    ds = load("tpch", n=20, seed=0)
    cfg = KaminoConfig(epsilon=1.0)
    with pytest.raises(TypeError, match="seed"):
        Kamino(ds.relation, ds.dcs, config=cfg, seed=5)
    with pytest.raises(TypeError, match="use_fd_lookup"):
        Kamino(ds.relation, ds.dcs, config=cfg, use_fd_lookup=True)


def test_kamino_attribute_writes_rederive_config():
    ds = load("tpch", n=20, seed=0)
    kam = Kamino(ds.relation, ds.dcs, 1.0)
    kam.use_fd_lookup = True
    kam.params_override = _cap
    assert kam.config.use_fd_lookup
    assert kam.config.params_override is _cap
    with pytest.raises(ValueError):
        kam.epsilon = -1.0  # writes revalidate


# ----------------------------------------------------------------------
# fit_sample == fit().sample() equivalence
# ----------------------------------------------------------------------
def _fused_vs_staged(kamino_a, kamino_b, table, **kw):
    fused = kamino_a.fit_sample(table, **kw)
    staged = kamino_b.fit(table).sample(kw.get("n"))
    _assert_tables_equal(fused.table, staged.table)
    assert fused.sequence == staged.sequence
    assert fused.weights == staged.weights
    return fused, staged


def test_fused_equals_staged_private():
    ds = load("tpch", n=100, seed=0)
    make = lambda: Kamino(ds.relation, ds.dcs, 1.0, seed=0,  # noqa: E731
                          params_override=_cap)
    _fused_vs_staged(make(), make(), ds.table)


def test_fused_equals_staged_non_private():
    ds = load("tpch", n=100, seed=0)
    make = lambda: Kamino(ds.relation, ds.dcs, math.inf,  # noqa: E731
                          seed=1, params_override=_cap)
    _fused_vs_staged(make(), make(), ds.table, n=60)


def test_fused_equals_staged_fd_lookup():
    ds = load("tpch", n=100, seed=0)
    make = lambda: Kamino(ds.relation, ds.dcs, 1.0, seed=2,  # noqa: E731
                          use_fd_lookup=True, params_override=_cap)
    _fused_vs_staged(make(), make(), ds.table)


def test_fused_equals_staged_grouped():
    ds = load("br2000", n=80, seed=0)
    make = lambda: Kamino(ds.relation, ds.dcs, 1.0, seed=0,  # noqa: E731
                          group_max_domain=128, params_override=_cap)
    fused, staged = _fused_vs_staged(make(), make(), ds.table)
    assert any("+" in w for w in fused.model.sequence)


def test_fused_equals_staged_ar():
    ds = load("tpch", n=100, seed=0)
    make = lambda: Kamino(ds.relation, ds.dcs, 1.0, seed=3,  # noqa: E731
                          params_override=_cap)
    fused = make().fit_sample_ar(ds.table, max_tries=40)
    staged = make().fit(ds.table).sample_ar(max_tries=40)
    _assert_tables_equal(fused.table, staged.table)


def test_fused_equals_staged_known_weights():
    ds = load("adult", n=120, seed=0)
    weights = {dc.name: 4.0 for dc in ds.dcs if not dc.hard}
    make = lambda: Kamino(ds.relation, ds.dcs, 1.0, seed=4,  # noqa: E731
                          params_override=_cap)
    fused = make().fit_sample(ds.table, n=50, weights=weights)
    staged = make().fit(ds.table, weights=weights).sample(50)
    _assert_tables_equal(fused.table, staged.table)


# ----------------------------------------------------------------------
# FittedKamino sampling semantics
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted_tpch():
    ds = load("tpch", n=100, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    return ds, Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)


def test_default_draws_are_repeatable(fitted_tpch):
    _, fitted = fitted_tpch
    _assert_tables_equal(fitted.sample().table, fitted.sample().table)


def test_seeded_draws_differ_and_are_deterministic(fitted_tpch):
    ds, fitted = fitted_tpch
    a = fitted.sample(seed=1).table
    b = fitted.sample(seed=2).table
    assert any(not np.array_equal(a.column(c), b.column(c))
               for c in ds.relation.names)
    _assert_tables_equal(a, fitted.sample(seed=1).table)


def test_sample_many_sizes_without_refit(fitted_tpch):
    ds, fitted = fitted_tpch
    for n, seed in ((30, 7), (150, 8)):
        result = fitted.sample(n=n, seed=seed)
        assert result.table.n == n
        for attr in ds.relation:
            assert attr.domain.validate_column(result.table.column(attr.name))
        for dc in ds.dcs:
            assert count_violations(dc, result.table) == 0


def test_sample_result_carries_fit_context(fitted_tpch):
    _, fitted = fitted_tpch
    result = fitted.sample(n=20, seed=0)
    assert isinstance(result, KaminoResult)
    assert result.model is fitted.model
    assert result.hyper is fitted.hyper
    assert result.sequence == fitted.sequence
    assert set(result.timings) == {"Seq.", "Tra.", "DC.W.", "Sam."}
    # Draws must not mutate the stored fit timings.
    assert "Sam." not in fitted.fit_timings


def test_fit_does_not_sample(fitted_tpch):
    _, fitted = fitted_tpch
    assert "Sam." not in fitted.fit_timings
    assert fitted.sampling_state is not None
    assert fitted.default_n == 100


def test_sample_ar_produces_valid_rows(fitted_tpch):
    ds, fitted = fitted_tpch
    result = fitted.sample_ar(n=40, seed=11, max_tries=40)
    assert result.table.n == 40
    for attr in ds.relation:
        assert attr.domain.validate_column(result.table.column(attr.name))


def test_constraint_ablation_respected():
    ds = load("tpch", n=60, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap,
                       constraint_aware_sampling=False)
    fitted = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)
    # The ablation draws i.i.d. tuples; just check it runs and sizes.
    assert fitted.sample(n=25, seed=0).table.n == 25
