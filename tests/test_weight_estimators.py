"""Tests for the two soft-DC weight estimators and the sigma_w backoff."""

import math

import numpy as np
import pytest

from repro.constraints.dc import DenialConstraint
from repro.constraints.parser import parse_dc
from repro.core import KaminoParams, learn_dc_weights, search_dp_params
from repro.core.sequencing import sequence_attributes
from repro.datasets import load
from repro.privacy.sensitivity import capped_indicator_sensitivity
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


def _params(**kwargs):
    defaults = dict(epsilon=1.0, delta=1e-6, n=200, k=3,
                    learn_weights=True, L_w=50, sigma_w=0.3,
                    weight_init=5.0, weight_max=10.0)
    defaults.update(kwargs)
    return KaminoParams(**defaults)


def _toy():
    """Two soft DCs over a 200-row table: one never violated, one
    violated by most tuples."""
    rng = np.random.default_rng(0)
    relation = Relation([
        Attribute("g", CategoricalDomain(["a", "b", "c", "d"])),
        Attribute("x", NumericalDomain(0, 100, integer=True, bins=16)),
        Attribute("y", NumericalDomain(0, 100, integer=True, bins=16)),
    ])
    g = rng.integers(0, 4, 200)
    x = rng.integers(0, 101, 200).astype(float)
    table = Table(relation, {"g": g, "x": x, "y": x.copy()})
    clean = parse_dc("not(ti.x > tj.x and ti.y < tj.y)", name="clean",
                     hard=False, relation=relation)  # y == x: no violations
    dirty = parse_dc("not(ti.g != tj.g and ti.x <= tj.x)", name="dirty",
                     hard=False, relation=relation)  # rampant
    return relation, table, [clean, dirty]


# ----------------------------------------------------------------------
# Capped estimator
# ----------------------------------------------------------------------
def test_capped_sensitivity_formula():
    assert capped_indicator_sensitivity(3, 50) == \
        pytest.approx(math.sqrt(150))
    with pytest.raises(ValueError):
        capped_indicator_sensitivity(-1, 50)
    with pytest.raises(ValueError):
        capped_indicator_sensitivity(3, 0)


def test_capped_nonprivate_separates_clean_from_dirty():
    relation, table, dcs = _toy()
    seq = sequence_attributes(relation, dcs)
    weights = learn_dc_weights(table, dcs, seq, _params(),
                               np.random.default_rng(1), private=False,
                               estimator="capped")
    # The clean DC gets the (finite) ceiling log(2 L_w); the dirty DC
    # drops to the log(2) floor.
    assert weights["clean"] > weights["dirty"]
    assert weights["clean"] == pytest.approx(math.log(2 * 50))
    assert weights["dirty"] == pytest.approx(math.log(2.0))


def test_capped_weights_never_zero():
    """The 0.5 rate cap keeps every soft weight at >= log 2 even under
    heavy noise — a noise-driven zero would disable the constraint."""
    relation, table, dcs = _toy()
    seq = sequence_attributes(relation, dcs)
    for seed in range(5):
        weights = learn_dc_weights(
            table, dcs, seq, _params(sigma_w=5.0),
            np.random.default_rng(seed), private=True,
            estimator="capped")
        for dc in dcs:
            assert weights[dc.name] >= math.log(2.0) - 1e-12


def test_capped_respects_weight_max():
    relation, table, dcs = _toy()
    seq = sequence_attributes(relation, dcs)
    weights = learn_dc_weights(table, dcs, seq,
                               _params(weight_max=1.0, L_w=200),
                               np.random.default_rng(1), private=False,
                               estimator="capped")
    assert all(w <= 1.0 for name, w in weights.items())


def test_hard_dcs_still_infinite_under_capped():
    relation, table, dcs = _toy()
    hard = DenialConstraint.fd("hard_fd", "g", "x", hard=True)
    seq = sequence_attributes(relation, dcs + [hard])
    weights = learn_dc_weights(table, dcs + [hard], seq, _params(),
                               np.random.default_rng(0), private=False,
                               estimator="capped")
    assert math.isinf(weights["hard_fd"])


def test_unknown_estimator_rejected():
    relation, table, dcs = _toy()
    seq = sequence_attributes(relation, dcs)
    with pytest.raises(ValueError, match="unknown estimator"):
        learn_dc_weights(table, dcs, seq, _params(),
                         np.random.default_rng(0), estimator="magic")


def test_matrix_estimator_defaults_to_prior_under_heavy_noise():
    """The documented graceful degradation: with sigma_w large, the
    matrix fit's gradients vanish and weights stay at weight_init."""
    relation, table, dcs = _toy()
    seq = sequence_attributes(relation, dcs)
    weights = learn_dc_weights(table, dcs, seq, _params(sigma_w=15.0),
                               np.random.default_rng(2), private=True,
                               estimator="matrix")
    for dc in dcs:
        assert weights[dc.name] == pytest.approx(5.0)


def test_matrix_nonprivate_downweights_mildly_dirty():
    """The paper's objective only moves weights where exp(-w v) is not
    underflowed, i.e. for *mildly* violated DCs (v of a few).  A unary
    DC violated by half the tuples (v = 1 per violating row) sees its
    weight decay below a clean DC's."""
    rng = np.random.default_rng(0)
    relation = Relation([
        Attribute("x", NumericalDomain(0, 100, integer=True, bins=16)),
        Attribute("y", NumericalDomain(0, 100, integer=True, bins=16)),
    ])
    x = rng.integers(0, 101, 200).astype(float)
    table = Table(relation, {"x": x, "y": x.copy()})
    clean = parse_dc("not(ti.x > 200)", name="clean", hard=False,
                     relation=relation)          # never violated
    dirty = parse_dc("not(ti.x >= 50)", name="dirty", hard=False,
                     relation=relation)          # ~half the rows
    seq = sequence_attributes(relation, [clean, dirty])
    weights = learn_dc_weights(table, [clean, dirty], seq,
                               _params(weight_init=2.0),
                               np.random.default_rng(1), private=False,
                               estimator="matrix")
    assert weights["dirty"] < weights["clean"]
    assert weights["clean"] == pytest.approx(2.0)  # zero gradient


# ----------------------------------------------------------------------
# sigma_w backoff in the parameter search
# ----------------------------------------------------------------------
def test_search_backs_off_sigma_w():
    relation, table, dcs = _toy()
    seq = sequence_attributes(relation, dcs)
    params = search_dp_params(1.0, 1e-6, relation, seq, n=600,
                              learn_weights=True)
    # sigma_w ends well below the sigma_g search ceiling (it used to be
    # dragged to ~15 by the priority loop).
    assert params.sigma_w < 5.0
    achieved, _ = params.accounted_epsilon()
    assert achieved <= 1.0 + 1e-9


def test_search_without_weights_ignores_sigma_w():
    relation, table, dcs = _toy()
    seq = sequence_attributes(relation, dcs)
    params = search_dp_params(1.0, 1e-6, relation, seq, n=600,
                              learn_weights=False)
    achieved, _ = params.accounted_epsilon()
    assert achieved <= 1.0 + 1e-9
