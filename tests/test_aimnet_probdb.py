"""AimNet discriminative model + probabilistic database tests."""

import math

import numpy as np
import pytest

from repro.aimnet import AimNet, EmbeddingStore
from repro.constraints import DenialConstraint, parse_dc
from repro.nn import gradcheck
from repro.nn.losses import cross_entropy_loss
from repro.probdb import ProbabilisticDatabase, chain_log_potential, log_potential
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


@pytest.fixture
def relation():
    return Relation([
        Attribute("c1", CategoricalDomain(["a", "b", "c"])),
        Attribute("x1", NumericalDomain(0, 10)),
        Attribute("y_cat", CategoricalDomain(["p", "q"])),
        Attribute("y_num", NumericalDomain(0, 100)),
    ])


class TestAimNet:
    def test_categorical_forward_shapes(self, relation):
        rng = np.random.default_rng(0)
        model = AimNet(relation, ["c1", "x1"], "y_cat", 6, rng)
        batch = {"c1": np.array([0, 1, 2]), "x1": np.array([1.0, 5.0, 9.0])}
        logits = model.forward(batch)
        assert logits.shape == (3, 2)
        probs = model.predict_proba(batch)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_numerical_forward_shapes(self, relation):
        rng = np.random.default_rng(0)
        model = AimNet(relation, ["c1"], "y_num", 6, rng)
        mu, sigma = model.predict_gaussian({"c1": np.array([0, 1])})
        assert mu.shape == (2,) and sigma.shape == (2,)
        assert (sigma > 0).all()

    def test_full_gradcheck_categorical(self, relation):
        rng = np.random.default_rng(1)
        model = AimNet(relation, ["c1", "x1"], "y_cat", 4, rng)
        batch = {"c1": np.array([0, 2]), "x1": np.array([2.0, 8.0])}
        targets = np.array([0, 1])

        def loss():
            logits = model.forward(batch)
            losses, _ = cross_entropy_loss(logits, targets)
            return losses.sum()

        model.zero_grad()
        model.loss_backward(batch, targets, per_sample=True)
        gradcheck(loss, model.parameters())

    def test_full_gradcheck_numerical(self, relation):
        rng = np.random.default_rng(2)
        model = AimNet(relation, ["c1"], "y_num", 4, rng)
        batch = {"c1": np.array([0, 1, 2])}
        targets = np.array([10.0, 50.0, 90.0])

        def loss():
            from repro.nn.losses import gaussian_nll_loss
            mu, ls = model.forward(batch)
            losses, _, _ = gaussian_nll_loss(
                mu, ls, model.standardize_target(targets))
            return losses.sum()

        model.zero_grad()
        model.loss_backward(batch, targets, per_sample=True)
        gradcheck(loss, model.parameters())

    def test_store_shares_encoders(self, relation):
        rng = np.random.default_rng(3)
        store = EmbeddingStore(4, rng)
        m1 = AimNet(relation, ["c1"], "y_cat", 4, rng, store=store)
        m2 = AimNet(relation, ["c1", "y_cat"], "y_num", 4, rng, store=store)
        assert m1.encoders["c1"] is m2.encoders["c1"]
        # The target embedding of m1 is reused as context in m2.
        assert m1.target_embedding is m2.encoders["y_cat"]

    def test_learns_deterministic_mapping(self, relation):
        """Non-private training should learn y_cat = f(c1) well."""
        rng = np.random.default_rng(4)
        model = AimNet(relation, ["c1"], "y_cat", 8, rng)
        from repro.nn.optim import Adam
        opt = Adam(model.parameters(), lr=0.05)
        c1 = rng.integers(0, 3, 400)
        y = (c1 >= 1).astype(np.int64)  # a -> p, b/c -> q
        for _ in range(150):
            opt.zero_grad()
            model.loss_backward({"c1": c1}, y)
            for p in model.parameters():
                p.grad /= c1.shape[0]
            opt.step()
        probs = model.predict_proba({"c1": np.array([0, 1, 2])})
        assert probs[0, 0] > 0.85
        assert probs[1, 1] > 0.85 and probs[2, 1] > 0.85

    def test_validation(self, relation):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AimNet(relation, [], "y_cat", 4, rng)
        with pytest.raises(ValueError):
            AimNet(relation, ["y_cat"], "y_cat", 4, rng)
        model = AimNet(relation, ["c1"], "y_cat", 4, rng)
        with pytest.raises(ValueError):
            model.predict_gaussian({"c1": np.array([0])})
        num = AimNet(relation, ["c1"], "y_num", 4, rng)
        with pytest.raises(ValueError):
            num.predict_proba({"c1": np.array([0])})

    def test_attention_weights_expose(self, relation):
        rng = np.random.default_rng(5)
        model = AimNet(relation, ["c1", "x1"], "y_cat", 4, rng)
        w = model.attention_weights({"c1": np.array([0]),
                                     "x1": np.array([5.0])})
        assert w.shape == (1, 2)
        np.testing.assert_allclose(w.sum(), 1.0)


def tiny_table():
    relation = Relation([
        Attribute("g", CategoricalDomain(["u", "v"])),
        Attribute("h", NumericalDomain(0, 5, integer=True, bins=6)),
    ])
    return Table.from_rows(relation, [
        ["u", 1], ["u", 1], ["v", 2], ["v", 3],
    ])


class TestProbDb:
    def test_log_potential_zero_when_clean(self):
        t = tiny_table()
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
        clean = t.take([0, 1])
        assert log_potential(clean, [fd], {"fd": 2.0}) == 0.0

    def test_log_potential_counts_weighted(self):
        t = tiny_table()
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
        # rows 2,3 share g=v with h 2 != 3 -> one violation.
        assert log_potential(t, [fd], {"fd": 2.0}) == pytest.approx(-2.0)

    def test_hard_dc_infinite(self):
        t = tiny_table()
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
        assert log_potential(t, [fd], {"fd": math.inf}) == -math.inf

    def test_chain_equals_direct(self):
        """Eqn. (3)/(4): tuple-incremental accumulation is exact."""
        rng = np.random.default_rng(0)
        relation = tiny_table().relation
        rows = [[int(rng.integers(0, 2)), int(rng.integers(0, 6))]
                for _ in range(20)]
        t = Table.from_rows(relation, rows, encoded=True)
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
        order = parse_dc("not(ti.h > tj.h and ti.g != tj.g)", "ord")
        weights = {"fd": 1.5, "ord": 0.5}
        assert chain_log_potential(t, [fd, order], weights) == pytest.approx(
            log_potential(t, [fd, order], weights))

    def test_more_likely_prefers_consistent(self):
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
        pdb = ProbabilisticDatabase(lambda t: np.zeros(t.n), [fd],
                                    {"fd": 3.0})
        t = tiny_table()
        clean = t.take([0, 1])        # no violations
        dirty = t.take([2, 3])        # one violation
        assert pdb.more_likely(clean, dirty)

    def test_missing_weight_rejected(self):
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
        with pytest.raises(ValueError):
            ProbabilisticDatabase(lambda t: np.zeros(t.n), [fd], {})

    def test_log_score_combines_tuple_model(self):
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd")
        pdb = ProbabilisticDatabase(lambda t: np.full(t.n, -1.0), [fd],
                                    {"fd": 2.0})
        t = tiny_table()
        assert pdb.log_score(t) == pytest.approx(-4.0 - 2.0)
