"""Tests for DC-set normalization and minimization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import count_violations
from repro.constraints.algebra import (
    dc_signature,
    fd_closure,
    implied_fd,
    is_trivial,
    minimize_dcs,
)
from repro.constraints.dc import DenialConstraint
from repro.constraints.parser import parse_dc
from repro.constraints.predicate import (
    CONST, Operator, Predicate, TUPLE_I, TUPLE_J,
)
from repro.schema.domain import CategoricalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


# ----------------------------------------------------------------------
# Signatures
# ----------------------------------------------------------------------
def test_signature_ignores_predicate_order():
    a = parse_dc("not(ti.x == tj.x and ti.y != tj.y)")
    b = parse_dc("not(ti.y != tj.y and ti.x == tj.x)")
    assert dc_signature(a) == dc_signature(b)


def test_signature_folds_ij_renaming():
    a = parse_dc("not(ti.x == tj.x and ti.y > tj.y)")
    b = parse_dc("not(tj.x == ti.x and tj.y > ti.y)")
    assert dc_signature(a) == dc_signature(b)


def test_signature_orients_order_predicates():
    a = parse_dc("not(ti.y > tj.y)")
    b = parse_dc("not(tj.y < ti.y)")
    assert dc_signature(a) == dc_signature(b)


def test_signature_distinguishes_direction():
    a = parse_dc("not(ti.x > tj.x and ti.y < tj.y)")
    b = parse_dc("not(ti.x > tj.x and ti.y > tj.y)")
    assert dc_signature(a) != dc_signature(b)


def test_signature_distinguishes_constants():
    a = parse_dc("not(ti.x > 5)")
    b = parse_dc("not(ti.x > 6)")
    assert dc_signature(a) != dc_signature(b)


# ----------------------------------------------------------------------
# Triviality
# ----------------------------------------------------------------------
def test_self_comparison_is_trivial():
    dc = DenialConstraint("t", [Predicate(TUPLE_I, "x", Operator.NE,
                                          TUPLE_I, "x")])
    assert is_trivial(dc)


def test_contradictory_pair_is_trivial():
    dc = parse_dc("not(ti.x == tj.x and ti.x != tj.x)")
    assert is_trivial(dc)


def test_contradictory_order_pair_is_trivial():
    dc = parse_dc("not(ti.x > tj.x and ti.x <= tj.x)")
    assert is_trivial(dc)


def test_real_fd_is_not_trivial():
    assert not is_trivial(parse_dc("not(ti.x == tj.x and ti.y != tj.y)"))


def test_self_equality_not_trivial():
    # ti.x == ti.x always holds; it does not make the DC unviolatable
    # (the *other* predicates still can all hold).
    dc = parse_dc("not(ti.x == ti.x and ti.y > 5)")
    assert not is_trivial(dc)


# ----------------------------------------------------------------------
# FD closure / implication
# ----------------------------------------------------------------------
def test_fd_closure_transitivity():
    fds = [(("a",), "b"), (("b",), "c")]
    assert fd_closure({"a"}, fds) == {"a", "b", "c"}


def test_fd_closure_composite_determinant():
    fds = [(("a", "b"), "c")]
    assert fd_closure({"a"}, fds) == {"a"}
    assert fd_closure({"a", "b"}, fds) == {"a", "b", "c"}


def test_implied_fd_reflexivity():
    assert implied_fd(("a", "b"), "a", [])


def test_implied_fd_augmentation():
    # a -> c implies (a, b) -> c.
    assert implied_fd(("a", "b"), "c", [(("a",), "c")])


def test_implied_fd_negative():
    assert not implied_fd(("a",), "c", [(("b",), "c")])


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
def test_minimize_drops_duplicates():
    dcs = [parse_dc("not(ti.x == tj.x and ti.y != tj.y)", name="a"),
           parse_dc("not(tj.y != ti.y and tj.x == ti.x)", name="b")]
    out = minimize_dcs(dcs)
    assert [dc.name for dc in out] == ["a"]


def test_minimize_prefers_hard_over_soft_duplicate():
    soft = parse_dc("not(ti.x == tj.x and ti.y != tj.y)", name="soft",
                    hard=False)
    hard = parse_dc("not(ti.x == tj.x and ti.y != tj.y)", name="hard",
                    hard=True)
    out = minimize_dcs([soft, hard])
    assert len(out) == 1 and out[0].hard


def test_minimize_drops_trivial():
    dcs = [parse_dc("not(ti.x != ti.x)", name="trivial"),
           parse_dc("not(ti.x == tj.x and ti.y != tj.y)", name="real")]
    assert [dc.name for dc in minimize_dcs(dcs)] == ["real"]


def test_minimize_drops_transitively_implied_fd():
    dcs = [DenialConstraint.fd("ab", "a", "b"),
           DenialConstraint.fd("bc", "b", "c"),
           DenialConstraint.fd("ac", "a", "c")]   # implied by ab + bc
    out = minimize_dcs(dcs)
    assert sorted(dc.name for dc in out) == ["ab", "bc"]


def test_minimize_drops_augmented_fd():
    dcs = [DenialConstraint.fd("ab", "a", "b"),
           DenialConstraint.fd("wide", ("a", "c"), "b")]  # implied
    out = minimize_dcs(dcs)
    assert [dc.name for dc in out] == ["ab"]


def test_minimize_keeps_soft_fds_even_if_implied():
    dcs = [DenialConstraint.fd("ab", "a", "b", hard=True),
           DenialConstraint.fd("bc", "b", "c", hard=True),
           DenialConstraint.fd("ac", "a", "c", hard=False)]
    out = minimize_dcs(dcs)
    assert sorted(dc.name for dc in out) == ["ab", "ac", "bc"]


def test_minimize_keeps_order_dcs():
    dcs = [parse_dc("not(ti.x > tj.x and ti.y < tj.y)", name="ord"),
           DenialConstraint.fd("ab", "a", "b")]
    out = minimize_dcs(dcs)
    assert sorted(dc.name for dc in out) == ["ab", "ord"]


def test_minimize_is_idempotent():
    dcs = [DenialConstraint.fd("ab", "a", "b"),
           DenialConstraint.fd("bc", "b", "c"),
           DenialConstraint.fd("ac", "a", "c"),
           parse_dc("not(ti.x > tj.x and ti.y < tj.y)", name="ord")]
    once = minimize_dcs(dcs)
    twice = minimize_dcs(once)
    assert [dc.name for dc in once] == [dc.name for dc in twice]


# ----------------------------------------------------------------------
# Semantic safety: minimization never changes the violation semantics
# of hard-FD sets (property test against brute-force counting)
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=30, deadline=None)
def test_minimized_set_has_same_zero_violation_verdict(data):
    names = ["a", "b", "c", "d"]
    relation = Relation([
        Attribute(n, CategoricalDomain([f"{n}{i}" for i in range(3)]))
        for n in names
    ])
    n_fds = data.draw(st.integers(1, 5))
    fds = []
    for f in range(n_fds):
        det = data.draw(st.sampled_from(names))
        dep = data.draw(st.sampled_from([n for n in names if n != det]))
        fds.append(DenialConstraint.fd(f"fd{f}", det, dep, hard=True))
    minimized = minimize_dcs(fds)
    assert len(minimized) <= len(fds)

    n = data.draw(st.integers(0, 8))
    cols = {m: np.asarray(data.draw(st.lists(
        st.integers(0, 2), min_size=n, max_size=n)), dtype=np.int64)
        for m in names}
    table = Table(relation, cols)
    # A table satisfies the full set iff it satisfies the minimized set.
    full_clean = all(count_violations(dc, table) == 0 for dc in fds)
    mini_clean = all(count_violations(dc, table) == 0 for dc in minimized)
    assert full_clean == mini_clean
