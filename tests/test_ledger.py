"""Tests for the privacy-budget ledger."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KaminoParams
from repro.privacy import kamino_epsilon, rdp_gaussian, sgm_epsilon
from repro.privacy.ledger import (
    BudgetExceededError,
    LedgerEntry,
    PrivacyLedger,
)


def test_empty_ledger_spends_nothing():
    ledger = PrivacyLedger(delta=1e-6)
    assert ledger.spent_epsilon() == 0.0
    assert len(ledger) == 0


def test_single_gaussian_matches_direct_conversion():
    ledger = PrivacyLedger(delta=1e-6)
    ledger.record_gaussian("hist", sigma=2.0)
    eps, alpha = ledger.spent()
    # Same as converting the Gaussian RDP curve directly.
    from repro.privacy import rdp_to_epsilon
    expected, expected_alpha = rdp_to_epsilon(
        lambda a: rdp_gaussian(2.0, a), 1e-6)
    assert eps == pytest.approx(expected)
    assert alpha == expected_alpha


def test_single_sgm_matches_sgm_epsilon():
    ledger = PrivacyLedger(delta=1e-5)
    ledger.record_sgm("dpsgd", q=0.01, sigma=1.2, steps=500)
    assert ledger.spent_epsilon() == pytest.approx(
        sgm_epsilon(1e-5, 0.01, 1.2, 500))


def test_composition_is_tighter_than_epsilon_sum():
    """RDP composition of two identical releases costs less than twice
    one release's epsilon (the reason the ledger stores curves)."""
    ledger = PrivacyLedger(delta=1e-6)
    ledger.record_gaussian("a", sigma=3.0)
    one = ledger.spent_epsilon()
    ledger.record_gaussian("b", sigma=3.0)
    two = ledger.spent_epsilon()
    assert one < two < 2 * one


def test_composition_is_monotone_in_entries():
    ledger = PrivacyLedger(delta=1e-6)
    previous = 0.0
    for i in range(5):
        ledger.record_gaussian(f"g{i}", sigma=2.0)
        current = ledger.spent_epsilon()
        assert current > previous
        previous = current


def test_record_kamino_matches_kamino_epsilon():
    params = KaminoParams(epsilon=1.0, delta=1e-6, n=1000, k=5,
                          sigma_g=2.0, sigma_d=1.3, batch=16,
                          iterations=50)
    ledger = PrivacyLedger(delta=1e-6)
    ledger.record_kamino("run", params)
    expected, _ = kamino_epsilon(
        1e-6, sigma_g=2.0, sigma_d=1.3, T=50, k=5, b=16, n=1000)
    assert ledger.spent_epsilon() == pytest.approx(expected)


def test_record_kamino_rejects_non_private_params():
    params = KaminoParams(epsilon=math.inf, delta=1e-6, n=100, k=3)
    ledger = PrivacyLedger(delta=1e-6)
    with pytest.raises(ValueError, match="non-private"):
        ledger.record_kamino("run", params)


def test_charge_respects_budget():
    ledger = PrivacyLedger(delta=1e-6, budget_epsilon=1.0)
    ledger.charge("ok", lambda a: rdp_gaussian(8.0, a))
    with pytest.raises(BudgetExceededError):
        ledger.charge("too big", lambda a: rdp_gaussian(0.5, a))
    # The refused entry was not recorded.
    assert len(ledger) == 1
    assert ledger.remaining() > 0


def test_remaining_never_negative():
    ledger = PrivacyLedger(delta=1e-6, budget_epsilon=0.5)
    ledger.record_gaussian("big", sigma=0.6)  # over budget via record_*
    assert ledger.remaining() == 0.0


def test_remaining_requires_budget():
    ledger = PrivacyLedger(delta=1e-6)
    with pytest.raises(ValueError, match="budget_epsilon"):
        ledger.remaining()


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        PrivacyLedger(delta=0.0)
    with pytest.raises(ValueError):
        PrivacyLedger(delta=1e-6, budget_epsilon=-1.0)
    with pytest.raises(ValueError):
        PrivacyLedger(delta=1e-6, alphas=[1, 2])
    ledger = PrivacyLedger(delta=1e-6)
    with pytest.raises(ValueError):
        ledger.record_gaussian("x", sigma=1.0, count=0)
    with pytest.raises(ValueError):
        ledger.record_sgm("x", q=0.1, sigma=1.0, steps=0)
    with pytest.raises(ValueError, match="finite"):
        ledger.record_rdp("x", lambda a: math.inf)


def test_composed_rdp_requires_grid_alpha():
    ledger = PrivacyLedger(delta=1e-6, alphas=[2, 4, 8])
    ledger.record_gaussian("g", sigma=1.0)
    assert ledger.composed_rdp(4) == pytest.approx(rdp_gaussian(1.0, 4))
    with pytest.raises(ValueError, match="not on the ledger grid"):
        ledger.composed_rdp(3)


def test_save_load_round_trip(tmp_path):
    ledger = PrivacyLedger(delta=1e-6, budget_epsilon=4.0)
    ledger.record_gaussian("hist", sigma=2.0)
    ledger.record_sgm("sgd", q=0.05, sigma=1.1, steps=100)
    path = tmp_path / "ledger.json"
    ledger.save(str(path))
    back = PrivacyLedger.load(str(path))
    assert back.delta == ledger.delta
    assert back.budget_epsilon == 4.0
    assert len(back) == 2
    assert back.spent_epsilon() == pytest.approx(ledger.spent_epsilon())
    assert isinstance(back.entries[0], LedgerEntry)


def test_from_dict_rejects_bad_format():
    with pytest.raises(ValueError, match="unsupported ledger format"):
        PrivacyLedger.from_dict({"format": "nope"})


def test_summary_mentions_every_entry_and_total():
    ledger = PrivacyLedger(delta=1e-6, budget_epsilon=10.0)
    ledger.record_gaussian("first", sigma=2.0)
    ledger.record_gaussian("second", sigma=3.0)
    text = ledger.summary()
    assert "first" in text and "second" in text
    assert "TOTAL" in text and "remaining" in text


@given(sigmas=st.lists(st.floats(0.5, 20.0), min_size=1, max_size=6))
@settings(max_examples=25, deadline=None)
def test_property_composition_order_invariant(sigmas):
    """Composed epsilon does not depend on recording order."""
    forward = PrivacyLedger(delta=1e-6)
    backward = PrivacyLedger(delta=1e-6)
    for i, s in enumerate(sigmas):
        forward.record_gaussian(f"f{i}", sigma=s)
    for i, s in enumerate(reversed(sigmas)):
        backward.record_gaussian(f"b{i}", sigma=s)
    assert forward.spent_epsilon() == pytest.approx(
        backward.spent_epsilon())


@given(sigma=st.floats(0.5, 20.0), count=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_property_count_equals_repeated_entries(sigma, count):
    """record_gaussian(count=k) == k separate single entries."""
    bulk = PrivacyLedger(delta=1e-6)
    bulk.record_gaussian("bulk", sigma=sigma, count=count)
    single = PrivacyLedger(delta=1e-6)
    for i in range(count):
        single.record_gaussian(f"s{i}", sigma=sigma)
    assert bulk.spent_epsilon() == pytest.approx(single.spent_epsilon())
