"""Tests for the FD index and approximate DC discovery."""

import numpy as np

from repro.constraints import FDIndex, discover_dcs, extract_fds
from repro.constraints.dc import DenialConstraint
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


class TestFDIndex:
    def test_record_and_lookup(self):
        idx = FDIndex(("x",), "y")
        idx.record({"x": 1, "y": 9}, 9)
        assert idx.forced_value({"x": 1}) == 9
        assert idx.forced_value({"x": 2}) is None

    def test_first_writer_wins(self):
        idx = FDIndex(("x",), "y")
        idx.record({"x": 1}, 9)
        idx.record({"x": 1}, 7)
        assert idx.forced_value({"x": 1}) == 9

    def test_composite_determinant(self):
        idx = FDIndex(("x", "z"), "y")
        idx.record({"x": 1, "z": 2}, 5)
        assert idx.forced_value({"x": 1, "z": 2}) == 5
        assert idx.forced_value({"x": 1, "z": 3}) is None

    def test_rebuild(self):
        idx = FDIndex(("x",), "y")
        cols = {"x": np.array([1, 1, 2]), "y": np.array([9, 9, 4])}
        idx.rebuild(cols, upto=3)
        assert idx.forced_value({"x": 2}) == 4
        assert len(idx) == 2
        idx.rebuild(cols, upto=0)
        assert len(idx) == 0

    def test_extract_fds(self):
        fd = DenialConstraint.fd("f", ["a"], "b")
        order = DenialConstraint("o", fd.predicates[:1])  # not FD-shaped
        found = extract_fds([fd, order])
        assert len(found) == 1
        assert found[0][0] == ("a",) and found[0][1] == "b"


class TestDiscovery:
    def _table_with_fd(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        relation = Relation([
            Attribute("g", CategoricalDomain([f"v{i}" for i in range(5)])),
            Attribute("h", CategoricalDomain([f"w{i}" for i in range(5)])),
            Attribute("x", NumericalDomain(0, 50, integer=True, bins=16)),
            Attribute("y", NumericalDomain(0, 50, integer=True, bins=16)),
        ])
        g = rng.integers(0, 5, n)
        h = g.copy()                      # exact FD g -> h (and h -> g)
        x = rng.integers(0, 25, n)
        y = x * 2                         # exact monotone pair
        return Table(relation, {"g": g, "h": h, "x": x, "y": y})

    def test_finds_planted_fd(self):
        table = self._table_with_fd()
        dcs = discover_dcs(table, max_violation_rate=0.0, limit=100)
        fd_pairs = {dc.as_fd() for dc in dcs if dc.as_fd()}
        assert (("g",), "h") in fd_pairs

    def test_finds_planted_order(self):
        table = self._table_with_fd()
        dcs = discover_dcs(table, max_violation_rate=0.0, limit=100)
        orders = [dc.as_conditional_order() for dc in dcs
                  if dc.as_conditional_order()]
        assert ([], "x", "y") in orders or ([], "y", "x") in orders

    def test_respects_limit(self):
        table = self._table_with_fd()
        dcs = discover_dcs(table, max_violation_rate=50.0, limit=7)
        assert len(dcs) <= 7

    def test_all_soft(self):
        table = self._table_with_fd()
        assert all(not dc.hard
                   for dc in discover_dcs(table, limit=5))

    def test_sorted_cleanest_first(self):
        table = self._table_with_fd()
        from repro.constraints import violating_pair_percentage
        dcs = discover_dcs(table, max_violation_rate=50.0, limit=50,
                           sample_size=100)
        rates = [violating_pair_percentage(dc, table.head(100))
                 for dc in dcs]
        assert rates == sorted(rates)
