"""Unit tests for predicates, DCs, and the parser."""

import numpy as np
import pytest

from repro.constraints import DenialConstraint, Operator, Predicate, parse_dc
from repro.constraints.dc import active_dc_map
from repro.constraints.parser import DCParseError
from repro.constraints.predicate import CONST, TUPLE_I, TUPLE_J
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation,
)


@pytest.fixture
def relation():
    return Relation([
        Attribute("edu", CategoricalDomain(["HS", "BS", "MS"])),
        Attribute("num", NumericalDomain(0, 20, integer=True)),
        Attribute("gain", NumericalDomain(0, 100)),
        Attribute("loss", NumericalDomain(0, 100)),
    ])


class TestOperator:
    def test_apply(self):
        assert Operator.EQ.apply(1, 1)
        assert Operator.NE.apply(1, 2)
        assert Operator.GT.apply(2, 1)
        assert Operator.GE.apply(2, 2)
        assert Operator.LT.apply(1, 2)
        assert Operator.LE.apply(2, 2)

    def test_apply_broadcasts(self):
        out = Operator.GT.apply(np.array([1, 2, 3]), 2)
        assert out.tolist() == [False, False, True]

    def test_flip(self):
        assert Operator.GT.flip() is Operator.LT
        assert Operator.GE.flip() is Operator.LE
        assert Operator.EQ.flip() is Operator.EQ

    def test_negate(self):
        assert Operator.EQ.negate() is Operator.NE
        assert Operator.LT.negate() is Operator.GE


class TestPredicate:
    def test_attributes_and_vars(self):
        p = Predicate(TUPLE_I, "a", Operator.EQ, TUPLE_J, "b")
        assert p.attributes == {"a", "b"}
        assert p.tuple_vars == {TUPLE_I, TUPLE_J}

    def test_constant_predicate(self):
        p = Predicate(TUPLE_I, "a", Operator.GT, CONST, None, 5)
        assert p.is_constant
        assert p.attributes == {"a"}

    def test_constant_requires_value(self):
        with pytest.raises(ValueError):
            Predicate(TUPLE_I, "a", Operator.GT, CONST)

    def test_bind_encodes_categorical_constant(self, relation):
        p = Predicate(TUPLE_I, "edu", Operator.EQ, CONST, None, "BS")
        bound = p.bind(relation)
        assert bound.const == 1

    def test_swapped(self):
        p = Predicate(TUPLE_I, "a", Operator.GT, TUPLE_J, "b")
        s = p.swapped()
        assert s.lhs_var == TUPLE_J and s.rhs_var == TUPLE_I

    def test_evaluate_with_resolver(self):
        p = Predicate(TUPLE_I, "a", Operator.LT, TUPLE_J, "a")
        out = p.evaluate(lambda var, attr:
                         np.array([1, 5]) if var == TUPLE_I else 3)
        assert out.tolist() == [True, False]


class TestDenialConstraint:
    def test_unary_detection(self):
        dc = DenialConstraint("u", [
            Predicate(TUPLE_I, "a", Operator.GT, CONST, None, 5)])
        assert dc.is_unary and not dc.is_binary

    def test_binary_detection(self):
        dc = DenialConstraint.fd("f", "a", "b")
        assert dc.is_binary

    def test_as_fd(self):
        dc = DenialConstraint.fd("f", ["x", "y"], "z")
        assert dc.as_fd() == (("x", "y"), "z")

    def test_as_fd_rejects_order_dc(self, relation):
        dc = parse_dc("not(ti.gain > tj.gain and ti.loss < tj.loss)")
        assert dc.as_fd() is None

    def test_as_conditional_order(self):
        dc = parse_dc("not(ti.s == tj.s and ti.a > tj.a and ti.b < tj.b)")
        assert dc.as_conditional_order() == (["s"], "a", "b")

    def test_as_conditional_order_no_eq(self):
        dc = parse_dc("not(ti.a > tj.a and ti.b < tj.b)")
        assert dc.as_conditional_order() == ([], "a", "b")

    def test_as_conditional_order_rejects_fd(self):
        dc = DenialConstraint.fd("f", "a", "b")
        assert dc.as_conditional_order() is None

    def test_as_conditional_order_rejects_nonstrict(self):
        dc = parse_dc("not(ti.a >= tj.a and ti.b < tj.b)")
        assert dc.as_conditional_order() is None

    def test_attributes(self):
        dc = DenialConstraint.fd("f", ["x"], "y")
        assert dc.attributes == {"x", "y"}

    def test_active_at(self):
        dc = DenialConstraint.fd("f", ["x"], "y")
        assert not dc.active_at(["x"])
        assert dc.active_at(["x", "y", "z"])

    def test_needs_predicates(self):
        with pytest.raises(ValueError):
            DenialConstraint("empty", [])

    def test_active_dc_map(self):
        fd1 = DenialConstraint.fd("f1", "a", "b")
        fd2 = DenialConstraint.fd("f2", "b", "c")
        mapping = active_dc_map([fd1, fd2], ["a", "b", "c"])
        assert [d.name for d in mapping["b"]] == ["f1"]
        assert [d.name for d in mapping["c"]] == ["f2"]
        assert mapping["a"] == []

    def test_active_dc_map_missing_attr(self):
        fd = DenialConstraint.fd("f", "a", "zzz")
        with pytest.raises(ValueError):
            active_dc_map([fd], ["a", "b"])


class TestParser:
    def test_fd_form(self, relation):
        dc = parse_dc("not(ti.edu == tj.edu and ti.num != tj.num)",
                      name="fd", relation=relation)
        assert dc.as_fd() == (("edu",), "num")

    def test_single_equals_accepted(self):
        dc = parse_dc("not(ti.a = tj.a and ti.b != tj.b)")
        assert dc.as_fd() == (("a",), "b")

    def test_unary_with_constants(self, relation):
        dc = parse_dc("not(ti.num < 10 and ti.gain > 50)",
                      relation=relation)
        assert dc.is_unary
        assert dc.predicates[0].const == 10

    def test_string_constant(self, relation):
        dc = parse_dc("not(ti.edu == 'BS' and ti.num < 5)",
                      relation=relation)
        assert dc.predicates[0].const == 1  # encoded code of "BS"

    def test_t1_t2_aliases(self):
        dc = parse_dc("not(t1.a == t2.a and t1.b != t2.b)")
        assert dc.is_binary

    def test_unicode_form(self):
        dc = parse_dc("¬(ti.a = tj.a ∧ ti.b != tj.b)")
        assert dc.as_fd() == (("a",), "b")

    def test_missing_not_rejected(self):
        with pytest.raises(DCParseError):
            parse_dc("(ti.a == tj.a)")

    def test_garbage_operand_rejected(self):
        with pytest.raises(DCParseError):
            parse_dc("not(ti.a == %$)")

    def test_const_lhs_rejected(self):
        with pytest.raises(DCParseError):
            parse_dc("not(5 == ti.a)")

    def test_missing_operator_rejected(self):
        with pytest.raises(DCParseError):
            parse_dc("not(ti.a tj.a)")

    def test_hardness_flag(self):
        assert parse_dc("not(ti.a > 1)", hard=False).hard is False
        assert parse_dc("not(ti.a > 1)").hard is True
