"""Tests for Algorithm 6 (parameter search) and Algorithm 2 (training)."""

import math

import numpy as np
import pytest

from repro.core.params import KaminoParams, search_dp_params
from repro.core.training import HistogramModel, ProbModel, train_model
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def simple_relation():
    return Relation([
        Attribute("g", CategoricalDomain(["a", "b", "c"])),
        Attribute("h", CategoricalDomain(["p", "q"])),
        Attribute("x", NumericalDomain(0, 10)),
    ])


def simple_table(n=300, seed=0):
    rng = np.random.default_rng(seed)
    g = rng.integers(0, 3, n)
    h = (g > 0).astype(np.int64)       # strong dependency h = f(g)
    x = g * 3.0 + rng.normal(0, 0.4, n).clip(-1, 1) + 1.0
    return Table(simple_relation(), {"g": g, "h": h, "x": x.clip(0, 10)})


class TestSearchDpParams:
    def test_budget_met(self):
        rel = simple_relation()
        params = search_dp_params(1.0, 1e-6, rel, ["g", "h", "x"], 2000)
        assert params.achieved_epsilon <= 1.0
        assert params.best_alpha >= 2

    def test_larger_budget_more_iterations(self):
        rel = simple_relation()
        tight = search_dp_params(0.5, 1e-6, rel, ["g", "h", "x"], 2000)
        loose = search_dp_params(4.0, 1e-6, rel, ["g", "h", "x"], 2000)
        assert loose.iterations >= tight.iterations
        assert loose.sigma_g <= tight.sigma_g

    def test_learn_weights_costs_budget(self):
        rel = simple_relation()
        without = search_dp_params(1.0, 1e-6, rel, ["g", "h", "x"], 2000,
                                   learn_weights=False)
        with_w = search_dp_params(1.0, 1e-6, rel, ["g", "h", "x"], 2000,
                                  learn_weights=True)
        # The weight-learning run must fit the same budget, so the other
        # knobs can only get equally or more conservative.
        assert with_w.achieved_epsilon <= 1.0
        assert with_w.iterations <= without.iterations

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            search_dp_params(0.0, 1e-6, simple_relation(),
                             ["g", "h", "x"], 100)

    def test_accounted_epsilon_recompute(self):
        rel = simple_relation()
        params = search_dp_params(1.0, 1e-6, rel, ["g", "h", "x"], 2000)
        eps, alpha = params.accounted_epsilon()
        assert eps == pytest.approx(params.achieved_epsilon)


class TestHistogramModel:
    def test_categorical_fit_normalised(self):
        rng = np.random.default_rng(0)
        table = simple_table()
        hist = HistogramModel.fit(table.column("g"),
                                  table.relation["g"], 2.0, 8, rng)
        assert hist.probs.shape == (3,)
        assert hist.probs.sum() == pytest.approx(1.0)
        assert (hist.probs >= 0).all()

    def test_numerical_fit_uses_quantizer(self):
        rng = np.random.default_rng(0)
        table = simple_table()
        hist = HistogramModel.fit(table.column("x"),
                                  table.relation["x"], 2.0, 8, rng)
        assert hist.quantizer is not None
        assert hist.probs.shape == (8,)

    def test_nonprivate_exact(self):
        rng = np.random.default_rng(0)
        table = simple_table()
        hist = HistogramModel.fit(table.column("g"), table.relation["g"],
                                  2.0, 8, rng, private=False)
        counts = np.bincount(table.column("g"), minlength=3)
        np.testing.assert_allclose(hist.probs, counts / counts.sum())

    def test_sampling_respects_distribution(self):
        rng = np.random.default_rng(0)
        table = simple_table(n=2000)
        hist = HistogramModel.fit(table.column("g"), table.relation["g"],
                                  2.0, 8, rng, private=False)
        draws = hist.sample(20_000, rng)
        freq = np.bincount(draws, minlength=3) / 20_000
        np.testing.assert_allclose(freq, hist.probs, atol=0.02)

    def test_numerical_samples_in_domain(self):
        rng = np.random.default_rng(0)
        table = simple_table()
        hist = HistogramModel.fit(table.column("x"), table.relation["x"],
                                  2.0, 8, rng)
        draws = hist.sample(500, rng)
        assert draws.min() >= 0 and draws.max() <= 10


class TestTrainModel:
    def _params(self, T=60):
        return KaminoParams(epsilon=math.inf, delta=1e-6, iterations=T,
                            embed_dim=8, lr=0.1, n=300, k=3)

    def test_structure(self):
        table = simple_table()
        rng = np.random.default_rng(0)
        model = train_model(table, table.relation, ["g", "h", "x"],
                            self._params(), rng, private=False)
        assert set(model.submodels) == {"h", "x"}
        assert model.context_attrs["h"] == ["g"]
        assert model.context_attrs["x"] == ["g", "h"]

    def test_learns_dependency_nonprivate(self):
        table = simple_table()
        rng = np.random.default_rng(0)
        model = train_model(table, table.relation, ["g", "h", "x"],
                            self._params(T=250), rng, private=False)
        probs = model.conditional("h", {"g": np.array([0, 1, 2])})
        assert probs[0, 0] > 0.7          # g=a -> h=p
        assert probs[1, 1] > 0.7 and probs[2, 1] > 0.7

    def test_numerical_conditional(self):
        table = simple_table()
        rng = np.random.default_rng(0)
        model = train_model(table, table.relation, ["g", "h", "x"],
                            self._params(T=250), rng, private=False)
        mu, sigma = model.conditional(
            "x", {"g": np.array([0, 2]), "h": np.array([0, 1])})
        assert mu[1] > mu[0]              # x grows with g
        assert (sigma > 0).all()

    def test_independent_attrs_excluded(self):
        table = simple_table()
        rng = np.random.default_rng(0)
        model = train_model(table, table.relation, ["g", "h", "x"],
                            self._params(), rng,
                            independent_attrs=["h"], private=False)
        assert "h" in model.independent
        assert "h" not in model.submodels
        assert model.context_attrs["x"] == ["g"]

    def test_parallel_mode_runs(self):
        table = simple_table()
        rng = np.random.default_rng(0)
        model = train_model(table, table.relation, ["g", "h", "x"],
                            self._params(T=20), rng, parallel=True,
                            private=False)
        assert set(model.submodels) == {"h", "x"}

    def test_private_mode_adds_noise(self):
        table = simple_table()
        params = self._params(T=10)
        params.sigma_g = 2.0
        params.sigma_d = 1.5
        model_a = train_model(table, table.relation, ["g", "h", "x"],
                              params, np.random.default_rng(1),
                              private=True)
        model_b = train_model(table, table.relation, ["g", "h", "x"],
                              params, np.random.default_rng(2),
                              private=True)
        # Different noise draws -> different histograms.
        assert not np.allclose(model_a.first.probs, model_b.first.probs)
