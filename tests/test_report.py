"""Tests for the Markdown experiment report builder."""

import pytest

from repro.evaluation.report import (
    ClaimCheck,
    ExperimentReport,
    ReportCollection,
    markdown_table,
)


def test_markdown_table_shape():
    text = markdown_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}],
                          ["a", "b"])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 0.500 |"
    assert len(lines) == 4


def test_markdown_table_missing_cell_is_blank():
    text = markdown_table([{"a": 1}], ["a", "b"])
    assert text.splitlines()[2] == "| 1 |  |"


def test_markdown_table_bool_rendering():
    text = markdown_table([{"ok": True}, {"ok": False}], ["ok"])
    assert "| yes |" in text and "| no |" in text


def test_markdown_table_requires_columns():
    with pytest.raises(ValueError):
        markdown_table([], [])


def test_claim_check_markdown():
    assert ClaimCheck("it holds", True).to_markdown() == \
        "- **PASS**: it holds"
    assert ClaimCheck("it fails", False, "off by 2").to_markdown() == \
        "- **FAIL**: it fails — off by 2"


def test_report_add_row_extends_columns():
    report = ExperimentReport("Table 2", "violations")
    report.add_row(method="Kamino", value=0.0)
    report.add_row(method="PrivBayes", value=1.2, extra="x")
    assert report.columns == ["method", "value", "extra"]
    assert len(report.rows) == 2


def test_report_check_records_and_returns():
    report = ExperimentReport("Fig 6", "epsilon sweep")
    assert report.check("quality rises", True) is True
    assert report.check("never worse", False, "one point off") is False
    assert not report.all_claims_hold


def test_report_markdown_contains_all_parts():
    report = ExperimentReport("Table 3", "ablation")
    report.add_row(variant="Kamino", violations=0.0)
    report.check("fewest violations", True)
    report.note("bench scale n=300")
    text = report.to_markdown()
    assert "### Table 3 — ablation" in text
    assert "| variant | violations |" in text
    assert "- **PASS**: fewest violations" in text
    assert "> bench scale n=300" in text


def test_collection_counts_claims_and_saves(tmp_path):
    collection = ReportCollection("Kamino experiments",
                                  preamble="All at eps=1.")
    r1 = collection.new("Table 2", "violations")
    r1.check("claim A", True)
    r2 = collection.new("Figure 3", "classification")
    r2.check("claim B", True)
    r2.check("claim C", False)
    text = collection.to_markdown()
    assert text.startswith("# Kamino experiments")
    assert "All at eps=1." in text
    assert "Claim checks: 2/3 hold." in text
    assert not collection.all_claims_hold

    path = tmp_path / "EXPERIMENTS.md"
    collection.save(str(path))
    assert path.read_text() == text


def test_collection_all_claims_hold_when_empty():
    collection = ReportCollection("empty")
    assert collection.all_claims_hold
    assert "Claim checks" not in collection.to_markdown()
