"""Unit tests for attribute domains."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.schema import CategoricalDomain, NumericalDomain


class TestCategoricalDomain:
    def test_encode_decode_roundtrip(self):
        dom = CategoricalDomain(["a", "b", "c"])
        for value in dom.values:
            assert dom.decode(dom.encode(value)) == value

    def test_encode_column(self):
        dom = CategoricalDomain(["x", "y"])
        codes = dom.encode_column(["y", "x", "y"])
        assert codes.tolist() == [1, 0, 1]
        assert codes.dtype == np.int64

    def test_decode_column(self):
        dom = CategoricalDomain(["x", "y"])
        assert dom.decode_column(np.array([0, 1, 0])) == ["x", "y", "x"]

    def test_size_and_len(self):
        dom = CategoricalDomain(list("abcd"))
        assert dom.size == 4
        assert len(dom) == 4

    def test_contains(self):
        dom = CategoricalDomain(["a"])
        assert dom.contains("a")
        assert not dom.contains("b")

    def test_validate_column(self):
        dom = CategoricalDomain(["a", "b"])
        assert dom.validate_column(np.array([0, 1, 1]))
        assert not dom.validate_column(np.array([0, 2]))
        assert not dom.validate_column(np.array([-1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDomain([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            CategoricalDomain(["a", "a"])

    def test_unknown_value_raises(self):
        dom = CategoricalDomain(["a"])
        with pytest.raises(KeyError):
            dom.encode("zzz")

    def test_is_categorical_flag(self):
        dom = CategoricalDomain(["a"])
        assert dom.is_categorical and not dom.is_numerical


class TestNumericalDomain:
    def test_bounds_and_width(self):
        dom = NumericalDomain(0, 10)
        assert dom.low == 0 and dom.high == 10 and dom.width == 10

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            NumericalDomain(5, 1)
        with pytest.raises(ValueError):
            NumericalDomain(float("nan"), 1)
        with pytest.raises(ValueError):
            NumericalDomain(0, float("inf"))

    def test_clip_continuous(self):
        dom = NumericalDomain(0, 10)
        out = dom.clip(np.array([-5.0, 5.5, 20.0]))
        assert out.tolist() == [0.0, 5.5, 10.0]

    def test_clip_integer_rounds(self):
        dom = NumericalDomain(0, 10, integer=True)
        out = dom.clip(np.array([2.4, 2.6]))
        assert out.tolist() == [2.0, 3.0]

    def test_contains(self):
        dom = NumericalDomain(0, 10, integer=True)
        assert dom.contains(5)
        assert not dom.contains(5.5)
        assert not dom.contains(11)

    def test_validate_column(self):
        dom = NumericalDomain(0, 1)
        assert dom.validate_column(np.array([0.0, 0.5, 1.0]))
        assert not dom.validate_column(np.array([1.5]))

    def test_size_continuous_is_bins(self):
        assert NumericalDomain(0, 1, bins=7).size == 7

    def test_size_integer_capped_by_span(self):
        assert NumericalDomain(0, 3, integer=True, bins=32).size == 4

    def test_bin_edges(self):
        edges = NumericalDomain(0, 10).bin_edges(5)
        assert edges.shape == (6,)
        assert edges[0] == 0 and edges[-1] == 10

    def test_bins_must_be_positive(self):
        with pytest.raises(ValueError):
            NumericalDomain(0, 1, bins=0)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=50, unique=True))
def test_categorical_roundtrip_property(values):
    dom = CategoricalDomain(values)
    codes = dom.encode_column(values)
    assert dom.decode_column(codes) == values


@given(st.floats(-1e6, 1e6), st.floats(0, 1e6))
def test_numerical_clip_stays_in_domain(low, span):
    dom = NumericalDomain(low, low + span)
    vals = np.linspace(low - span - 1, low + 2 * span + 1, 11)
    clipped = dom.clip(vals)
    assert np.all(clipped >= dom.low) and np.all(clipped <= dom.high)
