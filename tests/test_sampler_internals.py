"""Focused tests for the sampler's internal machinery: snap grids,
consistent-candidate augmentation, feasible-interval endpoints, and the
log-space sampling helper."""

import math

import numpy as np
import pytest

from repro.constraints import parse_dc
from repro.core.hyper import HyperSpec
from repro.core.params import KaminoParams
from repro.core.sampling import (
    HARD_WEIGHT, _ColumnSampler, _gumbel_argmax, _log_normalise_sample,
)
from repro.core.training import train_model
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


def order_relation():
    return Relation([
        Attribute("s", CategoricalDomain(["a", "b"])),
        Attribute("gain", NumericalDomain(0, 100, integer=True, bins=20)),
        Attribute("loss", NumericalDomain(0, 100, integer=True, bins=20)),
    ])


ORDER = parse_dc("not(ti.gain > tj.gain and ti.loss < tj.loss)", "ord")
COND_ORDER = parse_dc(
    "not(ti.s == tj.s and ti.gain > tj.gain and ti.loss < tj.loss)",
    "cord")


def make_sampler(dcs, weights=None, table=None):
    relation = order_relation()
    if table is None:
        rng = np.random.default_rng(0)
        g = rng.integers(0, 100, 60).astype(float)
        table = Table(relation, {
            "s": rng.integers(0, 2, 60),
            "gain": g,
            "loss": np.clip(g // 2, 0, 100),
        })
    params = KaminoParams(epsilon=math.inf, delta=1e-6, iterations=30,
                          embed_dim=6, lr=0.1, n=table.n, k=3)
    rng = np.random.default_rng(0)
    model = train_model(table, relation, ["s", "gain", "loss"], params,
                        rng, private=False)
    weights = weights if weights is not None else {dc.name: math.inf
                                                   for dc in dcs}
    hyper = HyperSpec.trivial(relation, model.sequence)
    return _ColumnSampler(model, relation, hyper, dcs, weights, params,
                          rng), table


class TestLogSampling:
    def test_respects_probabilities(self):
        rng = np.random.default_rng(0)
        log_p = np.log(np.array([0.9, 0.1]))
        draws = [_log_normalise_sample(log_p, rng) for _ in range(2000)]
        assert 0.85 < np.mean(np.array(draws) == 0) < 0.95

    def test_all_excluded_falls_back_to_best(self):
        rng = np.random.default_rng(0)
        log_p = np.array([-1e12, -2e12, -1.5e12])
        assert _log_normalise_sample(log_p, rng) == 0

    def test_gumbel_argmax_shape_and_bias(self):
        rng = np.random.default_rng(0)
        log_p = np.log(np.tile([0.8, 0.2], (4000, 1)))
        picks = _gumbel_argmax(log_p, rng)
        assert picks.shape == (4000,)
        assert 0.75 < np.mean(picks == 0) < 0.85


class TestSnap:
    def test_integer_domain_snaps_to_integers(self):
        sampler, _ = make_sampler([ORDER])
        out = sampler.snap("gain", np.array([3.4, 7.9]))
        assert np.allclose(out, np.rint(out))

    def test_non_dc_attr_untouched(self):
        sampler, _ = make_sampler([ORDER])
        vals = np.array([3.456, 9.999])
        np.testing.assert_array_equal(sampler.snap("s", vals), vals)

    def test_snap_picks_nearest(self):
        sampler, _ = make_sampler([ORDER])
        grid = sampler.snap_grids["gain"]
        value = grid[3] + 0.2 * (grid[4] - grid[3])
        assert sampler.snap("gain", np.array([value]))[0] == grid[3]


class TestOrderInterval:
    def test_endpoints_within_group(self):
        sampler, _ = make_sampler([COND_ORDER])
        cols = {
            "s": np.array([0, 0, 1, 0]),
            "gain": np.array([10.0, 50.0, 99.0, 0.0]),
            "loss": np.array([5.0, 25.0, 2.0, 0.0]),
        }
        # Row 3 (s=0) has loss 0 sampled... choose target=gain for a new
        # row with loss=10 in group s=0: below rows are loss {5,0} ->
        # max gain 10; above rows loss {25} -> min gain 50.
        cols_now = {k: v.copy() for k, v in cols.items()}
        cols_now["loss"][3] = 10.0
        endpoints = sampler._order_interval(COND_ORDER, "gain",
                                            cols_now, 3)
        assert sorted(endpoints) == [10.0, 50.0]

    def test_no_group_match_is_empty(self):
        sampler, _ = make_sampler([COND_ORDER])
        cols = {
            "s": np.array([1, 1, 0]),
            "gain": np.array([10.0, 50.0, 0.0]),
            "loss": np.array([5.0, 25.0, 0.0]),
        }
        assert sampler._order_interval(COND_ORDER, "gain", cols, 2) == []

    def test_fd_shape_returns_empty(self):
        fd = parse_dc("not(ti.s == tj.s and ti.gain != tj.gain)", "fd")
        sampler, _ = make_sampler([fd])
        cols = {"s": np.array([0, 0]), "gain": np.array([1.0, 1.0]),
                "loss": np.array([0.0, 0.0])}
        assert sampler._order_interval(fd, "gain", cols, 1) == []


class TestWeightHandling:
    def test_hard_weight_applied(self):
        sampler, _ = make_sampler([ORDER])
        assert sampler.weight_of(ORDER) == HARD_WEIGHT

    def test_infinite_soft_weight_treated_as_hard(self):
        soft = parse_dc("not(ti.gain > tj.gain and ti.loss < tj.loss)",
                        "soft", hard=False)
        sampler, _ = make_sampler([soft], weights={"soft": math.inf})
        assert sampler.weight_of(soft) == HARD_WEIGHT

    def test_missing_weight_defaults_to_zero(self):
        soft = parse_dc("not(ti.gain > tj.gain and ti.loss < tj.loss)",
                        "soft", hard=False)
        sampler, _ = make_sampler([soft], weights={})
        assert sampler.weight_of(soft) == 0.0


class TestActiveAssignment:
    def test_dc_assigned_to_covering_position(self):
        sampler, _ = make_sampler([ORDER, COND_ORDER])
        seq = sampler.wseq
        last = max(seq.index("gain"), seq.index("loss"))
        assert ORDER in sampler.active_at[last]
        last_cond = max(seq.index(a) for a in ("s", "gain", "loss"))
        assert COND_ORDER in sampler.active_at[last_cond]

    def test_unknown_attribute_rejected(self):
        bogus = parse_dc("not(ti.zzz > 5)", "bogus")
        with pytest.raises(ValueError):
            make_sampler([bogus])
