"""Tests for the run-telemetry layer (:mod:`repro.obs.trace`).

Pins the observability contract:

* a traced fit covers every canonical phase; a traced draw covers every
  working column, with a lane (``mode``) assigned and probe counters
  populated on constrained columns;
* **zero overhead when off / zero interference when on** — a traced
  draw is bit-identical to an untraced one, for both engines;
* the JSON document is stable-keyed (sorted at every level) and the
  human summary names the phases and columns;
* the ``--trace`` CLI flag writes the document and prints the summary.
"""

import json

import numpy as np
import pytest

from repro.core import Kamino, KaminoConfig
from repro.datasets import load
from repro.io import save_bundle
from repro.obs import FIT_PHASES, ColumnTrace, RunTrace, SampleTrace


def _cap(params):
    params.iterations = min(params.iterations, 10)
    params.embed_dim = 6


@pytest.fixture(scope="module")
def fitted_traced():
    """One capped tpch fit, traced; (fitted, trace) shared per module."""
    ds = load("tpch", n=160, seed=0)
    trace = RunTrace(label="test")
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    fitted = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table,
                                                         trace=trace)
    return fitted, trace


# ----------------------------------------------------------------------
# Collector units
# ----------------------------------------------------------------------
def test_column_trace_blocks_and_fallback():
    col = ColumnTrace("a")
    col.observe_block(100)
    col.observe_block(20)
    col.count("rescored_rows", 30)
    col.finish(0.5, 120)
    assert col.counters["blocks"] == 2
    assert col.counters["block_rows"] == 120
    assert col.counters["block_rows_max"] == 100
    assert col.sequential_fallback_rate == 0.25
    doc = col.to_dict()
    assert doc["rows_per_sec"] == 240.0
    assert doc["sequential_fallback_rate"] == 0.25


def test_column_trace_fallback_rate_capped():
    col = ColumnTrace("a")
    col.count("sequential_rows", 50)
    col.count("rescored_rows", 60)
    col.finish(1.0, 50)
    assert col.sequential_fallback_rate == 1.0
    assert ColumnTrace("b").sequential_fallback_rate == 0.0


def test_sample_trace_aggregates_counters_and_probes():
    st = SampleTrace("blocked", 10, 3)
    a = st.column("a")
    a.observe_block(8)
    a.probes["probe_pair"] = 5
    b = st.column("b")
    b.observe_block(10)
    b.probes["probe_pair"] = 7
    agg = st.aggregate_counters()
    assert agg["blocks"] == 2
    assert agg["block_rows_max"] == 10   # maxed, not summed
    assert agg["block_rows"] == 18
    assert agg["probe_pair"] == 12


def test_run_trace_phase_accumulates():
    rt = RunTrace()
    with rt.phase("params"):
        pass
    with rt.phase("params"):
        pass
    assert set(rt.fit_phases) == {"params"}
    assert rt.fit_phases["params"] >= 0.0


# ----------------------------------------------------------------------
# Fit coverage
# ----------------------------------------------------------------------
def test_traced_fit_covers_every_phase(fitted_traced):
    _, trace = fitted_traced
    assert set(trace.fit_phases) == set(FIT_PHASES)
    assert all(sec >= 0.0 for sec in trace.fit_phases.values())


def test_traced_fit_equals_untraced_fit():
    ds = load("tpch", n=120, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap)
    plain = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)
    traced = Kamino(ds.relation, ds.dcs, config=cfg).fit(
        ds.table, trace=RunTrace())
    t1 = plain.sample(n=80, seed=2).table
    t2 = traced.sample(n=80, seed=2).table
    for attr in t1.relation.names:
        np.testing.assert_array_equal(t1.column(attr), t2.column(attr),
                                      err_msg=attr)


# ----------------------------------------------------------------------
# Sample coverage + non-interference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["blocked", "row"])
def test_traced_draw_bit_identical_and_covers_columns(fitted_traced,
                                                      engine):
    fitted, _ = fitted_traced
    trace = RunTrace()
    plain = fitted.sample(n=120, seed=7, engine=engine).table
    traced = fitted.sample(n=120, seed=7, engine=engine,
                           trace=trace).table
    for attr in plain.relation.names:
        np.testing.assert_array_equal(plain.column(attr),
                                      traced.column(attr), err_msg=attr)
    (st,) = trace.samples
    assert st.engine == engine and st.n == 120 and st.seed == 7
    assert [c.name for c in st.columns] \
        == list(fitted.hyper.working_sequence)
    assert all(c.mode for c in st.columns)
    assert all(c.rows == 120 for c in st.columns)
    # tpch has FDs: at least one constrained column probed its indexes.
    assert any(c.probes for c in st.columns)


def test_blocked_lanes_and_counters(fitted_traced):
    fitted, _ = fitted_traced
    trace = RunTrace()
    fitted.sample(n=120, seed=3, engine="blocked", trace=trace)
    (st,) = trace.samples
    modes = {c.mode for c in st.columns}
    assert "unconstrained" in modes
    assert modes & {"cat-fd-lane", "cat-generic"}
    constrained = [c for c in st.columns if c.mode != "unconstrained"]
    assert all(c.counters.get("blocks", 0) >= 1 for c in constrained)


def test_sample_ar_records_run_level_trace(fitted_traced):
    fitted, _ = fitted_traced
    trace = RunTrace()
    fitted.sample_ar(n=30, seed=1, trace=trace)
    (st,) = trace.samples
    assert st.engine == "ar" and st.n == 30 and not st.columns


def test_workers_knob_resolves_from_config():
    ds = load("tpch", n=120, seed=0)
    cfg = KaminoConfig(epsilon=1.0, seed=0, params_override=_cap,
                       workers=2, max_block_rows=64)
    fitted = Kamino(ds.relation, ds.dcs, config=cfg).fit(ds.table)
    trace = RunTrace()
    t1 = fitted.sample(n=100, seed=4, trace=trace).table
    assert trace.samples[0].workers == 2
    # Scheduling knobs never change the draw.
    base = Kamino(ds.relation, ds.dcs,
                  config=cfg.replace(workers=1, max_block_rows=512)
                  ).fit(ds.table).sample(n=100, seed=4).table
    for attr in t1.relation.names:
        np.testing.assert_array_equal(t1.column(attr), base.column(attr),
                                      err_msg=attr)


def test_config_validates_new_knobs():
    with pytest.raises(ValueError, match="workers"):
        KaminoConfig(epsilon=1.0, workers=-1)
    with pytest.raises(ValueError, match="max_block_rows"):
        KaminoConfig(epsilon=1.0, max_block_rows=0)
    with pytest.raises(ValueError, match="pool"):
        KaminoConfig(epsilon=1.0, pool="fiber")
    with pytest.raises(ValueError, match="stream_chunk_rows"):
        KaminoConfig(epsilon=1.0, stream_chunk_rows=0)
    # 0 is the validated "auto" sentinel, resolved at draw time.
    assert KaminoConfig(epsilon=1.0, workers=0).workers == 0


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def test_to_json_stable_keys(fitted_traced):
    fitted, fit_trace = fitted_traced
    trace = RunTrace(label="stable")
    trace.fit_phases.update(fit_trace.fit_phases)
    fitted.sample(n=60, seed=1, trace=trace)
    text = trace.to_json()
    doc = json.loads(text)
    assert text == json.dumps(doc, indent=2, sort_keys=True)
    assert doc["version"] == 1
    assert set(doc["fit"]["phases"]) == set(FIT_PHASES)
    assert doc["samples"][0]["columns"]
    col = doc["samples"][0]["columns"][0]
    assert {"name", "mode", "seconds", "rows", "rows_per_sec",
            "sequential_fallback_rate", "counters",
            "probes"} <= set(col)


def test_save_roundtrip(tmp_path, fitted_traced):
    fitted, _ = fitted_traced
    trace = RunTrace()
    fitted.sample(n=40, seed=9, trace=trace)
    path = tmp_path / "trace.json"
    trace.save(str(path))
    doc = json.loads(path.read_text())
    assert doc["samples"][0]["n"] == 40


def test_summary_names_phases_and_columns(fitted_traced):
    fitted, fit_trace = fitted_traced
    trace = RunTrace(label="demo")
    trace.fit_phases.update(fit_trace.fit_phases)
    fitted.sample(n=60, seed=1, trace=trace)
    text = trace.summary()
    assert "[demo]" in text
    for phase in FIT_PHASES:
        assert phase in text
    for name in fitted.hyper.working_sequence:
        assert name in text
    assert "engine=blocked" in text


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_trace_flag(tmp_path, capsys):
    from repro.cli import main

    ds = load("tpch", n=80, seed=0)
    bundle = tmp_path / "tpch"
    save_bundle(str(bundle), ds.table, ds.dcs)
    model = tmp_path / "model.npz"
    fit_trace = tmp_path / "fit_trace.json"
    assert main(["fit", str(bundle), "--epsilon", "inf",
                 "--max-iterations", "8", "--out", str(model),
                 "--trace", str(fit_trace)]) == 0
    doc = json.loads(fit_trace.read_text())
    assert set(doc["fit"]["phases"]) == set(FIT_PHASES)
    assert doc["samples"] == []

    sample_trace = tmp_path / "sample_trace.json"
    assert main(["sample", str(model), "--schema",
                 f"{bundle}/schema.json", "--dcs", f"{bundle}/dcs.txt",
                 "--out", str(tmp_path / "synth"), "--n", "50",
                 "--seed", "2", "--trace", str(sample_trace)]) == 0
    doc = json.loads(sample_trace.read_text())
    assert doc["samples"][0]["n"] == 50
    assert doc["samples"][0]["columns"]
    out = capsys.readouterr().out
    assert "run trace" in out and "wrote run trace" in out


def test_cli_synthesize_trace_spans_fit_and_sample(tmp_path, capsys):
    from repro.cli import main

    ds = load("tpch", n=80, seed=0)
    bundle = tmp_path / "tpch"
    save_bundle(str(bundle), ds.table, ds.dcs)
    trace_path = tmp_path / "trace.json"
    assert main(["synthesize", str(bundle), "--epsilon", "inf",
                 "--max-iterations", "8",
                 "--out", str(tmp_path / "synth"),
                 "--trace", str(trace_path)]) == 0
    doc = json.loads(trace_path.read_text())
    assert set(doc["fit"]["phases"]) == set(FIT_PHASES)
    assert len(doc["samples"]) == 1
