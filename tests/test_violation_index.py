"""The incremental violation-index engine vs the scan-based engine.

The contract of :mod:`repro.constraints.index` is *bit-identical*
counting: every index answers ``total()`` / ``candidate_counts()`` /
``per_row_violation_counts()`` exactly like ``count_violations`` /
``multi_candidate_violation_counts`` / the blocked ``violation_matrix``
evaluation, only faster.  These tests pin that equivalence on
randomized tables (Hypothesis) and cover the repair-convergence
regressions the engine unlocked (FD chains, shared-dependent FDs,
all-violating unary DCs, exact-dtype group keys).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import repair_violations
from repro.constraints import (
    FDViolationIndex,
    GenericViolationIndex,
    OrderViolationIndex,
    UnaryViolationIndex,
    build_index,
    count_violations,
    multi_candidate_violation_counts,
    parse_dc,
    violation_matrix,
)
from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import TUPLE_I
from repro.constraints.violations import group_inverse
from repro.core.params import KaminoParams
from repro.core.sampling import synthesize
from repro.core.training import train_model
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


def _relation():
    return Relation([
        Attribute("a", CategoricalDomain([f"v{i}" for i in range(5)])),
        Attribute("b", CategoricalDomain([f"w{i}" for i in range(4)])),
        Attribute("u", NumericalDomain(0, 12, integer=True, bins=13)),
        Attribute("v", NumericalDomain(0, 12, integer=True, bins=13)),
    ])


def _dcs():
    rel = _relation()
    return rel, {
        "fd": DenialConstraint.fd("fd", "a", "b"),
        "fd2": DenialConstraint.fd("fd2", ("a", "b"), "u"),
        "ord": parse_dc(
            "not(ti.a == tj.a and ti.u > tj.u and ti.v < tj.v)", "ord"),
        "ord0": parse_dc("not(ti.u > tj.u and ti.v < tj.v)", "ord0"),
        "un": parse_dc("not(ti.u > 9)", "un", relation=rel),
        "gen": parse_dc("not(ti.a == tj.a and ti.u > tj.u)", "gen"),
    }


def _tables(draw, max_rows: int = 24) -> Table:
    rel = _relation()
    n = draw(st.integers(0, max_rows))
    cols = {
        "a": np.asarray(draw(st.lists(st.integers(0, 4), min_size=n,
                                      max_size=n)), dtype=np.int64),
        "b": np.asarray(draw(st.lists(st.integers(0, 3), min_size=n,
                                      max_size=n)), dtype=np.int64),
        "u": np.asarray(draw(st.lists(st.integers(0, 12), min_size=n,
                                      max_size=n)), dtype=np.float64),
        "v": np.asarray(draw(st.lists(st.integers(0, 12), min_size=n,
                                      max_size=n)), dtype=np.float64),
    }
    return Table(rel, cols)


def test_factory_dispatches_on_shape():
    _, dcs = _dcs()
    assert isinstance(build_index(dcs["fd"]), FDViolationIndex)
    assert isinstance(build_index(dcs["fd2"]), FDViolationIndex)
    assert isinstance(build_index(dcs["ord"]), OrderViolationIndex)
    assert isinstance(build_index(dcs["ord0"]), OrderViolationIndex)
    assert isinstance(build_index(dcs["un"]), UnaryViolationIndex)
    assert isinstance(build_index(dcs["gen"]), GenericViolationIndex)


# ----------------------------------------------------------------------
# Equivalence with the scan engine
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=30, deadline=None)
def test_incremental_total_matches_count_violations(data):
    _, dcs = _dcs()
    table = _tables(data.draw)
    cols = {a: table.column(a) for a in table.relation.names}
    for dc in dcs.values():
        index = build_index(dc)
        index.build(cols, 0)
        for i in range(table.n):
            index.append_from(cols, i)
            assert index.total() == count_violations(
                dc, table.head(i + 1)), (dc.name, i)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_candidate_counts_match_scan_engine(data):
    """Prefix-probe agreement: the probe of Algorithm 3 line 8."""
    _, dcs = _dcs()
    table = _tables(data.draw)
    cols = {a: table.column(a) for a in table.relation.names}
    for dc in dcs.values():
        index = build_index(dc)
        index.build(cols, 0)
        for i in range(table.n):
            for target in sorted(dc.attributes):
                if target in ("a", "b"):
                    cands = np.arange(
                        table.relation[target].domain.size, dtype=np.int64)
                else:
                    cands = np.arange(0, 13, dtype=np.float64)
                target_values = {target: cands}
                context = {a: cols[a][i] for a in dc.attributes
                           if a != target}
                got = index.candidate_counts(target_values, context)
                if got is None:
                    continue  # the scan fallback path; nothing to pin
                prefix = {a: cols[a][:i] for a in dc.attributes}
                ref = multi_candidate_violation_counts(
                    dc, target_values, context, prefix)
                np.testing.assert_array_equal(got, ref,
                                              err_msg=f"{dc.name}@{i}")
            index.append_from(cols, i)


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_removal_and_rewrite_keep_totals_exact(data):
    _, dcs = _dcs()
    table = _tables(data.draw)
    if table.n < 2:
        return
    cols = {a: table.column(a) for a in table.relation.names}
    i = data.draw(st.integers(0, table.n - 1))
    for dc in dcs.values():
        index = build_index(dc)
        if not index.supports_removal:
            continue
        index.build(cols, table.n)
        index.remove_from(cols, i)
        rest = table.take([j for j in range(table.n) if j != i])
        assert index.total() == count_violations(dc, rest), dc.name
        index.append_from(cols, i)
        assert index.total() == count_violations(dc, table), dc.name
    # Cell rewrite: flip one cell and compare against a fresh count.
    new_b = data.draw(st.integers(0, 3))
    for name in ("fd", "gen"):
        dc = dcs[name]
        index = build_index(dc)
        index.build(cols, table.n)
        attr = "b" if name == "fd" else "u"
        old = cols[attr][i]
        cols[attr][i] = new_b
        index.rewrite_cell(cols, i, attr, old)
        assert index.total() == count_violations(dc, table), name
        cols[attr][i] = old
        index.rewrite_cell(cols, i, attr, new_b)
        assert index.total() == count_violations(dc, table), name


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_violation_matrix_matches_brute_force(data):
    _, dcs = _dcs()
    table = _tables(data.draw, max_rows=14)
    dc_list = list(dcs.values())
    got = violation_matrix(table, dc_list)
    assert got.shape == (table.n, len(dc_list))

    def pair_violates(dc, i, j):
        for first, second in ((i, j), (j, i)):
            def value(var, attr):
                row = first if var == TUPLE_I else second
                return table.column(attr)[row]
            if all(bool(p.evaluate(value)) for p in dc.predicates):
                return True
        return False

    for l, dc in enumerate(dc_list):
        for i in range(table.n):
            if dc.is_unary:
                def value(var, attr):
                    return table.column(attr)[i]
                ref = float(all(bool(p.evaluate(value))
                                for p in dc.predicates))
            else:
                ref = float(sum(pair_violates(dc, i, j)
                                for j in range(table.n) if j != i))
            assert got[i, l] == ref, (dc.name, i)


# ----------------------------------------------------------------------
# The sampler produces identical output with the index on or off
# ----------------------------------------------------------------------
def test_sampler_bit_identical_with_and_without_index():
    relation = Relation([
        Attribute("g", CategoricalDomain(["x", "y", "z"])),
        Attribute("h", CategoricalDomain(["p", "q", "r", "s"])),
        Attribute("gain", NumericalDomain(0, 30, integer=True, bins=8)),
        Attribute("loss", NumericalDomain(0, 30, integer=True, bins=8)),
    ])
    rng = np.random.default_rng(0)
    g = rng.integers(0, 3, 120)
    gain = rng.integers(0, 31, 120).astype(float)
    table = Table(relation, {"g": g, "h": (g + 1) % 3, "gain": gain,
                             "loss": np.clip(gain // 2, 0, 30)})
    dcs = [
        DenialConstraint.fd("g_h", "g", "h", hard=True),
        parse_dc("not(ti.g == tj.g and ti.gain > tj.gain "
                 "and ti.loss < tj.loss)", "cord", hard=False),
    ]
    params = KaminoParams(epsilon=math.inf, delta=1e-6, iterations=15,
                          embed_dim=6, lr=0.1, n=table.n, k=4)
    params.mcmc_m = 5  # exercise the remove/probe/re-append MCMC path
    sequence = ["g", "h", "gain", "loss"]
    model = train_model(table, relation, sequence, params,
                        np.random.default_rng(1), private=False)
    weights = {"g_h": math.inf, "cord": 1.5}
    outs = {}
    for flag in (True, False):
        outs[flag] = synthesize(model, relation, dcs, weights, table.n,
                                params, np.random.default_rng(7),
                                use_violation_index=flag)
    for name in relation.names:
        np.testing.assert_array_equal(outs[True].column(name),
                                      outs[False].column(name),
                                      err_msg=name)


# ----------------------------------------------------------------------
# Repair convergence regressions
# ----------------------------------------------------------------------
def _chain_relation():
    return Relation([
        Attribute("a", CategoricalDomain(["a0", "a1", "a2"])),
        Attribute("b", CategoricalDomain(["b0", "b1", "b2"])),
        Attribute("c", CategoricalDomain(["c0", "c1", "c2"])),
    ])


def test_repair_converges_on_fd_chain():
    """A -> B, B -> C: repairing B re-groups C, so the old bounded
    3-pass loop (in reverse order) left chained violations behind."""
    rel = _chain_relation()
    rng = np.random.default_rng(0)
    n = 40
    table = Table(rel, {
        "a": rng.integers(0, 3, n),
        "b": rng.integers(0, 3, n),
        "c": rng.integers(0, 3, n),
    })
    fds = [DenialConstraint.fd("bc", "b", "c"),
           DenialConstraint.fd("ab", "a", "b")]  # reverse chain order
    fixed = repair_violations(table, fds, seed=0)
    for dc in fds:
        assert count_violations(dc, fixed) == 0
    assert fixed.n == n


def test_repair_converges_on_shared_dependent_fds():
    """a0 -> a2 and a1 -> a2: separate majority votes oscillate; the
    joint union-find repair fixes both at once (the seed-failing
    Hypothesis counterexample, pinned)."""
    rel = _chain_relation()
    table = Table(rel, {
        "a": np.array([0, 0, 0, 0, 1]),
        "b": np.array([0, 0, 0, 1, 1]),
        "c": np.array([0, 1, 1, 0, 0]),
    })
    fds = [DenialConstraint.fd("bc", "b", "c"),
           DenialConstraint.fd("ac", "a", "c")]
    fixed = repair_violations(table, fds, seed=0)
    for dc in fds:
        assert count_violations(dc, fixed) == 0


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_repair_eliminates_arbitrary_fd_sets(data):
    """Random FDs with arbitrary determinant/dependent directions (the
    property the seed test checks, but without the acyclicity bound on
    shared dependents)."""
    rel = _chain_relation()
    n = data.draw(st.integers(0, 12))
    table = Table(rel, {
        a: np.asarray(data.draw(st.lists(st.integers(0, 2), min_size=n,
                                         max_size=n)), dtype=np.int64)
        for a in ("a", "b", "c")})
    names = ["a", "b", "c"]
    n_fds = data.draw(st.integers(0, 4))
    fds = []
    for f in range(n_fds):
        det = data.draw(st.integers(0, 2))
        dep = data.draw(st.integers(0, 2).filter(lambda x: x != det))
        fds.append(DenialConstraint.fd(f"fd{f}", names[det], names[dep]))
    fixed = repair_violations(table, fds, seed=0)
    assert fixed.n == n
    # Acyclic FD graphs must repair completely; cyclic ones must at
    # least never crash or grow the violation count.
    edges = {}
    for dc in fds:
        det, dep = dc.as_fd()
        edges.setdefault(det[0], set()).add(dep)

    def reaches(start, goal, seen):
        for nxt in edges.get(start, ()):
            if nxt == goal or (nxt not in seen
                               and reaches(nxt, goal, seen | {nxt})):
                return True
        return False

    cyclic = any(reaches(node, node, {node}) for node in edges)
    if not cyclic:
        for dc in fds:
            assert count_violations(dc, fixed) == 0
    else:
        total_after = sum(count_violations(dc, fixed) for dc in fds)
        total_before = sum(count_violations(dc, table) for dc in fds)
        assert total_after <= total_before


def test_repair_all_violating_unary_redraws_from_domain():
    """Every tuple violating used to silently skip the repair (no clean
    pool); now the cells redraw from the satisfying domain values."""
    rel = _relation()
    n = 30
    table = Table(rel, {
        "a": np.zeros(n, dtype=np.int64),
        "b": np.zeros(n, dtype=np.int64),
        "u": np.full(n, 3.0),   # all violate not(u < 9)
        "v": np.zeros(n),
    })
    unary = parse_dc("not(ti.u < 9)", "un", relation=rel)
    assert count_violations(unary, table) == n
    fixed = repair_violations(table, [unary], seed=0)
    assert count_violations(unary, fixed) == 0
    assert np.all(fixed.column("u") >= 9)


def test_repair_unary_without_feasible_values_leaves_table():
    """A unary DC no domain value satisfies cannot loop forever."""
    rel = _relation()
    table = Table(rel, {
        "a": np.zeros(4, dtype=np.int64), "b": np.zeros(4, dtype=np.int64),
        "u": np.full(4, 5.0), "v": np.zeros(4),
    })
    unary = parse_dc("not(ti.u >= 0)", "un", relation=rel)  # always true
    fixed = repair_violations(table, [unary], seed=0)
    assert count_violations(unary, fixed) == 4  # unrepairable, no hang


# ----------------------------------------------------------------------
# Exact-dtype group keys (no float64 collisions)
# ----------------------------------------------------------------------
def test_group_inverse_distinguishes_int64_above_2_53():
    big = 2 ** 53
    col = np.array([big, big + 1, big, big + 1], dtype=np.int64)
    inverse, counts = group_inverse([col])
    assert len(counts) == 2
    assert counts.tolist() == [2, 2]
    # The float64 cast the old grouping used collides the two keys.
    assert np.unique(col.astype(np.float64)).size == 1


def test_fd_counting_and_repair_with_int64_keys_above_2_53():
    rel = Relation([
        Attribute("k", CategoricalDomain(["x", "y"])),
        Attribute("d", CategoricalDomain(["p", "q"])),
    ])
    big = 2 ** 53
    # Two determinant keys that collide as float64 but differ as int64;
    # each group is internally consistent, so there are no violations.
    table = Table(rel, {
        "k": np.array([big, big + 1, big, big + 1], dtype=np.int64),
        "d": np.array([0, 1, 0, 1], dtype=np.int64),
    }, validate=False)
    fd = DenialConstraint.fd("kd", "k", "d")
    assert count_violations(fd, table) == 0
    np.testing.assert_array_equal(
        violation_matrix(table, [fd])[:, 0], np.zeros(4))
    index = build_index(fd)
    index.build(table.columns, table.n)
    assert index.total() == 0
    fixed = repair_violations(table, [fd], seed=0)
    np.testing.assert_array_equal(fixed.column("d"), table.column("d"))


def test_repair_skips_passes_via_index_totals():
    """A clean table must exit the fixpoint loop without any rewrite."""
    rel = _chain_relation()
    table = Table(rel, {
        "a": np.array([0, 1, 2]),
        "b": np.array([0, 1, 2]),
        "c": np.array([0, 1, 2]),
    })
    fds = [DenialConstraint.fd("ab", "a", "b"),
           DenialConstraint.fd("bc", "b", "c")]
    fixed = repair_violations(table, fds, seed=0)
    for a in rel.names:
        np.testing.assert_array_equal(fixed.column(a), table.column(a))


# ----------------------------------------------------------------------
# Fenwick/dense-backed order groups (PR 5)
# ----------------------------------------------------------------------
def _order_universes():
    return np.arange(13, dtype=np.float64), np.arange(13, dtype=np.float64)


@pytest.mark.parametrize("dc_key", ["ord", "ord0"])
@given(st.data())
@settings(max_examples=20, deadline=None)
def test_order_probes_bit_identical_with_universe(dc_key, data):
    """provide_universe must never change a count (Fenwick vs scan)."""
    _, dcs = _dcs()
    dc = dcs[dc_key]
    table = _tables(data.draw)
    cols = table.columns
    plain = build_index(dc)
    fast = build_index(dc)
    assert fast.provide_universe(*_order_universes())
    cands = np.arange(13, dtype=np.float64)
    for i in range(table.n):
        for target in ("u", "v"):
            tv = {target: cands}
            ctx = {a: cols[a][i] for a in dc.attributes if a != target}
            want = multi_candidate_violation_counts(
                dc, tv, ctx, {a: cols[a][:i] for a in dc.attributes})
            np.testing.assert_array_equal(
                plain.candidate_counts(tv, ctx), want, err_msg=f"plain {i}")
            np.testing.assert_array_equal(
                fast.candidate_counts(tv, ctx), want, err_msg=f"fen {i}")
        plain.append_from(cols, i)
        fast.append_from(cols, i)
        assert plain.total() == fast.total() == count_violations(
            dc, Table(table.relation,
                      {a: c[:i + 1] for a, c in cols.items()},
                      validate=False))
    # removals keep both engines aligned
    for i in range(0, table.n, 3):
        plain.remove_from(cols, i)
        fast.remove_from(cols, i)
        assert plain.total() == fast.total()


def test_order_index_forces_fenwick_class_on_larger_universe():
    """Universes past the dense-grid cap must still be exact (true BIT)."""
    from repro.constraints.index import _DENSE_GRID_CELLS, _Fenwick2D
    rng = np.random.default_rng(3)
    side = int(np.sqrt(_DENSE_GRID_CELLS)) + 8   # forces _Fenwick2D
    dc = parse_dc("not(ti.u > tj.u and ti.v < tj.v)", "big")
    index = build_index(dc)
    assert index.provide_universe(np.arange(side, dtype=np.float64),
                                  np.arange(side, dtype=np.float64))
    n = 400
    cols = {"u": rng.integers(0, side, n).astype(np.float64),
            "v": rng.integers(0, side, n).astype(np.float64)}
    cands = rng.integers(0, side, 9).astype(np.float64)
    for i in range(n):
        ctx = {"v": cols["v"][i]}
        want = multi_candidate_violation_counts(
            dc, {"u": cands}, ctx, {a: c[:i] for a, c in cols.items()})
        np.testing.assert_array_equal(
            index.candidate_counts({"u": cands}, ctx), want, err_msg=str(i))
        index.append_from(cols, i)
    group = next(iter(index._groups.values()))
    assert isinstance(group.fen, _Fenwick2D)


def test_order_index_off_universe_value_falls_back_exactly():
    dc = parse_dc("not(ti.u > tj.u and ti.v < tj.v)", "off")
    index = build_index(dc)
    assert index.provide_universe(*_order_universes())
    rng = np.random.default_rng(0)
    n = 60
    cols = {"u": rng.integers(0, 13, n).astype(np.float64),
            "v": rng.integers(0, 13, n).astype(np.float64)}
    cols["u"][30] = 6.5  # not on the integer universe
    cands = np.arange(13, dtype=np.float64)
    for i in range(n):
        ctx = {"v": cols["v"][i]}
        want = multi_candidate_violation_counts(
            dc, {"u": cands}, ctx, {a: c[:i] for a, c in cols.items()})
        np.testing.assert_array_equal(
            index.candidate_counts({"u": cands}, ctx), want, err_msg=str(i))
        index.append_from(cols, i)


def test_group_profile_matches_scans():
    """group_profile == the sampler's equality-match + interval scans."""
    _, dcs = _dcs()
    dc = dcs["ord"]
    rng = np.random.default_rng(7)
    n = 200
    cols = {"a": rng.integers(0, 3, n).astype(np.int64),
            "u": rng.integers(0, 13, n).astype(np.float64),
            "v": rng.integers(0, 13, n).astype(np.float64)}
    index = build_index(dc)
    assert index.provide_universe(*_order_universes())
    for i in range(n):
        for target, partner in (("u", "v"), ("v", "u")):
            key_row = {"a": cols["a"][i]}
            p_now = cols[partner][i]
            got = index.group_profile(key_row, target, p_now, limit=4)
            mask = cols["a"][:i] == cols["a"][i]
            t_vals = cols[target][:i][mask]
            p_vals = cols[partner][:i][mask]
            if got is None:
                continue  # group too small for a grid — scan path used
            matching, below_max, above_min = got
            want_match = np.unique(t_vals[p_vals == p_now])[:4].tolist()
            assert matching == want_match, (i, target)
            below = t_vals[p_vals < p_now]
            above = t_vals[p_vals > p_now]
            assert below_max == (float(below.max()) if below.size
                                 else None), (i, target)
            assert above_min == (float(above.min()) if above.size
                                 else None), (i, target)
        index.append_from(cols, i)


# ----------------------------------------------------------------------
# Batched FD probes (PR 5)
# ----------------------------------------------------------------------
def test_probe_block_codes_matches_candidate_counts():
    _, dcs = _dcs()
    dc = dcs["fd"]          # a -> b
    rng = np.random.default_rng(1)
    n = 120
    cols = {"a": rng.integers(0, 5, n).astype(np.int64),
            "b": rng.integers(0, 4, n).astype(np.int64)}
    index = build_index(dc)
    index.build(cols, n)
    codes = np.arange(4, dtype=np.int64)
    keys = [(int(cols["a"][i]),) for i in range(n)]
    block = index.probe_block_codes(keys, 4)
    many = index.probe_many({"b": codes},
                            [{"a": cols["a"][i]} for i in range(n)])
    for i in range(n):
        want = index.candidate_counts({"b": codes}, {"a": cols["a"][i]})
        np.testing.assert_array_equal(block[i], want, err_msg=str(i))
        np.testing.assert_array_equal(many[i], want, err_msg=str(i))


def test_probe_det_codes_matches_general_path():
    """Det-target probes (filling a determinant after its dependent)."""
    _, dcs = _dcs()
    dc = dcs["fd"]          # a -> b; now probe candidates for `a`
    rng = np.random.default_rng(2)
    n = 150
    cols = {"a": rng.integers(0, 5, n).astype(np.int64),
            "b": rng.integers(0, 4, n).astype(np.int64)}
    index = build_index(dc)
    cands = np.arange(5, dtype=np.int64)
    for i in range(n):
        ctx = {"b": cols["b"][i]}
        want = multi_candidate_violation_counts(
            dc, {"a": cands}, ctx, {x: c[:i] for x, c in cols.items()})
        got = index.candidate_counts({"a": cands}, ctx)
        np.testing.assert_array_equal(got, want, err_msg=str(i))
        out = np.empty(5, dtype=np.int64)
        assert index.probe_det_codes(cols["b"][i], 5, out=out) is out
        np.testing.assert_array_equal(out, want, err_msg=f"out {i}")
        index.append_from(cols, i)
    # pair kernel agrees with the dict probe
    for i in range(0, n, 7):
        key = (int(cols["a"][i]),)
        dep = int(cols["b"][i])
        group = index._groups[key]
        assert index.probe_pair(key, dep) == group[0] - group[1].get(dep, 0)


def test_probe_many_falls_back_to_none_on_unanswerable_rows():
    _, dcs = _dcs()
    dc = dcs["gen"]
    index = build_index(dc)
    assert index.probe_many({"u": np.arange(3, dtype=np.float64)},
                            [{"a": np.int64(0)}]) is None
