"""Documentation link-check (the CI ``docs`` job).

Every backtick-quoted repo path mentioned in ``README.md`` and
``docs/*.md`` must exist: docs that point at moved or deleted files rot
silently otherwise.  Paths may use ``*`` globs (``benchmarks/bench_*.py``).
Also pins the cross-document links (quickstart → architecture →
benchmarks) the README promises.
"""

import glob
import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Backtick-quoted tokens that look like repo paths: a known top-level
#: directory (or Makefile-style root file) followed by a real file name.
_PATH_RE = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[A-Za-z0-9_.*/\-]+"
    r"|[A-Za-z0-9_.\-]+\.(?:md|py|yml|toml|json|txt))`")

#: Quoted names that are illustrative or generated, not repo files.
_IGNORED = {
    "schema.json", "data.csv", "dcs.txt", "model.npz", "out.json",
    "trace.json", "fit_trace.json", "ledger.json", "report.md",
    "synth.csv", "meta.json",
    # generated benchmark output / example history-point names
    "BENCH_exp10.json", "0006-run-telemetry.json",
}


def _doc_files():
    docs = [os.path.join(ROOT, "README.md")]
    docs += sorted(glob.glob(os.path.join(ROOT, "docs", "*.md")))
    return docs


def _referenced_paths(path):
    with open(path) as f:
        text = f.read()
    return sorted({m.group(1) for m in _PATH_RE.finditer(text)
                   if m.group(1) not in _IGNORED})


@pytest.mark.parametrize("doc", _doc_files(),
                         ids=lambda p: os.path.relpath(p, ROOT))
def test_doc_paths_exist(doc):
    missing = []
    for ref in _referenced_paths(doc):
        target = os.path.join(ROOT, ref)
        if "*" in ref:
            if not glob.glob(target):
                missing.append(ref)
        elif not os.path.exists(target):
            missing.append(ref)
    assert not missing, (
        f"{os.path.relpath(doc, ROOT)} references missing paths: "
        f"{', '.join(missing)}")


def test_docs_exist():
    for name in ("README.md", "docs/ARCHITECTURE.md",
                 "docs/BENCHMARKS.md", "benchmarks/history/README.md"):
        assert os.path.exists(os.path.join(ROOT, name)), name


def test_readme_links_docs_chain():
    with open(os.path.join(ROOT, "README.md")) as f:
        text = f.read()
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/BENCHMARKS.md" in text
    assert "examples/quickstart.py" in text


def test_architecture_covers_current_system():
    with open(os.path.join(ROOT, "docs", "ARCHITECTURE.md")) as f:
        text = f.read()
    for needle in ("FittedKamino", "blocked", "Philox",
                   "violation index", "model format v2", "RunTrace"):
        assert needle in text, needle


def test_robustness_doc_covers_failure_paths():
    with open(os.path.join(ROOT, "docs", "ROBUSTNESS.md")) as f:
        text = f.read()
    for needle in ("checkpoint_dir", "REPRO_FAULTS", "quarantine",
                   "ModelFormatError", "X-Cache: bypass", "resumed",
                   "repro.ckpt/1", "Retry-After"):
        assert needle in text, needle


def test_readme_links_robustness_doc():
    with open(os.path.join(ROOT, "README.md")) as f:
        assert "docs/ROBUSTNESS.md" in f.read()


def test_benchmarks_doc_covers_history_and_gate():
    with open(os.path.join(ROOT, "docs", "BENCHMARKS.md")) as f:
        text = f.read()
    for needle in ("BENCH_exp10.json", "benchmarks/history",
                   "bench-compare", "--gate", "exp10"):
        assert needle in text, needle
