"""Neural-substrate tests: gradchecks for every layer, loss sanity, and
optimizer behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    Adam, Attention, Embedding, Linear, NumericEncoder, Parameter, ReLU,
    SGD, bce_with_logits_loss, cross_entropy_loss, gaussian_nll_loss,
    gradcheck, log_softmax, mse_loss, relu, sigmoid, softmax,
)
from repro.nn.functional import one_hot, softmax_backward


class TestFunctional:
    def test_softmax_sums_to_one(self):
        out = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_softmax_stable_large_inputs(self):
        out = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(0).normal(size=(4, 5))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)),
                                   atol=1e-12)

    def test_sigmoid_stable(self):
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)

    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])),
                                      [0.0, 0.0, 2.0])

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert out.tolist() == [[1, 0, 0], [0, 0, 1]]

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_softmax_property(self, xs):
        out = softmax(np.array([xs]))
        assert out.min() >= 0
        assert out.sum() == pytest.approx(1.0)

    def test_softmax_backward_orthogonal_to_ones(self):
        # Softmax outputs sum to one, so the Jacobian maps any gradient
        # to a vector orthogonal to the all-ones direction.
        rng = np.random.default_rng(0)
        alpha = softmax(rng.normal(size=(3, 5)))
        g = rng.normal(size=(3, 5))
        ds = softmax_backward(alpha, g)
        np.testing.assert_allclose(ds.sum(axis=1), 0.0, atol=1e-12)


class TestLayerGradients:
    def test_linear_gradcheck(self):
        rng = np.random.default_rng(0)
        lin = Linear(3, 4, rng)
        x = rng.normal(size=(5, 3))
        y = np.array([0, 1, 2, 3, 0])

        def loss():
            losses, _ = cross_entropy_loss(lin.forward(x), y)
            return losses.sum()

        lin.zero_grad()
        _, g = cross_entropy_loss(lin.forward(x), y)
        lin.backward(g, per_sample=True)
        gradcheck(loss, lin.parameters())

    def test_linear_per_sample_sums_to_grad(self):
        rng = np.random.default_rng(1)
        lin = Linear(3, 2, rng)
        x = rng.normal(size=(6, 3))
        lin.zero_grad()
        out = lin.forward(x)
        lin.backward(np.ones_like(out), per_sample=True)
        for p in lin.parameters():
            np.testing.assert_allclose(p.grad_sample.sum(axis=0), p.grad)

    def test_embedding_gradcheck(self):
        rng = np.random.default_rng(2)
        emb = Embedding(5, 3, rng)
        idx = np.array([0, 2, 2, 4])
        w = rng.normal(size=3)

        def loss():
            return float((emb.forward(idx) @ w).sum())

        emb.zero_grad()
        emb.forward(idx)
        emb.backward(np.tile(w, (4, 1)), per_sample=True)
        gradcheck(loss, emb.parameters())

    def test_embedding_per_sample_shape(self):
        rng = np.random.default_rng(3)
        emb = Embedding(6, 4, rng)
        emb.forward(np.array([1, 5]))
        emb.backward(np.ones((2, 4)), per_sample=True)
        assert emb.table.grad_sample.shape == (2, 6, 4)

    def test_embedding_per_sample_guard(self):
        rng = np.random.default_rng(4)
        emb = Embedding(3, 2, rng)
        emb.MAX_PER_SAMPLE_ROWS = 2
        emb.forward(np.array([0]))
        with pytest.raises(ValueError):
            emb.backward(np.ones((1, 2)), per_sample=True)

    def test_numeric_encoder_gradcheck(self):
        rng = np.random.default_rng(5)
        enc = NumericEncoder(4, rng, 0.0, 100.0)
        x = np.array([10.0, 55.0, 90.0])

        def loss():
            z = enc.forward(x)
            return float((z ** 2).sum())

        enc.zero_grad()
        z = enc.forward(x)
        enc.backward(2 * z, per_sample=True)
        gradcheck(loss, enc.parameters())

    def test_attention_gradcheck(self):
        rng = np.random.default_rng(6)
        att = Attention(4, rng)
        E = rng.normal(size=(5, 3, 4))
        w = rng.normal(size=4)

        def loss():
            return float((att.forward(E) @ w).sum())

        att.zero_grad()
        att.forward(E)
        att.backward(np.tile(w, (5, 1)), per_sample=True)
        gradcheck(loss, att.parameters())

    def test_attention_weights_simplex(self):
        rng = np.random.default_rng(7)
        att = Attention(4, rng)
        att.forward(rng.normal(size=(6, 3, 4)))
        weights = att.last_weights()
        assert weights.shape == (6, 3)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)
        assert (weights >= 0).all()

    def test_attention_input_gradient(self):
        """Check dL/dE against finite differences."""
        rng = np.random.default_rng(8)
        att = Attention(3, rng)
        E = rng.normal(size=(2, 2, 3))
        w = rng.normal(size=3)
        att.zero_grad()
        att.forward(E)
        gE = att.backward(np.tile(w, (2, 1)))
        eps = 1e-6
        for index in np.ndindex(E.shape):
            E[index] += eps
            up = float((att.forward(E) @ w).sum())
            E[index] -= 2 * eps
            down = float((att.forward(E) @ w).sum())
            E[index] += eps
            numeric = (up - down) / (2 * eps)
            assert numeric == pytest.approx(gE[index], rel=1e-4, abs=1e-6)

    def test_module_parameter_dedup(self):
        rng = np.random.default_rng(9)
        from repro.nn.layers import Module
        shared = Parameter(np.zeros(3), name="shared")

        class Holder(Module):
            def __init__(self):
                self.a = shared
                self.b = {"alias": shared}

        assert len(Holder().parameters()) == 1


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        losses, grad = cross_entropy_loss(logits, np.array([0, 0]))
        manual = -np.log(softmax(logits)[np.arange(2), [0, 0]])
        np.testing.assert_allclose(losses, manual)
        np.testing.assert_allclose(grad[0], softmax(logits)[0] - [1, 0])

    def test_gaussian_nll_gradients(self):
        mu = np.array([1.0, -1.0])
        ls = np.array([0.2, -0.3])
        t = np.array([0.5, 0.5])
        losses, g_mu, g_ls = gaussian_nll_loss(mu, ls, t)
        eps = 1e-6
        up, _, _ = gaussian_nll_loss(mu + eps, ls, t)
        down, _, _ = gaussian_nll_loss(mu - eps, ls, t)
        np.testing.assert_allclose((up - down) / (2 * eps), g_mu, rtol=1e-5)
        up, _, _ = gaussian_nll_loss(mu, ls + eps, t)
        down, _, _ = gaussian_nll_loss(mu, ls - eps, t)
        np.testing.assert_allclose((up - down) / (2 * eps), g_ls, rtol=1e-5)

    def test_mse(self):
        losses, grad = mse_loss(np.array([2.0]), np.array([1.0]))
        assert losses[0] == pytest.approx(1.0)
        assert grad[0] == pytest.approx(2.0)

    def test_bce_stable_and_correct(self):
        logits = np.array([0.0, 1000.0, -1000.0])
        targets = np.array([1.0, 1.0, 0.0])
        losses, grad = bce_with_logits_loss(logits, targets)
        assert np.isfinite(losses).all()
        assert losses[1] == pytest.approx(0.0, abs=1e-9)
        assert grad[0] == pytest.approx(-0.5)


class TestOptimizers:
    def _quadratic(self, optimizer_cls, **kwargs):
        p = Parameter(np.array([5.0, -3.0]))
        opt = optimizer_cls([p], **kwargs)
        for _ in range(300):
            opt.zero_grad()
            p.grad = 2 * p.value  # d/dx of ||x||^2
            opt.step()
        return np.abs(p.value).max()

    def test_sgd_converges(self):
        assert self._quadratic(SGD, lr=0.1) < 1e-6

    def test_adam_converges(self):
        assert self._quadratic(Adam, lr=0.1) < 1e-3

    def test_sgd_step_direction(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad = np.array([2.0])
        opt.step()
        assert p.value[0] == pytest.approx(0.0)
