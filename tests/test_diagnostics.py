"""Tests for MCMC diagnostics and the expected-violation analysis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.probdb.diagnostics import (
    ChainTrace,
    constraint_adjusted_probabilities,
    effective_sample_size,
    expected_new_violations,
    expected_violation_curve,
    geweke_zscore,
    has_converged,
)


# ----------------------------------------------------------------------
# Geweke / ESS
# ----------------------------------------------------------------------
def test_chain_trace_records():
    trace = ChainTrace()
    for v in (1.0, 2.0, 3.0):
        trace.record(v)
    assert len(trace) == 3
    np.testing.assert_array_equal(trace.array, [1.0, 2.0, 3.0])


def test_geweke_small_for_stationary_chain():
    rng = np.random.default_rng(0)
    z = geweke_zscore(rng.normal(size=2000))
    assert abs(z) < 3.0


def test_geweke_large_for_trending_chain():
    z = geweke_zscore(np.linspace(0.0, 10.0, 500))
    assert abs(z) > 10.0


def test_geweke_constant_chain_is_converged():
    assert geweke_zscore(np.ones(100)) == 0.0
    assert has_converged(np.ones(100))


def test_geweke_constant_windows_different_means():
    x = np.concatenate([np.zeros(50), np.ones(50)])
    # First 10% and last 50% windows both have zero variance only if
    # the last window is constant; here the last 50 are all ones.
    z = geweke_zscore(np.concatenate([np.zeros(100), np.ones(100)]),
                      first=0.1, last=0.4)
    assert math.isinf(z) or abs(z) > 10


def test_geweke_validates_inputs():
    with pytest.raises(ValueError, match="1-D"):
        geweke_zscore(np.ones((3, 3)))
    with pytest.raises(ValueError, match="too short"):
        geweke_zscore(np.ones(3))
    with pytest.raises(ValueError, match="window fractions"):
        geweke_zscore(np.ones(100), first=0.7, last=0.7)


def test_has_converged_flags_trend():
    assert not has_converged(np.linspace(0, 5, 400))
    rng = np.random.default_rng(1)
    assert has_converged(rng.normal(size=400))


def test_ess_iid_close_to_n():
    rng = np.random.default_rng(2)
    n = 4000
    ess = effective_sample_size(rng.normal(size=n))
    assert ess > 0.5 * n


def test_ess_autocorrelated_much_below_n():
    rng = np.random.default_rng(3)
    n = 2000
    x = np.empty(n)
    x[0] = 0.0
    for i in range(1, n):  # AR(1), rho = 0.95
        x[i] = 0.95 * x[i - 1] + rng.normal()
    ess = effective_sample_size(x)
    assert ess < 0.25 * n


def test_ess_constant_chain():
    assert effective_sample_size(np.ones(100)) == 100.0


def test_ess_validates_length():
    with pytest.raises(ValueError, match="too short"):
        effective_sample_size(np.ones(2))


# ----------------------------------------------------------------------
# Expected violations (Appendix A)
# ----------------------------------------------------------------------
def test_adjusted_probabilities_finite_weight():
    p = constraint_adjusted_probabilities([0.5, 0.5], [0, 1], weight=1.0)
    # The violating candidate is down-weighted by e^{-1}.
    assert p[0] == pytest.approx(1.0 / (1.0 + math.exp(-1)))
    assert p.sum() == pytest.approx(1.0)


def test_adjusted_probabilities_hard_weight_excludes_violators():
    p = constraint_adjusted_probabilities(
        [0.2, 0.3, 0.5], [0, 1, 2], weight=math.inf)
    np.testing.assert_allclose(p, [1.0, 0.0, 0.0])


def test_adjusted_probabilities_all_violating_falls_back():
    p = constraint_adjusted_probabilities(
        [0.4, 0.6], [2, 1], weight=math.inf)
    # Minimum-violation candidate takes all the mass.
    np.testing.assert_allclose(p, [0.0, 1.0])


def test_adjusted_probabilities_zero_base_mass_on_feasible():
    p = constraint_adjusted_probabilities(
        [0.0, 1.0], [0, 3], weight=1e9)
    np.testing.assert_allclose(p, [1.0, 0.0])


def test_adjusted_probabilities_validates():
    with pytest.raises(ValueError, match="shapes"):
        constraint_adjusted_probabilities([0.5], [0, 1], 1.0)
    with pytest.raises(ValueError, match=">= 0"):
        constraint_adjusted_probabilities([-0.1, 1.1], [0, 0], 1.0)


def test_expected_new_violations_zero_weight_is_base_expectation():
    value = expected_new_violations([0.5, 0.5], [0.0, 2.0], weight=0.0)
    assert value == pytest.approx(1.0)


def test_expected_violation_curve_is_decreasing():
    """Theorem 2's shape: exponential suppression as weights grow."""
    curve = expected_violation_curve(
        [0.25, 0.25, 0.25, 0.25], [0, 1, 2, 3],
        weights=[0.0, 0.5, 1.0, 2.0, 4.0, 8.0])
    values = [v for _, v in curve]
    assert all(a >= b for a, b in zip(values, values[1:]))
    assert values[-1] < 0.01 * max(values[0], 1e-12)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_property_higher_weight_never_increases_expectation(data):
    d = data.draw(st.integers(2, 6))
    probs = data.draw(st.lists(st.floats(0.01, 1.0), min_size=d,
                               max_size=d))
    vios = data.draw(st.lists(st.integers(0, 4), min_size=d, max_size=d))
    w1 = data.draw(st.floats(0.0, 5.0))
    w2 = data.draw(st.floats(0.0, 5.0))
    lo, hi = min(w1, w2), max(w1, w2)
    e_lo = expected_new_violations(probs, vios, lo)
    e_hi = expected_new_violations(probs, vios, hi)
    assert e_hi <= e_lo + 1e-9
