"""Unit and property tests for quantisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Quantizer, Relation,
    Table, quantize_table,
)
from repro.schema.quantize import dequantize_table


class TestQuantizer:
    def test_encode_bounds(self):
        quant = Quantizer(NumericalDomain(0, 10), 5)
        codes = quant.encode(np.array([0.0, 9.99, 10.0, 2.5]))
        assert codes.min() >= 0 and codes.max() <= 4
        assert codes[0] == 0 and codes[2] == 4

    def test_decode_inside_bins(self):
        dom = NumericalDomain(0, 10)
        quant = Quantizer(dom, 5)
        rng = np.random.default_rng(0)
        vals = quant.decode(np.array([0, 2, 4]), rng)
        assert 0 <= vals[0] < 2
        assert 4 <= vals[1] < 6
        assert 8 <= vals[2] <= 10

    def test_centers(self):
        quant = Quantizer(NumericalDomain(0, 10), 5)
        np.testing.assert_allclose(quant.centers(), [1, 3, 5, 7, 9])

    def test_requires_numerical(self):
        with pytest.raises(TypeError):
            Quantizer(CategoricalDomain(["a"]), 2)

    def test_bad_q(self):
        with pytest.raises(ValueError):
            Quantizer(NumericalDomain(0, 1), 0)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_stays_in_bin(self, values):
        quant = Quantizer(NumericalDomain(0, 100), 8)
        codes = quant.encode(np.array(values))
        decoded = quant.decode(codes, np.random.default_rng(0))
        assert np.array_equal(quant.encode(decoded), codes)


class TestQuantizeTable:
    def setup_method(self):
        self.relation = Relation([
            Attribute("c", CategoricalDomain(["a", "b"])),
            Attribute("x", NumericalDomain(0, 100)),
        ])
        self.table = Table.from_rows(self.relation, [
            ["a", 5.0], ["b", 55.0], ["a", 95.0],
        ])

    def test_numeric_becomes_categorical(self):
        disc, quants = quantize_table(self.table, q=4)
        assert disc.relation["x"].is_categorical
        assert disc.relation["x"].domain.size == 4
        assert "x" in quants

    def test_categorical_untouched(self):
        disc, _ = quantize_table(self.table, q=4)
        assert disc.column("c").tolist() == self.table.column("c").tolist()

    def test_dequantize_roundtrip_bins(self):
        disc, quants = quantize_table(self.table, q=4)
        rng = np.random.default_rng(0)
        back = dequantize_table(disc, self.relation, quants, rng)
        orig_bins = quants["x"].encode(self.table.column("x"))
        back_bins = quants["x"].encode(back.column("x"))
        assert np.array_equal(orig_bins, back_bins)
