"""Cross-module property tests: invariants that tie the substrates to
the core pipeline.

These complement the per-module tests with hypothesis-driven checks on
randomly generated schemas, FD sets, and tables — the places where a
representation bug would silently corrupt the pipeline rather than
crash it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import repair_violations
from repro.constraints import count_violations
from repro.constraints.dc import DenialConstraint, active_dc_map
from repro.constraints.parser import parse_dc
from repro.constraints.predicate import (
    CONST, Operator, Predicate, TUPLE_I, TUPLE_J,
)
from repro.constraints.violations import violating_pair_percentage
from repro.core import Kamino, group_small_domains, sequence_attributes
from repro.core.hyper import HyperSpec
from repro.io.dc_text import format_dc
from repro.privacy import kamino_epsilon
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def schemas(min_attrs: int = 2, max_attrs: int = 6):
    """Random all-categorical relations a1..ak with domain sizes 2-9."""
    @st.composite
    def build(draw):
        k = draw(st.integers(min_attrs, max_attrs))
        sizes = draw(st.lists(st.integers(2, 9), min_size=k, max_size=k))
        return Relation([
            Attribute(f"a{i}", CategoricalDomain(
                [f"v{i}_{j}" for j in range(s)]))
            for i, s in enumerate(sizes)
        ])
    return build()


def acyclic_fd_sets(relation: Relation, draw) -> list[DenialConstraint]:
    """Random FDs whose determinant index is below the dependent index
    (guaranteeing an acyclic FD graph)."""
    names = relation.names
    n_fds = draw(st.integers(0, min(4, len(names) - 1)))
    fds = []
    for f in range(n_fds):
        dep_idx = draw(st.integers(1, len(names) - 1))
        det_idx = draw(st.integers(0, dep_idx - 1))
        fds.append(DenialConstraint.fd(
            f"fd{f}", names[det_idx], names[dep_idx], hard=True))
    return fds


def tables_for(relation: Relation, draw, max_rows: int = 12) -> Table:
    n = draw(st.integers(0, max_rows))
    cols = {}
    for attr in relation:
        cols[attr.name] = np.asarray(
            draw(st.lists(st.integers(0, attr.domain.size - 1),
                          min_size=n, max_size=n)), dtype=np.int64)
    return Table(relation, cols)


# ----------------------------------------------------------------------
# Sequencing
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=60, deadline=None)
def test_sequence_is_always_a_permutation(data):
    relation = data.draw(schemas())
    fds = acyclic_fd_sets(relation, data.draw)
    seq = sequence_attributes(relation, fds)
    assert sorted(seq) == sorted(relation.names)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_sequence_places_determinants_before_dependents(data):
    """The paper's Algorithm 4 goal, guaranteed by the topological
    refinement for acyclic FD graphs — for dependents determined by a
    *single* FD (multi-FD dependents stay in greedy position to avoid
    unsatisfiable joint constraints; see sequencing module docs)."""
    relation = data.draw(schemas(min_attrs=3))
    fds = acyclic_fd_sets(relation, data.draw)
    seq = sequence_attributes(relation, fds)
    position = {a: i for i, a in enumerate(seq)}
    determined_by = {}
    for dc in fds:
        _, dependent = dc.as_fd()
        determined_by[dependent] = determined_by.get(dependent, 0) + 1
    for dc in fds:
        determinant, dependent = dc.as_fd()
        if determined_by[dependent] != 1:
            continue
        for det in determinant:
            assert position[det] < position[dependent], (
                f"{det} -> {dependent} inverted in {seq}")


def test_sequence_mutual_fds_keep_both_orders_valid():
    relation = Relation([
        Attribute("x", CategoricalDomain(["a", "b"])),
        Attribute("y", CategoricalDomain(["c", "d", "e"])),
        Attribute("z", CategoricalDomain(["f", "g"])),
    ])
    fds = [DenialConstraint.fd("xy", "x", "y"),
           DenialConstraint.fd("yx", "y", "x"),
           DenialConstraint.fd("yz", "y", "z")]
    seq = sequence_attributes(relation, fds)
    assert sorted(seq) == ["x", "y", "z"]
    # z depends on the {x, y} cycle, so it must come after both.
    assert seq.index("z") > max(seq.index("x"), seq.index("y"))


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_group_small_domains_is_a_partition(data):
    relation = data.draw(schemas())
    seq = sequence_attributes(relation, [])
    cap = data.draw(st.integers(2, 200))
    groups = group_small_domains(relation, seq, cap)
    flattened = [a for g in groups for a in g]
    assert flattened == seq
    for group in groups:
        size = int(np.prod([relation[a].domain.size for a in group]))
        if len(group) > 1:
            assert size <= cap


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_active_dc_map_assigns_each_dc_once_at_cover(data):
    relation = data.draw(schemas(min_attrs=3))
    fds = acyclic_fd_sets(relation, data.draw)
    seq = sequence_attributes(relation, fds)
    mapping = active_dc_map(fds, seq)
    assigned = [dc.name for dcs in mapping.values() for dc in dcs]
    assert sorted(assigned) == sorted(dc.name for dc in fds)
    for pos, attr in enumerate(seq):
        prefix = set(seq[: pos + 1])
        for dc in mapping[attr]:
            assert dc.attributes <= prefix
            # Not coverable one position earlier.
            assert not dc.attributes <= prefix - {attr}


# ----------------------------------------------------------------------
# Hyper-attribute encode/decode
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=40, deadline=None)
def test_hyper_encode_decode_identity(data):
    relation = data.draw(schemas(min_attrs=2, max_attrs=5))
    seq = sequence_attributes(relation, [])
    groups = group_small_domains(relation, seq, 64)
    spec = HyperSpec(relation, groups)
    table = tables_for(relation, data.draw)
    working = spec.encode_table(table)
    for w in spec.working_sequence:
        if not spec.is_hyper(w):
            continue
        decoded = spec.decode_codes(w, working.column(w))
        for member, col in decoded.items():
            np.testing.assert_array_equal(col, table.column(member))


# ----------------------------------------------------------------------
# DC text format
# ----------------------------------------------------------------------
_OPS = [Operator.EQ, Operator.NE, Operator.GT, Operator.GE, Operator.LT,
        Operator.LE]


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_format_parse_round_trip_random_dcs(data):
    n_preds = data.draw(st.integers(1, 4))
    preds = []
    for _ in range(n_preds):
        op = data.draw(st.sampled_from(_OPS))
        lhs_attr = data.draw(st.sampled_from(["a", "b", "c"]))
        if data.draw(st.booleans()):
            const = data.draw(st.one_of(
                st.integers(-100, 100),
                st.text(
                    alphabet=st.characters(
                        whitelist_categories=["Ll", "Lu", "Nd"]),
                    min_size=1, max_size=6)))
            preds.append(Predicate(TUPLE_I, lhs_attr, op, CONST, None,
                                   const))
        else:
            rhs_attr = data.draw(st.sampled_from(["a", "b", "c"]))
            preds.append(Predicate(TUPLE_I, lhs_attr, op, TUPLE_J,
                                   rhs_attr))
    dc = DenialConstraint("rt", preds, hard=data.draw(st.booleans()))
    text = format_dc(dc)
    back = parse_dc(text, name="rt", hard=dc.hard)
    assert len(back.predicates) == len(dc.predicates)
    for p, q in zip(dc.predicates, back.predicates):
        assert (p.lhs_var, p.lhs_attr, p.op) == (q.lhs_var, q.lhs_attr,
                                                 q.op)
        assert p.rhs_var == q.rhs_var
        if p.is_constant:
            assert q.const == p.const
        else:
            assert q.rhs_attr == p.rhs_attr
    # Formatting is a fixed point after one round.
    assert format_dc(back) == text


# ----------------------------------------------------------------------
# Violation counting bounds
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=40, deadline=None)
def test_violation_counts_within_bounds(data):
    relation = data.draw(schemas(min_attrs=2, max_attrs=4))
    fds = acyclic_fd_sets(relation, data.draw)
    table = tables_for(relation, data.draw)
    for dc in fds:
        count = count_violations(dc, table)
        assert 0 <= count <= table.n * (table.n - 1) // 2
        pct = violating_pair_percentage(dc, table)
        assert 0.0 <= pct <= 100.0


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_violations_monotone_under_row_subsets(data):
    """The paper's §2.1 monotonicity: V(phi, D_hat) subset of V(phi, D)
    for D_hat subset of D — so counts can only shrink."""
    relation = data.draw(schemas(min_attrs=2, max_attrs=4))
    fds = acyclic_fd_sets(relation, data.draw)
    table = tables_for(relation, data.draw)
    if table.n == 0 or not fds:
        return
    keep = data.draw(st.integers(0, table.n))
    subset = table.take(np.arange(keep))
    for dc in fds:
        assert count_violations(dc, subset) <= count_violations(dc, table)


# ----------------------------------------------------------------------
# Repair
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=20, deadline=None)
def test_repair_eliminates_fd_violations(data):
    relation = data.draw(schemas(min_attrs=2, max_attrs=4))
    fds = acyclic_fd_sets(relation, data.draw)
    table = tables_for(relation, data.draw)
    repaired = repair_violations(table, fds, seed=0)
    for dc in fds:
        assert count_violations(dc, repaired) == 0
    assert repaired.n == table.n


# ----------------------------------------------------------------------
# Accountant monotonicity
# ----------------------------------------------------------------------
BASE = dict(sigma_g=2.0, sigma_d=1.2, T=50, k=5, b=16, n=2000)


@given(scale=st.floats(1.01, 4.0))
@settings(max_examples=25, deadline=None)
def test_epsilon_decreases_with_more_dpsgd_noise(scale):
    lo, _ = kamino_epsilon(1e-6, **{**BASE, "sigma_d": BASE["sigma_d"]
                                    * scale})
    hi, _ = kamino_epsilon(1e-6, **BASE)
    assert lo < hi


@given(scale=st.floats(1.01, 4.0))
@settings(max_examples=25, deadline=None)
def test_epsilon_decreases_with_more_histogram_noise(scale):
    lo, _ = kamino_epsilon(1e-6, **{**BASE, "sigma_g": BASE["sigma_g"]
                                    * scale})
    hi, _ = kamino_epsilon(1e-6, **BASE)
    assert lo < hi


@given(factor=st.integers(2, 8))
@settings(max_examples=25, deadline=None)
def test_epsilon_decreases_with_larger_population(factor):
    """Sub-sampling amplification: same batch size over more rows."""
    lo, _ = kamino_epsilon(1e-6, **{**BASE, "n": BASE["n"] * factor})
    hi, _ = kamino_epsilon(1e-6, **BASE)
    assert lo < hi


# ----------------------------------------------------------------------
# End-to-end hard-DC preservation across seeds
# ----------------------------------------------------------------------
def _cap(params):
    params.iterations = min(params.iterations, 12)
    params.embed_dim = 6


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_pipeline_preserves_hard_fd_across_seeds(seed):
    rng = np.random.default_rng(seed)
    relation = Relation([
        Attribute("g", CategoricalDomain(["x", "y", "z"])),
        Attribute("h", CategoricalDomain(["p", "q", "r", "s"])),
        Attribute("w", NumericalDomain(0, 50, integer=True, bins=8)),
    ])
    g = rng.integers(0, 3, 150)
    table = Table(relation, {
        "g": g,
        "h": (g + 1) % 3,                       # FD g -> h
        "w": rng.integers(0, 51, 150).astype(float),
    })
    fd = DenialConstraint.fd("g_h", "g", "h", hard=True)
    kamino = Kamino(relation, [fd], epsilon=1.0, delta=1e-6, seed=seed,
                    params_override=_cap)
    result = kamino.fit_sample(table)
    assert count_violations(fd, result.table) == 0
