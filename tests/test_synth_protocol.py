"""Protocol-conformance suite for every registered synthesis backend.

Each backend must honour the staged contract of :mod:`repro.synth`:
``fit``/``sample`` split, ``fit_sample == fit().sample()``, seed
determinism, save -> load -> sample round-trips, and a budget ledger
whose total equals the configured epsilon.  The suite is parametrized
over the registry, so a newly registered backend is conformance-tested
by construction.

The pinned digests at the bottom freeze the *pre-refactor* fused
outputs: the staged split must not move a single bit of any baseline's
``fit_sample``.
"""

import hashlib

import numpy as np
import pytest

from repro.datasets import adult
from repro.synth import (
    BACKENDS, BackendUnavailable, WIDE_TABLE_WIDTH, available_backends,
    backend_names, load_fitted, make_synthesizer, peek_method,
    register_backend, resolve_backend, route,
)
from repro.synth.ledger import BudgetLedger, Spend


def table_digest(table) -> str:
    h = hashlib.sha256()
    for name in table.relation.names:
        h.update(np.ascontiguousarray(table.column(name)).tobytes())
    return h.hexdigest()[:16]


#: Bench-scale constructor knobs so the whole suite runs in seconds.
FAST_KWARGS = {
    "kamino": {"params_override": lambda p: (
        setattr(p, "iterations", min(p.iterations, 6)),
        setattr(p, "embed_dim", min(p.embed_dim, 8)))},
    "privbayes": {},
    "pategan": {"iterations": 4},
    "dpvae": {"iterations": 6},
    "nist_mst": {},
    "cleaning": {},
}

ALL_BACKENDS = sorted(BACKENDS)


@pytest.fixture(scope="module")
def dataset():
    return adult(n=160, seed=0)


@pytest.fixture(scope="module")
def fitted_by_backend(dataset):
    """One fit per backend, shared across the conformance tests."""
    out = {}
    for name in ALL_BACKENDS:
        synth = make_synthesizer(name, 1.0, delta=1e-6, seed=0,
                                 dcs=dataset.dcs, **FAST_KWARGS[name])
        out[name] = synth.fit(dataset.table)
    return out


class TestRegistry:
    def test_all_six_registered(self):
        assert set(backend_names()) == {
            "kamino", "privbayes", "pategan", "dpvae", "nist_mst",
            "cleaning"}

    def test_all_available_here(self):
        # The test environment has every optional dep installed.
        assert all(reason is None
                   for reason in available_backends().values())

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            resolve_backend("nope")

    def test_unavailable_backend_reports_not_raises_importerror(self):
        register_backend("broken", "repro.no_such_module:Thing")
        try:
            reasons = available_backends()
            assert reasons["broken"] is not None
            with pytest.raises(BackendUnavailable) as err:
                make_synthesizer("broken", 1.0)
            assert "broken" in str(err.value)
        finally:
            del BACKENDS["broken"]

    def test_infinite_epsilon_substituted_for_baselines(self):
        synth = make_synthesizer("privbayes", float("inf"))
        assert np.isfinite(synth.epsilon)
        kam = make_synthesizer("kamino", float("inf"))
        assert np.isinf(kam.epsilon)


class TestRouter:
    def test_dcs_route_to_kamino(self, dataset):
        assert route(dataset.table, dataset.dcs) == "kamino"
        assert route(constraints_present=True, width=50) == "kamino"

    def test_wide_unconstrained_routes_to_marginal_backend(self):
        assert route(width=WIDE_TABLE_WIDTH,
                     constraints_present=False) == "nist_mst"

    def test_narrow_unconstrained_routes_to_privbayes(self):
        assert route(width=WIDE_TABLE_WIDTH - 1,
                     constraints_present=False) == "privbayes"

    def test_table_shape_inferred(self, dataset):
        # adult has 15 columns and (without DCs) is wide.
        assert route(dataset.table, ()) == "nist_mst"


class TestConformance:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_fused_equals_staged(self, name, dataset, fitted_by_backend):
        synth = make_synthesizer(name, 1.0, delta=1e-6, seed=0,
                                 dcs=dataset.dcs, **FAST_KWARGS[name])
        fused = synth.fit_sample(dataset.table, n=60)
        staged = fitted_by_backend[name].sample(60)
        assert table_digest(fused) == table_digest(staged)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_seed_determinism(self, name, fitted_by_backend):
        fitted = fitted_by_backend[name]
        a = fitted.sample(40, seed=7)
        b = fitted.sample(40, seed=7)
        c = fitted.sample(40, seed=8)
        assert table_digest(a) == table_digest(b)
        assert table_digest(a) != table_digest(c)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_repeated_default_draws_identical(self, name,
                                              fitted_by_backend):
        fitted = fitted_by_backend[name]
        assert table_digest(fitted.sample(30)) \
            == table_digest(fitted.sample(30))

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_save_load_sample_round_trip(self, name, dataset,
                                         fitted_by_backend, tmp_path):
        fitted = fitted_by_backend[name]
        path = str(tmp_path / f"{name}.npz")
        fitted.save(path)
        loaded = load_fitted(path, dataset.relation, dcs=dataset.dcs)
        assert loaded.method == name
        assert table_digest(loaded.sample(40, seed=5)) \
            == table_digest(fitted.sample(40, seed=5))
        # The default (fused-resume) draw survives the round trip too.
        assert table_digest(loaded.sample(30)) \
            == table_digest(fitted.sample(30))

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_ledger_total_equals_budget(self, name, fitted_by_backend):
        ledger = fitted_by_backend[name].ledger
        assert len(ledger) >= 1
        assert ledger.total_epsilon() == pytest.approx(1.0)
        assert all(s.epsilon >= 0 and s.delta >= 0 for s in ledger)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_default_n_is_fit_size(self, name, dataset,
                                   fitted_by_backend):
        assert fitted_by_backend[name].sample().n == dataset.table.n

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_payload_self_describes(self, name, fitted_by_backend,
                                    tmp_path):
        path = str(tmp_path / f"{name}.npz")
        fitted_by_backend[name].save(path)
        # Kamino keeps its native format (peek returns None); the
        # others carry the repro.synth/1 payload tag.
        expected = None if name == "kamino" else name
        assert peek_method(path) == expected


class TestTraceUniformity:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_phases_and_draws_recorded(self, name, dataset):
        from repro.obs import RunTrace
        trace = RunTrace(label=f"conformance:{name}")
        synth = make_synthesizer(name, 1.0, delta=1e-6, seed=0,
                                 dcs=dataset.dcs, **FAST_KWARGS[name])
        fitted = synth.fit(dataset.table, trace=trace)
        no_trace = table_digest(fitted.sample(30, seed=2))
        traced = table_digest(fitted.sample(30, seed=2, trace=trace))
        assert traced == no_trace  # tracing never changes the draw
        doc = trace.to_dict()
        assert doc["fit"]["phases"], f"{name} recorded no fit phases"
        assert doc["samples"], f"{name} recorded no sample traces"


class TestLedgerUnit:
    def test_spend_returns_epsilon(self):
        ledger = BudgetLedger()
        assert ledger.spend("laplace:x", 0.25) == 0.25
        ledger.spend("gaussian:y", 0.75, 1e-6)
        assert ledger.total_epsilon() == pytest.approx(1.0)
        assert ledger.total_delta() == pytest.approx(1e-6)

    def test_negative_spend_rejected(self):
        with pytest.raises(ValueError):
            BudgetLedger().spend("bad", -0.1)

    def test_round_trip(self):
        ledger = BudgetLedger()
        ledger.spend("a", 0.5)
        ledger.spend("b", 0.5, 1e-7)
        back = BudgetLedger.from_dict(ledger.to_dict())
        assert list(back) == [Spend("a", 0.5, 0.0),
                              Spend("b", 0.5, 1e-7)]


class TestPinnedPreRefactorOutputs:
    """The staged split must not move a bit of the fused outputs.

    Digests were captured from the fused single-method implementations
    before the protocol refactor (adult n=250 seed=0; epsilon=1,
    delta=1e-6, seed=0, n=120).
    """

    PINS = {
        "privbayes": ("0e57014080c959d1", {}),
        "nist_mst": ("dd414272aa85049e", {}),
        "dpvae": ("b0ee3114cb33fa37", {"iterations": 15}),
        "pategan": ("b9335f4948cc8579", {"iterations": 10}),
    }

    @pytest.mark.parametrize("name", sorted(PINS))
    def test_fit_sample_bit_identical_to_pre_refactor(self, name):
        pin, kwargs = self.PINS[name]
        table = adult(n=250, seed=0).table
        synth = make_synthesizer(name, 1.0, delta=1e-6, seed=0, **kwargs)
        assert table_digest(synth.fit_sample(table, n=120)) == pin
