"""Privacy-substrate tests: mechanisms, RDP accounting, DP-SGD."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Linear, cross_entropy_loss
from repro.privacy import (
    DPSGD, GaussianMechanism, LaplaceMechanism, calibrate_sgm_sigma,
    gaussian_sigma, histogram_l2_sensitivity, kamino_epsilon, kamino_rdp,
    rdp_gaussian, rdp_sgm, rdp_to_epsilon, sgm_epsilon,
    violation_matrix_sensitivity,
)


class TestMechanisms:
    def test_gaussian_noise_scale(self):
        rng = np.random.default_rng(0)
        mech = GaussianMechanism(sensitivity=2.0, sigma=3.0, rng=rng)
        out = mech.release(np.zeros(200_000))
        assert np.std(out) == pytest.approx(6.0, rel=0.02)

    def test_gaussian_rdp_scale_invariant(self):
        rng = np.random.default_rng(0)
        a = GaussianMechanism(1.0, 2.0, rng)
        b = GaussianMechanism(100.0, 2.0, rng)
        assert a.rdp(8) == b.rdp(8) == pytest.approx(1.0)

    def test_laplace_noise_scale(self):
        rng = np.random.default_rng(0)
        mech = LaplaceMechanism(sensitivity=1.0, epsilon=0.5, rng=rng)
        out = mech.release(np.zeros(200_000))
        # Laplace std = sqrt(2) * scale.
        assert np.std(out) == pytest.approx(np.sqrt(2) * 2.0, rel=0.02)

    def test_gaussian_sigma_formula(self):
        sigma = gaussian_sigma(1.0, 1e-5)
        assert sigma == pytest.approx(np.sqrt(2 * np.log(1.25e5)))

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GaussianMechanism(-1.0, 1.0, rng)
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, 0.0, rng)
        with pytest.raises(ValueError):
            LaplaceMechanism(1.0, 0.0, rng)
        with pytest.raises(ValueError):
            gaussian_sigma(0.0, 1e-5)
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, 2.0)


class TestSensitivity:
    def test_histogram(self):
        assert histogram_l2_sensitivity() == pytest.approx(math.sqrt(2))

    def test_lemma1_binary_only(self):
        # S_w = |phi_b| * sqrt(L^2 - L)
        s = violation_matrix_sensitivity(0, 2, 50)
        assert s == pytest.approx(2 * math.sqrt(50 * 49))

    def test_lemma1_mixed(self):
        s = violation_matrix_sensitivity(3, 1, 10)
        assert s == pytest.approx(3 + math.sqrt(90))

    def test_lemma1_validation(self):
        with pytest.raises(ValueError):
            violation_matrix_sensitivity(-1, 0, 10)
        with pytest.raises(ValueError):
            violation_matrix_sensitivity(0, 1, 0)


class TestRdpAccountant:
    def test_full_sampling_equals_gaussian(self):
        for alpha in (2, 8, 32):
            assert rdp_sgm(1.0, 1.3, alpha) == pytest.approx(
                rdp_gaussian(1.3, alpha))

    def test_subsampling_amplifies(self):
        assert rdp_sgm(0.01, 1.1, 8) < rdp_sgm(1.0, 1.1, 8)

    def test_monotone_in_q(self):
        values = [rdp_sgm(q, 1.1, 8) for q in (0.001, 0.01, 0.1, 1.0)]
        assert values == sorted(values)

    def test_monotone_in_sigma(self):
        values = [rdp_sgm(0.05, s, 8) for s in (2.0, 1.5, 1.0, 0.7)]
        assert values == sorted(values)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            rdp_sgm(0.0, 1.0, 8)
        with pytest.raises(ValueError):
            rdp_sgm(0.5, -1.0, 8)
        with pytest.raises(ValueError):
            rdp_sgm(0.5, 1.0, 1)
        with pytest.raises(ValueError):
            rdp_gaussian(0.0, 2)

    def test_conversion_decreasing_in_delta(self):
        eps_tight, _ = rdp_to_epsilon(lambda a: a / 8.0, 1e-9)
        eps_loose, _ = rdp_to_epsilon(lambda a: a / 8.0, 1e-3)
        assert eps_loose < eps_tight

    def test_conversion_bad_delta(self):
        with pytest.raises(ValueError):
            rdp_to_epsilon(lambda a: 1.0, 0.0)

    def test_kamino_rdp_composition_structure(self):
        """Theorem 1 is additive over the three mechanism families."""
        common = dict(sigma_g=4.0, sigma_d=1.1, T=10, k=5, b=16, n=1000)
        base = kamino_rdp(8, **common)
        with_w = kamino_rdp(8, **common, learn_weights=True, sigma_w=2.0,
                            L_w=50)
        assert with_w == pytest.approx(
            base + rdp_sgm(50 / 1000, 2.0, 8))
        two_hist = kamino_rdp(8, **common, n_hist=2)
        assert two_hist == pytest.approx(base + rdp_gaussian(4.0, 8))

    def test_kamino_rdp_submodel_override(self):
        common = dict(sigma_g=4.0, sigma_d=1.1, T=10, b=16, n=1000)
        full = kamino_rdp(8, k=5, **common)
        fewer = kamino_rdp(8, k=5, n_submodels=2, **common)
        assert fewer < full

    def test_kamino_epsilon_monotone_in_T(self):
        eps_small, _ = kamino_epsilon(1e-6, sigma_g=6.0, sigma_d=1.2,
                                      T=10, k=5, b=16, n=5000)
        eps_large, _ = kamino_epsilon(1e-6, sigma_g=6.0, sigma_d=1.2,
                                      T=200, k=5, b=16, n=5000)
        assert eps_small < eps_large

    def test_calibration_meets_budget(self):
        sigma = calibrate_sgm_sigma(1.0, 1e-6, q=0.01, steps=100)
        assert sgm_epsilon(1e-6, 0.01, sigma, 100) <= 1.0
        # And it is nearly tight: 10% less noise should break the budget.
        assert sgm_epsilon(1e-6, 0.01, sigma * 0.9, 100) > 1.0

    def test_calibration_unreachable(self):
        with pytest.raises(ValueError):
            calibrate_sgm_sigma(1e-9, 1e-6, q=1.0, steps=10_000,
                                sigma_hi=5.0)

    @given(st.integers(2, 32), st.floats(0.5, 3.0),
           st.floats(0.001, 0.999))
    @settings(max_examples=50, deadline=None)
    def test_sgm_rdp_nonnegative(self, alpha, sigma, q):
        assert rdp_sgm(q, sigma, alpha) >= 0.0


class TestDPSGD:
    def _setup(self, noise=0.0, clip=1.0, batch=4):
        rng = np.random.default_rng(0)
        lin = Linear(3, 2, rng)
        x = rng.normal(size=(batch, 3))
        y = rng.integers(0, 2, batch)
        opt = DPSGD(lin.parameters(), lr=0.1, clip_norm=clip,
                    noise_scale=noise, expected_batch=batch, rng=rng)
        return lin, x, y, opt

    def test_clip_factors_bound_norms(self):
        lin, x, y, opt = self._setup(clip=0.01)
        opt.zero_grad()
        _, g = cross_entropy_loss(lin.forward(x), y)
        lin.backward(g, per_sample=True)
        factors = opt.clip_factors()
        batch = x.shape[0]
        clipped_sq = np.zeros(batch)
        for p in lin.parameters():
            flat = (p.grad_sample * factors.reshape(-1, *([1] *
                    (p.grad_sample.ndim - 1)))).reshape(batch, -1)
            clipped_sq += np.einsum("bi,bi->b", flat, flat)
        assert np.all(np.sqrt(clipped_sq) <= 0.01 + 1e-9)

    def test_noiseless_unclipped_matches_plain_sgd(self):
        lin, x, y, opt = self._setup(noise=0.0, clip=1e9)
        before = [p.value.copy() for p in lin.parameters()]
        opt.zero_grad()
        _, g = cross_entropy_loss(lin.forward(x), y)
        lin.backward(g, per_sample=True)
        summed = [p.grad.copy() for p in lin.parameters()]
        opt.step()
        for p, b, s in zip(lin.parameters(), before, summed):
            np.testing.assert_allclose(p.value, b - 0.1 * s / x.shape[0],
                                       atol=1e-12)

    def test_empty_batch_still_noises(self):
        rng = np.random.default_rng(0)
        lin = Linear(2, 2, rng)
        opt = DPSGD(lin.parameters(), lr=0.1, clip_norm=1.0,
                    noise_scale=1.0, expected_batch=8, rng=rng)
        before = [p.value.copy() for p in lin.parameters()]
        opt.zero_grad()
        opt.step()
        moved = any(not np.allclose(p.value, b)
                    for p, b in zip(lin.parameters(), before))
        assert moved  # noise applied even with no sampled rows

    def test_validation(self):
        rng = np.random.default_rng(0)
        lin = Linear(2, 2, rng)
        with pytest.raises(ValueError):
            DPSGD(lin.parameters(), 0.1, clip_norm=0.0, noise_scale=1.0,
                  expected_batch=4, rng=rng)
        with pytest.raises(ValueError):
            DPSGD(lin.parameters(), 0.1, clip_norm=1.0, noise_scale=-1.0,
                  expected_batch=4, rng=rng)
        with pytest.raises(ValueError):
            DPSGD(lin.parameters(), 0.1, clip_norm=1.0, noise_scale=1.0,
                  expected_batch=0, rng=rng)
