"""Baseline-synthesizer tests: schemas respected, budgets consumed,
and the cleaning step repairs what it claims to repair."""

import numpy as np
import pytest

from repro.baselines import (
    DPVae, NistMst, PateGan, PrivBayes, repair_violations,
)
from repro.baselines.encoding import MixedEncoder
from repro.constraints import count_violations, parse_dc
from repro.datasets import load
from repro.schema import (
    Attribute, CategoricalDomain, NumericalDomain, Relation, Table,
)


@pytest.fixture(scope="module")
def adult_small():
    return load("adult", n=250, seed=0)


def check_schema(table, relation):
    assert table.relation.names == relation.names
    for attr in relation:
        assert attr.domain.validate_column(table.column(attr.name))


class TestMixedEncoder:
    def test_roundtrip_deterministic(self):
        ds = load("br2000", n=60, seed=0)
        enc = MixedEncoder(ds.relation)
        X = enc.encode(ds.table)
        back = enc.decode(X * 10.0, np.random.default_rng(0),
                          stochastic=False)
        for attr in ds.relation:
            if attr.is_categorical:
                assert np.array_equal(back.column(attr.name),
                                      ds.table.column(attr.name))

    def test_numeric_scaling(self):
        ds = load("adult", n=40, seed=0)
        enc = MixedEncoder(ds.relation)
        X = enc.encode(ds.table)
        assert X.min() >= 0.0 and X.max() <= 1.0


@pytest.mark.parametrize("cls,kwargs", [
    (PrivBayes, {}),
    (NistMst, {}),
    (DPVae, {"iterations": 15}),
    (PateGan, {"iterations": 10}),
])
def test_baseline_output_schema(adult_small, cls, kwargs):
    synth = cls(epsilon=1.0, delta=1e-6, seed=0, **kwargs)
    out = synth.fit_sample(adult_small.table, n=120)
    assert out.n == 120
    check_schema(out, adult_small.relation)


@pytest.mark.parametrize("cls,kwargs", [
    (PrivBayes, {}),
    (NistMst, {}),
])
def test_baseline_deterministic_given_seed(adult_small, cls, kwargs):
    a = cls(epsilon=1.0, seed=7, **kwargs).fit_sample(adult_small.table,
                                                      n=50)
    b = cls(epsilon=1.0, seed=7, **kwargs).fit_sample(adult_small.table,
                                                      n=50)
    for name in adult_small.relation.names:
        np.testing.assert_array_equal(a.column(name), b.column(name))


def test_privbayes_learns_marginals_nonprivate(adult_small):
    """With a huge budget PrivBayes should track 1-way marginals."""
    synth = PrivBayes(epsilon=1e6, seed=0).fit_sample(adult_small.table)
    true_sex = np.bincount(adult_small.table.column("sex").astype(int),
                           minlength=2) / adult_small.n
    synth_sex = np.bincount(synth.column("sex").astype(int),
                            minlength=2) / synth.n
    assert abs(true_sex[0] - synth_sex[0]) < 0.1


def test_nist_measures_pairs(adult_small):
    synth = NistMst(epsilon=1e6, n_pairs=5, seed=0)
    out = synth.fit_sample(adult_small.table, n=100)
    check_schema(out, adult_small.relation)


def test_dpvae_budget_respected(adult_small):
    from repro.privacy import sgm_epsilon
    vae = DPVae(epsilon=2.0, delta=1e-6, iterations=20, seed=0)
    vae.fit_sample(adult_small.table, n=30)
    # Reconstruct the sigma the model used and verify the accountant.
    from repro.privacy.rdp import calibrate_sgm_sigma
    q = min(vae.batch / adult_small.n, 1.0)
    sigma = calibrate_sgm_sigma(2.0, 1e-6, q, 20)
    assert sgm_epsilon(1e-6, q, sigma, 20) <= 2.0


class TestCleaning:
    def _relation(self):
        return Relation([
            Attribute("g", CategoricalDomain(["a", "b"])),
            Attribute("h", CategoricalDomain(["p", "q", "r"])),
            Attribute("u", NumericalDomain(0, 10, integer=True, bins=11)),
            Attribute("v", NumericalDomain(0, 10, integer=True, bins=11)),
        ])

    def test_fd_repair(self):
        rel = self._relation()
        table = Table.from_rows(rel, [
            ["a", "p", 0, 0], ["a", "q", 0, 0], ["a", "p", 0, 0],
            ["b", "r", 0, 0],
        ])
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd",
                      relation=rel)
        assert count_violations(fd, table) > 0
        fixed = repair_violations(table, [fd])
        assert count_violations(fd, fixed) == 0
        # Majority vote: group g=a keeps h=p.
        assert fixed.column("h")[1] == 0

    def test_order_repair(self):
        rel = self._relation()
        table = Table.from_rows(rel, [
            ["a", "p", 5, 1], ["a", "p", 1, 5], ["a", "p", 3, 3],
        ])
        order = parse_dc("not(ti.u > tj.u and ti.v < tj.v)", "ord",
                         relation=rel)
        assert count_violations(order, table) > 0
        fixed = repair_violations(table, [order])
        assert count_violations(order, fixed) == 0

    def test_conditional_order_repair(self):
        rel = self._relation()
        table = Table.from_rows(rel, [
            ["a", "p", 5, 1], ["a", "p", 1, 5],
            ["b", "p", 9, 0], ["b", "p", 0, 9],
        ])
        dc = parse_dc("not(ti.g == tj.g and ti.u > tj.u and ti.v < tj.v)",
                      "c_ord", relation=rel)
        fixed = repair_violations(table, [dc])
        assert count_violations(dc, fixed) == 0

    def test_unary_repair(self):
        rel = self._relation()
        table = Table.from_rows(rel, [
            ["a", "p", 9, 0], ["a", "p", 1, 0], ["a", "p", 2, 0],
        ])
        unary = parse_dc("not(ti.u > 8)", "un", relation=rel)
        fixed = repair_violations(table, [unary])
        assert count_violations(unary, fixed) == 0

    def test_input_untouched(self):
        rel = self._relation()
        table = Table.from_rows(rel, [
            ["a", "p", 0, 0], ["a", "q", 0, 0],
        ])
        fd = parse_dc("not(ti.g == tj.g and ti.h != tj.h)", "fd",
                      relation=rel)
        before = table.column("h").copy()
        repair_violations(table, [fd])
        assert np.array_equal(table.column("h"), before)

    def test_repair_on_baseline_output(self, adult_small):
        synth = PrivBayes(epsilon=1.0, seed=0).fit_sample(
            adult_small.table, n=150)
        fixed = repair_violations(synth, adult_small.dcs)
        for dc in adult_small.dcs:
            assert (count_violations(dc, fixed)
                    <= count_violations(dc, synth))
