"""Tests for DP data profiling (repro.schema.stats)."""

import numpy as np
import pytest

from repro.datasets import load
from repro.privacy.ledger import PrivacyLedger
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.stats import (
    AttributeProfile,
    profile_sensitivity,
    release_profile,
)
from repro.schema.table import Table


def _table(n=400, seed=0):
    rng = np.random.default_rng(seed)
    relation = Relation([
        Attribute("color", CategoricalDomain(["red", "green", "blue"])),
        Attribute("size", NumericalDomain(0.0, 10.0, bins=8)),
    ])
    color = rng.choice(3, size=n, p=[0.7, 0.2, 0.1])
    size = rng.uniform(2.0, 8.0, size=n)
    return Table(relation, {"color": color, "size": size})


def test_profile_contains_every_attribute():
    table = _table()
    profile, _ = release_profile(table, sigma=0.5,
                                 rng=np.random.default_rng(0))
    assert [a.name for a in profile.attributes] == ["color", "size"]
    assert profile["color"].kind == "categorical"
    assert profile["size"].kind == "numerical"
    with pytest.raises(KeyError):
        profile["nope"]


def test_row_count_exact_under_bounded_dp():
    """Under replace-one neighbours n is invariant, so it is released
    exactly."""
    table = _table(n=123)
    profile, _ = release_profile(table, sigma=1.0,
                                 rng=np.random.default_rng(0))
    assert profile.n == 123


def test_histograms_nonnegative_and_roughly_correct():
    table = _table(n=2000)
    profile, _ = release_profile(table, sigma=0.05,
                                 rng=np.random.default_rng(1))
    hist = profile["color"].histogram
    assert np.all(hist >= 0)
    # At low noise the majority class is identified.
    assert profile["color"].top_values(1) == ["red"]


def test_numerical_moments_close_at_low_noise():
    table = _table(n=3000)
    profile, _ = release_profile(table, sigma=0.01,
                                 rng=np.random.default_rng(2))
    size = profile["size"]
    true = table.column("size")
    assert size.mean == pytest.approx(true.mean(), abs=0.3)
    assert size.std == pytest.approx(true.std(), abs=0.5)


def test_more_noise_means_noisier_histogram():
    table = _table(n=500)
    true_counts = np.bincount(table.column("color").astype(np.int64),
                              minlength=3)
    errors = {}
    for sigma in (0.01, 5.0):
        err = 0.0
        for seed in range(5):
            profile, _ = release_profile(
                table, sigma=sigma, rng=np.random.default_rng(seed))
            err += float(np.abs(profile["color"].histogram
                                - true_counts).sum())
        errors[sigma] = err
    assert errors[0.01] < errors[5.0]


def test_rdp_fn_matches_gaussian_and_ledgers():
    table = _table()
    profile, rdp_fn = release_profile(table, sigma=2.0,
                                      rng=np.random.default_rng(0))
    assert rdp_fn(10) == pytest.approx(10 / (2 * 4.0))
    ledger = PrivacyLedger(delta=1e-6)
    ledger.record_rdp("profile", rdp_fn)
    assert ledger.spent_epsilon() > 0


def test_sensitivity_grows_with_schema():
    small = Relation([Attribute("a", CategoricalDomain(["x", "y"]))])
    big = Relation([
        Attribute("a", CategoricalDomain(["x", "y"])),
        Attribute("b", NumericalDomain(0.0, 100.0)),
    ])
    assert profile_sensitivity(big) > profile_sensitivity(small)


def test_empty_table_rejected():
    relation = Relation([Attribute("a", CategoricalDomain(["x"]))])
    table = Table(relation, {"a": np.array([], dtype=np.int64)})
    with pytest.raises(ValueError, match="empty"):
        release_profile(table, sigma=1.0, rng=np.random.default_rng(0))


def test_summary_mentions_every_attribute():
    dataset = load("tpch", n=100, seed=0)
    profile, _ = release_profile(dataset.table, sigma=0.5,
                                 rng=np.random.default_rng(0))
    text = profile.summary()
    for attr in dataset.relation:
        assert attr.name in text


def test_top_values_order():
    profile = AttributeProfile(
        name="x", kind="categorical",
        histogram=np.array([1.0, 9.0, 5.0]), labels=["a", "b", "c"])
    assert profile.top_values(2) == ["b", "c"]
