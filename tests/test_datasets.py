"""Dataset-generator tests: Table 1's structure must hold exactly."""

import numpy as np
import pytest

from repro.constraints import count_violations, violating_pair_percentage
from repro.datasets import Dataset, dataset_names, load


@pytest.fixture(scope="module", params=dataset_names())
def dataset(request):
    return load(request.param, n=300, seed=0)


class TestAllDatasets:
    def test_row_count(self, dataset):
        assert dataset.n == 300

    def test_schema_arity_matches_table1(self, dataset):
        expected = {"adult": 15, "br2000": 14, "tax": 12, "tpch": 9}
        assert dataset.k == expected[dataset.name]

    def test_columns_in_domain(self, dataset):
        for attr in dataset.relation:
            assert attr.domain.validate_column(
                dataset.table.column(attr.name)), attr.name

    def test_dc_count_matches_table1(self, dataset):
        expected = {"adult": 2, "br2000": 3, "tax": 6, "tpch": 4}
        assert len(dataset.dcs) == expected[dataset.name]

    def test_hard_dcs_hold_exactly(self, dataset):
        for dc in dataset.hard_dcs():
            assert count_violations(dc, dataset.table) == 0, dc.name

    def test_seeds_give_different_data(self, dataset):
        other = load(dataset.name, n=300, seed=1)
        same = all(
            np.array_equal(dataset.table.column(a), other.table.column(a))
            for a in dataset.relation.names)
        assert not same

    def test_same_seed_reproducible(self, dataset):
        again = load(dataset.name, n=300, seed=0)
        for a in dataset.relation.names:
            np.testing.assert_array_equal(dataset.table.column(a),
                                          again.table.column(a))

    def test_label_attrs_exist(self, dataset):
        for name in dataset.label_attrs:
            assert name in dataset.relation

    def test_summary_mentions_name(self, dataset):
        assert dataset.name in dataset.summary()


class TestDatasetSpecifics:
    def test_adult_hardness(self):
        ds = load("adult", n=200, seed=0)
        assert all(dc.hard for dc in ds.dcs)

    def test_br2000_soft_rates_small_but_positive(self):
        ds = load("br2000", n=500, seed=0)
        assert all(not dc.hard for dc in ds.dcs)
        for dc in ds.dcs:
            rate = violating_pair_percentage(dc, ds.table)
            assert 0.0 < rate < 5.0, (dc.name, rate)

    def test_br2000_has_binary_run_for_grouping(self):
        ds = load("br2000", n=100, seed=0)
        binary = [a.name for a in ds.relation
                  if a.is_categorical and a.domain.size == 2]
        assert len(binary) >= 5

    def test_tax_zip_is_large_domain(self):
        ds = load("tax", n=100, seed=0)
        assert ds.relation["zip"].domain.size > 1000

    def test_tax_geography_fds(self):
        ds = load("tax", n=400, seed=3)
        zips = ds.table.column("zip")
        cities = ds.table.column("city")
        mapping = {}
        for z, c in zip(zips, cities):
            assert mapping.setdefault(z, c) == c

    def test_tpch_fk_structure(self):
        ds = load("tpch", n=400, seed=0)
        cust = ds.table.column("c_custkey")
        nation = ds.table.column("c_nationkey")
        mapping = {}
        for c, nk in zip(cust, nation):
            assert mapping.setdefault(c, nk) == nk

    def test_tpch_customers_have_multiple_orders(self):
        ds = load("tpch", n=400, seed=0)
        _, counts = np.unique(ds.table.column("c_custkey"),
                              return_counts=True)
        assert counts.max() >= 2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("nope")

    def test_adult_income_correlates_with_education(self):
        ds = load("adult", n=2000, seed=0)
        edu_num = ds.table.column("edu_num")
        income = ds.table.column("income")
        high = income[edu_num >= 13].mean()
        low = income[edu_num <= 8].mean()
        assert high > low + 0.1
