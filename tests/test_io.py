"""Tests for repro.io: schema JSON, DC text format, and bundles."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.dc import DenialConstraint
from repro.constraints.parser import parse_dc
from repro.constraints.predicate import (
    CONST, Operator, Predicate, TUPLE_I, TUPLE_J,
)
from repro.datasets import load
from repro.io import (
    DatasetBundle,
    domain_from_dict,
    domain_to_dict,
    format_dc,
    format_predicate,
    load_bundle,
    load_dcs,
    load_relation,
    relation_from_dict,
    relation_to_dict,
    save_bundle,
    save_dcs,
    save_relation,
)
from repro.io.bundle import read_table_csv
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


# ----------------------------------------------------------------------
# Schema JSON
# ----------------------------------------------------------------------
def test_categorical_domain_round_trip():
    dom = CategoricalDomain(["a", "b", "c"])
    back = domain_from_dict(domain_to_dict(dom))
    assert back.values == dom.values


def test_numerical_domain_round_trip():
    dom = NumericalDomain(-3.5, 10.0, integer=False, bins=12)
    back = domain_from_dict(domain_to_dict(dom))
    assert (back.low, back.high, back.integer, back.bins) == (
        -3.5, 10.0, False, 12)


def test_integer_domain_round_trip():
    dom = NumericalDomain(0, 100, integer=True, bins=8)
    back = domain_from_dict(domain_to_dict(dom))
    assert back.integer and back.size == dom.size


def test_domain_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown domain kind"):
        domain_from_dict({"kind": "fancy"})


def test_relation_round_trip_preserves_order_and_domains():
    rel = Relation([
        Attribute("b", CategoricalDomain([1, 2, 3])),
        Attribute("a", NumericalDomain(0.0, 1.0, bins=4)),
    ])
    back = relation_from_dict(relation_to_dict(rel))
    assert back.names == ["b", "a"]
    assert back["b"].domain.values == [1, 2, 3]
    assert back["a"].domain.bins == 4


def test_relation_from_dict_rejects_bad_format():
    with pytest.raises(ValueError, match="unsupported schema format"):
        relation_from_dict({"format": "other", "attributes": []})


def test_save_load_relation_file(tmp_path):
    rel = load("adult", n=10, seed=0).relation
    path = tmp_path / "schema.json"
    save_relation(rel, str(path))
    back = load_relation(str(path))
    assert back.names == rel.names
    # File is actual JSON with the version tag.
    raw = json.loads(path.read_text())
    assert raw["format"] == "repro.schema/1"


@given(values=st.lists(st.text(min_size=1, max_size=8), min_size=1,
                       max_size=10, unique=True))
@settings(max_examples=30, deadline=None)
def test_categorical_round_trip_property(values):
    dom = CategoricalDomain(values)
    back = domain_from_dict(json.loads(json.dumps(domain_to_dict(dom))))
    assert back.values == dom.values


@given(low=st.floats(-1e6, 1e6), width=st.floats(0.0, 1e6),
       bins=st.integers(1, 64))
@settings(max_examples=30, deadline=None)
def test_numerical_round_trip_property(low, width, bins):
    dom = NumericalDomain(low, low + width, bins=bins)
    back = domain_from_dict(json.loads(json.dumps(domain_to_dict(dom))))
    assert back.low == dom.low and back.high == dom.high
    assert back.bins == dom.bins


# ----------------------------------------------------------------------
# DC text format
# ----------------------------------------------------------------------
def _rel():
    return Relation([
        Attribute("edu", CategoricalDomain(["HS", "BSc", "MSc"])),
        Attribute("edu_num", NumericalDomain(0, 20, integer=True)),
        Attribute("age", NumericalDomain(0, 100, integer=True)),
    ])


def test_format_predicate_cross_tuple():
    p = Predicate(TUPLE_I, "edu", Operator.EQ, TUPLE_J, "edu")
    assert format_predicate(p) == "ti.edu == tj.edu"


def test_format_predicate_constant_numeric():
    p = Predicate(TUPLE_I, "age", Operator.LT, CONST, None, 10)
    assert format_predicate(p) == "ti.age < 10"


def test_format_predicate_decodes_bound_categorical(tmp_path):
    rel = _rel()
    p = Predicate(TUPLE_I, "edu", Operator.EQ, CONST, None, "BSc").bind(rel)
    assert p.const == 1  # bound to the code
    assert format_predicate(p, rel) == "ti.edu == 'BSc'"


def test_format_predicate_quotes_strings_with_apostrophe():
    p = Predicate(TUPLE_I, "edu", Operator.EQ, CONST, None, "it's")
    assert format_predicate(p) == 'ti.edu == "it\'s"'


def test_format_dc_round_trip_through_parser():
    dc = DenialConstraint.fd("fd1", "edu", "edu_num")
    text = format_dc(dc)
    back = parse_dc(text, name="fd1", hard=True)
    assert back.as_fd() == dc.as_fd()
    assert format_dc(back) == text


def test_save_load_dcs_round_trip(tmp_path):
    rel = _rel()
    dcs = [
        DenialConstraint.fd("fd1", "edu", "edu_num", hard=True),
        parse_dc("not(ti.age < 10 and ti.edu == 'MSc')", name="u1",
                 hard=False, relation=rel),
    ]
    path = tmp_path / "dcs.txt"
    save_dcs(dcs, str(path), relation=rel)
    back = load_dcs(str(path), relation=rel)
    assert [d.name for d in back] == ["fd1", "u1"]
    assert back[0].hard and not back[1].hard
    assert back[0].as_fd() == dcs[0].as_fd()
    # The bound constant survived the round trip as the same code.
    assert back[1].predicates[1].const == dcs[1].predicates[1].const


def test_load_dcs_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "dcs.txt"
    path.write_text(
        "# header comment\n"
        "\n"
        "fd1 hard: not(ti.edu == tj.edu and ti.edu_num != tj.edu_num)\n")
    back = load_dcs(str(path))
    assert len(back) == 1 and back[0].name == "fd1"


def test_load_dcs_rejects_missing_colon(tmp_path):
    path = tmp_path / "dcs.txt"
    path.write_text("fd1 hard not(ti.a == tj.a)\n")
    with pytest.raises(ValueError, match="expected 'name hard"):
        load_dcs(str(path))


def test_load_dcs_rejects_bad_hardness(tmp_path):
    path = tmp_path / "dcs.txt"
    path.write_text("fd1 squishy: not(ti.edu == tj.edu)\n")
    with pytest.raises(ValueError, match="bad header"):
        load_dcs(str(path))


def test_load_dcs_rejects_duplicate_names(tmp_path):
    path = tmp_path / "dcs.txt"
    path.write_text(
        "fd1 hard: not(ti.edu == tj.edu)\n"
        "fd1 hard: not(ti.age > tj.age)\n")
    with pytest.raises(ValueError, match="duplicate DC name"):
        load_dcs(str(path))


@pytest.mark.parametrize("name", ["adult", "br2000", "tax", "tpch"])
def test_paper_dcs_round_trip_for_every_dataset(name, tmp_path):
    dataset = load(name, n=30, seed=0)
    path = tmp_path / "dcs.txt"
    save_dcs(dataset.dcs, str(path), relation=dataset.relation)
    back = load_dcs(str(path), relation=dataset.relation)
    assert [d.name for d in back] == [d.name for d in dataset.dcs]
    table = dataset.table
    from repro.constraints import count_violations
    for original, reloaded in zip(dataset.dcs, back):
        assert original.hard == reloaded.hard
        assert count_violations(original, table) == \
            count_violations(reloaded, table)


# ----------------------------------------------------------------------
# Bundles
# ----------------------------------------------------------------------
def test_bundle_round_trip(tmp_path):
    dataset = load("adult", n=40, seed=0)
    directory = tmp_path / "adult_bundle"
    save_bundle(str(directory), dataset.table, dataset.dcs)
    bundle = load_bundle(str(directory))
    assert isinstance(bundle, DatasetBundle)
    assert bundle.n == 40
    assert bundle.relation.names == dataset.relation.names
    assert [d.name for d in bundle.dcs] == [d.name for d in dataset.dcs]
    for attr in dataset.relation:
        np.testing.assert_allclose(
            bundle.table.column(attr.name).astype(float),
            dataset.table.column(attr.name).astype(float))


def test_bundle_without_dcs(tmp_path):
    dataset = load("tpch", n=15, seed=0)
    directory = tmp_path / "no_dcs"
    save_bundle(str(directory), dataset.table)
    bundle = load_bundle(str(directory))
    assert bundle.dcs == []


def test_bundle_missing_schema_raises(tmp_path):
    with pytest.raises(FileNotFoundError, match="schema.json"):
        load_bundle(str(tmp_path))


def test_bundle_missing_data_raises(tmp_path):
    dataset = load("tpch", n=5, seed=0)
    save_relation(dataset.relation, str(tmp_path / "schema.json"))
    with pytest.raises(FileNotFoundError, match="data.csv"):
        load_bundle(str(tmp_path))


def test_read_table_csv_coerces_integer_categories(tmp_path):
    rel = Relation([Attribute("cat", CategoricalDomain([1, 2, 3]))])
    table = Table(rel, {"cat": np.array([0, 2, 1])})
    path = tmp_path / "data.csv"
    table.to_csv(str(path))
    back = read_table_csv(rel, str(path))
    np.testing.assert_array_equal(back.column("cat"), [0, 2, 1])


def test_read_table_csv_rejects_out_of_domain_cell(tmp_path):
    rel = Relation([Attribute("cat", CategoricalDomain(["x", "y"]))])
    path = tmp_path / "data.csv"
    path.write_text("cat\nz\n")
    with pytest.raises(ValueError, match="not in domain"):
        read_table_csv(rel, str(path))


def test_read_table_csv_rejects_ragged_row(tmp_path):
    rel = Relation([
        Attribute("a", CategoricalDomain(["x"])),
        Attribute("b", NumericalDomain(0, 1)),
    ])
    path = tmp_path / "data.csv"
    path.write_text("a,b\nx,0.5\nx\n")
    with pytest.raises(ValueError, match="cells"):
        read_table_csv(rel, str(path))


def test_read_table_csv_rejects_wrong_header(tmp_path):
    rel = Relation([Attribute("a", NumericalDomain(0, 1))])
    path = tmp_path / "data.csv"
    path.write_text("wrong\n0.5\n")
    with pytest.raises(ValueError, match="header"):
        read_table_csv(rel, str(path))


@pytest.mark.parametrize("name", ["br2000", "tax"])
def test_bundle_round_trip_other_datasets(name, tmp_path):
    dataset = load(name, n=25, seed=3)
    directory = tmp_path / name
    save_bundle(str(directory), dataset.table, dataset.dcs)
    bundle = load_bundle(str(directory))
    assert bundle.n == 25
    for attr in dataset.relation:
        np.testing.assert_allclose(
            bundle.table.column(attr.name).astype(float),
            dataset.table.column(attr.name).astype(float))
