"""Served-draw throughput: cached vs uncached requests per second.

Stands up an in-process ``repro.serve`` server over a freshly fitted
tiny artifact, then measures the two request regimes the serving layer
distinguishes:

- **uncached** — every request is a new ``(n, seed)`` key, so each one
  renders a draw through the engine (executor + registry hot path,
  draw-cache miss);
- **cached** — every request repeats one key, so after the first
  render the response body streams straight from the deterministic
  draw cache (plus the 304 revalidation rate with ``If-None-Match``).

The gap between the two is the point of the cache: a served repeat
costs file I/O, not a draw.  Results land in a ``serve`` JSON section
(written to ``--out``); merge it into a ``benchmarks/history/`` point
alongside the ``exp10_engines`` payload — the regression gate only
reads ``exp10_engines``, so the extra section rides along.

Run::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --n 500 --requests 20 --out BENCH_serve.json
"""

import argparse
import json
import threading
import time

from repro.core import Kamino
from repro.datasets import load
from repro.io import save_dcs, save_relation
from repro.serve import KaminoServer, ServeClient, ServeConfig


def _fit_artifact(root, dataset, rows, max_iterations, seed=0):
    ds = load(dataset, n=rows, seed=seed)

    def cap(params):
        params.iterations = min(params.iterations, max_iterations)

    fitted = Kamino(ds.relation, ds.dcs, epsilon=1.0, seed=seed,
                    params_override=cap).fit(ds.table)
    paths = {"model": f"{root}/model.npz",
             "schema": f"{root}/schema.json",
             "dcs": f"{root}/dcs.txt"}
    fitted.save(paths["model"])
    save_relation(ds.relation, paths["schema"])
    save_dcs(ds.dcs, paths["dcs"], relation=ds.relation)
    return paths


def _timed_requests(client, model, n, keys, etag=None):
    """Issue one request per (n, seed) key; return (seconds, statuses)."""
    statuses = []
    start = time.perf_counter()
    for seed in keys:
        resp = client.sample(model, n=n, seed=seed, etag=etag)
        statuses.append(resp.status)
    return time.perf_counter() - start, statuses


def run(args):
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        paths = _fit_artifact(root, args.dataset, args.fit_rows,
                              args.max_iterations)
        server = KaminoServer(ServeConfig(f"{root}/models", port=0,
                                          quiet=True))
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            client = ServeClient(server.base_url)
            client.register("bench", paths["model"], paths["schema"],
                            dcs=paths["dcs"])

            # Warm the model (first request pays the cold load).
            warm = client.sample("bench", n=args.n, seed=10_000)
            assert warm.status == 200, warm.status

            # Uncached: every request renders (distinct seeds).
            seconds, statuses = _timed_requests(
                client, "bench", args.n, range(args.requests))
            assert set(statuses) == {200}
            uncached_rps = args.requests / seconds
            uncached = {"requests": args.requests,
                        "seconds": round(seconds, 4),
                        "req_per_sec": round(uncached_rps, 2),
                        "rows_per_sec": round(
                            args.requests * args.n / seconds, 1)}

            # Cached: every request repeats one key.
            first = client.sample("bench", n=args.n, seed=0)
            seconds, statuses = _timed_requests(
                client, "bench", args.n, [0] * args.requests)
            assert set(statuses) == {200}
            cached_rps = args.requests / seconds
            cached = {"requests": args.requests,
                      "seconds": round(seconds, 4),
                      "req_per_sec": round(cached_rps, 2)}

            # Revalidation: If-None-Match answers 304 without a body.
            seconds, statuses = _timed_requests(
                client, "bench", args.n, [0] * args.requests,
                etag=first.etag)
            assert set(statuses) == {304}
            revalidate = {"requests": args.requests,
                          "seconds": round(seconds, 4),
                          "req_per_sec": round(
                              args.requests / seconds, 2)}

            stats = client.metrics_json()["cache"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    payload = {
        "serve": {
            "dataset": args.dataset,
            "n": args.n,
            "uncached": uncached,
            "cached": cached,
            "revalidate_304": revalidate,
            "cache_speedup": round(cached_rps / uncached_rps, 1),
            "cache_stats": {k: stats[k] for k in
                            ("hits", "misses", "hit_rate", "entries")},
        }
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    return payload


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="tpch")
    parser.add_argument("--fit-rows", type=int, default=60,
                        help="private rows for the throwaway fit")
    parser.add_argument("--max-iterations", type=int, default=6,
                        help="cap training iterations (bench scale)")
    parser.add_argument("--n", type=int, default=500,
                        help="rows per served draw")
    parser.add_argument("--requests", type=int, default=20,
                        help="requests per regime")
    parser.add_argument("--out", default=None,
                        help="write the JSON payload here")
    run(parser.parse_args())


if __name__ == "__main__":
    main()
