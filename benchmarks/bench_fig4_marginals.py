"""Figure 4 — 1-way and 2-way marginal total variation distances.

Expected shape: Kamino's distances are the best or close to the best
across datasets (the paper reports best on Adult, close elsewhere).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.evaluation import marginal_distances
from repro.evaluation.harness import METHODS


@pytest.mark.parametrize("dataset_name",
                         ["adult", "br2000", "tax", "tpch"])
def test_fig4_marginals(benchmark, datasets, synth_cache, dataset_name):
    dataset = datasets[dataset_name]

    def run():
        out = {}
        for method in METHODS:
            synth = synth_cache.get(dataset_name, method)[0]
            d1 = [d for _, d in marginal_distances(
                dataset.table, synth, alpha=1)]
            d2 = [d for _, d in marginal_distances(
                dataset.table, synth, alpha=2, max_sets=10, seed=0)]
            out[method] = (float(np.mean(d1)), float(np.max(d1)),
                           float(np.mean(d2)), float(np.max(d2)))
        return out

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header(f"Figure 4 [{dataset_name}] — marginal TVD "
                 f"(paper: Kamino best or close to best)")
    print(f"{'method':>10s} {'1way mean':>10s} {'1way max':>9s} "
          f"{'2way mean':>10s} {'2way max':>9s}")
    for method in METHODS:
        m1, x1, m2, x2 = stats[method]
        print(f"{method:>10s} {m1:10.3f} {x1:9.3f} {m2:10.3f} {x2:9.3f}")

    # Shape check: Kamino is not the worst method on 1-way marginals.
    means = {m: stats[m][0] for m in METHODS}
    assert means["Kamino"] < max(means.values())
