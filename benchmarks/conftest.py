"""Shared fixtures for the per-table/per-figure benchmark suite.

Scales: each bench runs the real pipeline at a reduced default size so
the whole suite finishes in minutes.  Set ``REPRO_SCALE`` (a float
multiplier, default 1.0) to enlarge every workload, e.g.::

    REPRO_SCALE=4 pytest benchmarks/ --benchmark-only

Synthetic instances are cached per (dataset, method, epsilon, seed) so
benches that share inputs (Table 2, Figures 3/4, Experiment 4) do not
re-synthesize.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.datasets import load
from repro.evaluation.harness import run_method

#: Baseline row counts per dataset at REPRO_SCALE=1.
BASE_ROWS = {"adult": 700, "br2000": 700, "tax": 500, "tpch": 600}


def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1"))


def rows_for(name: str) -> int:
    return int(BASE_ROWS[name] * scale())


@pytest.fixture(scope="session")
def datasets():
    """All four workloads at bench scale."""
    return {name: load(name, n=rows_for(name), seed=0)
            for name in BASE_ROWS}


class SynthCache:
    """Session cache of synthetic instances and their wall-clock."""

    def __init__(self, datasets):
        self.datasets = datasets
        self._store: dict = {}

    def get(self, dataset_name: str, method: str, epsilon: float = 1.0,
            seed: int = 0):
        """Return (table, seconds) for a method run, synthesizing once."""
        key = (dataset_name, method, epsilon, seed)
        if key not in self._store:
            table, secs = run_method(method, self.datasets[dataset_name],
                                     epsilon=epsilon, seed=seed)
            self._store[key] = (table, secs)
        return self._store[key]


@pytest.fixture(scope="session")
def synth_cache(datasets):
    return SynthCache(datasets)


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
