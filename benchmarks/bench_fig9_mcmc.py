"""Figure 9 — effect of the constrained-MCMC resampling budget m.

Paper's claims: resampling up to m = 3n improves accuracy/F1/marginals
slightly (by 0.01-0.03) at the cost of up to 4x more sampling time.

Expected shape: quality non-degrading and sampling time increasing
with m/n.
"""

import numpy as np

from benchmarks.conftest import print_header, rows_for
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import (
    marginal_distances, train_on_synthetic_test_on_true,
)

M_RATIOS = [0.0, 0.5, 1.5]


def test_fig9_mcmc_resampling(benchmark):
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def run():
        out = {}
        for ratio in M_RATIOS:
            def cap(params, ratio=ratio):
                params.iterations = min(params.iterations, 40)
                params.mcmc_m = int(ratio * dataset.n)
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, params_override=cap)
            out[ratio] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Figure 9 — MCMC resampling budget on Adult "
                 "(paper: small quality gain, up to 4x time)")
    print(f"{'m/n':>5s} {'accuracy':>9s} {'1way tvd':>9s} {'sam s':>7s}")
    times = {}
    for ratio, result in results.items():
        acc = train_on_synthetic_test_on_true(
            dataset.table, result.table, "income")["accuracy"]
        tvd = float(np.mean([d for _, d in marginal_distances(
            dataset.table, result.table, alpha=1)]))
        times[ratio] = result.timings["Sam."]
        print(f"{ratio:>5.1f} {acc:9.3f} {tvd:9.3f} "
              f"{result.timings['Sam.']:7.2f}")

    assert times[max(M_RATIOS)] >= times[0.0]
