"""Experiment 10 — the efficiency optimizations.

1. *Parallel training*: sub-models train without embedding reuse (so
   they could run on separate machines).  Paper: 3.5x faster training
   at a ~0.01 quality cost.  At bench scale we verify it runs, produces
   valid output, and does not beat the sequential variant on quality by
   a large margin (reuse helps or is neutral).
2. *Hard-FD lookup*: the sampler reads forced values from an index
   instead of scanning the prefix.  Paper: enables scaling TPC-H to 1M
   rows.  We verify it preserves the FDs and does not slow sampling
   down.
3. *Incremental violation indexes*: the sampler's per-candidate
   violation counts come from the O(group) index probes of
   :mod:`repro.constraints.index` instead of an O(prefix) broadcast
   rescan per cell.  Outputs are bit-identical; sampling should get
   strictly faster as n grows (the rescan is quadratic per column).
4. *Fit once, sample many* (staged API): training is the expensive,
   budget-consuming phase; draws are free post-processing.  Serving k
   instances from one ``FittedKamino`` should cost ~fit + k*sample,
   versus k*(fit + sample) when re-running the fused pipeline.
5. *Block-scheduled engine* (``engine="blocked"``): conflict-aware
   batched scoring + counter-based per-cell rng + sharded parallel
   draws, vs the legacy per-row engine.  Wall-clock and rows/sec per
   dataset and engine are also written to ``BENCH_exp10.json``
   (``REPRO_BENCH_JSON`` overrides the path) so CI can track the perf
   trajectory; run this file directly for the standalone perf smoke::

       PYTHONPATH=src python benchmarks/bench_exp10_optimizations.py \
           --n 5000 --out BENCH_exp10.json
"""

import argparse
import json
import os
import platform
import time
import timeit

import numpy as np

try:
    from benchmarks.conftest import print_header, rows_for
except ImportError:  # standalone `python benchmarks/bench_...py` run:
    # only the script's own directory is on sys.path — add the repo
    # root so the real conftest (single source of the bench scales)
    # resolves.
    import sys
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.conftest import print_header, rows_for

from repro.constraints import count_violations
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import train_on_synthetic_test_on_true

#: Datasets the engine comparison covers (the acceptance trio).
ENGINE_BENCH_DATASETS = ("adult", "tpch", "tax")


def _cap(params):
    params.iterations = min(params.iterations, 40)


def _bench_json_path() -> str:
    return os.environ.get("REPRO_BENCH_JSON", "BENCH_exp10.json")


def _write_bench_json(section: str, payload: dict,
                      label: str | None = None) -> str:
    """Merge ``payload`` under ``section`` into the machine-readable
    benchmark file (read-modify-write so sections compose)."""
    path = _bench_json_path()
    doc = {}
    if os.path.exists(path):
        with open(path) as f:
            doc = json.load(f)
    doc.setdefault("meta", {}).update({
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    })
    if label:
        doc["meta"]["label"] = label
    doc[section] = payload
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    return path


def run_engine_comparison(n_rows: dict | None = None, repeats: int = 2,
                          max_iterations: int = 40) -> dict:
    """Fit each dataset once, then time draws per engine.

    Returns the per-dataset payload: wall-clock seconds (best of
    ``repeats``), rows/sec, the blocked/row speedup, and the worker
    scaling of the blocked engine.  Draw validity (hard DCs, row count)
    is asserted along the way.
    """
    out: dict = {}
    for name in ENGINE_BENCH_DATASETS:
        n = (n_rows or {}).get(name, rows_for(name))
        dataset = load(name, n=n, seed=0)

        def cap(params, cap_to=max_iterations):
            params.iterations = min(params.iterations, cap_to)

        kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=0, params_override=cap)
        fitted = kam.fit(dataset.table)
        entry: dict = {"n": n, "engines": {}}
        for label, kwargs in (
                ("row", {"engine": "row"}),
                ("blocked", {}),
                ("blocked_workers4", {"workers": 4})):
            draws = []
            seconds = min(timeit.timeit(
                lambda: draws.append(fitted.sample(seed=3, **kwargs)),
                number=1) for _ in range(repeats))
            result = draws[-1]  # validate a timed draw, not an extra one
            assert result.table.n == n
            assert all(count_violations(dc, result.table) == 0
                       for dc in dataset.dcs if dc.hard)
            entry["engines"][label] = {
                "seconds": round(seconds, 4),
                "rows_per_sec": round(n / max(seconds, 1e-9), 1),
            }
        row_s = entry["engines"]["row"]["seconds"]
        blk_s = entry["engines"]["blocked"]["seconds"]
        entry["speedup_blocked_vs_row"] = round(
            row_s / max(blk_s, 1e-9), 2)
        # One extra traced draw (outside the timings) digests the
        # engine's scheduling shape — lane mix, block/rescore/probe
        # counts — into the history point.  Tracing never touches the
        # rng, so this draw equals the timed ones bit for bit.
        from repro.obs import RunTrace, trace_digest
        run_trace = RunTrace()
        fitted.sample(seed=3, trace=run_trace)
        entry["trace_digest"] = trace_digest(run_trace.samples[0])
        out[name] = entry
    return out


def _print_engine_table(results: dict) -> None:
    print(f"{'dataset':>8s} {'n':>7s} {'row s':>8s} {'blocked s':>10s} "
          f"{'speedup':>8s} {'w4 s':>8s}")
    for name, entry in results.items():
        eng = entry["engines"]
        print(f"{name:>8s} {entry['n']:7d} "
              f"{eng['row']['seconds']:8.2f} "
              f"{eng['blocked']['seconds']:10.2f} "
              f"{entry['speedup_blocked_vs_row']:7.2f}x "
              f"{eng['blocked_workers4']['seconds']:8.2f}")


def test_exp10_parallel_training(benchmark):
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def run():
        out = {}
        for label, parallel in [("sequential", False), ("parallel", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, parallel_training=parallel,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10a — sequential vs parallel training "
                 "(paper: parallel 3.5x faster, ~0.01 quality drop)")
    print(f"{'variant':>11s} {'train s':>8s} {'panel acc':>10s}")
    for label, result in results.items():
        # Average over several targets: a single attribute's accuracy
        # is too noisy at bench scale to compare the two variants.
        accs = [train_on_synthetic_test_on_true(
            dataset.table, result.table, target)["accuracy"]
            for target in ("income", "sex", "marital", "workclass")]
        acc = sum(accs) / len(accs)
        print(f"{label:>11s} {result.timings['Tra.']:8.2f} {acc:10.3f}")
    for result in results.values():
        assert all(count_violations(dc, result.table) == 0
                   for dc in dataset.dcs)


def test_exp10_fd_lookup(benchmark):
    dataset = load("tpch", n=rows_for("tpch"), seed=0)

    def run():
        out = {}
        for label, lookup in [("generic", False), ("fd-lookup", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, use_fd_lookup=lookup,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10b — hard-FD lookup fast path on TPC-H "
                 "(paper: enables 1M-row scaling)")
    print(f"{'variant':>10s} {'sam s':>7s} {'violations':>11s}")
    for label, result in results.items():
        bad = sum(count_violations(dc, result.table)
                  for dc in dataset.dcs)
        print(f"{label:>10s} {result.timings['Sam.']:7.2f} {bad:11d}")

    lookup_bad = sum(count_violations(dc, results["fd-lookup"].table)
                     for dc in dataset.dcs)
    assert lookup_bad <= 5  # the FDs survive the fast path


def test_exp10_violation_index(benchmark):
    """Incremental violation indexes vs per-cell prefix rescans.

    Same model, same seeds: the two samplers must produce *identical*
    tables; the indexed one should not be slower (and wins big as n
    grows — the rescan is O(prefix) per cell).
    """
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def _cap(params):
        params.iterations = min(params.iterations, 40)

    def run():
        out = {}
        for label, indexed in [("scan", False), ("indexed", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, use_violation_index=indexed,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10c — incremental violation indexes "
                 "(bit-identical output, faster sampling)")
    print(f"{'variant':>10s} {'sam s':>7s}")
    for label, result in results.items():
        print(f"{label:>10s} {result.timings['Sam.']:7.2f}")
    for name in dataset.relation.names:
        np.testing.assert_array_equal(
            results["scan"].table.column(name),
            results["indexed"].table.column(name), err_msg=name)
    speedup = (results["scan"].timings["Sam."]
               / max(results["indexed"].timings["Sam."], 1e-9))
    print(f"sampling speedup: {speedup:.2f}x")
    assert speedup > 0.8  # the index must never cost real time


def test_exp10_fit_once_sample_many(benchmark):
    """Staged fit/sample: amortize one training run over many draws.

    Times one fit() followed by several sample() calls at varied
    sizes/seeds, against re-running the fused fit_sample for each
    draw.  The staged path must produce valid instances and its
    per-draw marginal cost must stay far below a full pipeline run.
    """
    import time

    dataset = load("adult", n=rows_for("adult"), seed=0)
    draws = [(dataset.n, 1), (dataset.n // 2, 2), (2 * dataset.n, 3)]

    def run():
        kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=0, params_override=_cap)
        start = time.perf_counter()
        fitted = kam.fit(dataset.table)
        fit_s = time.perf_counter() - start
        samples = []
        for n, seed in draws:
            start = time.perf_counter()
            result = fitted.sample(n=n, seed=seed)
            samples.append((n, seed, result, time.perf_counter() - start))
        return fitted, fit_s, samples

    fitted, fit_s, samples = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    print_header("Experiment 10d — fit once, sample many "
                 "(training amortized over draws)")
    print(f"{'draw':>14s} {'seconds':>8s}")
    print(f"{'fit (once)':>14s} {fit_s:8.2f}")
    sample_total = 0.0
    for n, seed, result, seconds in samples:
        sample_total += seconds
        print(f"{f'n={n} s={seed}':>14s} {seconds:8.2f}")
        assert result.table.n == n
        assert all(count_violations(dc, result.table) == 0
                   for dc in dataset.dcs if dc.hard)
    refit_cost = len(samples) * (fit_s + sample_total / len(samples))
    served_cost = fit_s + sample_total
    print(f"serving {len(samples)} draws: staged {served_cost:.2f}s vs "
          f"refit-per-draw ~{refit_cost:.2f}s "
          f"({refit_cost / max(served_cost, 1e-9):.2f}x)")
    # Draws never spend budget: the fitted params are the only release.
    assert fitted.params.achieved_epsilon <= 1.0 + 1e-6


def test_exp10_blocked_engine(benchmark):
    """Block-scheduled engine vs the per-row engine, per dataset.

    Also emits the machine-readable ``BENCH_exp10.json`` (per-dataset,
    per-engine wall-clock + rows/sec) so the perf trajectory can be
    tracked by CI.
    """
    results = benchmark.pedantic(run_engine_comparison, rounds=1,
                                 iterations=1)
    print_header("Experiment 10e — block-scheduled sampling engine "
                 "(blocked vs row, + workers=4 sharding)")
    _print_engine_table(results)
    path = _write_bench_json("exp10_engines", results)
    print(f"wrote {path}")
    # At bench scale the blocked engine must at least hold its ground;
    # the >=2x wins land at n>=5000 (see the standalone perf smoke).
    for name, entry in results.items():
        assert entry["speedup_blocked_vs_row"] > 0.7, name


def main(argv=None) -> int:
    """Standalone perf smoke: engine comparison + BENCH_exp10.json."""
    global ENGINE_BENCH_DATASETS
    parser = argparse.ArgumentParser(
        description="Experiment 10 engine benchmark (no pytest needed)")
    parser.add_argument("--n", type=int, default=None,
                        help="rows per dataset (default: bench scale)")
    parser.add_argument("--datasets", default=",".join(
        ENGINE_BENCH_DATASETS))
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--max-iterations", type=int, default=40)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "$REPRO_BENCH_JSON or BENCH_exp10.json)")
    parser.add_argument("--label", default=None,
                        help="point label recorded in meta.label (used "
                             "by bench-compare's trajectory table)")
    args = parser.parse_args(argv)
    if args.out:
        os.environ["REPRO_BENCH_JSON"] = args.out
    ENGINE_BENCH_DATASETS = tuple(args.datasets.split(","))
    n_rows = ({name: args.n for name in ENGINE_BENCH_DATASETS}
              if args.n else None)
    results = run_engine_comparison(n_rows=n_rows, repeats=args.repeats,
                                    max_iterations=args.max_iterations)
    print_header("Block-scheduled engine vs row engine")
    _print_engine_table(results)
    path = _write_bench_json("exp10_engines", results, label=args.label)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
