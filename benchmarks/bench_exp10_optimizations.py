"""Experiment 10 — the efficiency optimizations.

1. *Parallel training*: sub-models train without embedding reuse (so
   they could run on separate machines).  Paper: 3.5x faster training
   at a ~0.01 quality cost.  At bench scale we verify it runs, produces
   valid output, and does not beat the sequential variant on quality by
   a large margin (reuse helps or is neutral).
2. *Hard-FD lookup*: the sampler reads forced values from an index
   instead of scanning the prefix.  Paper: enables scaling TPC-H to 1M
   rows.  We verify it preserves the FDs and does not slow sampling
   down.
3. *Incremental violation indexes*: the sampler's per-candidate
   violation counts come from the O(group) index probes of
   :mod:`repro.constraints.index` instead of an O(prefix) broadcast
   rescan per cell.  Outputs are bit-identical; sampling should get
   strictly faster as n grows (the rescan is quadratic per column).
4. *Fit once, sample many* (staged API): training is the expensive,
   budget-consuming phase; draws are free post-processing.  Serving k
   instances from one ``FittedKamino`` should cost ~fit + k*sample,
   versus k*(fit + sample) when re-running the fused pipeline.
"""

import numpy as np

from benchmarks.conftest import print_header, rows_for
from repro.constraints import count_violations
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import train_on_synthetic_test_on_true


def _cap(params):
    params.iterations = min(params.iterations, 40)


def test_exp10_parallel_training(benchmark):
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def run():
        out = {}
        for label, parallel in [("sequential", False), ("parallel", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, parallel_training=parallel,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10a — sequential vs parallel training "
                 "(paper: parallel 3.5x faster, ~0.01 quality drop)")
    print(f"{'variant':>11s} {'train s':>8s} {'panel acc':>10s}")
    for label, result in results.items():
        # Average over several targets: a single attribute's accuracy
        # is too noisy at bench scale to compare the two variants.
        accs = [train_on_synthetic_test_on_true(
            dataset.table, result.table, target)["accuracy"]
            for target in ("income", "sex", "marital", "workclass")]
        acc = sum(accs) / len(accs)
        print(f"{label:>11s} {result.timings['Tra.']:8.2f} {acc:10.3f}")
    for result in results.values():
        assert all(count_violations(dc, result.table) == 0
                   for dc in dataset.dcs)


def test_exp10_fd_lookup(benchmark):
    dataset = load("tpch", n=rows_for("tpch"), seed=0)

    def run():
        out = {}
        for label, lookup in [("generic", False), ("fd-lookup", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, use_fd_lookup=lookup,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10b — hard-FD lookup fast path on TPC-H "
                 "(paper: enables 1M-row scaling)")
    print(f"{'variant':>10s} {'sam s':>7s} {'violations':>11s}")
    for label, result in results.items():
        bad = sum(count_violations(dc, result.table)
                  for dc in dataset.dcs)
        print(f"{label:>10s} {result.timings['Sam.']:7.2f} {bad:11d}")

    lookup_bad = sum(count_violations(dc, results["fd-lookup"].table)
                     for dc in dataset.dcs)
    assert lookup_bad <= 5  # the FDs survive the fast path


def test_exp10_violation_index(benchmark):
    """Incremental violation indexes vs per-cell prefix rescans.

    Same model, same seeds: the two samplers must produce *identical*
    tables; the indexed one should not be slower (and wins big as n
    grows — the rescan is O(prefix) per cell).
    """
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def _cap(params):
        params.iterations = min(params.iterations, 40)

    def run():
        out = {}
        for label, indexed in [("scan", False), ("indexed", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, use_violation_index=indexed,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10c — incremental violation indexes "
                 "(bit-identical output, faster sampling)")
    print(f"{'variant':>10s} {'sam s':>7s}")
    for label, result in results.items():
        print(f"{label:>10s} {result.timings['Sam.']:7.2f}")
    for name in dataset.relation.names:
        np.testing.assert_array_equal(
            results["scan"].table.column(name),
            results["indexed"].table.column(name), err_msg=name)
    speedup = (results["scan"].timings["Sam."]
               / max(results["indexed"].timings["Sam."], 1e-9))
    print(f"sampling speedup: {speedup:.2f}x")
    assert speedup > 0.8  # the index must never cost real time


def test_exp10_fit_once_sample_many(benchmark):
    """Staged fit/sample: amortize one training run over many draws.

    Times one fit() followed by several sample() calls at varied
    sizes/seeds, against re-running the fused fit_sample for each
    draw.  The staged path must produce valid instances and its
    per-draw marginal cost must stay far below a full pipeline run.
    """
    import time

    dataset = load("adult", n=rows_for("adult"), seed=0)
    draws = [(dataset.n, 1), (dataset.n // 2, 2), (2 * dataset.n, 3)]

    def run():
        kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=0, params_override=_cap)
        start = time.perf_counter()
        fitted = kam.fit(dataset.table)
        fit_s = time.perf_counter() - start
        samples = []
        for n, seed in draws:
            start = time.perf_counter()
            result = fitted.sample(n=n, seed=seed)
            samples.append((n, seed, result, time.perf_counter() - start))
        return fitted, fit_s, samples

    fitted, fit_s, samples = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    print_header("Experiment 10d — fit once, sample many "
                 "(training amortized over draws)")
    print(f"{'draw':>14s} {'seconds':>8s}")
    print(f"{'fit (once)':>14s} {fit_s:8.2f}")
    sample_total = 0.0
    for n, seed, result, seconds in samples:
        sample_total += seconds
        print(f"{f'n={n} s={seed}':>14s} {seconds:8.2f}")
        assert result.table.n == n
        assert all(count_violations(dc, result.table) == 0
                   for dc in dataset.dcs if dc.hard)
    refit_cost = len(samples) * (fit_s + sample_total / len(samples))
    served_cost = fit_s + sample_total
    print(f"serving {len(samples)} draws: staged {served_cost:.2f}s vs "
          f"refit-per-draw ~{refit_cost:.2f}s "
          f"({refit_cost / max(served_cost, 1e-9):.2f}x)")
    # Draws never spend budget: the fitted params are the only release.
    assert fitted.params.achieved_epsilon <= 1.0 + 1e-6
