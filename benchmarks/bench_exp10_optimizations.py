"""Experiment 10 — the efficiency optimizations.

1. *Parallel training*: sub-models train without embedding reuse (so
   they could run on separate machines).  Paper: 3.5x faster training
   at a ~0.01 quality cost.  At bench scale we verify it runs, produces
   valid output, and does not beat the sequential variant on quality by
   a large margin (reuse helps or is neutral).
2. *Hard-FD lookup*: the sampler reads forced values from an index
   instead of scanning the prefix.  Paper: enables scaling TPC-H to 1M
   rows.  We verify it preserves the FDs and does not slow sampling
   down.
3. *Incremental violation indexes*: the sampler's per-candidate
   violation counts come from the O(group) index probes of
   :mod:`repro.constraints.index` instead of an O(prefix) broadcast
   rescan per cell.  Outputs are bit-identical; sampling should get
   strictly faster as n grows (the rescan is quadratic per column).
4. *Fit once, sample many* (staged API): training is the expensive,
   budget-consuming phase; draws are free post-processing.  Serving k
   instances from one ``FittedKamino`` should cost ~fit + k*sample,
   versus k*(fit + sample) when re-running the fused pipeline.
5. *Block-scheduled engine* (``engine="blocked"``): conflict-aware
   batched scoring + counter-based per-cell rng + sharded parallel
   draws, vs the legacy per-row engine.  Wall-clock and rows/sec per
   dataset and engine are also written to ``BENCH_exp10.json``
   (``REPRO_BENCH_JSON`` overrides the path) so CI can track the perf
   trajectory; run this file directly for the standalone perf smoke::

       PYTHONPATH=src python benchmarks/bench_exp10_optimizations.py \
           --n 5000 --out BENCH_exp10.json
6. *Process-pool scaling + streaming* (``--scaling``): draws across a
   (pool, workers) grid — every point asserted bit-identical to the
   workers=1 baseline — plus streamed-draw throughput and, with
   ``--stream-rows N``, one large bounded-memory streamed draw.  The
   payload lands in its own ``exp10f_scaling`` JSON section (the
   ``exp10_engines`` regression gate is unaffected) and records the
   machine's ``cpu_count``, without which the speedups are
   uninterpretable.
"""

import argparse
import json
import os
import platform
import time
import timeit

import numpy as np

try:
    from benchmarks.conftest import print_header, rows_for
except ImportError:  # standalone `python benchmarks/bench_...py` run:
    # only the script's own directory is on sys.path — add the repo
    # root so the real conftest (single source of the bench scales)
    # resolves.
    import sys
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    from benchmarks.conftest import print_header, rows_for

from repro.constraints import count_violations
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import train_on_synthetic_test_on_true

#: Datasets the engine comparison covers (the acceptance trio).
ENGINE_BENCH_DATASETS = ("adult", "tpch", "tax")


def _cap(params):
    params.iterations = min(params.iterations, 40)


def _bench_json_path() -> str:
    return os.environ.get("REPRO_BENCH_JSON", "BENCH_exp10.json")


def _write_bench_json(section: str, payload: dict,
                      label: str | None = None) -> str:
    """Merge ``payload`` under ``section`` into the machine-readable
    benchmark file (read-modify-write so sections compose)."""
    path = _bench_json_path()
    doc = {}
    if os.path.exists(path):
        with open(path) as f:
            doc = json.load(f)
    doc.setdefault("meta", {}).update({
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    })
    if label:
        doc["meta"]["label"] = label
    doc[section] = payload
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
    return path


def run_engine_comparison(n_rows: dict | None = None, repeats: int = 2,
                          max_iterations: int = 40) -> dict:
    """Fit each dataset once, then time draws per engine.

    Returns the per-dataset payload: wall-clock seconds (best of
    ``repeats``), rows/sec, the blocked/row speedup, and the worker
    scaling of the blocked engine.  Draw validity (hard DCs, row count)
    is asserted along the way.
    """
    out: dict = {}
    for name in ENGINE_BENCH_DATASETS:
        n = (n_rows or {}).get(name, rows_for(name))
        dataset = load(name, n=n, seed=0)

        def cap(params, cap_to=max_iterations):
            params.iterations = min(params.iterations, cap_to)

        kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=0, params_override=cap)
        fitted = kam.fit(dataset.table)
        entry: dict = {"n": n, "engines": {}}
        for label, kwargs in (
                ("row", {"engine": "row"}),
                ("blocked", {}),
                ("blocked_workers4", {"workers": 4})):
            draws = []
            seconds = min(timeit.timeit(
                lambda: draws.append(fitted.sample(seed=3, **kwargs)),
                number=1) for _ in range(repeats))
            result = draws[-1]  # validate a timed draw, not an extra one
            assert result.table.n == n
            assert all(count_violations(dc, result.table) == 0
                       for dc in dataset.dcs if dc.hard)
            entry["engines"][label] = {
                "seconds": round(seconds, 4),
                "rows_per_sec": round(n / max(seconds, 1e-9), 1),
            }
        row_s = entry["engines"]["row"]["seconds"]
        blk_s = entry["engines"]["blocked"]["seconds"]
        entry["speedup_blocked_vs_row"] = round(
            row_s / max(blk_s, 1e-9), 2)
        # One extra traced draw (outside the timings) digests the
        # engine's scheduling shape — lane mix, block/rescore/probe
        # counts — into the history point.  Tracing never touches the
        # rng, so this draw equals the timed ones bit for bit.
        from repro.obs import RunTrace, trace_digest
        run_trace = RunTrace()
        fitted.sample(seed=3, trace=run_trace)
        entry["trace_digest"] = trace_digest(run_trace.samples[0])
        out[name] = entry
    return out


def _print_engine_table(results: dict) -> None:
    print(f"{'dataset':>8s} {'n':>7s} {'row s':>8s} {'blocked s':>10s} "
          f"{'speedup':>8s} {'w4 s':>8s}")
    for name, entry in results.items():
        eng = entry["engines"]
        print(f"{name:>8s} {entry['n']:7d} "
              f"{eng['row']['seconds']:8.2f} "
              f"{eng['blocked']['seconds']:10.2f} "
              f"{entry['speedup_blocked_vs_row']:7.2f}x "
              f"{eng['blocked_workers4']['seconds']:8.2f}")


def test_exp10_parallel_training(benchmark):
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def run():
        out = {}
        for label, parallel in [("sequential", False), ("parallel", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, parallel_training=parallel,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10a — sequential vs parallel training "
                 "(paper: parallel 3.5x faster, ~0.01 quality drop)")
    print(f"{'variant':>11s} {'train s':>8s} {'panel acc':>10s}")
    for label, result in results.items():
        # Average over several targets: a single attribute's accuracy
        # is too noisy at bench scale to compare the two variants.
        accs = [train_on_synthetic_test_on_true(
            dataset.table, result.table, target)["accuracy"]
            for target in ("income", "sex", "marital", "workclass")]
        acc = sum(accs) / len(accs)
        print(f"{label:>11s} {result.timings['Tra.']:8.2f} {acc:10.3f}")
    for result in results.values():
        assert all(count_violations(dc, result.table) == 0
                   for dc in dataset.dcs)


def test_exp10_fd_lookup(benchmark):
    dataset = load("tpch", n=rows_for("tpch"), seed=0)

    def run():
        out = {}
        for label, lookup in [("generic", False), ("fd-lookup", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, use_fd_lookup=lookup,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10b — hard-FD lookup fast path on TPC-H "
                 "(paper: enables 1M-row scaling)")
    print(f"{'variant':>10s} {'sam s':>7s} {'violations':>11s}")
    for label, result in results.items():
        bad = sum(count_violations(dc, result.table)
                  for dc in dataset.dcs)
        print(f"{label:>10s} {result.timings['Sam.']:7.2f} {bad:11d}")

    lookup_bad = sum(count_violations(dc, results["fd-lookup"].table)
                     for dc in dataset.dcs)
    assert lookup_bad <= 5  # the FDs survive the fast path


def test_exp10_violation_index(benchmark):
    """Incremental violation indexes vs per-cell prefix rescans.

    Same model, same seeds: the two samplers must produce *identical*
    tables; the indexed one should not be slower (and wins big as n
    grows — the rescan is O(prefix) per cell).
    """
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def _cap(params):
        params.iterations = min(params.iterations, 40)

    def run():
        out = {}
        for label, indexed in [("scan", False), ("indexed", True)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, use_violation_index=indexed,
                         params_override=_cap)
            out[label] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 10c — incremental violation indexes "
                 "(bit-identical output, faster sampling)")
    print(f"{'variant':>10s} {'sam s':>7s}")
    for label, result in results.items():
        print(f"{label:>10s} {result.timings['Sam.']:7.2f}")
    for name in dataset.relation.names:
        np.testing.assert_array_equal(
            results["scan"].table.column(name),
            results["indexed"].table.column(name), err_msg=name)
    speedup = (results["scan"].timings["Sam."]
               / max(results["indexed"].timings["Sam."], 1e-9))
    print(f"sampling speedup: {speedup:.2f}x")
    assert speedup > 0.8  # the index must never cost real time


def test_exp10_fit_once_sample_many(benchmark):
    """Staged fit/sample: amortize one training run over many draws.

    Times one fit() followed by several sample() calls at varied
    sizes/seeds, against re-running the fused fit_sample for each
    draw.  The staged path must produce valid instances and its
    per-draw marginal cost must stay far below a full pipeline run.
    """
    import time

    dataset = load("adult", n=rows_for("adult"), seed=0)
    draws = [(dataset.n, 1), (dataset.n // 2, 2), (2 * dataset.n, 3)]

    def run():
        kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=0, params_override=_cap)
        start = time.perf_counter()
        fitted = kam.fit(dataset.table)
        fit_s = time.perf_counter() - start
        samples = []
        for n, seed in draws:
            start = time.perf_counter()
            result = fitted.sample(n=n, seed=seed)
            samples.append((n, seed, result, time.perf_counter() - start))
        return fitted, fit_s, samples

    fitted, fit_s, samples = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    print_header("Experiment 10d — fit once, sample many "
                 "(training amortized over draws)")
    print(f"{'draw':>14s} {'seconds':>8s}")
    print(f"{'fit (once)':>14s} {fit_s:8.2f}")
    sample_total = 0.0
    for n, seed, result, seconds in samples:
        sample_total += seconds
        print(f"{f'n={n} s={seed}':>14s} {seconds:8.2f}")
        assert result.table.n == n
        assert all(count_violations(dc, result.table) == 0
                   for dc in dataset.dcs if dc.hard)
    refit_cost = len(samples) * (fit_s + sample_total / len(samples))
    served_cost = fit_s + sample_total
    print(f"serving {len(samples)} draws: staged {served_cost:.2f}s vs "
          f"refit-per-draw ~{refit_cost:.2f}s "
          f"({refit_cost / max(served_cost, 1e-9):.2f}x)")
    # Draws never spend budget: the fitted params are the only release.
    assert fitted.params.achieved_epsilon <= 1.0 + 1e-6


def test_exp10_blocked_engine(benchmark):
    """Block-scheduled engine vs the per-row engine, per dataset.

    Also emits the machine-readable ``BENCH_exp10.json`` (per-dataset,
    per-engine wall-clock + rows/sec) so the perf trajectory can be
    tracked by CI.
    """
    results = benchmark.pedantic(run_engine_comparison, rounds=1,
                                 iterations=1)
    print_header("Experiment 10e — block-scheduled sampling engine "
                 "(blocked vs row, + workers=4 sharding)")
    _print_engine_table(results)
    path = _write_bench_json("exp10_engines", results)
    print(f"wrote {path}")
    # At bench scale the blocked engine must at least hold its ground;
    # the >=2x wins land at n>=5000 (see the standalone perf smoke).
    for name, entry in results.items():
        assert entry["speedup_blocked_vs_row"] > 0.7, name


#: Worker counts the scaling experiment sweeps, per pool.
SCALING_WORKERS = (1, 2, 4)


def run_scaling_experiment(n_rows: dict | None = None, repeats: int = 2,
                           max_iterations: int = 40,
                           stream_rows: int = 0,
                           stream_dataset: str = "tpch") -> dict:
    """Experiment 10f: worker scaling + streaming throughput.

    Per dataset: one fit, then timed draws across the (pool, workers)
    grid — every draw is asserted bit-identical to the workers=1
    baseline, so the numbers measure pure scheduling cost — plus a
    streamed draw's end-to-end throughput.  ``stream_rows > 0`` adds a
    single large streamed draw (the n>=1M bounded-memory run) on
    ``stream_dataset``, with the process-wide RSS high-water mark
    recorded alongside.

    The payload goes in its own ``exp10f_scaling`` section, so the
    ``exp10_engines`` regression gate is unaffected.  ``cpu_count`` is
    recorded because the speedups are meaningless without it: on a
    single-core runner the process pool can only add overhead.
    """
    out: dict = {"cpu_count": os.cpu_count() or 1}
    for name in ENGINE_BENCH_DATASETS:
        n = (n_rows or {}).get(name, rows_for(name))
        dataset = load(name, n=n, seed=0)

        def cap(params, cap_to=max_iterations):
            params.iterations = min(params.iterations, cap_to)

        kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                     delta=1e-6, seed=0, params_override=cap)
        fitted = kam.fit(dataset.table)
        baseline = fitted.sample(seed=3).table
        entry: dict = {"n": n, "pools": {}}
        for pool in ("thread", "process"):
            grid: dict = {}
            for workers in SCALING_WORKERS:
                draws = []
                seconds = min(timeit.timeit(
                    lambda: draws.append(fitted.sample(
                        seed=3, workers=workers, pool=pool)),
                    number=1) for _ in range(repeats))
                table = draws[-1].table
                for attr in dataset.relation.names:
                    np.testing.assert_array_equal(
                        table.column(attr), baseline.column(attr),
                        err_msg=f"{name}/{pool}/workers={workers}/{attr}")
                grid[str(workers)] = {
                    "seconds": round(seconds, 4),
                    "rows_per_sec": round(n / max(seconds, 1e-9), 1),
                }
            entry["pools"][pool] = grid
        proc = entry["pools"]["process"]
        entry["speedup_process4_vs_1"] = round(
            proc["1"]["seconds"] / max(proc["4"]["seconds"], 1e-9), 2)

        n_stream = 4 * n
        chunk = max(n, 1)
        start = time.perf_counter()
        got = sum(c.n for c in fitted.sample_stream(
            n=n_stream, seed=3, chunk_rows=chunk))
        seconds = time.perf_counter() - start
        assert got == n_stream
        entry["stream"] = {
            "n": n_stream, "chunk_rows": chunk,
            "seconds": round(seconds, 4),
            "rows_per_sec": round(n_stream / max(seconds, 1e-9), 1),
        }
        out[name] = entry

    if stream_rows > 0 and stream_dataset in out:
        import resource
        dataset = load(stream_dataset,
                       n=(n_rows or {}).get(stream_dataset,
                                            rows_for(stream_dataset)),
                       seed=0)

        def cap(params, cap_to=max_iterations):
            params.iterations = min(params.iterations, cap_to)

        fitted = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                        delta=1e-6, seed=0, params_override=cap
                        ).fit(dataset.table)
        chunk = 65536
        start = time.perf_counter()
        got = sum(c.n for c in fitted.sample_stream(
            n=stream_rows, seed=3, chunk_rows=chunk))
        seconds = time.perf_counter() - start
        assert got == stream_rows
        out["stream_large"] = {
            "dataset": stream_dataset, "n": stream_rows,
            "chunk_rows": chunk,
            "seconds": round(seconds, 2),
            "rows_per_sec": round(stream_rows / max(seconds, 1e-9), 1),
            "ru_maxrss_mb": round(resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss / 1024, 1),
        }
    return out


def _print_scaling_table(results: dict) -> None:
    print(f"cpu_count={results['cpu_count']}")
    print(f"{'dataset':>8s} {'n':>7s} "
          f"{'thr1 s':>8s} {'thr2 s':>8s} {'thr4 s':>8s} "
          f"{'prc1 s':>8s} {'prc2 s':>8s} {'prc4 s':>8s} "
          f"{'p4/p1':>6s} {'stream r/s':>11s}")
    for name, entry in results.items():
        if not isinstance(entry, dict) or "pools" not in entry:
            continue
        thr, prc = entry["pools"]["thread"], entry["pools"]["process"]
        print(f"{name:>8s} {entry['n']:7d} "
              f"{thr['1']['seconds']:8.2f} {thr['2']['seconds']:8.2f} "
              f"{thr['4']['seconds']:8.2f} "
              f"{prc['1']['seconds']:8.2f} {prc['2']['seconds']:8.2f} "
              f"{prc['4']['seconds']:8.2f} "
              f"{entry['speedup_process4_vs_1']:5.2f}x "
              f"{entry['stream']['rows_per_sec']:11,.0f}")
    large = results.get("stream_large")
    if large:
        print(f"large stream: {large['dataset']} n={large['n']:,} "
              f"chunk={large['chunk_rows']} {large['seconds']:.1f}s "
              f"({large['rows_per_sec']:,.0f} rows/s, "
              f"peak RSS {large['ru_maxrss_mb']:.0f}MB)")


def test_exp10_worker_scaling(benchmark):
    """Experiment 10f: process-pool worker scaling + streamed draws.

    Every grid point is asserted bit-identical to the workers=1 draw
    inside :func:`run_scaling_experiment`; the >1.5x speedup claim is
    only checked where it can physically hold (>= 4 cores) — on
    smaller runners the grid still exercises the process lane and the
    payload records ``cpu_count`` so readers can judge the numbers.
    """
    results = benchmark.pedantic(run_scaling_experiment, rounds=1,
                                 iterations=1)
    print_header("Experiment 10f — process-pool scaling + streaming "
                 "(bit-identical across every schedule)")
    _print_scaling_table(results)
    path = _write_bench_json("exp10f_scaling", results)
    print(f"wrote {path}")
    if results["cpu_count"] >= 4:
        best = max(entry["speedup_process4_vs_1"]
                   for name, entry in results.items()
                   if isinstance(entry, dict) and "pools" in entry)
        assert best > 1.5, f"4-worker process pool only {best}x"


def main(argv=None) -> int:
    """Standalone perf smoke: engine comparison + BENCH_exp10.json."""
    global ENGINE_BENCH_DATASETS
    parser = argparse.ArgumentParser(
        description="Experiment 10 engine benchmark (no pytest needed)")
    parser.add_argument("--n", type=int, default=None,
                        help="rows per dataset (default: bench scale)")
    parser.add_argument("--datasets", default=",".join(
        ENGINE_BENCH_DATASETS))
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--max-iterations", type=int, default=40)
    parser.add_argument("--out", default=None,
                        help="output JSON path (default: "
                             "$REPRO_BENCH_JSON or BENCH_exp10.json)")
    parser.add_argument("--label", default=None,
                        help="point label recorded in meta.label (used "
                             "by bench-compare's trajectory table)")
    parser.add_argument("--scaling", action="store_true",
                        help="also run the exp10f worker-scaling + "
                             "streaming grid")
    parser.add_argument("--stream-rows", type=int, default=0,
                        help="with --scaling: row count of one large "
                             "bounded-memory streamed draw (0 = skip)")
    parser.add_argument("--stream-dataset", default="tpch",
                        help="dataset of the large streamed draw")
    args = parser.parse_args(argv)
    if args.out:
        os.environ["REPRO_BENCH_JSON"] = args.out
    ENGINE_BENCH_DATASETS = tuple(args.datasets.split(","))
    n_rows = ({name: args.n for name in ENGINE_BENCH_DATASETS}
              if args.n else None)
    results = run_engine_comparison(n_rows=n_rows, repeats=args.repeats,
                                    max_iterations=args.max_iterations)
    print_header("Block-scheduled engine vs row engine")
    _print_engine_table(results)
    path = _write_bench_json("exp10_engines", results, label=args.label)
    print(f"wrote {path}")
    if args.scaling:
        scaling = run_scaling_experiment(
            n_rows=n_rows, repeats=args.repeats,
            max_iterations=args.max_iterations,
            stream_rows=args.stream_rows,
            stream_dataset=args.stream_dataset)
        print_header("Experiment 10f — process-pool scaling + streaming")
        _print_scaling_table(scaling)
        path = _write_bench_json("exp10f_scaling", scaling,
                                 label=args.label)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
