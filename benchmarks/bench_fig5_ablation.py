"""Table 3 + Figure 5 — the constraint-aware components matter.

Compares full Kamino against the three ablations of Experiment 5:
RandSequence (random attribute order), RandSampling (i.i.d. sampling,
no DC penalty), and RandBoth.  Paper's claim: removing the
constraint-aware sampler blows up the violation rate; removing the
sequencing hurts it further.
"""

import numpy as np

from benchmarks.conftest import print_header, rows_for
from repro.constraints import violating_pair_percentage
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import train_on_synthetic_test_on_true

VARIANTS = {
    "Kamino": dict(random_sequence=False, constraint_aware_sampling=True),
    "RandSequence": dict(random_sequence=True,
                         constraint_aware_sampling=True),
    "RandSampling": dict(random_sequence=False,
                         constraint_aware_sampling=False),
    "RandBoth": dict(random_sequence=True,
                     constraint_aware_sampling=False),
}


def _cap(params):
    params.iterations = min(params.iterations, 60)


def test_fig5_ablation(benchmark):
    dataset = load("adult", n=rows_for("adult"), seed=0)

    def run():
        out = {}
        for label, flags in VARIANTS.items():
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, params_override=_cap,
                         **flags)
            out[label] = kam.fit_sample(dataset.table).table
        return out

    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Table 3 / Figure 5 — constraint-aware ablation on Adult "
                 "(paper: RandSampling/RandBoth violate, Kamino doesn't)")
    print(f"{'variant':>13s} {'phi_a1':>8s} {'phi_a2':>8s} {'acc':>7s}")
    violations = {}
    for label, table in tables.items():
        v1 = violating_pair_percentage(dataset.dcs[0], table)
        v2 = violating_pair_percentage(dataset.dcs[1], table)
        acc = train_on_synthetic_test_on_true(
            dataset.table, table, "income")["accuracy"]
        violations[label] = v1 + v2
        print(f"{label:>13s} {v1:8.3f} {v2:8.3f} {acc:7.3f}")

    assert violations["Kamino"] <= violations["RandSampling"]
    assert violations["Kamino"] <= violations["RandBoth"]
    assert violations["Kamino"] < 1.0
