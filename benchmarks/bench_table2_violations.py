"""Table 2 — % of tuple pairs violating each DC, per method.

Paper's claim: Kamino's synthetic instances have (near-)zero violations
of hard DCs and truth-like rates for soft DCs, while every baseline
leaves large violation rates (up to 32% on Adult, 99% on Tax).

Expected shape at bench scale: the Kamino column matches the truth
column (0.0 for hard DCs), every baseline column is far above it.
"""

import pytest

from benchmarks.conftest import print_header
from repro.evaluation import dc_violation_report
from repro.evaluation.harness import METHODS, format_table


@pytest.mark.parametrize("dataset_name",
                         ["adult", "br2000", "tax", "tpch"])
def test_table2_dc_violations(benchmark, datasets, synth_cache,
                              dataset_name):
    dataset = datasets[dataset_name]

    def run():
        return {method: synth_cache.get(dataset_name, method)[0]
                for method in METHODS}

    synthetic = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = dc_violation_report(dataset.dcs, dataset.table, synthetic)
    print_header(f"Table 2 [{dataset_name}] — % violating tuple pairs "
                 f"(paper: baselines up to 32-99%, Kamino ~= truth)")
    print(format_table(rows, ["dc", "truth"] + METHODS))

    # The paper's claim is about the overall picture: "the overall
    # numbers of DC violations on the synthetic instance output by
    # Kamino are the closest to those on the truth among all
    # approaches".  Check total |synth - truth| across the dataset's
    # DCs, and exact preservation for hard DCs.
    def distance(method):
        return sum(abs(row[method] - row["truth"]) for row in rows)

    kamino_distance = distance("Kamino")
    for method in METHODS:
        if method != "Kamino":
            assert kamino_distance <= distance(method) + 1e-9
    for row, dc in zip(rows, dataset.dcs):
        if dc.hard:
            assert row["Kamino"] <= row["truth"] + 0.5
