"""Figure 8 — scaling the number of input DCs.

Discovers approximate DCs on Adult (standing in for "knowledge from the
domain expert", as the paper does) and runs Kamino with 2, 8, and 32
soft DCs.  Paper's claims: task quality degrades only slightly (0.04 at
128 DCs) while execution time grows roughly linearly, dominated by the
sampling phase.
"""

import numpy as np

from benchmarks.conftest import print_header, rows_for
from repro.constraints import discover_dcs
from repro.core import Kamino
from repro.datasets import load
from repro.evaluation import train_on_synthetic_test_on_true

DC_COUNTS = [2, 8, 32]


def _cap(params):
    params.iterations = min(params.iterations, 40)


def test_fig8_dc_scaling(benchmark):
    dataset = load("adult", n=rows_for("adult"), seed=0)
    discovered = discover_dcs(dataset.table, max_violation_rate=5.0,
                              limit=max(DC_COUNTS), sample_size=300,
                              seed=0)
    assert len(discovered) >= max(DC_COUNTS), "not enough DCs discovered"

    def run():
        out = {}
        for count in DC_COUNTS:
            kam = Kamino(dataset.relation, discovered[:count],
                         epsilon=1.0, delta=1e-6, seed=0,
                         params_override=_cap)
            out[count] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Figure 8 — quality and time vs #DCs on Adult "
                 "(paper: quality ~flat, time grows linearly)")
    print(f"{'#DCs':>5s} {'panel acc':>10s} {'total s':>8s} {'sam s':>7s}")
    accs, times = {}, {}
    for count, result in results.items():
        # Average several targets: a single attribute's accuracy is too
        # noisy at bench scale to read the quality-vs-#DCs trend.
        panel = [train_on_synthetic_test_on_true(
            dataset.table, result.table, target)["accuracy"]
            for target in ("income", "sex", "marital", "workclass")]
        acc = float(np.mean(panel))
        accs[count] = acc
        times[count] = result.total_seconds
        print(f"{count:>5d} {acc:10.3f} {result.total_seconds:8.2f} "
              f"{result.timings['Sam.']:7.2f}")

    # Quality stays within a modest band while DCs grow 16x.
    assert abs(accs[max(DC_COUNTS)] - accs[min(DC_COUNTS)]) < 0.2
    # More DCs cost more sampling time.
    assert (results[max(DC_COUNTS)].timings["Sam."]
            >= results[min(DC_COUNTS)].timings["Sam."])
