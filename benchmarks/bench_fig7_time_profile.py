"""Figure 7 — per-phase time profile of end-to-end Kamino runs.

Paper's claim: training and sampling together take more than 99% of the
total (sequencing and weight learning are negligible).
"""

import pytest

from benchmarks.conftest import print_header, rows_for
from repro.core import Kamino
from repro.datasets import load


def _cap(params):
    params.iterations = min(params.iterations, 60)


@pytest.mark.parametrize("dataset_name",
                         ["adult", "br2000", "tax", "tpch"])
def test_fig7_time_profile(benchmark, dataset_name):
    dataset = load(dataset_name, n=rows_for(dataset_name), seed=0)
    kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0, delta=1e-6,
                 seed=0, params_override=_cap)

    result = benchmark.pedantic(
        lambda: kam.fit_sample(dataset.table), rounds=1, iterations=1)

    print_header(f"Figure 7 [{dataset_name}] — phase profile "
                 f"(paper: Tra.+Sam. > 99% of total)")
    total = result.total_seconds
    for phase in ["Seq.", "Tra.", "DC.W.", "Sam."]:
        secs = result.timings[phase]
        print(f"{phase:>6s}: {secs:8.3f}s ({100 * secs / total:5.1f}%)")

    heavy = result.timings["Tra."] + result.timings["Sam."]
    assert heavy / total > 0.9
