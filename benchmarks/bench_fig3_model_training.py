"""Figure 3 — classification accuracy and F1 per method and dataset.

The paper trains the 9-classifier panel per attribute on synthetic
data, tests on true data, and shows Kamino's box is the closest to the
Truth reference on most datasets.

Expected shape at bench scale: Truth scores highest; Kamino is at or
near the top of the synthetic methods.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.evaluation import classification_report
from repro.evaluation.harness import METHODS

#: Representative targets per dataset (full-attribute sweeps at paper
#: scale use Dataset.label_attrs).
TARGETS = {
    "adult": ["income", "sex", "marital"],
    "br2000": ["a1", "a8", "a12"],
    "tax": ["has_child", "marital", "gender"],
    "tpch": ["c_mktsegment", "o_orderstatus"],
}


@pytest.mark.parametrize("dataset_name", sorted(TARGETS))
def test_fig3_classification(benchmark, datasets, synth_cache,
                             dataset_name):
    dataset = datasets[dataset_name]
    targets = TARGETS[dataset_name]

    def run():
        results = {}
        for method in METHODS:
            synth = synth_cache.get(dataset_name, method)[0]
            rows = classification_report(dataset.table, synth,
                                         targets=targets)
            results[method] = rows
        results["Truth"] = classification_report(
            dataset.table, dataset.table, targets=targets)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header(f"Figure 3 [{dataset_name}] — panel-mean accuracy / F1 "
                 f"(paper: Kamino closest to Truth)")
    print(f"{'method':>10s} {'accuracy':>9s} {'f1':>7s}")
    means = {}
    for method in METHODS + ["Truth"]:
        acc = float(np.mean([r["accuracy"] for r in results[method]]))
        f1 = float(np.mean([r["f1"] for r in results[method]]))
        means[method] = acc
        print(f"{method:>10s} {acc:9.3f} {f1:7.3f}")

    assert means["Truth"] == max(means.values())
    # "Comparable" at bench scale: accuracies cluster within a few
    # points, so strict rank order is noise.  Kamino must either sit in
    # the top half of the synthetic methods or trail the best one by at
    # most 0.08.  (EXPERIMENTS.md discusses why NIST's marginal-based
    # approach tops the raw panel at tiny n while Kamino alone
    # preserves the constraints.)
    ranked = sorted(METHODS, key=lambda m: -means[m])
    best_synth = max(means[m] for m in METHODS)
    top_half = ranked.index("Kamino") <= len(ranked) // 2
    within_margin = means["Kamino"] >= best_synth - 0.08
    assert top_half or within_margin, (
        f"Kamino {means['Kamino']:.3f} ranks {ranked.index('Kamino') + 1}"
        f"/{len(ranked)} and trails best {best_synth:.3f} by more "
        f"than 0.08")
