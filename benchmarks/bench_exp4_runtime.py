"""Experiment 4 — execution time comparison across methods.

Paper's findings: NIST and PrivBayes are the fastest; the deep-model
baselines are in the middle; Kamino is the slowest (it checks DC
violations while sampling) but remains practically efficient.

Expected shape: time(NIST), time(PrivBayes) < time(Kamino).
"""

import pytest

from benchmarks.conftest import print_header
from repro.evaluation.harness import METHODS


@pytest.mark.parametrize("dataset_name", ["adult", "tpch"])
def test_exp4_runtime(benchmark, datasets, synth_cache, dataset_name):
    def run():
        return {method: synth_cache.get(dataset_name, method)[1]
                for method in METHODS}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header(f"Experiment 4 [{dataset_name}] — synthesis wall-clock "
                 f"(paper: NIST/PrivBayes fastest, Kamino slowest)")
    for method in sorted(times, key=times.get):
        print(f"{method:>10s}: {times[method]:8.2f}s")

    assert times["NIST"] <= times["Kamino"]
    assert times["PrivBayes"] <= times["Kamino"]
