"""Figure 1 — repairing violations destroys utility.

The paper's Example 1: take the baselines' synthetic Adult data, repair
the DC violations with a HoloClean-style cleaner, and observe that the
"cleaned" variants score worse on classification and 2-way marginals
than the "standard" (violating) variants.

Expected shape: for most baselines, cleaned accuracy <= standard
accuracy and cleaned 2-way distance >= standard distance.
"""

import numpy as np

from benchmarks.conftest import print_header
from repro.baselines import repair_violations
from repro.evaluation import (
    marginal_distances, train_on_synthetic_test_on_true,
)

BASELINES = ["PrivBayes", "PATE-GAN", "DP-VAE"]


def test_fig1_cleaning_hurts_utility(benchmark, datasets, synth_cache):
    dataset = datasets["adult"]

    def run():
        out = {}
        for method in BASELINES:
            standard = synth_cache.get("adult", method)[0]
            cleaned = repair_violations(standard, dataset.dcs, seed=0)
            out[method] = (standard, cleaned)
        return out

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Figure 1 — standard vs cleaned baselines on Adult "
                 "(paper: cleaning lowers accuracy, raises distance)")
    print(f"{'method':>10s} {'acc std':>8s} {'acc cln':>8s} "
          f"{'tvd2 std':>9s} {'tvd2 cln':>9s}")
    degradations = 0
    for method, (standard, cleaned) in variants.items():
        acc = {}
        tvd = {}
        for label, table in [("std", standard), ("cln", cleaned)]:
            scores = train_on_synthetic_test_on_true(
                dataset.table, table, "income")
            acc[label] = scores["accuracy"]
            dists = marginal_distances(dataset.table, table, alpha=2,
                                       max_sets=8, seed=0)
            tvd[label] = float(np.mean([d for _, d in dists]))
        print(f"{method:>10s} {acc['std']:8.3f} {acc['cln']:8.3f} "
              f"{tvd['std']:9.3f} {tvd['cln']:9.3f}")
        if acc["cln"] <= acc["std"] + 0.02 or tvd["cln"] >= tvd["std"] - 0.02:
            degradations += 1
    # The qualitative claim: cleaning does not improve utility for the
    # majority of baselines.
    assert degradations >= 2
