"""Ablation — soft-DC weight estimators (DESIGN.md §4).

Compares the paper's literal Algorithm 5 fit over the noisy violation
matrix ("matrix") against the capped-indicator log-odds calibration
("capped") on BR2000's three soft DCs, at the honest budget (eps = 1)
and non-privately (eps = inf, where the calibration is exact).

Expected shape (see repro.core.weights): at eps = 1 both estimators'
inputs are noise-dominated — "matrix" degrades to the weight_init
prior, "capped" stays within its [log 2, log 2L_w] guardrails; without
noise, "capped" separates clean from violated DCs by calibrated
amounts.
"""

import math

from benchmarks.conftest import print_header, rows_for
from repro.constraints import violating_pair_percentage
from repro.core import Kamino
from repro.datasets import load


def _cap(params):
    params.iterations = min(params.iterations, 40)
    params.embed_dim = min(params.embed_dim, 12)


def test_weight_estimator_ablation(benchmark):
    dataset = load("br2000", n=rows_for("br2000"), seed=0)

    def run():
        out = {}
        for epsilon in (1.0, math.inf):
            for estimator in ("matrix", "capped"):
                kam = Kamino(dataset.relation, dataset.dcs,
                             epsilon=epsilon, delta=1e-6, seed=0,
                             params_override=_cap, group_max_domain=128,
                             weight_estimator=estimator)
                out[(epsilon, estimator)] = kam.fit_sample(dataset.table)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — weight estimators on BR2000 soft DCs")
    print(f"{'eps':>5s} {'estimator':>9s} " + " ".join(
        f"{dc.name:>8s}" for dc in dataset.dcs) + "   sum|gap|")
    truth = {dc.name: violating_pair_percentage(dc, dataset.table)
             for dc in dataset.dcs}
    print(f"{'':>5s} {'truth':>9s} " + " ".join(
        f"{truth[dc.name]:8.3f}" for dc in dataset.dcs))
    gaps = {}
    for (epsilon, estimator), result in results.items():
        rates = {dc.name: violating_pair_percentage(dc, result.table)
                 for dc in dataset.dcs}
        gap = sum(abs(rates[k] - truth[k]) for k in rates)
        gaps[(epsilon, estimator)] = gap
        label = "inf" if math.isinf(epsilon) else f"{epsilon:g}"
        print(f"{label:>5s} {estimator:>9s} " + " ".join(
            f"{rates[dc.name]:8.3f}" for dc in dataset.dcs)
            + f" {gap:10.3f}")

    # Guardrails hold: every learned weight is strictly positive and
    # finite for soft DCs under both estimators.
    for result in results.values():
        for dc in dataset.dcs:
            w = result.weights[dc.name]
            assert 0.0 < w < math.inf, (dc.name, w)
    # Non-private capped calibration should not be worse than the
    # non-private matrix fit by more than noise.
    assert gaps[(math.inf, "capped")] <= gaps[(math.inf, "matrix")] + 25.0
