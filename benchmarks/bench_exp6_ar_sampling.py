"""Experiment 6 — direct constraint-aware sampling vs accept-reject.

Paper's findings: with *hard* DCs (Adult) accept-reject leaves
violations (0.4% and 37.2% on the two Adult DCs) because the accept
ratio collapses to zero and the sampler gives up; with *soft* DCs
(BR2000) AR performs comparably and is faster.

Expected shape: on Adult, AR violations >= direct violations; the
direct sampler stays at ~0.
"""

from benchmarks.conftest import print_header, rows_for
from repro.constraints import violating_pair_percentage
from repro.core import Kamino
from repro.datasets import load


def _cap(params):
    params.iterations = min(params.iterations, 40)


def test_exp6_ar_vs_direct(benchmark):
    adult = load("adult", n=rows_for("adult"), seed=0)
    br = load("br2000", n=rows_for("br2000"), seed=0)

    def run():
        out = {}
        for label, dataset in [("adult", adult), ("br2000", br)]:
            kam = Kamino(dataset.relation, dataset.dcs, epsilon=1.0,
                         delta=1e-6, seed=0, params_override=_cap)
            out[(label, "direct")] = kam.fit_sample(dataset.table)
            out[(label, "ar")] = kam.fit_sample_ar(dataset.table,
                                                   max_tries=60)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Experiment 6 — direct vs accept-reject sampling "
                 "(paper: AR leaves hard-DC violations on Adult)")
    print(f"{'dataset':>8s} {'sampler':>8s} {'sum viol%':>10s} "
          f"{'sam s':>7s}")
    viol = {}
    for (label, sampler), result in results.items():
        dataset = adult if label == "adult" else br
        total = sum(violating_pair_percentage(dc, result.table)
                    for dc in dataset.dcs)
        viol[(label, sampler)] = total
        print(f"{label:>8s} {sampler:>8s} {total:10.3f} "
              f"{result.timings['Sam.']:7.2f}")

    assert viol[("adult", "direct")] <= viol[("adult", "ar")] + 1e-9
    assert viol[("adult", "direct")] < 0.5
