"""Figure 6 — task quality as the privacy budget varies.

Sweeps epsilon over {0.1, 0.4, 1.6, inf} on Adult for Kamino and two
baselines.  Paper's claims: quality improves with epsilon, and Kamino
tracks (or beats) the baselines across the sweep while still enforcing
the DCs.
"""

import math

import numpy as np

from benchmarks.conftest import print_header
from repro.constraints import violating_pair_percentage
from repro.evaluation import (
    marginal_distances, train_on_synthetic_test_on_true,
)

EPSILONS = [0.1, 0.4, 1.6, math.inf]
SWEEP_METHODS = ["Kamino", "PrivBayes", "NIST"]


def test_fig6_epsilon_sweep(benchmark, datasets, synth_cache):
    dataset = datasets["adult"]

    def run():
        out = {}
        for method in SWEEP_METHODS:
            for eps in EPSILONS:
                out[(method, eps)] = synth_cache.get("adult", method,
                                                     epsilon=eps)[0]
        return out

    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Figure 6 — quality vs epsilon on Adult "
                 "(paper: quality rises with epsilon)")
    print(f"{'method':>10s} {'eps':>6s} {'accuracy':>9s} "
          f"{'1way tvd':>9s} {'viol%':>7s}")
    tvd_by_eps = {}
    for method in SWEEP_METHODS:
        for eps in EPSILONS:
            table = tables[(method, eps)]
            acc = train_on_synthetic_test_on_true(
                dataset.table, table, "income")["accuracy"]
            tvd = float(np.mean([d for _, d in marginal_distances(
                dataset.table, table, alpha=1)]))
            viol = sum(violating_pair_percentage(dc, table)
                       for dc in dataset.dcs)
            tvd_by_eps[(method, eps)] = tvd
            label = "inf" if math.isinf(eps) else f"{eps:g}"
            print(f"{method:>10s} {label:>6s} {acc:9.3f} {tvd:9.3f} "
                  f"{viol:7.3f}")

    # Shape: for each method, the non-private run has (weakly) better
    # marginals than the tightest budget.
    for method in SWEEP_METHODS:
        assert (tvd_by_eps[(method, math.inf)]
                <= tvd_by_eps[(method, 0.1)] + 0.05)
