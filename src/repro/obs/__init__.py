"""Run telemetry and perf-history tooling (the observability layer).

* :mod:`repro.obs.trace` — :class:`RunTrace` and friends: phase
  timers, per-column counters/gauges, and probe counts threaded through
  fit and both sampling engines behind a zero-cost-when-off hook.
* :mod:`repro.obs.bench` — the committed ``benchmarks/history/`` store,
  point comparison with a regression gate, and markdown rendering
  (surfaced as ``repro-kamino bench-compare``).
"""

from repro.obs.trace import (
    FIT_PHASES, TRACE_VERSION, ColumnTrace, RunTrace, SampleTrace,
)
from repro.obs.bench import (
    DEFAULT_HISTORY_DIR, DEFAULT_THRESHOLD, compare_points,
    environment_mismatch, extract_metrics, history_points, load_point,
    point_label, render_compare_markdown, render_trajectory_markdown,
    trace_digest,
)

__all__ = [
    "FIT_PHASES", "TRACE_VERSION", "ColumnTrace", "RunTrace",
    "SampleTrace", "DEFAULT_HISTORY_DIR", "DEFAULT_THRESHOLD",
    "compare_points", "environment_mismatch", "extract_metrics",
    "history_points", "load_point", "point_label",
    "render_compare_markdown", "render_trajectory_markdown",
    "trace_digest",
]
