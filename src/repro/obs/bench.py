"""Committed perf history and regression gating.

``benchmarks/bench_exp10_optimizations.py`` writes a machine-readable
``BENCH_exp10.json`` on every run (per-dataset, per-engine wall-clock
and rows/sec, plus a trace digest of the blocked engine's draw).  This
module makes that trajectory *real* instead of ephemeral:

* ``benchmarks/history/`` holds one committed JSON point per PR
  (sortable file names, e.g. ``0006-run-telemetry.json``) — the same
  document the benchmark emits, so promoting a point is one ``cp``;
* :func:`compare_points` diffs a fresh benchmark run against the last
  committed point and flags any dataset/engine whose rows/sec dropped
  by more than the threshold (default 10%);
* :func:`render_compare_markdown` / :func:`render_trajectory_markdown`
  render the comparison and the whole trajectory as markdown tables;
* the ``repro-kamino bench-compare`` CLI wires it together, and
  ``--gate`` turns a regression into a non-zero exit for CI.

Comparisons are guarded: a point whose row count ``n`` differs from the
baseline's is reported but never gated (rows/sec at different scales is
not apples-to-apples), and a recorded machine/python mismatch demotes
the verdict to a warning in the report (the gate still applies — CI
runners are assumed homogeneous; regenerate the baseline when they
change).
"""

from __future__ import annotations

import json
import os
from glob import glob

#: Default regression threshold: fail on >10% rows/sec drop.
DEFAULT_THRESHOLD = 0.10

#: Default location of the committed history store.
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")

#: The benchmark section bench-compare reads.
ENGINE_SECTION = "exp10_engines"


def load_point(path: str) -> dict:
    """Read one benchmark document (``BENCH_exp10.json`` schema)."""
    with open(path) as f:
        return json.load(f)


def history_points(directory: str) -> list[tuple[str, dict]]:
    """All committed points, oldest first (sorted by file name)."""
    out = []
    for path in sorted(glob(os.path.join(directory, "*.json"))):
        out.append((os.path.basename(path), load_point(path)))
    return out


def point_label(name: str, doc: dict) -> str:
    label = (doc.get("meta") or {}).get("label")
    return label or name.rsplit(".", 1)[0]


def extract_metrics(doc: dict) -> dict[tuple[str, str], dict]:
    """Flatten a point into ``{(dataset, engine): {n, seconds,
    rows_per_sec}}``; empty when the engine section is absent."""
    out: dict[tuple[str, str], dict] = {}
    for dataset, entry in (doc.get(ENGINE_SECTION) or {}).items():
        for engine, metrics in (entry.get("engines") or {}).items():
            out[(dataset, engine)] = {
                "n": entry.get("n"),
                "seconds": metrics.get("seconds"),
                "rows_per_sec": metrics.get("rows_per_sec"),
            }
    return out


def compare_points(current: dict, baseline: dict,
                   threshold: float = DEFAULT_THRESHOLD) -> list[dict]:
    """Per-(dataset, engine) comparison rows, gate verdict included.

    A row is a ``regression`` when both points measured the same ``n``
    and the current rows/sec fell more than ``threshold`` below the
    baseline.  Engines present in only one point are skipped (the
    benchmark's engine set may grow across PRs).
    """
    cur = extract_metrics(current)
    base = extract_metrics(baseline)
    rows = []
    for key in sorted(set(cur) & set(base)):
        dataset, engine = key
        c, b = cur[key], base[key]
        c_rps, b_rps = c["rows_per_sec"], b["rows_per_sec"]
        change = (c_rps - b_rps) / b_rps if b_rps else 0.0
        comparable = c["n"] == b["n"]
        rows.append({
            "dataset": dataset,
            "engine": engine,
            "n": c["n"],
            "baseline_n": b["n"],
            "baseline_rps": b_rps,
            "current_rps": c_rps,
            "change": round(change, 4),
            "comparable": comparable,
            "regression": comparable and change < -threshold,
        })
    return rows


def environment_mismatch(current: dict, baseline: dict) -> list[str]:
    """Human-readable meta differences that make absolute wall-clock
    comparisons suspect (machine, python, numpy)."""
    cur_meta = current.get("meta") or {}
    base_meta = baseline.get("meta") or {}
    out = []
    for field in ("machine", "python", "numpy"):
        a, b = base_meta.get(field), cur_meta.get(field)
        if a and b and a != b:
            out.append(f"{field}: baseline {a!r} vs current {b!r}")
    return out


def render_compare_markdown(rows: list[dict], baseline_label: str,
                            threshold: float = DEFAULT_THRESHOLD) -> str:
    """The comparison as a markdown table with a verdict column."""
    lines = [
        f"### Perf vs `{baseline_label}` (gate: >{threshold:.0%} "
        f"rows/sec drop)",
        "",
        "| dataset | engine | n | baseline rows/s | current rows/s | "
        "change | verdict |",
        "|---|---|---:|---:|---:|---:|---|",
    ]
    for r in rows:
        if not r["comparable"]:
            verdict = f"skipped (n {r['baseline_n']} → {r['n']})"
        elif r["regression"]:
            verdict = "**REGRESSION**"
        else:
            verdict = "ok"
        lines.append(
            f"| {r['dataset']} | {r['engine']} | {r['n']} | "
            f"{r['baseline_rps']:,.1f} | {r['current_rps']:,.1f} | "
            f"{r['change']:+.1%} | {verdict} |")
    return "\n".join(lines)


def render_trajectory_markdown(points: list[tuple[str, dict]],
                               engine: str = "blocked") -> str:
    """The committed trajectory: one row per dataset, one column per
    point, rows/sec of ``engine``."""
    labels = [point_label(name, doc) for name, doc in points]
    metrics = [extract_metrics(doc) for _, doc in points]
    datasets = sorted({ds for m in metrics for (ds, eng) in m
                       if eng == engine})
    lines = [
        f"### Perf trajectory — `{engine}` engine rows/sec",
        "",
        "| dataset | " + " | ".join(labels) + " |",
        "|---|" + "---:|" * len(labels),
    ]
    for ds in datasets:
        cells = []
        for m in metrics:
            entry = m.get((ds, engine))
            cells.append(f"{entry['rows_per_sec']:,.1f} (n={entry['n']})"
                         if entry else "—")
        lines.append(f"| {ds} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def trace_digest(sample_trace) -> dict:
    """Compact, machine-comparable digest of one sample-run trace.

    Accepts a :class:`repro.obs.trace.SampleTrace` or its ``to_dict``
    form.  The digest drops wall-clock values (they belong to the
    benchmark metrics) and keeps the *shape* of the run — column count,
    engine-lane mix, scheduling counters, probe totals — so history
    points can show when a PR changed how the engine schedules work,
    not just how fast it ran.
    """
    doc = sample_trace.to_dict() if hasattr(sample_trace, "to_dict") \
        else sample_trace
    modes: dict[str, int] = {}
    counters: dict[str, int] = {}
    probes_total = 0
    for col in doc.get("columns", ()):
        mode = col.get("mode") or "?"
        modes[mode] = modes.get(mode, 0) + 1
        for key, value in (col.get("counters") or {}).items():
            if key == "block_rows_max":
                counters[key] = max(counters.get(key, 0), value)
            else:
                counters[key] = counters.get(key, 0) + value
        probes_total += sum((col.get("probes") or {}).values())
    return {
        "engine": doc.get("engine"),
        "columns": len(doc.get("columns", ())),
        "modes": dict(sorted(modes.items())),
        "counters": dict(sorted(counters.items())),
        "probes_total": probes_total,
    }
