"""Run telemetry: phase timers, counters, and gauges for fit/sample.

One :class:`RunTrace` records everything a pipeline run did and how
long each part took:

* **fit phases** — sequencing (Algorithm 4), parameter search
  (Algorithm 6), DP-SGD model training (Algorithm 2), and DC-weight
  learning (Algorithm 5), timed via :meth:`RunTrace.phase`;
* **sample runs** — one :class:`SampleTrace` per draw, holding a
  :class:`ColumnTrace` per sampled working column: wall-clock,
  rows/sec, the engine lane the column ran on (``mode``), scheduling
  counters (blocks, block sizes, re-scored rows, forced rows,
  sequential-fallback rows), and violation-index probe counts.

The collector is threaded through :meth:`repro.core.kamino.Kamino.fit`,
:meth:`repro.core.kamino.FittedKamino.sample`, both sampling engines
(:mod:`repro.core.engine`, :mod:`repro.core.sampling`), and the
violation indexes (:mod:`repro.constraints.index`) behind a
zero-cost-when-off hook: every instrumentation site is guarded by an
``if trace is not None`` (or, inside the index probes, ``if
self.counters is not None``) so the untraced hot path does no extra
work — and tracing itself never touches an rng, so a traced draw is
bit-identical to an untraced one.

Serialisation is **stable-keyed JSON**: :meth:`RunTrace.to_json` dumps
with sorted keys, counters included, so two runs of the same workload
produce byte-comparable structure (only the timing values differ).
:meth:`RunTrace.summary` renders the same data as a human-readable
report; the CLI surfaces both via ``repro-kamino fit/sample/synthesize
--trace out.json``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

#: Format version of the emitted JSON document.
TRACE_VERSION = 1

#: Canonical fit-phase names, in pipeline order.
FIT_PHASES = ("sequencing", "params", "dp_sgd", "weights")


def _rps(rows: int, seconds: float) -> float:
    return round(rows / max(seconds, 1e-9), 1)


class ColumnTrace:
    """Telemetry of one sampled working column (one engine pass)."""

    __slots__ = ("name", "mode", "seconds", "rows", "counters", "probes")

    def __init__(self, name: str):
        self.name = name
        #: Engine lane the pass ran on: ``unconstrained``,
        #: ``cat-fd-lane``, ``cat-generic``, ``num-blocked``,
        #: ``num-sequential`` (blocked engine) or ``iid-vectorized`` /
        #: ``sequential`` (row engine).
        self.mode = ""
        self.seconds = 0.0
        self.rows = 0
        #: Scheduling counters: ``blocks``, ``block_rows_max``,
        #: ``rescored_rows``, ``forced_rows``, ``sequential_rows``,
        #: ``shards`` — whichever the lane produces.
        self.counters: dict[str, int] = {}
        #: Violation-index probe counts, keyed by probe method name
        #: (``probe_block_codes``, ``probe_det_codes``, ``probe_pair``,
        #: ``probe_many``, ``candidate_counts``).  The engine attaches
        #: this dict to every index it probes.
        self.probes: dict[str, int] = {}

    def count(self, key: str, inc: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + inc

    def observe_block(self, size: int) -> None:
        """Record one scheduled block of ``size`` rows."""
        self.count("blocks")
        self.count("block_rows", size)
        if size > self.counters.get("block_rows_max", 0):
            self.counters["block_rows_max"] = size

    def finish(self, seconds: float, rows: int) -> None:
        self.seconds = float(seconds)
        self.rows = int(rows)

    @property
    def sequential_fallback_rate(self) -> float:
        """Fraction of rows drawn on a per-row path (sequential lane
        plus in-block re-scores) instead of a vectorized block."""
        if not self.rows:
            return 0.0
        slow = (self.counters.get("sequential_rows", 0)
                + self.counters.get("rescored_rows", 0))
        return min(slow / self.rows, 1.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "mode": self.mode,
            "seconds": round(self.seconds, 6),
            "rows": self.rows,
            "rows_per_sec": _rps(self.rows, self.seconds),
            "sequential_fallback_rate": round(
                self.sequential_fallback_rate, 4),
            "counters": dict(sorted(self.counters.items())),
            "probes": dict(sorted(self.probes.items())),
        }


class SampleTrace:
    """Telemetry of one :meth:`FittedKamino.sample` (or ``sample_ar``)
    run: draw parameters, total wall-clock, and per-column passes."""

    def __init__(self, engine: str, n: int, seed, workers: int = 1,
                 pool: str = "thread"):
        self.engine = engine
        self.n = int(n)
        self.seed = None if seed is None else int(seed)
        self.workers = int(workers)
        self.pool = pool
        self.seconds = 0.0
        self.columns: list[ColumnTrace] = []

    def column(self, name: str) -> ColumnTrace:
        """Open (and return) the trace of the next column pass."""
        col = ColumnTrace(name)
        self.columns.append(col)
        return col

    def finish(self, seconds: float) -> None:
        self.seconds = float(seconds)

    def aggregate_counters(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for col in self.columns:
            for key, value in col.counters.items():
                if key == "block_rows_max":
                    out[key] = max(out.get(key, 0), value)
                else:
                    out[key] = out.get(key, 0) + value
            for key, value in col.probes.items():
                out[key] = out.get(key, 0) + value
        return out

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "n": self.n,
            "seed": self.seed,
            "workers": self.workers,
            "pool": self.pool,
            "seconds": round(self.seconds, 6),
            "rows_per_sec": _rps(self.n, self.seconds),
            "columns": [col.to_dict() for col in self.columns],
        }


class RunTrace:
    """The root collector one pipeline run (fit and/or draws) writes to.

    Create one, pass it to ``fit(..., trace=)`` and/or
    ``sample(..., trace=)``, then read :meth:`to_dict`/:meth:`to_json`
    or print :meth:`summary`.  A single trace may span one fit plus any
    number of sample runs (the ``synthesize`` CLI records both in one
    document).
    """

    def __init__(self, label: str | None = None):
        self.label = label
        #: Fit-phase wall-clock seconds, in execution order.
        self.fit_phases: dict[str, float] = {}
        self.samples: list[SampleTrace] = []

    # -- recording ------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Time a fit phase; re-entering a name accumulates."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.fit_phases[name] = self.fit_phases.get(name, 0.0) + elapsed

    def begin_sample(self, engine: str, n: int, seed, workers: int = 1,
                     pool: str = "thread") -> SampleTrace:
        run = SampleTrace(engine, n, seed, workers, pool=pool)
        self.samples.append(run)
        return run

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        doc: dict = {
            "version": TRACE_VERSION,
            "label": self.label,
            "fit": {
                "phases": {name: round(sec, 6)
                           for name, sec in self.fit_phases.items()},
                "seconds": round(sum(self.fit_phases.values()), 6),
            },
            "samples": [run.to_dict() for run in self.samples],
        }
        return doc

    def to_json(self, indent: int = 2) -> str:
        """Stable-keyed JSON (sorted keys at every level)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    # -- human-readable summary ----------------------------------------
    def summary(self) -> str:
        """A compact, readable report of everything the trace holds."""
        lines: list[str] = []
        title = "run trace" + (f" [{self.label}]" if self.label else "")
        lines.append(title)
        if self.fit_phases:
            total = sum(self.fit_phases.values())
            lines.append(f"  fit: {total:.2f}s")
            for name, sec in self.fit_phases.items():
                share = 100.0 * sec / max(total, 1e-9)
                lines.append(f"    {name:<12s} {sec:8.3f}s {share:5.1f}%")
        for k, run in enumerate(self.samples):
            seed = "-" if run.seed is None else run.seed
            lines.append(
                f"  sample[{k}]: engine={run.engine} n={run.n} "
                f"seed={seed} workers={run.workers} pool={run.pool} — "
                f"{run.seconds:.2f}s ({_rps(run.n, run.seconds):,.0f} "
                f"rows/s)")
            if not run.columns:
                continue
            lines.append(f"    {'column':<16s} {'mode':<16s} "
                         f"{'seconds':>8s} {'rows/s':>10s} {'blocks':>7s} "
                         f"{'probes':>7s} {'fallback':>8s}")
            for col in run.columns:
                blocks = col.counters.get("blocks", 0)
                probes = sum(col.probes.values())
                lines.append(
                    f"    {col.name:<16s} {col.mode:<16s} "
                    f"{col.seconds:8.3f} "
                    f"{_rps(col.rows, col.seconds):10,.0f} "
                    f"{blocks:7d} {probes:7d} "
                    f"{col.sequential_fallback_rate:7.1%}")
        return "\n".join(lines)
