"""AimNet-style discriminative sub-models (§2.3 of the paper).

Each conditional probability ``Pr(t[A_j] | t[S_:j])`` of the chain
decomposition is learned as a discriminative model ``M_{X,y}`` that
predicts target attribute ``y`` from the context attributes ``X``:

* every context attribute is encoded to a shared d-dimensional space —
  a learnable lookup table for categorical attributes, the paper's
  linear/ReLU/linear transform for numerical attributes;
* an attention layer mixes the context embeddings into a context
  vector;
* a prediction head maps the context vector to either a distribution
  over the target's discrete domain (via dot products with the target's
  value embeddings) or the (mu, sigma) of a Gaussian for numerical
  targets.

The :class:`EmbeddingStore` implements Algorithm 2's embedding reuse
(line 19): encoders trained in earlier sub-models initialise the context
encoders of later ones.
"""

from repro.aimnet.model import AimNet
from repro.aimnet.store import EmbeddingStore

__all__ = ["AimNet", "EmbeddingStore"]
