"""The discriminative sub-model ``M_{X,y}``.

Architecture (§2.3, following AimNet):

* context attributes ``X = S_:j`` are encoded to ``(batch, m, d)``;
* an :class:`~repro.nn.attention.Attention` layer pools them into a
  context vector ``(batch, d)``;
* **categorical target** — logits are scaled dot products between the
  context vector and the target attribute's value embeddings, plus a
  bias: ``logits = ctx E_y^T / sqrt(d) + b``;
* **numerical target** — a linear head outputs ``(mu', log sigma')`` in
  a standardized space derived from the public domain bounds; the model
  decodes predictions back to raw units.

The full forward/backward is hand-derived and covered by gradcheck
tests; backward supports per-sample gradients for DP-SGD.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.attention import Attention
from repro.nn.losses import cross_entropy_loss, gaussian_nll_loss
from repro.nn.parameter import Parameter
from repro.aimnet.store import EmbeddingStore


class AimNet(Module):
    """Predicts ``target_attr`` from ``context_attrs``.

    Parameters
    ----------
    relation:
        The schema (domains of all attributes involved).
    context_attrs:
        Names of the context attributes ``X`` (at least one).
    target_attr:
        Name of the target attribute ``y``.
    dim:
        Shared embedding dimension ``d``.
    rng:
        Initialisation randomness.
    store:
        The :class:`EmbeddingStore` providing shared context encoders;
        a private store is created when omitted.
    """

    def __init__(self, relation, context_attrs, target_attr: str, dim: int,
                 rng: np.random.Generator, store: EmbeddingStore | None = None):
        if not context_attrs:
            raise ValueError("AimNet needs at least one context attribute")
        if target_attr in context_attrs:
            raise ValueError("target cannot also be context")
        self.relation = relation
        self.context_attrs = list(context_attrs)
        self.target_attr = target_attr
        self.dim = int(dim)
        self.store = store if store is not None else EmbeddingStore(dim, rng)

        self.encoders = {a: self.store.encoder_for(relation[a])
                         for a in self.context_attrs}
        self.attention = Attention(dim, rng, name=f"{target_attr}.attention")

        target = relation[target_attr]
        self.target_is_categorical = target.is_categorical
        if self.target_is_categorical:
            # The target embedding doubles as the output layer and is
            # registered in the store for reuse as a context encoder in
            # later sub-models (Algorithm 2 line 19).
            self.target_embedding: Embedding = self.store.encoder_for(target)
            self.out_bias = Parameter(np.zeros(target.domain.size),
                                      name=f"{target_attr}.out_bias")
            self.head = None
        else:
            self.target_embedding = None
            self.out_bias = None
            self.head = Linear(dim, 2, rng, name=f"{target_attr}.head")
            self._t_mid = 0.5 * (target.domain.low + target.domain.high)
            self._t_scale = max((target.domain.high - target.domain.low) / 4.0,
                                1e-12)
        self._cache = None

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _encode_context(self, batch_cols: dict) -> np.ndarray:
        """Stack per-attribute encodings into (batch, m, d)."""
        encoded = [self.encoders[a].forward(batch_cols[a])
                   for a in self.context_attrs]
        return np.stack(encoded, axis=1)

    def forward(self, batch_cols: dict):
        """Run the model on a batch given as ``{attr: column}``.

        Returns logits ``(batch, |y|)`` for categorical targets or
        ``(mu_std, log_sigma_std)`` (standardized space) for numerical
        targets.
        """
        context = self._encode_context(batch_cols)
        ctx = self.attention.forward(context)
        if self.target_is_categorical:
            table = self.target_embedding.table.value
            scale = 1.0 / np.sqrt(self.dim)
            logits = ctx @ table.T * scale + self.out_bias.value
            self._cache = ("cat", ctx, scale)
            return logits
        out = self.head.forward(ctx)
        self._cache = ("num", ctx)
        return out[:, 0], out[:, 1]

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(self, grad_out, per_sample: bool = False) -> None:
        """Backpropagate from the head's gradient to all parameters.

        ``grad_out`` is the gradient w.r.t. logits (categorical) or the
        stacked ``(batch, 2)`` gradient w.r.t. (mu_std, log_sigma_std).
        """
        kind = self._cache[0]
        if kind == "cat":
            _, ctx, scale = self._cache
            table = self.target_embedding.table.value
            grad_ctx = grad_out @ table * scale
            gt = np.einsum("bv,bd->vd", grad_out, ctx) * scale
            gt_sample = (np.einsum("bv,bd->bvd", grad_out, ctx) * scale
                         if per_sample else None)
            self.target_embedding.table.accumulate(gt, gt_sample)
            self.out_bias.accumulate(grad_out.sum(axis=0),
                                     grad_out.copy() if per_sample else None)
        else:
            _, ctx = self._cache
            grad_ctx = self.head.backward(grad_out, per_sample)
        grad_context = self.attention.backward(grad_ctx, per_sample)
        for m, attr in enumerate(self.context_attrs):
            self.encoders[attr].backward(grad_context[:, m, :], per_sample)

    # ------------------------------------------------------------------
    # Losses
    # ------------------------------------------------------------------
    def standardize_target(self, values: np.ndarray) -> np.ndarray:
        """Map raw numerical target values to the standardized space."""
        return (np.asarray(values, dtype=np.float64) - self._t_mid) / self._t_scale

    def loss_backward(self, batch_cols: dict, targets: np.ndarray,
                      per_sample: bool = False) -> np.ndarray:
        """Forward + loss + backward in one call; returns per-sample losses.

        Cross-entropy for categorical targets, Gaussian NLL (in
        standardized space) for numerical targets — Algorithm 2 line 10.
        """
        if self.target_is_categorical:
            logits = self.forward(batch_cols)
            losses, grad = cross_entropy_loss(logits, targets)
            self.backward(grad, per_sample)
            return losses
        mu, log_sigma = self.forward(batch_cols)
        t_std = self.standardize_target(targets)
        losses, g_mu, g_ls = gaussian_nll_loss(mu, log_sigma, t_std)
        self.backward(np.stack([g_mu, g_ls], axis=1), per_sample)
        return losses

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_proba(self, batch_cols: dict) -> np.ndarray:
        """Conditional distribution over the categorical target domain."""
        if not self.target_is_categorical:
            raise ValueError("predict_proba requires a categorical target")
        logits = self.forward(batch_cols)
        return softmax(logits, axis=1)

    def predict_gaussian(self, batch_cols: dict) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (mu, sigma) of the numerical target, in raw units."""
        if self.target_is_categorical:
            raise ValueError("predict_gaussian requires a numerical target")
        mu_std, log_sigma_std = self.forward(batch_cols)
        log_sigma_std = np.clip(log_sigma_std, -6.0, 6.0)
        mu = mu_std * self._t_scale + self._t_mid
        sigma = np.exp(log_sigma_std) * self._t_scale
        return mu, sigma

    def attention_weights(self, batch_cols: dict) -> np.ndarray:
        """Attention weights over context attributes for a batch."""
        self.forward(batch_cols)
        return self.attention.last_weights()
