"""Shared attribute encoders across sub-models.

Algorithm 2 trains the ``k - 1`` discriminative sub-models *in
sequence* and "saves the currently trained embeddings of attributes
[X, y] and reuses them in the initialization of context attributes of
the next sub-model" (lines 7, 19).  The store realises this by handing
out one encoder object per attribute: the Embedding trained as a target
in sub-model ``j`` is the very same object used as a context encoder in
sub-models ``j+1, ..., k`` — training continues to refine it.

Experiment 10's parallel-training mode simply gives every sub-model a
fresh store, which removes the reuse (and the sequential dependency).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Embedding, NumericEncoder


class EmbeddingStore:
    """Lazily-created, shared per-attribute encoders."""

    def __init__(self, dim: int, rng: np.random.Generator):
        self.dim = int(dim)
        self.rng = rng
        self._encoders: dict[str, object] = {}

    def encoder_for(self, attribute):
        """Return (creating if needed) the encoder for an attribute.

        Categorical attributes get an :class:`Embedding` over their
        domain; numerical attributes get a :class:`NumericEncoder` with
        the public domain bounds.
        """
        name = attribute.name
        if name not in self._encoders:
            if attribute.is_categorical:
                self._encoders[name] = Embedding(
                    attribute.domain.size, self.dim, self.rng, name=name)
            else:
                self._encoders[name] = NumericEncoder(
                    self.dim, self.rng, attribute.domain.low,
                    attribute.domain.high, name=name)
        return self._encoders[name]

    def __contains__(self, name: str) -> bool:
        return name in self._encoders

    def __len__(self) -> int:
        return len(self._encoders)
