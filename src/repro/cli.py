"""Command-line interface for the Kamino reproduction.

Usage (installed as the ``repro-kamino`` console script, also runnable
as ``python -m repro.cli``)::

    repro-kamino infer-schema data.csv --out schema.json
    repro-kamino check bundle_dir/
    repro-kamino discover bundle_dir/ --limit 16
    repro-kamino synthesize bundle_dir/ --epsilon 1.0 --out synth_dir/
    repro-kamino evaluate bundle_dir/ synth_dir/ --alpha 1 --alpha 2
    repro-kamino ledger ledger.json
    repro-kamino bench-compare BENCH_exp10.json --gate
    repro-kamino serve --models-dir models/ --port 8765

``serve`` runs the long-running synthesis service (:mod:`repro.serve`):
a model registry with named, content-digest-versioned artifacts held
hot in memory, HTTP ``GET /sample`` draws streamed through the staged
engine, a deterministic ETag'd draw cache, queue backpressure, and
``/metrics`` — see ``docs/SERVING.md``.

``fit``, ``sample``, and ``synthesize`` accept ``--trace out.json``:
the run writes a stable-keyed telemetry document (fit-phase timers,
per-column sampling wall-clock, engine lanes, block sizes, index probe
counts — see :mod:`repro.obs.trace`) and prints its human-readable
summary.  ``bench-compare`` diffs a fresh benchmark run against the
committed ``benchmarks/history/`` store and, with ``--gate``, exits
non-zero on a >10% rows/sec regression (see :mod:`repro.obs.bench`).

Train-once / sample-many (the staged API)::

    repro-kamino fit bundle_dir/ --epsilon 1.0 --out model.npz
    repro-kamino sample model.npz --schema bundle_dir/schema.json \
        --dcs bundle_dir/dcs.txt --out synth_a/ --n 1000 --seed 1
    repro-kamino sample model.npz --schema bundle_dir/schema.json \
        --dcs bundle_dir/dcs.txt --out synth_b/ --n 50000 --seed 2

``fit`` pays the privacy budget exactly once and writes the released
model artifact; every ``sample`` afterwards is free post-processing
that never touches the private data (it only needs the public schema
and constraints).  ``synthesize`` is the fused convenience (fit one
bundle, draw one instance); pass ``--save-model`` to keep the fitted
artifact for later ``sample`` runs.

``fit`` and ``synthesize`` take ``--method <backend>`` to run any
registered synthesizer (``kamino`` — the default — ``privbayes``,
``pategan``, ``dpvae``, ``nist_mst``, ``cleaning``), all through the
same staged protocol (:mod:`repro.synth`); ``--method auto`` picks a
backend from the bundle's shape via :func:`repro.synth.route`.
``sample`` detects the backend from the model file, so a PrivBayes
artifact and a Kamino artifact serve draws through the same command.

A *bundle* is the directory layout of :mod:`repro.io.bundle`
(``schema.json`` + ``data.csv`` + optional ``dcs.txt``).
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time

import numpy as np

from repro.constraints.algebra import minimize_dcs
from repro.constraints.discovery import discover_dcs
from repro.core.kamino import FittedKamino, Kamino, KaminoConfig
from repro.constraints.violations import violating_pairs
from repro.evaluation.marginals import marginal_distances
from repro.evaluation.violations import dc_violation_report
from repro.io.bundle import load_bundle, save_bundle
from repro.io.dc_text import format_dc, load_dcs
from repro.io.schema_json import (
    load_relation, relation_to_dict, save_relation,
)
from repro.obs import (
    DEFAULT_HISTORY_DIR, DEFAULT_THRESHOLD, RunTrace, compare_points,
    environment_mismatch, history_points, load_point, point_label,
    render_compare_markdown, render_trajectory_markdown,
)
from repro.privacy.ledger import PrivacyLedger
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.synth import (
    BackendUnavailable, backend_names, load_fitted, make_synthesizer,
    peek_method, route,
)


# ----------------------------------------------------------------------
# Schema inference
# ----------------------------------------------------------------------
def infer_schema(path: str, categorical_threshold: int = 20,
                 bins: int = 32) -> Relation:
    """Infer a relation from a headed CSV file.

    A column is numerical when every cell parses as a float *and* it has
    more than ``categorical_threshold`` distinct values; otherwise it is
    categorical (distinct values become the domain, sorted).
    """
    with open(path, newline="") as f:
        reader = csv.reader(f)
        header = next(reader)
        columns: list[list[str]] = [[] for _ in header]
        for row in reader:
            if len(row) != len(header):
                raise ValueError(
                    f"{path}: row with {len(row)} cells, header has "
                    f"{len(header)}")
            for i, cell in enumerate(row):
                columns[i].append(cell)
    if not columns or not columns[0]:
        raise ValueError(f"{path}: no data rows")

    attributes = []
    for name, cells in zip(header, columns):
        distinct = sorted(set(cells))
        numeric = True
        values = []
        for cell in distinct:
            try:
                values.append(float(cell))
            except ValueError:
                numeric = False
                break
        if numeric and len(distinct) > categorical_threshold:
            low, high = min(values), max(values)
            integer = all(v.is_integer() for v in values)
            domain = NumericalDomain(low, high, integer=integer, bins=bins)
        else:
            domain = CategoricalDomain(distinct)
        attributes.append(Attribute(name, domain))
    return Relation(attributes)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_infer_schema(args) -> int:
    relation = infer_schema(args.csv, args.categorical_threshold, args.bins)
    if args.out:
        save_relation(relation, args.out)
        print(f"wrote {args.out}")
    else:
        json.dump(relation_to_dict(relation), sys.stdout, indent=2)
        print()
    return 0


def cmd_check(args) -> int:
    bundle = load_bundle(args.bundle)
    if not bundle.dcs:
        print("bundle has no DCs (dcs.txt missing or empty)")
        return 0
    rows = dc_violation_report(bundle.dcs, bundle.table, {})
    print(f"{'DC':>16s} | {'hard':>4s} | violating pairs %")
    for dc, row in zip(bundle.dcs, rows):
        hardness = "hard" if dc.hard else "soft"
        print(f"{row['dc']:>16s} | {hardness:>4s} | {row['truth']:.4f}")
        if args.show_rows and row["truth"] > 0:
            for ids in violating_pairs(dc, bundle.table,
                                       limit=args.show_rows):
                cells = [f"row {i}: {bundle.table.decoded_row(i)}"
                         for i in ids]
                print("    violation: " + " | ".join(cells))
    return 0


def cmd_discover(args) -> int:
    bundle = load_bundle(args.bundle)
    dcs = discover_dcs(bundle.table, max_violation_rate=args.max_rate,
                       limit=args.limit, seed=args.seed)
    if args.minimize:
        dcs = minimize_dcs(dcs)
    for dc in dcs:
        hardness = "hard" if dc.hard else "soft"
        print(f"{dc.name} {hardness}: "
              f"{format_dc(dc, relation=bundle.relation)}")
    return 0


def _config_from_args(args) -> KaminoConfig:
    """Build the pipeline config a ``fit``/``synthesize`` run asked for."""
    epsilon = float("inf") if args.epsilon in ("inf", "none") \
        else float(args.epsilon)
    params_override = None
    if args.max_iterations is not None:
        cap = args.max_iterations

        def params_override(params, cap=cap):
            params.iterations = min(params.iterations, cap)
    extra = {}
    if getattr(args, "engine", None) is not None:
        extra["engine"] = args.engine
    return KaminoConfig(epsilon=epsilon, delta=args.delta, seed=args.seed,
                        params_override=params_override, **extra)


def _record_ledger(args, label: str, private: bool, params) -> None:
    if not args.ledger:
        return
    try:
        ledger = PrivacyLedger.load(args.ledger)
    except FileNotFoundError:
        ledger = PrivacyLedger(args.delta)
    if private:
        ledger.record_kamino(label, params)
        ledger.save(args.ledger)
        print(f"ledger {args.ledger}: composed "
              f"epsilon={ledger.spent_epsilon():.4f} "
              f"over {len(ledger)} releases")
    else:
        print("non-private run: nothing recorded in the ledger")


def _print_privacy(fitted_or_result, budget: float, delta: float) -> None:
    params = fitted_or_result.params
    print(f"privacy: epsilon={params.achieved_epsilon:.4f} "
          f"(budget {budget}), delta={delta:g}, "
          f"alpha={params.best_alpha}")


def _finish_trace(args, trace: RunTrace | None) -> None:
    """Write and summarise the run's telemetry, when asked for."""
    if trace is None:
        return
    trace.save(args.trace)
    print(trace.summary())
    print(f"wrote run trace to {args.trace}")


def _parse_epsilon(args) -> float:
    return float("inf") if args.epsilon in ("inf", "none") \
        else float(args.epsilon)


def _resolve_method(args, bundle) -> str:
    """The backend a ``fit``/``synthesize`` run targets.

    ``--method auto`` routes on the bundle's shape (DCs present ->
    kamino; wide unconstrained tables -> a marginal backend).
    """
    method = getattr(args, "method", "kamino")
    if method == "auto":
        method = route(bundle.table, bundle.dcs)
        print(f"--method auto: routed to {method!r} "
              f"({len(bundle.dcs)} DCs, {len(bundle.relation)} columns)")
    return method


def _make_backend(method: str, args, dcs):
    """Build a non-Kamino backend from the shared budget flags."""
    kwargs = {}
    if args.max_iterations is not None and method in ("pategan", "dpvae"):
        kwargs["iterations"] = args.max_iterations
    return make_synthesizer(method, _parse_epsilon(args),
                            delta=args.delta, seed=args.seed, dcs=dcs,
                            **kwargs)


def _fit_backend(args, bundle, method: str) -> int:
    """``fit`` for a registry backend (everything but native Kamino)."""
    trace = RunTrace(label=f"fit:{args.bundle}") if args.trace else None
    try:
        synth = _make_backend(method, args, bundle.dcs)
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    fitted = synth.fit(bundle.table, trace=trace)
    fitted.save(args.out)
    print(f"wrote fitted {method} model to {args.out} "
          f"(trained on n={bundle.n}, "
          f"fit {time.perf_counter() - start:.1f}s)")
    print(fitted.ledger.summary())
    if args.ledger:
        print("note: --ledger composes Kamino runs only; this backend's "
              "spends ride in the model's own budget ledger (shown "
              "above)", file=sys.stderr)
    _finish_trace(args, trace)
    return 0


def _synthesize_backend(args, bundle, method: str) -> int:
    """``synthesize`` for a registry backend: staged fit + one draw."""
    trace = RunTrace(label=f"synthesize:{args.bundle}") \
        if args.trace else None
    try:
        synth = _make_backend(method, args, bundle.dcs)
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    fitted = synth.fit(bundle.table, trace=trace)
    table = fitted.sample(args.n, trace=trace)
    if args.save_model:
        fitted.save(args.save_model)
        print(f"wrote fitted model to {args.save_model} "
              f"(sample from it with 'repro-kamino sample')")
    save_bundle(args.out, table, bundle.dcs)
    print(f"wrote synthetic bundle to {args.out} (method={method}, "
          f"n={table.n}, total {time.perf_counter() - start:.1f}s)")
    print(fitted.ledger.summary())
    _finish_trace(args, trace)
    return 0


def _sample_backend(args, method: str) -> int:
    """``sample`` from a saved non-Kamino artifact (free draws)."""
    from repro.io.stream import stream_format_for, write_table_stream

    relation = load_relation(args.schema)
    dcs = load_dcs(args.dcs, relation=relation) if args.dcs else []
    for flag in ("workers", "pool", "engine", "chunk_rows"):
        if getattr(args, flag, None) is not None:
            print(f"warning: --{flag.replace('_', '-')} applies to "
                  f"Kamino models only; ignoring it for this {method} "
                  f"model", file=sys.stderr)
    try:
        fitted = load_fitted(args.model, relation, dcs=dcs)
    except BackendUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace = RunTrace(label=f"sample:{args.model}") if args.trace else None
    start = time.perf_counter()
    table = fitted.sample(n=args.n, seed=args.seed, trace=trace)
    seconds = time.perf_counter() - start
    stream_fmt = stream_format_for(args.out)
    if stream_fmt is not None:
        rows = write_table_stream(args.out, relation, iter([table]),
                                  fmt=stream_fmt)
        print(f"wrote synthetic table to {args.out} (method={method}, "
              f"n={rows}, {stream_fmt}, {seconds:.1f}s, no privacy "
              f"spend)")
    else:
        save_bundle(args.out, table, dcs)
        print(f"wrote synthetic bundle to {args.out} (method={method}, "
              f"n={table.n}, sampling {seconds:.1f}s, no privacy spend)")
    _finish_trace(args, trace)
    return 0


def cmd_fit(args) -> int:
    """Train once: spend the budget, write the released model artifact."""
    bundle = load_bundle(args.bundle)
    method = _resolve_method(args, bundle)
    if method != "kamino":
        return _fit_backend(args, bundle, method)
    config = _config_from_args(args)
    trace = RunTrace(label=f"fit:{args.bundle}") if args.trace else None
    kamino = Kamino(bundle.relation, bundle.dcs, config=config)
    fitted = kamino.fit(bundle.table, trace=trace,
                        checkpoint_dir=args.checkpoint_dir)
    fitted.save(args.out)
    fit_seconds = sum(fitted.fit_timings.values())
    if fitted.resumed_from is not None:
        print(f"resumed from checkpoint (completed through "
              f"{fitted.resumed_from!r}; that budget was not re-spent)")
    print(f"wrote fitted model to {args.out} "
          f"(trained on n={bundle.n}, fit {fit_seconds:.1f}s)")
    if fitted.private:
        _print_privacy(fitted, config.epsilon, args.delta)
    _record_ledger(args, f"fit:{args.bundle}", fitted.private, fitted.params)
    _finish_trace(args, trace)
    return 0


def cmd_sample(args) -> int:
    """Serve many: draw a synthetic bundle from a saved model.

    Pure post-processing — needs only the public schema (and DCs), never
    the private data, and spends no additional budget.  When ``--out``
    names a table file (``.csv``/``.parquet``/``.arrow``/``.feather``)
    the draw *streams*: bounded-memory chunks go straight to disk, so
    n=10M never materializes in memory.
    """
    from repro.io.stream import stream_format_for, write_table_stream

    detected = peek_method(args.model)  # None => native Kamino format
    requested = getattr(args, "method", None)
    if requested is not None:
        stored = detected or "kamino"
        if requested != stored:
            print(f"error: {args.model} holds a {stored!r} model, not "
                  f"{requested!r}", file=sys.stderr)
            return 2
    if detected is not None and detected != "kamino":
        return _sample_backend(args, detected)

    relation = load_relation(args.schema)
    dcs = load_dcs(args.dcs, relation=relation) if args.dcs else []
    fitted = FittedKamino.load(args.model, relation, dcs)
    resolved = args.engine or fitted.config.engine
    pool = args.pool or fitted.config.pool
    n_workers = fitted.config.workers if args.workers is None \
        else args.workers
    if n_workers not in (0, 1) and resolved == "row" and pool != "process":
        print("error: --workers requires the blocked engine (this draw "
              f"resolves to engine={resolved!r}; pass --engine blocked, "
              "--pool process, or drop --workers)", file=sys.stderr)
        return 2
    missing = sorted(set(fitted.weights) - {dc.name for dc in dcs})
    if missing:
        print(f"warning: model was fitted with DC weights for "
              f"{', '.join(missing)} but they were not supplied via "
              f"--dcs; the draw will not enforce them (and will differ "
              f"from the fit-time draw)", file=sys.stderr)
    stream_fmt = stream_format_for(args.out)
    if stream_fmt is not None:
        if args.trace:
            print("warning: --trace is not recorded for streamed draws; "
                  "ignoring it", file=sys.stderr)
        start = time.perf_counter()
        chunks = fitted.sample_stream(n=args.n, seed=args.seed,
                                      chunk_rows=args.chunk_rows,
                                      engine=args.engine)
        try:
            rows = write_table_stream(args.out, relation, chunks,
                                      fmt=stream_fmt)
        except RuntimeError as exc:  # e.g. pyarrow not installed
            print(f"error: {exc}", file=sys.stderr)
            return 2
        chunk_rows = (fitted.config.stream_chunk_rows
                      if args.chunk_rows is None else args.chunk_rows)
        print(f"streamed synthetic table to {args.out} "
              f"(n={rows}, {stream_fmt}, chunk_rows={chunk_rows}, "
              f"{time.perf_counter() - start:.1f}s via the {resolved} "
              f"engine, no privacy spend)")
        return 0
    trace = RunTrace(label=f"sample:{args.model}") if args.trace else None
    result = fitted.sample(n=args.n, seed=args.seed,
                           workers=n_workers, engine=args.engine,
                           pool=args.pool, trace=trace)
    save_bundle(args.out, result.table, fitted.dcs)
    engine = resolved
    workers = f", workers={n_workers} ({pool} pool)" \
        if n_workers != 1 else ""
    print(f"wrote synthetic bundle to {args.out} "
          f"(n={result.table.n}, sampling "
          f"{result.timings['Sam.']:.1f}s via the {engine} engine"
          f"{workers}, no privacy spend)")
    _finish_trace(args, trace)
    return 0


def cmd_synthesize(args) -> int:
    bundle = load_bundle(args.bundle)
    method = _resolve_method(args, bundle)
    if method != "kamino":
        return _synthesize_backend(args, bundle, method)
    config = _config_from_args(args)
    n_workers = config.workers if args.workers is None else args.workers
    pool = args.pool or config.pool
    if n_workers not in (0, 1) and config.engine == "row" \
            and pool != "process":
        print("error: --workers requires the blocked engine (drop "
              "--engine row or --workers, or pass --pool process)",
              file=sys.stderr)
        return 2
    # One trace spans the whole pipeline: fit phases + the draw.
    trace = RunTrace(label=f"synthesize:{args.bundle}") \
        if args.trace else None
    kamino = Kamino(bundle.relation, bundle.dcs, config=config)
    fitted = kamino.fit(bundle.table, trace=trace)
    result = fitted.sample(n=args.n, workers=n_workers, pool=args.pool,
                           trace=trace)
    if args.save_model:
        fitted.save(args.save_model)
        print(f"wrote fitted model to {args.save_model} "
              f"(sample from it with 'repro-kamino sample')")
    save_bundle(args.out, result.table, bundle.dcs)
    print(f"wrote synthetic bundle to {args.out} "
          f"(n={result.table.n}, total {result.total_seconds:.1f}s)")
    if fitted.private:
        _print_privacy(result, config.epsilon, args.delta)
    _record_ledger(args, f"synthesize:{args.bundle}", fitted.private,
                   result.params)
    _finish_trace(args, trace)
    return 0


def cmd_bench_compare(args) -> int:
    """Diff a fresh benchmark point against the committed history.

    Prints the trajectory table over every committed point plus a
    per-(dataset, engine) comparison against the newest one; with
    ``--gate``, a comparable rows/sec drop beyond ``--threshold`` exits
    non-zero (the CI perf gate).  Points measured at a different ``n``
    are reported but never gated.
    """
    current = load_point(args.current)
    points = history_points(args.history)
    if not points:
        print(f"no committed history points under {args.history}; "
              f"nothing to compare against")
        return 0
    print(render_trajectory_markdown(points))
    print()
    base_name, baseline = points[-1]
    rows = compare_points(current, baseline, threshold=args.threshold)
    report = render_compare_markdown(rows, point_label(base_name, baseline),
                                     threshold=args.threshold)
    print(report)
    for line in environment_mismatch(current, baseline):
        print(f"warning: environment mismatch — {line}", file=sys.stderr)
    if args.markdown:
        with open(args.markdown, "w") as f:
            f.write(render_trajectory_markdown(points) + "\n\n"
                    + report + "\n")
        print(f"wrote markdown report to {args.markdown}")
    regressions = [r for r in rows if r["regression"]]
    if regressions:
        names = ", ".join(f"{r['dataset']}/{r['engine']} "
                          f"({r['change']:+.1%})" for r in regressions)
        print(f"perf regression vs {base_name}: {names}", file=sys.stderr)
        if args.gate:
            return 1
    return 0


def cmd_evaluate(args) -> int:
    true_bundle = load_bundle(args.true_bundle)
    synth_bundle = load_bundle(args.synth_bundle)
    if true_bundle.relation.names != synth_bundle.relation.names:
        print("error: bundles have different schemas", file=sys.stderr)
        return 2
    if true_bundle.dcs:
        print("== Metric I: DC violating-pair % (true vs synthetic) ==")
        rows = dc_violation_report(true_bundle.dcs, true_bundle.table,
                                   {"synthetic": synth_bundle.table})
        for row in rows:
            print(f"  {row['dc']:>16s}: true={row['truth']:.4f}  "
                  f"synthetic={row['synthetic']:.4f}")
    for alpha in args.alpha:  # parser default: (1, 2)
        dists = [d for _, d in marginal_distances(
            true_bundle.table, synth_bundle.table, alpha=alpha,
            max_sets=args.max_sets, seed=args.seed)]
        arr = np.asarray(dists)
        print(f"== Metric III: {alpha}-way marginal TVD over "
              f"{arr.size} sets ==")
        print(f"  mean={arr.mean():.4f}  median={np.median(arr):.4f}  "
              f"max={arr.max():.4f}")
    return 0


def cmd_ledger(args) -> int:
    ledger = PrivacyLedger.load(args.ledger)
    print(ledger.summary())
    return 0


def cmd_serve(args) -> int:
    """Run the long-running synthesis service (see docs/SERVING.md).

    Holds fitted artifacts hot behind the model registry, serves
    deterministic draws over HTTP with an ETag'd response cache, and
    applies queue backpressure under load.  Register artifacts up front
    with repeated ``--register NAME:MODEL:SCHEMA[:DCS]`` flags or at
    runtime via ``POST /models``.
    """
    from repro.serve import ServeConfig, KaminoServer

    specs = []
    for spec in args.register or []:
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            print(f"error: --register wants NAME:MODEL:SCHEMA[:DCS], "
                  f"got {spec!r}", file=sys.stderr)
            return 2
        specs.append(parts)
    config = ServeConfig(
        models_dir=args.models_dir, cache_dir=args.cache_dir,
        host=args.host, port=args.port, hot_limit=args.hot_limit,
        cache_max_bytes=args.cache_max_bytes,
        max_pending=args.max_pending, timeout=args.timeout,
        workers=args.workers, pool=args.pool,
        chunk_rows=args.chunk_rows, quiet=args.quiet)
    server = KaminoServer(config)
    for parts in specs:
        record = server.registry.register(
            parts[0], parts[1], parts[2],
            dcs_path=parts[3] if len(parts) == 4 else None)
        print(f"registered {record.name}:{record.version} "
              f"(method={record.method}, {record.nbytes} bytes)")
    names = server.registry.model_names()
    print(f"repro-kamino serve on {server.base_url} — "
          f"{len(names)} model(s) registered "
          f"({', '.join(names) if names else 'register via POST /models'})")
    print(f"models: {config.models_dir}  cache: {config.cache_dir}  "
          f"hot_limit={config.hot_limit} max_pending={config.max_pending} "
          f"timeout={config.timeout:g}s")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0


# ----------------------------------------------------------------------
# Parser wiring
# ----------------------------------------------------------------------
class _AppendOverDefault(argparse.Action):
    """``action="append"`` with a usable parser-level default.

    Plain ``append`` mutates its default in place, so a non-``None``
    default would accumulate values across invocations; this action
    replaces the (immutable) default with a fresh list on first use.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        current = getattr(namespace, self.dest, None)
        if current is self.default or current is None:
            current = []
            setattr(namespace, self.dest, current)
        current.append(values)


def _add_budget_arguments(p: argparse.ArgumentParser) -> None:
    """Budget/seed/override flags shared by ``fit`` and ``synthesize``."""
    p.add_argument("--method", choices=tuple(backend_names()) + ("auto",),
                   default="kamino",
                   help="synthesis backend (default: kamino); 'auto' "
                        "routes on the bundle's shape — DCs present -> "
                        "kamino, wide unconstrained tables -> a "
                        "marginal method")
    p.add_argument("--epsilon", default="1.0",
                   help="privacy budget; 'inf' for non-private")
    p.add_argument("--delta", type=float, default=1e-6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-iterations", type=int, default=None,
                   help="cap DP-SGD iterations (fast runs)")
    p.add_argument("--ledger", default=None,
                   help="JSON privacy ledger to append this run to")
    p.add_argument("--engine", choices=("blocked", "row"), default=None,
                   help="sampling engine (default: blocked — the "
                        "block-scheduled vectorized engine; 'row' keeps "
                        "the legacy per-row stream for exact replay)")


def _add_trace_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="JSON",
                   help="write run telemetry (phase timers, per-column "
                        "sampling stats, index probe counts) to this "
                        "JSON file and print its summary; never changes "
                        "the run's output")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kamino",
        description="Constraint-aware differentially private data "
                    "synthesis (Kamino, VLDB 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("infer-schema",
                       help="infer schema.json from a raw CSV")
    p.add_argument("csv")
    p.add_argument("--out", default=None)
    p.add_argument("--categorical-threshold", type=int, default=20)
    p.add_argument("--bins", type=int, default=32)
    p.set_defaults(fn=cmd_infer_schema)

    p = sub.add_parser("check", help="report DC violations of a bundle")
    p.add_argument("bundle")
    p.add_argument("--show-rows", type=int, default=0, metavar="N",
                   help="print up to N offending row (pair)s per DC")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("discover",
                       help="discover approximate DCs from a bundle")
    p.add_argument("bundle")
    p.add_argument("--limit", type=int, default=16)
    p.add_argument("--max-rate", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--minimize", action="store_true",
                   help="drop duplicate/trivial/implied constraints")
    p.set_defaults(fn=cmd_discover)

    p = sub.add_parser("fit",
                       help="train a Kamino model on a bundle once "
                            "(spends the budget), write the model file")
    p.add_argument("bundle")
    p.add_argument("--out", required=True,
                   help="output .npz model file")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="persist a crash-safe checkpoint after each fit "
                        "phase; re-running the same fit resumes from the "
                        "newest valid checkpoint without re-spending "
                        "budget (cleared once the fit completes)")
    _add_budget_arguments(p)
    _add_trace_argument(p)
    p.set_defaults(fn=cmd_fit)

    p = sub.add_parser("sample",
                       help="draw a synthetic bundle from a fitted model "
                            "(free post-processing, no private data)")
    p.add_argument("model", help=".npz file written by 'fit'")
    p.add_argument("--method", choices=tuple(backend_names()),
                   default=None,
                   help="assert which backend wrote the model (the "
                        "format is self-describing; this flag only "
                        "fails fast on a mismatch)")
    p.add_argument("--schema", required=True,
                   help="public schema.json the model was fitted over")
    p.add_argument("--dcs", default=None,
                   help="denial constraints file (dcs.txt) to enforce")
    p.add_argument("--out", required=True,
                   help="output bundle directory, or a table file "
                        "(.csv/.parquet/.arrow/.feather) to *stream* "
                        "the draw to in bounded-memory chunks")
    p.add_argument("--n", type=int, default=None,
                   help="synthetic rows (default: fitted input size)")
    p.add_argument("--seed", type=int, default=None,
                   help="draw seed (default: reproduce the fit-time "
                        "draw, given the same --dcs)")
    p.add_argument("--workers", type=int, default=None,
                   help="shard the blocked engine's column passes over "
                        "N workers; 0 resolves from os.cpu_count() at "
                        "draw time (output is bit-identical for any "
                        "worker count; default: the fitted config's "
                        "workers)")
    p.add_argument("--pool", choices=("thread", "process"), default=None,
                   help="execution lane for --workers > 1: shared-"
                        "memory threads or worker processes (default: "
                        "the fitted config's pool; either is "
                        "bit-identical to workers=1)")
    p.add_argument("--chunk-rows", type=int, default=None,
                   help="rows per streamed chunk when --out is a table "
                        "file (default: the fitted config's "
                        "stream_chunk_rows; pure scheduling)")
    p.add_argument("--engine", choices=("blocked", "row"), default=None,
                   help="override the engine the model was fitted "
                        "with for this draw")
    _add_trace_argument(p)
    p.set_defaults(fn=cmd_sample)

    p = sub.add_parser("synthesize",
                       help="run Kamino on a bundle, write a synthetic "
                            "bundle (fused fit + sample)")
    p.add_argument("bundle")
    p.add_argument("--n", type=int, default=None,
                   help="synthetic rows (default: same as input)")
    p.add_argument("--out", required=True)
    p.add_argument("--save-model", default=None, metavar="MODEL",
                   help="also persist the fitted model for later "
                        "'sample' runs")
    p.add_argument("--workers", type=int, default=None,
                   help="workers for the blocked engine's sampling "
                        "pass; 0 = auto from os.cpu_count() (default: "
                        "the config's workers)")
    p.add_argument("--pool", choices=("thread", "process"), default=None,
                   help="execution lane for --workers > 1 (default: "
                        "the config's pool)")
    _add_budget_arguments(p)
    _add_trace_argument(p)
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("evaluate",
                       help="compare a synthetic bundle against the truth")
    p.add_argument("true_bundle")
    p.add_argument("synth_bundle")
    p.add_argument("--alpha", type=int, action=_AppendOverDefault,
                   default=(1, 2), metavar="K",
                   help="marginal order(s); repeatable (default: 1 2)")
    p.add_argument("--max-sets", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("ledger", help="print a privacy ledger summary")
    p.add_argument("ledger")
    p.set_defaults(fn=cmd_ledger)

    p = sub.add_parser("serve",
                       help="run the synthesis service: hot model "
                            "registry, deterministic draw cache, and "
                            "HTTP sampling over the staged engine")
    p.add_argument("--models-dir", required=True,
                   help="registry root (models/<name>/<version>.*)")
    p.add_argument("--cache-dir", default=None,
                   help="draw-cache directory (default: "
                        "<models-dir>/_cache)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="listen port (0 picks a free one; default 8765)")
    p.add_argument("--register", action="append", metavar="SPEC",
                   default=None,
                   help="register an artifact at startup as "
                        "NAME:MODEL:SCHEMA[:DCS] (repeatable)")
    p.add_argument("--hot-limit", type=int, default=8,
                   help="max fitted models held in memory (LRU beyond)")
    p.add_argument("--cache-max-bytes", type=int, default=256 << 20,
                   help="draw-cache size bound in bytes (default 256MiB)")
    p.add_argument("--max-pending", type=int, default=16,
                   help="max distinct renders in flight before 429s")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-request render wait in seconds before 503s")
    p.add_argument("--workers", type=int, default=None,
                   help="shard Kamino draws over N workers (0 = auto "
                        "from cpu_count; bit-identical to any other "
                        "count — the cache stays coherent)")
    p.add_argument("--pool", choices=("thread", "process"), default=None,
                   help="execution lane for --workers > 1")
    p.add_argument("--chunk-rows", type=int, default=None,
                   help="rows per streamed render chunk (default: each "
                        "model's own stream_chunk_rows)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-request access logging")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("bench-compare",
                       help="diff a benchmark run against the committed "
                            "perf history; --gate fails on regression")
    p.add_argument("current", nargs="?", default="BENCH_exp10.json",
                   help="fresh benchmark JSON (default: BENCH_exp10.json)")
    p.add_argument("--history", default=DEFAULT_HISTORY_DIR,
                   help="committed history directory "
                        "(default: benchmarks/history)")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="rows/sec drop that counts as a regression "
                        "(default: 0.10)")
    p.add_argument("--gate", action="store_true",
                   help="exit non-zero when any comparable "
                        "dataset/engine regressed beyond the threshold")
    p.add_argument("--markdown", default=None, metavar="MD",
                   help="also write the trajectory + comparison report "
                        "to this markdown file")
    p.set_defaults(fn=cmd_bench_compare)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
