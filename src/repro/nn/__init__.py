"""A minimal neural-network substrate in pure numpy.

The paper trains its discriminative sub-models (AimNet-style tuple
embedding + attention, §2.3) with DP-SGD, which requires *per-sample*
gradients for the L2 clipping step (Algorithm 2, line 14).  No deep
learning framework is available in this environment, so this package
implements the needed pieces from scratch:

* :class:`Parameter` — a weight array carrying both the summed gradient
  (``grad``) and the per-sample gradient stack (``grad_sample``);
* layers with manual forward/backward: :class:`Linear`,
  :class:`Embedding`, :class:`ReLU`, :class:`NumericEncoder` (the
  paper's non-linear transform for continuous attributes);
* :class:`Attention` — scaled dot-product attention over context
  attribute embeddings with a learnable query;
* losses returning per-sample values and input gradients;
* :class:`SGD` and :class:`Adam` optimizers;
* :func:`gradcheck` — finite-difference verification used by the tests.

All backward passes accept ``per_sample=True`` to additionally populate
``Parameter.grad_sample`` with shape ``(batch, *param.shape)``; the
DP-SGD optimizer in :mod:`repro.privacy.dpsgd` consumes these.
"""

from repro.nn.parameter import Parameter
from repro.nn.layers import Embedding, Linear, Module, NumericEncoder, ReLU
from repro.nn.attention import Attention
from repro.nn.losses import (
    bce_with_logits_loss,
    cross_entropy_loss,
    gaussian_nll_loss,
    mse_loss,
)
from repro.nn.optim import SGD, Adam
from repro.nn.functional import log_softmax, relu, sigmoid, softmax
from repro.nn.gradcheck import gradcheck

__all__ = [
    "Adam",
    "Attention",
    "Embedding",
    "Linear",
    "Module",
    "NumericEncoder",
    "Parameter",
    "ReLU",
    "SGD",
    "bce_with_logits_loss",
    "cross_entropy_loss",
    "gaussian_nll_loss",
    "gradcheck",
    "log_softmax",
    "mse_loss",
    "relu",
    "sigmoid",
    "softmax",
]
