"""Loss functions returning per-sample losses and input gradients.

Each loss returns ``(per_sample_loss, grad_wrt_input)`` where the
gradient corresponds to the *sum* of the per-sample losses — callers
that want mean-gradient semantics divide by the batch size themselves
(DP-SGD divides by the expected batch size *after* clipping and noising,
per Algorithm 2 line 15, so the raw per-sample convention is the one it
needs).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, sigmoid, softmax


def cross_entropy_loss(logits: np.ndarray,
                       targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Categorical cross-entropy for integer class targets.

    ``logits``: (batch, classes); ``targets``: (batch,) int codes.
    Used for categorical target attributes (Algorithm 2, line 10).
    """
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=1)
    batch = logits.shape[0]
    losses = -logp[np.arange(batch), targets]
    grad = softmax(logits, axis=1)
    grad[np.arange(batch), targets] -= 1.0
    return losses, grad


def gaussian_nll_loss(mu: np.ndarray, log_sigma: np.ndarray,
                      targets: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Negative log-likelihood of a Gaussian with learned mean and scale.

    Used for numerical target attributes: the discriminative model
    "outputs a Gaussian distribution mean mu and std sigma" (§4.2).
    Returns (losses, grad_mu, grad_log_sigma).  ``log_sigma`` is clipped
    into [-6, 6] inside the loss for numerical robustness.
    """
    targets = np.asarray(targets, dtype=np.float64)
    log_sigma = np.clip(log_sigma, -6.0, 6.0)
    inv_var = np.exp(-2.0 * log_sigma)
    diff = mu - targets
    losses = 0.5 * diff * diff * inv_var + log_sigma + 0.5 * np.log(2 * np.pi)
    grad_mu = diff * inv_var
    grad_log_sigma = 1.0 - diff * diff * inv_var
    return losses, grad_mu, grad_log_sigma


def mse_loss(pred: np.ndarray,
             targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Squared error (the paper's alternative numerical loss)."""
    diff = pred - np.asarray(targets, dtype=np.float64)
    return diff * diff, 2.0 * diff


def bce_with_logits_loss(logits: np.ndarray,
                         targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Binary cross-entropy on logits (stable log-sum-exp form).

    Used by the GAN/VAE baselines and the MLP classifier.
    """
    targets = np.asarray(targets, dtype=np.float64)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t  is the stable BCE.
    losses = (np.maximum(logits, 0.0) - logits * targets
              + np.log1p(np.exp(-np.abs(logits))))
    grad = sigmoid(logits) - targets
    return losses, grad
