"""Trainable parameters.

A :class:`Parameter` owns its value array and two gradient buffers:

* ``grad`` — the batch-summed gradient, used by ordinary SGD/Adam;
* ``grad_sample`` — a ``(batch, *shape)`` stack of per-example
  gradients, populated only when a backward pass is run with
  ``per_sample=True``.  DP-SGD clips each example's concatenated
  gradient to L2 norm ``C`` before summing (Algorithm 2 line 14), which
  is impossible from the summed gradient alone.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A weight array with gradient accumulation buffers."""

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=np.float64)
        self.name = name
        self.grad = np.zeros_like(self.value)
        self.grad_sample: np.ndarray | None = None

    @property
    def shape(self):
        return self.value.shape

    def zero_grad(self) -> None:
        """Reset both gradient buffers."""
        self.grad.fill(0.0)
        self.grad_sample = None

    def accumulate(self, grad: np.ndarray,
                   grad_sample: np.ndarray | None = None) -> None:
        """Add a gradient contribution (and optionally per-sample stack).

        Layers whose parameter appears once in the graph call this once
        per backward; parameters reused across sub-expressions (e.g. a
        target embedding used both as input and as output head) call it
        multiple times and the buffers accumulate.
        """
        self.grad += grad
        if grad_sample is not None:
            if self.grad_sample is None:
                self.grad_sample = grad_sample.copy()
            else:
                self.grad_sample += grad_sample

    def __repr__(self) -> str:
        return f"Parameter({self.name or 'unnamed'}, shape={self.shape})"


def xavier_init(rng: np.random.Generator, fan_in: int, fan_out: int,
                shape=None) -> np.ndarray:
    """Glorot-uniform initialisation."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.uniform(-bound, bound, size=shape)
