"""First-order optimizers over :class:`~repro.nn.parameter.Parameter`."""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain stochastic gradient descent (Algorithm 2, line 16)."""

    def __init__(self, parameters, lr: float = 1e-3):
        self.parameters = list(parameters)
        self.lr = float(lr)

    def step(self) -> None:
        for p in self.parameters:
            p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015) — used by the non-DP baselines' inner
    loops (GAN discriminators, VAE pre-training, MLP classifier)."""

    def __init__(self, parameters, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8):
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad * p.grad
            p.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
