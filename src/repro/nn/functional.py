"""Stateless numerical functions with stable implementations."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def softmax_backward(alpha: np.ndarray, grad_alpha: np.ndarray,
                     axis: int = -1) -> np.ndarray:
    """Gradient through softmax: ``ds = a * (da - sum(a * da))``."""
    inner = np.sum(alpha * grad_alpha, axis=axis, keepdims=True)
    return alpha * (grad_alpha - inner)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """One-hot encode an int vector to (n, depth) float64."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros((indices.shape[0], depth), dtype=np.float64)
    out[np.arange(indices.shape[0]), indices] = 1.0
    return out
