"""Finite-difference gradient verification.

Because every backward pass in :mod:`repro.nn` is hand-derived, the test
suite verifies each layer and the full AimNet model against central
finite differences.  :func:`gradcheck` perturbs every coordinate of
every parameter and compares the numerical directional derivative with
the analytic gradient.
"""

from __future__ import annotations

import numpy as np


def gradcheck(loss_fn, parameters, eps: float = 1e-5,
              rtol: float = 1e-4, atol: float = 2e-5) -> float:
    """Compare analytic gradients with central finite differences.

    Parameters
    ----------
    loss_fn:
        Zero-argument callable returning a scalar loss.  It must run the
        full forward pass from current parameter values (no stale
        caches).  Analytic gradients must already be accumulated in
        ``p.grad`` for each parameter (run forward+backward once before
        calling).
    parameters:
        Iterable of :class:`Parameter` to check.
    eps:
        Finite-difference step.
    rtol, atol:
        Mismatch tolerances; raises ``AssertionError`` past them.

    Returns the maximum absolute deviation observed.
    """
    worst = 0.0
    for p in parameters:
        analytic = p.grad.copy()
        flat = p.value.reshape(-1)
        numeric = np.zeros_like(flat)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = loss_fn()
            flat[i] = orig - eps
            down = loss_fn()
            flat[i] = orig
            numeric[i] = (up - down) / (2 * eps)
        numeric = numeric.reshape(p.value.shape)
        dev = np.max(np.abs(numeric - analytic))
        worst = max(worst, float(dev))
        if not np.allclose(numeric, analytic, rtol=rtol, atol=atol):
            raise AssertionError(
                f"gradcheck failed for {p.name}: max dev {dev:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return worst
