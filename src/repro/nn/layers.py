"""Layers with manual forward/backward and per-sample gradients.

Every layer caches its forward inputs and implements
``backward(grad_out, per_sample=False)`` returning the gradient with
respect to its input.  When ``per_sample=True``, parameter gradients are
additionally recorded per example into ``Parameter.grad_sample`` with a
leading batch axis — the contract required by
:class:`repro.privacy.dpsgd.DPSGD`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter, xavier_init


class Module:
    """Base class: parameter registry + gradient bookkeeping."""

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, including those of sub-modules.

        Deduplicated by identity: shared encoders (the embedding store)
        may be reachable through several attributes but must receive
        exactly one optimizer update per step.
        """
        out: list[Parameter] = []
        seen: set[int] = set()

        def add(param: Parameter) -> None:
            if id(param) not in seen:
                seen.add(id(param))
                out.append(param)

        def walk(value) -> None:
            if isinstance(value, Parameter):
                add(value)
            elif isinstance(value, Module):
                for p in value.parameters():
                    add(p)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    walk(item)
            elif isinstance(value, dict):
                for item in value.values():
                    walk(item)

        for value in self.__dict__.values():
            walk(value)
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.value.size for p in self.parameters())


class Linear(Module):
    """Affine map ``y = x W + b`` for 2-D inputs ``(batch, fan_in)``."""

    def __init__(self, fan_in: int, fan_out: int, rng: np.random.Generator,
                 bias: bool = True, name: str = "linear"):
        self.weight = Parameter(xavier_init(rng, fan_in, fan_out),
                                name=f"{name}.weight")
        self.bias = (Parameter(np.zeros(fan_out), name=f"{name}.bias")
                     if bias else None)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, grad_out: np.ndarray,
                 per_sample: bool = False) -> np.ndarray:
        x = self._x
        gw = x.T @ grad_out
        gw_sample = (np.einsum("bi,bo->bio", x, grad_out)
                     if per_sample else None)
        self.weight.accumulate(gw, gw_sample)
        if self.bias is not None:
            gb = grad_out.sum(axis=0)
            self.bias.accumulate(gb, grad_out.copy() if per_sample else None)
        return grad_out @ self.weight.value.T


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray,
                 per_sample: bool = False) -> np.ndarray:
        return np.where(self._mask, grad_out, 0.0)


class Embedding(Module):
    """Learnable lookup table mapping codes to d-dimensional vectors.

    Per-sample gradients are stored densely (``(batch, V, d)``) — fine
    for the modest domain sizes the sub-models train on; attributes with
    very large domains bypass embedding training entirely via the
    Gaussian-histogram fallback of §4.3.
    """

    #: Guard against accidentally materialising huge per-sample buffers.
    MAX_PER_SAMPLE_ROWS = 4096

    def __init__(self, num_values: int, dim: int, rng: np.random.Generator,
                 name: str = "embedding"):
        scale = 1.0 / np.sqrt(dim)
        self.table = Parameter(rng.normal(0.0, scale, size=(num_values, dim)),
                               name=f"{name}.table")
        self._idx: np.ndarray | None = None

    @property
    def num_values(self) -> int:
        return self.table.shape[0]

    @property
    def dim(self) -> int:
        return self.table.shape[1]

    def forward(self, idx: np.ndarray) -> np.ndarray:
        self._idx = np.asarray(idx, dtype=np.int64)
        return self.table.value[self._idx]

    def backward(self, grad_out: np.ndarray,
                 per_sample: bool = False) -> None:
        idx = self._idx
        grad = np.zeros_like(self.table.value)
        np.add.at(grad, idx, grad_out)
        gs = None
        if per_sample:
            if self.num_values > self.MAX_PER_SAMPLE_ROWS:
                raise ValueError(
                    f"per-sample gradients for embedding with "
                    f"{self.num_values} rows would be too large; use the "
                    f"large-domain fallback instead"
                )
            batch = idx.shape[0]
            gs = np.zeros((batch, self.num_values, self.dim))
            gs[np.arange(batch), idx] = grad_out
        self.table.accumulate(grad, gs)
        return None  # embeddings are graph sources; no input gradient


class NumericEncoder(Module):
    """The paper's continuous-attribute transform (§2.3).

    ``z = B @ relu(A x + c) + d`` — a linear layer, a ReLU, and a second
    linear layer mapping a standardized scalar to the shared embedding
    dimension.  Standardization uses the *public* domain bounds
    (midpoint / quarter-width) rather than data moments, so it costs no
    privacy budget.
    """

    def __init__(self, dim: int, rng: np.random.Generator, low: float,
                 high: float, name: str = "numeric"):
        self.low = float(low)
        self.high = float(high)
        self.lin1 = Linear(1, dim, rng, name=f"{name}.lin1")
        self.act = ReLU()
        self.lin2 = Linear(dim, dim, rng, name=f"{name}.lin2")

    def standardize(self, x: np.ndarray) -> np.ndarray:
        """Map raw values into roughly [-2, 2] using public bounds."""
        mid = 0.5 * (self.low + self.high)
        scale = max((self.high - self.low) / 4.0, 1e-12)
        return (np.asarray(x, dtype=np.float64) - mid) / scale

    def forward(self, x: np.ndarray) -> np.ndarray:
        z = self.standardize(x).reshape(-1, 1)
        return self.lin2.forward(self.act.forward(self.lin1.forward(z)))

    def backward(self, grad_out: np.ndarray,
                 per_sample: bool = False) -> None:
        g = self.lin2.backward(grad_out, per_sample)
        g = self.act.backward(g, per_sample)
        self.lin1.backward(g, per_sample)
        return None  # raw scalar input needs no gradient
