"""Scaled dot-product attention over context-attribute embeddings.

AimNet (§2.3) "relies on the attention mechanism to learn structural
dependencies between different attributes" and "uses the attention
weights to combine the representations of inputs into a vector
representation (the context vector) for the target attribute".

Given the stacked context embeddings ``E`` of shape ``(batch, m, d)``
(one d-dimensional embedding per context attribute), the layer computes

    s      = E q / sqrt(d)                (scores, per attribute)
    alpha  = softmax(s)                   (attention weights)
    ctx    = sum_m alpha_m * (E_m P)      (projected, mixed)

with a learnable query vector ``q`` (specific to the target attribute)
and projection matrix ``P``.  The attention weights are inspectable via
:meth:`last_weights` — the paper saves them alongside embeddings
(Algorithm 2, line 19).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax, softmax_backward
from repro.nn.layers import Module
from repro.nn.parameter import Parameter, xavier_init


class Attention(Module):
    """Single-query attention pooling of ``m`` context embeddings."""

    def __init__(self, dim: int, rng: np.random.Generator,
                 name: str = "attention"):
        self.dim = dim
        self.query = Parameter(rng.normal(0.0, 1.0 / np.sqrt(dim), size=dim),
                               name=f"{name}.query")
        self.proj = Parameter(xavier_init(rng, dim, dim),
                              name=f"{name}.proj")
        self._cache = None

    def forward(self, context: np.ndarray) -> np.ndarray:
        """``context``: (batch, m, d) -> context vector (batch, d)."""
        scale = 1.0 / np.sqrt(self.dim)
        scores = context @ self.query.value * scale          # (B, m)
        alpha = softmax(scores, axis=1)                      # (B, m)
        projected = context @ self.proj.value                # (B, m, d)
        ctx = np.einsum("bm,bmd->bd", alpha, projected)      # (B, d)
        self._cache = (context, alpha, projected, scale)
        return ctx

    def last_weights(self) -> np.ndarray:
        """Attention weights of the most recent forward pass (B, m)."""
        if self._cache is None:
            raise RuntimeError("forward() has not been called yet")
        return self._cache[1]

    def backward(self, grad_ctx: np.ndarray,
                 per_sample: bool = False) -> np.ndarray:
        """Return gradient w.r.t. the (batch, m, d) context input."""
        context, alpha, projected, scale = self._cache

        grad_alpha = np.einsum("bd,bmd->bm", grad_ctx, projected)
        grad_projected = alpha[:, :, None] * grad_ctx[:, None, :]

        # Projection matrix P: projected = context @ P.
        gp_sample = np.einsum("bmd,bme->bde", context, grad_projected)
        self.proj.accumulate(gp_sample.sum(axis=0),
                             gp_sample if per_sample else None)
        grad_context = grad_projected @ self.proj.value.T

        # Softmax and scores.
        grad_scores = softmax_backward(alpha, grad_alpha, axis=1) * scale
        gq_sample = np.einsum("bm,bmd->bd", grad_scores, context)
        self.query.accumulate(gq_sample.sum(axis=0),
                              gq_sample if per_sample else None)
        grad_context += grad_scores[:, :, None] * self.query.value[None, None, :]
        return grad_context
