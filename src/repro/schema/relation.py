"""Relation schemas: named attributes with domains.

A :class:`Relation` is the single-table schema ``R = {A_1, ..., A_k}``
of the paper's §2.  It owns the ordered attribute list, exposes
name-based lookup, and computes the log-domain size used in experiment
reports (Table 1 reports domain sizes like ``2^52``).
"""

from __future__ import annotations

import math

from repro.schema.domain import Domain


class Attribute:
    """A named attribute with a domain."""

    def __init__(self, name: str, domain: Domain):
        if not name:
            raise ValueError("attribute name must be non-empty")
        self.name = name
        self.domain = domain

    @property
    def is_categorical(self) -> bool:
        return self.domain.is_categorical

    @property
    def is_numerical(self) -> bool:
        return self.domain.is_numerical

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.domain!r})"


class Relation:
    """An ordered collection of attributes forming a table schema."""

    def __init__(self, attributes):
        attributes = list(attributes)
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {names}")
        self.attributes = attributes
        self._by_name = {a.name: a for a in attributes}

    @property
    def names(self) -> list[str]:
        return [a.name for a in self.attributes]

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown attribute {name!r}; schema has {self.names}"
            ) from None

    def domain(self, name: str) -> Domain:
        """Return the domain of attribute ``name``."""
        return self[name].domain

    def index_of(self, name: str) -> int:
        """Return the position of ``name`` in the attribute order."""
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        raise KeyError(name)

    def project(self, names) -> "Relation":
        """Return a new Relation with only the named attributes, in the
        given order."""
        return Relation([self[n] for n in names])

    def reorder(self, names) -> "Relation":
        """Return a Relation with the same attributes in a new order.

        ``names`` must be a permutation of the schema's attribute names;
        this is how a schema sequence (Algorithm 4 output) is applied.
        """
        if sorted(names) != sorted(self.names):
            raise ValueError(
                f"{list(names)} is not a permutation of {self.names}"
            )
        return Relation([self[n] for n in names])

    def log2_domain_size(self) -> float:
        """log2 of the cross-product domain size (Table 1's 'Domain size')."""
        return sum(math.log2(a.domain.size) for a in self.attributes)

    def __repr__(self) -> str:
        return f"Relation({self.names})"
