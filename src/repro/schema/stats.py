"""Differentially private data profiling.

Before synthesizing, a data owner usually wants a quick private look at
the instance: row count, per-attribute histograms, means.  This module
releases exactly that under one Gaussian-mechanism query, with the RDP
cost exposed so a :class:`~repro.privacy.ledger.PrivacyLedger` can
record it.

The release is *one* vector query: all histograms and moment sums are
concatenated and noised jointly, so the whole profile costs a single
``alpha / (2 sigma^2)`` RDP curve (the per-component sensitivities
compose in L2; see :func:`profile_sensitivity`).

Example::

    profile, rdp_fn = release_profile(table, sigma=4.0, rng=rng)
    ledger.record_rdp("profile", rdp_fn)
    print(profile.summary())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.privacy.mechanisms import GaussianMechanism
from repro.schema.table import Table


@dataclass
class AttributeProfile:
    """Noisy per-attribute statistics."""

    name: str
    kind: str                       # "categorical" | "numerical"
    histogram: np.ndarray           # noisy counts (post-processed >= 0)
    labels: list                    # bin labels (values or bin edges)
    mean: float | None = None      # numerical only
    std: float | None = None       # numerical only

    def top_values(self, k: int = 3) -> list:
        """The k most frequent labels by noisy count."""
        order = np.argsort(self.histogram)[::-1][:k]
        return [self.labels[i] for i in order]


@dataclass
class TableProfile:
    """A complete noisy profile of one instance."""

    n: float                        # noisy row count
    sigma: float
    attributes: list[AttributeProfile] = field(default_factory=list)

    def __getitem__(self, name: str) -> AttributeProfile:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise KeyError(name)

    def summary(self) -> str:
        """Human-readable multi-line profile report."""
        lines = [f"rows ~ {self.n:.0f} (sigma={self.sigma:g})"]
        for attr in self.attributes:
            if attr.kind == "numerical":
                lines.append(
                    f"  {attr.name}: numerical, mean ~ {attr.mean:.2f}, "
                    f"std ~ {attr.std:.2f}")
            else:
                top = ", ".join(map(str, attr.top_values()))
                lines.append(f"  {attr.name}: categorical "
                             f"({len(attr.labels)} values; top: {top})")
        return "\n".join(lines)


def profile_sensitivity(relation) -> float:
    """L2 sensitivity of the concatenated profile query.

    Under tuple replacement: the row count is unchanged; each of the k
    histograms changes by sqrt(2); each numerical sum changes by at
    most the domain width ``w`` and each sum of squares by at most
    ``max(|low|, |high|)^2 - 0``... we bound both by the clipped-range
    contributions: values are clipped to the public domain, so one
    replacement moves a sum by at most ``w`` and a squared sum by at
    most ``m^2`` where ``m = max(|low|, |high|)``.  Total L2 is the
    root of the summed squares.
    """
    total = 0.0
    for attr in relation:
        total += 2.0  # histogram: sqrt(2)^2
        if attr.is_numerical:
            width = attr.domain.width
            peak = max(abs(attr.domain.low), abs(attr.domain.high))
            total += width ** 2 + (peak ** 2) ** 2
    return math.sqrt(total)


def release_profile(table: Table, sigma: float,
                    rng: np.random.Generator):
    """Release a noisy :class:`TableProfile`.

    Returns ``(profile, rdp_fn)`` where ``rdp_fn(alpha)`` is the
    release's RDP curve for ledger recording.  ``sigma`` is the noise
    scale relative to the query's joint sensitivity.
    """
    if table.n == 0:
        raise ValueError("cannot profile an empty table")
    sensitivity = profile_sensitivity(table.relation)
    mechanism = GaussianMechanism(sensitivity, sigma, rng)

    profile = TableProfile(n=float(table.n), sigma=sigma)
    for attr in table.relation:
        col = table.column(attr.name)
        if attr.is_categorical:
            counts = np.bincount(col.astype(np.int64),
                                 minlength=attr.domain.size)
            noisy = np.maximum(mechanism.release(counts), 0.0)
            profile.attributes.append(AttributeProfile(
                name=attr.name, kind="categorical", histogram=noisy,
                labels=list(attr.domain.values)))
        else:
            edges = attr.domain.bin_edges()
            counts, _ = np.histogram(col, bins=edges)
            noisy = np.maximum(mechanism.release(counts), 0.0)
            clipped = attr.domain.clip(col)
            noisy_sum = float(mechanism.release(
                np.array([clipped.sum()]))[0])
            noisy_sq = float(mechanism.release(
                np.array([np.square(clipped).sum()]))[0])
            mean = noisy_sum / table.n
            var = max(noisy_sq / table.n - mean * mean, 0.0)
            labels = [0.5 * (edges[i] + edges[i + 1])
                      for i in range(len(edges) - 1)]
            profile.attributes.append(AttributeProfile(
                name=attr.name, kind="numerical", histogram=noisy,
                labels=labels, mean=mean, std=math.sqrt(var)))

    def rdp_fn(alpha):
        return alpha / (2.0 * sigma ** 2)

    return profile, rdp_fn
