"""Relational schema substrate.

This package provides the structured-data layer every other part of the
system builds on: attribute domains, relation schemas, and a small
column-oriented table container backed by numpy arrays.

Design notes
------------
Categorical values are stored as integer *codes* into the domain's value
list, and numerical values as ``float64``.  Working on codes keeps the
denial-constraint engine, the marginal computations, and the neural
models free of string handling, and mirrors how the paper's artifact
encodes data before training.
"""

from repro.schema.domain import CategoricalDomain, Domain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table
from repro.schema.quantize import (
    Quantizer,
    dequantize_table,
    quantize_relation,
    quantize_table,
)
from repro.schema.split import train_test_split

__all__ = [
    "Attribute",
    "CategoricalDomain",
    "Domain",
    "NumericalDomain",
    "Quantizer",
    "Relation",
    "Table",
    "dequantize_table",
    "quantize_relation",
    "quantize_table",
    "train_test_split",
]
