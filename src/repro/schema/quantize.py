"""Quantisation of numerical attributes.

Several components operate on discretised data:

* the Gaussian-mechanism histogram of the first attribute in the schema
  sequence (Algorithm 2, line 2 — "counts of (quantized) values");
* the marginal-query evaluation (Metric III), which buckets numerical
  attributes before computing total variation distance;
* the PrivBayes / NIST baselines, which are defined over discrete data.

:class:`Quantizer` maps a numerical column into ``q`` equi-width bins
over the *public* domain bounds (using the data itself to pick bins
would leak information), and supports decoding a bin back to a value by
uniform sampling inside the bin — exactly the paper's "sample a bin, and
randomly take a value from the domain represented by the bin" (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


class Quantizer:
    """Equi-width binning of a numerical domain.

    Parameters
    ----------
    domain:
        The numerical domain whose public bounds define the bin grid.
    q:
        Number of bins; defaults to the domain's configured bin count.
    """

    def __init__(self, domain: NumericalDomain, q: int | None = None):
        if not isinstance(domain, NumericalDomain):
            raise TypeError("Quantizer requires a NumericalDomain")
        self.domain = domain
        self.q = domain.bins if q is None else int(q)
        if self.q < 1:
            raise ValueError("q must be >= 1")
        self.edges = domain.bin_edges(self.q)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Map values to bin indices in ``[0, q)``."""
        vals = np.asarray(values, dtype=np.float64)
        idx = np.searchsorted(self.edges, vals, side="right") - 1
        return np.clip(idx, 0, self.q - 1).astype(np.int64)

    def decode(self, bins: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample a uniform value inside each bin (§4.2 numerical decode)."""
        bins = np.asarray(bins, dtype=np.int64)
        lo = self.edges[bins]
        hi = self.edges[bins + 1]
        out = lo + rng.random(bins.shape) * (hi - lo)
        return self.domain.clip(out)

    def centers(self) -> np.ndarray:
        """Midpoints of all bins."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])


def quantize_relation(relation: Relation,
                      q: int = 16) -> tuple[Relation, dict]:
    """The discretised view of a schema: numerical attributes become
    ``q``-bin categoricals.

    Returns the discrete relation plus the per-attribute
    :class:`Quantizer` dict.  Both are pure functions of the *public*
    schema — no data involved — which is what lets a fitted
    discrete-domain synthesizer (PrivBayes, NIST) rebuild its working
    relation from the schema alone at load time.
    """
    attrs, quantizers = [], {}
    for attr in relation:
        if attr.is_numerical:
            quant = Quantizer(attr.domain, q)
            labels = [f"bin{i}" for i in range(quant.q)]
            attrs.append(Attribute(attr.name, CategoricalDomain(labels)))
            quantizers[attr.name] = quant
        else:
            attrs.append(attr)
    return Relation(attrs), quantizers


def quantize_table(table: Table, q: int = 16) -> tuple[Table, dict]:
    """Discretise every numerical column of ``table`` into ``q`` bins.

    Returns a new table whose numerical attributes are replaced by
    categorical bin attributes, plus a dict of the per-attribute
    :class:`Quantizer` objects so the transform can be inverted.

    Used by the discrete-only baselines (PrivBayes, NIST) and by the
    marginal evaluation.
    """
    disc_relation, quantizers = quantize_relation(table.relation, q)
    cols = {}
    for attr in table.relation:
        col = table.column(attr.name)
        if attr.name in quantizers:
            cols[attr.name] = quantizers[attr.name].encode(col)
        else:
            cols[attr.name] = col.copy()
    return Table(disc_relation, cols, validate=False), quantizers


def dequantize_table(table: Table, original: Relation, quantizers: dict,
                     rng: np.random.Generator) -> Table:
    """Invert :func:`quantize_table` by uniform sampling inside bins."""
    cols = {}
    for attr in original:
        col = table.column(attr.name)
        if attr.name in quantizers:
            cols[attr.name] = quantizers[attr.name].decode(col, rng)
        else:
            cols[attr.name] = col.copy()
    return Table(original, cols, validate=False)
