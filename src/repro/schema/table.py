"""A column-oriented table container backed by numpy arrays.

The :class:`Table` is the database instance ``D`` of the paper: ``n``
tuples over a :class:`~repro.schema.relation.Relation`.  Categorical
columns hold int64 codes, numerical columns hold float64 values.  All
operations are copy-on-write friendly: row/column selections return new
Tables sharing no mutable state with the source unless documented.
"""

from __future__ import annotations

import csv

import numpy as np

from repro.schema.domain import CategoricalDomain
from repro.schema.relation import Relation


class Table:
    """An instance of a relation: a dict of aligned numpy columns.

    Parameters
    ----------
    relation:
        The schema.  Column order and domains come from here.
    columns:
        Mapping from attribute name to a 1-D numpy array.  All columns
        must share the same length and cover exactly the schema.
    validate:
        If True (default), check that each column's values lie in the
        attribute's domain.
    """

    def __init__(self, relation: Relation, columns: dict, validate: bool = True):
        self.relation = relation
        self.columns: dict[str, np.ndarray] = {}
        lengths = set()
        for attr in relation:
            if attr.name not in columns:
                raise ValueError(f"missing column {attr.name!r}")
            col = np.asarray(columns[attr.name])
            if attr.is_categorical:
                col = col.astype(np.int64, copy=False)
            else:
                col = col.astype(np.float64, copy=False)
            if col.ndim != 1:
                raise ValueError(f"column {attr.name!r} must be 1-D")
            lengths.add(col.shape[0])
            self.columns[attr.name] = col
        extra = set(columns) - set(relation.names)
        if extra:
            raise ValueError(f"columns not in schema: {sorted(extra)}")
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.n = lengths.pop() if lengths else 0
        if validate:
            self._validate()

    def _validate(self) -> None:
        for attr in self.relation:
            if not attr.domain.validate_column(self.columns[attr.name]):
                raise ValueError(
                    f"column {attr.name!r} contains values outside its domain"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, relation: Relation, n: int) -> "Table":
        """An all-zero table of ``n`` rows (used as a sampling canvas)."""
        cols = {}
        for attr in relation:
            if attr.is_categorical:
                cols[attr.name] = np.zeros(n, dtype=np.int64)
            else:
                cols[attr.name] = np.full(n, attr.domain.low, dtype=np.float64)
        return cls(relation, cols, validate=False)

    @classmethod
    def from_rows(cls, relation: Relation, rows, encoded: bool = False) -> "Table":
        """Build a table from an iterable of per-row value tuples.

        If ``encoded`` is False, categorical cells are raw values and are
        encoded through the domain; otherwise they are taken as codes.
        """
        rows = list(rows)
        cols: dict[str, list] = {a.name: [] for a in relation}
        for row in rows:
            if len(row) != relation.arity:
                raise ValueError(
                    f"row arity {len(row)} != schema arity {relation.arity}"
                )
            for attr, cell in zip(relation, row):
                cols[attr.name].append(cell)
        out = {}
        for attr in relation:
            raw = cols[attr.name]
            if attr.is_categorical and not encoded:
                dom: CategoricalDomain = attr.domain
                out[attr.name] = dom.encode_column(raw)
            else:
                out[attr.name] = np.asarray(raw)
        return cls(relation, out)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def column(self, name: str) -> np.ndarray:
        """Return the backing array for a column (not a copy)."""
        return self.columns[name]

    def row(self, i: int) -> dict:
        """Return row ``i`` as a name -> code/value dict."""
        return {name: col[i] for name, col in self.columns.items()}

    def decoded_row(self, i: int) -> dict:
        """Return row ``i`` with categorical codes decoded to raw values."""
        out = {}
        for attr in self.relation:
            cell = self.columns[attr.name][i]
            if attr.is_categorical:
                out[attr.name] = attr.domain.decode(cell)
            else:
                out[attr.name] = float(cell)
        return out

    def take(self, indices) -> "Table":
        """Return a new table containing the given rows (by position)."""
        idx = np.asarray(indices)
        cols = {name: col[idx].copy() for name, col in self.columns.items()}
        return Table(self.relation, cols, validate=False)

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        return self.take(np.arange(min(n, self.n)))

    def project(self, names) -> "Table":
        """Return a new table with only the named columns."""
        rel = self.relation.project(names)
        cols = {n: self.columns[n].copy() for n in names}
        return Table(rel, cols, validate=False)

    def copy(self) -> "Table":
        """Deep copy (columns are copied)."""
        cols = {n: c.copy() for n, c in self.columns.items()}
        return Table(self.relation, cols, validate=False)

    def matrix(self, names=None) -> np.ndarray:
        """Stack columns into an (n, k) float64 matrix (codes as floats)."""
        names = list(names) if names is not None else self.relation.names
        return np.stack(
            [self.columns[n].astype(np.float64) for n in names], axis=1
        )

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write the table (decoded) to a CSV file with a header row."""
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(self.relation.names)
            for i in range(self.n):
                row = self.decoded_row(i)
                writer.writerow([row[n] for n in self.relation.names])

    @classmethod
    def from_csv(cls, relation: Relation, path: str) -> "Table":
        """Read a CSV (with header) into a table, encoding categoricals.

        Numerical cells are parsed with ``float``; categorical cells are
        matched as strings against the domain's values (which must then
        be strings).
        """
        with open(path, newline="") as f:
            reader = csv.reader(f)
            header = next(reader)
            if header != relation.names:
                raise ValueError(
                    f"CSV header {header} does not match schema {relation.names}"
                )
            rows = []
            for raw in reader:
                row = []
                for attr, cell in zip(relation, raw):
                    row.append(cell if attr.is_categorical else float(cell))
                rows.append(row)
        return cls.from_rows(relation, rows)

    def __repr__(self) -> str:
        return f"Table(n={self.n}, schema={self.relation.names})"
