"""Train/test splitting of tables.

The evaluation protocol of the paper (Metric II, §7.1) trains each
classifier on 70% of the *synthetic* instance and tests on the same 30%
slice of the *true* instance.  To make "the same 30%" well defined, the
split is driven by a seeded permutation of row positions, so calling
:func:`train_test_split` with the same seed on two equal-size tables
selects aligned row sets.
"""

from __future__ import annotations

import numpy as np

from repro.schema.table import Table


def train_test_split(table: Table, test_fraction: float = 0.3,
                     seed: int = 0) -> tuple[Table, Table]:
    """Split ``table`` into (train, test) by a seeded permutation.

    Parameters
    ----------
    table:
        The table to split.
    test_fraction:
        Fraction of rows (rounded down) assigned to the test slice.
    seed:
        Seed of the permutation; reuse the same seed to obtain aligned
        splits across tables of equal size.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(table.n)
    n_test = int(table.n * test_fraction)
    if n_test == 0 or n_test == table.n:
        raise ValueError(f"split of {table.n} rows would leave an empty side")
    return table.take(perm[n_test:]), table.take(perm[:n_test])
