"""Attribute domains.

A domain describes the set of values an attribute may take.  Two kinds
are supported, mirroring the paper's "mixed data types" setting (§2.3):

* :class:`CategoricalDomain` — a finite, ordered list of values.  Cells
  of a categorical attribute are stored as integer codes indexing this
  list.
* :class:`NumericalDomain` — a real interval ``[low, high]``, optionally
  integer-valued.  Cells are stored as ``float64``.

The ``size`` of a domain drives the constraint-aware sequencing
heuristic (Algorithm 4) and the hyper-attribute grouping optimisation
(§4.3), so numerical domains report an *effective* size: the number of
quantisation bins used when the attribute is histogrammed.
"""

from __future__ import annotations

import numpy as np


class Domain:
    """Abstract base class for attribute domains."""

    #: Effective number of distinct values (bins for numerical domains).
    size: int

    @property
    def is_categorical(self) -> bool:
        return isinstance(self, CategoricalDomain)

    @property
    def is_numerical(self) -> bool:
        return isinstance(self, NumericalDomain)

    def contains(self, value) -> bool:
        """Return True if ``value`` is a member of this domain."""
        raise NotImplementedError

    def validate_column(self, column: np.ndarray) -> bool:
        """Return True if every cell of ``column`` belongs to the domain."""
        raise NotImplementedError


class CategoricalDomain(Domain):
    """A finite domain of distinct values.

    Parameters
    ----------
    values:
        The ordered list of admissible values.  Order matters: the code
        of a value is its index in this list, and synthetic data uses the
        same coding.
    """

    def __init__(self, values):
        values = list(values)
        if not values:
            raise ValueError("categorical domain must not be empty")
        if len(set(values)) != len(values):
            raise ValueError("categorical domain values must be distinct")
        self.values = values
        self._code_of = {v: i for i, v in enumerate(values)}

    @property
    def size(self) -> int:
        return len(self.values)

    def encode(self, value) -> int:
        """Return the integer code of ``value``.

        Raises ``KeyError`` if the value is not in the domain.
        """
        return self._code_of[value]

    def encode_column(self, raw) -> np.ndarray:
        """Encode an iterable of raw values into an int64 code array."""
        return np.array([self._code_of[v] for v in raw], dtype=np.int64)

    def decode(self, code: int):
        """Return the raw value for an integer code."""
        return self.values[int(code)]

    def decode_column(self, codes: np.ndarray) -> list:
        """Decode an int64 code array back to raw values."""
        return [self.values[int(c)] for c in codes]

    def contains(self, value) -> bool:
        return value in self._code_of

    def validate_column(self, column: np.ndarray) -> bool:
        codes = np.asarray(column)
        return bool(np.all((codes >= 0) & (codes < self.size)))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        preview = ", ".join(map(repr, self.values[:4]))
        if self.size > 4:
            preview += ", ..."
        return f"CategoricalDomain([{preview}], size={self.size})"


class NumericalDomain(Domain):
    """A bounded real (or integer) interval ``[low, high]``.

    Parameters
    ----------
    low, high:
        Inclusive bounds of the domain.  Bounds are public knowledge in
        the DP threat model (they are part of the schema, not the data).
    integer:
        If True, members are integers; sampling rounds to the nearest
        integer inside the bounds.
    bins:
        Effective domain size used for histograms/quantisation; also the
        value reported by :attr:`size` for Algorithm 4's domain-size
        ordering.
    """

    def __init__(self, low: float, high: float, integer: bool = False,
                 bins: int = 32):
        if not np.isfinite(low) or not np.isfinite(high):
            raise ValueError("numerical domain bounds must be finite")
        if low > high:
            raise ValueError(f"invalid numerical domain: [{low}, {high}]")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.integer = bool(integer)
        self.bins = int(bins)

    @property
    def size(self) -> int:
        if self.integer:
            span = int(self.high - self.low) + 1
            return min(span, self.bins) if self.bins else span
        return self.bins

    @property
    def width(self) -> float:
        return self.high - self.low

    def clip(self, values: np.ndarray) -> np.ndarray:
        """Clamp values into the domain (and round if integer-valued)."""
        out = np.clip(np.asarray(values, dtype=np.float64), self.low, self.high)
        if self.integer:
            out = np.rint(out)
        return out

    def contains(self, value) -> bool:
        v = float(value)
        if not (self.low <= v <= self.high):
            return False
        return not self.integer or float(v).is_integer()

    def validate_column(self, column: np.ndarray) -> bool:
        col = np.asarray(column, dtype=np.float64)
        ok = np.all((col >= self.low) & (col <= self.high))
        if self.integer:
            ok = ok and np.allclose(col, np.rint(col))
        return bool(ok)

    def bin_edges(self, q: int | None = None) -> np.ndarray:
        """Return ``q + 1`` equi-width bin edges spanning the domain."""
        q = self.bins if q is None else int(q)
        return np.linspace(self.low, self.high, q + 1)

    def __repr__(self) -> str:
        kind = "int" if self.integer else "float"
        return (f"NumericalDomain([{self.low}, {self.high}], {kind}, "
                f"bins={self.bins})")
