"""Rényi differential privacy accounting (§6 of the paper).

The total privacy cost of Kamino (Theorem 1) composes three mechanism
families, each an instance of the Sampled Gaussian Mechanism (SGM):

* M1 — the first-attribute histogram: sampling rate 1, noise scale
  ``sigma_g`` (RDP ``alpha / (2 sigma_g^2)``);
* M2 — DP-SGD over ``T (k-1)`` iterations at sampling rate ``b/n`` with
  noise scale ``sigma_d``;
* M3 — the DC-weight violation matrix: one SGM release at sampling rate
  ``L_w / n`` with noise scale ``sigma_w``.

Per-step SGM RDP uses the integer-order formula of Mironov, Talwar &
Zhang (2019) — the paper's Lemma 2 — computed in log space::

    R(alpha) = 1/(alpha-1) * log( sum_{k=0}^{alpha}
                  C(alpha,k) (1-q)^(alpha-k) q^k exp((k^2-k)/(2 sigma^2)) )

(The ``q = 1`` case degenerates to the plain Gaussian ``alpha/(2 sigma^2)``,
which fixes the normalisation: Lemma 2's sum is the moment bound, and
the Rényi divergence includes the ``log / (alpha - 1)``.)

Conversion to (epsilon, delta)-DP uses the tail bound (Eqn. 7)::

    epsilon(delta) = min_alpha  R(alpha) + log(1/delta) / (alpha - 1)
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln, logsumexp

#: Integer Rényi orders searched during conversion, following the
#: "searched within a range" practice the paper cites [83].  The sparse
#: tail beyond 64 matters for very tight budgets: at delta = 1e-6 the
#: conversion term log(1/delta)/(alpha - 1) alone exceeds epsilon = 0.1
#: unless alpha > 139.
DEFAULT_ALPHAS = tuple(range(2, 65)) + (
    72, 80, 96, 128, 160, 192, 256, 320, 384, 448, 512, 768, 1024)


def rdp_gaussian(sigma: float, alpha: float) -> float:
    """RDP of the (unsampled) Gaussian mechanism: ``alpha/(2 sigma^2)``."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return alpha / (2.0 * sigma ** 2)


def rdp_sgm(q: float, sigma: float, alpha: int) -> float:
    """Per-application RDP of the Sampled Gaussian Mechanism (Lemma 2).

    Parameters
    ----------
    q:
        Poisson sampling rate in (0, 1].
    sigma:
        Gaussian noise scale (relative to the query's sensitivity).
    alpha:
        Integer Rényi order >= 2.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"sampling rate must be in (0, 1], got {q}")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    alpha = int(alpha)
    if alpha < 2:
        raise ValueError("alpha must be an integer >= 2")
    if q == 1.0:
        return rdp_gaussian(sigma, alpha)

    ks = np.arange(alpha + 1, dtype=np.float64)
    log_binom = (gammaln(alpha + 1) - gammaln(ks + 1)
                 - gammaln(alpha - ks + 1))
    log_terms = (log_binom
                 + (alpha - ks) * np.log1p(-q)
                 + ks * np.log(q)
                 + (ks * ks - ks) / (2.0 * sigma ** 2))
    return float(logsumexp(log_terms) / (alpha - 1))


def rdp_to_epsilon(rdp_fn, delta: float,
                   alphas=DEFAULT_ALPHAS) -> tuple[float, int]:
    """Tail-bound conversion (Eqn. 7): returns (epsilon, best_alpha).

    ``rdp_fn(alpha)`` must return the composed RDP at integer order
    ``alpha``.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    best_eps, best_alpha = np.inf, alphas[0]
    log_inv_delta = np.log(1.0 / delta)
    for alpha in alphas:
        eps = rdp_fn(alpha) + log_inv_delta / (alpha - 1)
        if eps < best_eps:
            best_eps, best_alpha = eps, alpha
    return float(best_eps), int(best_alpha)


def sgm_epsilon(delta: float, q: float, sigma: float, steps: int,
                alphas=DEFAULT_ALPHAS) -> float:
    """(epsilon) of ``steps`` composed SGM applications at rate ``q``."""
    def rdp_fn(alpha):
        return steps * rdp_sgm(q, sigma, alpha)
    eps, _ = rdp_to_epsilon(rdp_fn, delta, alphas)
    return eps


def calibrate_sgm_sigma(epsilon: float, delta: float, q: float, steps: int,
                        sigma_lo: float = 0.3, sigma_hi: float = 200.0,
                        tol: float = 1e-3) -> float:
    """Smallest noise scale whose ``steps``-fold SGM composition fits
    the (epsilon, delta) budget — bisection over sigma.

    Used by the baselines (DP-VAE's DP-SGD, PATE-GAN's vote noising,
    NIST's marginal measurements) to spend exactly their budget.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    # Tight budgets with many composed steps can need sigma far above
    # the nominal ceiling; grow it geometrically before bisecting.
    expansions = 0
    while sgm_epsilon(delta, q, sigma_hi, steps) > epsilon:
        sigma_hi *= 4.0
        expansions += 1
        if expansions > 12:
            raise ValueError(
                f"budget epsilon={epsilon} unreachable even at sigma="
                f"{sigma_hi}")
    lo, hi = sigma_lo, sigma_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if sgm_epsilon(delta, q, mid, steps) <= epsilon:
            hi = mid
        else:
            lo = mid
    return hi


def kamino_rdp(alpha: int, *, sigma_g: float, sigma_d: float, T: int,
               k: int, b: int, n: int, learn_weights: bool = False,
               sigma_w: float = 1.0, L_w: int = 0,
               n_hist: int = 1, n_submodels: int | None = None) -> float:
    """Theorem 1: total RDP of the Kamino pipeline at order ``alpha``.

    Parameters mirror the configuration set Psi of Algorithm 6:
    ``sigma_g`` (histogram noise), ``sigma_d`` (DP-SGD noise), ``T``
    iterations per sub-model, ``k`` attributes (so ``k - 1`` sub-models
    unless ``n_submodels`` overrides — hyper-attribute grouping and the
    large-domain fallback of §4.3 change the count), batch size ``b``
    out of ``n`` rows, and — if ``learn_weights`` — one violation-matrix
    release at rate ``L_w/n`` and scale ``sigma_w``.  ``n_hist`` counts
    Gaussian-histogram releases (the first attribute, plus one per
    large-domain attribute modeled independently).
    """
    total = n_hist * rdp_gaussian(sigma_g, alpha)
    n_sub = (k - 1) if n_submodels is None else n_submodels
    if n_sub > 0 and T > 0:
        total += T * n_sub * rdp_sgm(min(b / n, 1.0), sigma_d, alpha)
    if learn_weights:
        total += rdp_sgm(min(L_w / n, 1.0), sigma_w, alpha)
    return total


def kamino_epsilon(delta: float, *, sigma_g: float, sigma_d: float, T: int,
                   k: int, b: int, n: int, learn_weights: bool = False,
                   sigma_w: float = 1.0, L_w: int = 0, n_hist: int = 1,
                   n_submodels: int | None = None,
                   alphas=DEFAULT_ALPHAS) -> tuple[float, int]:
    """End-to-end (epsilon, delta) of a Kamino configuration (Eqn. 7)."""
    def rdp_fn(alpha):
        return kamino_rdp(alpha, sigma_g=sigma_g, sigma_d=sigma_d, T=T, k=k,
                          b=b, n=n, learn_weights=learn_weights,
                          sigma_w=sigma_w, L_w=L_w, n_hist=n_hist,
                          n_submodels=n_submodels)
    return rdp_to_epsilon(rdp_fn, delta, alphas)
