"""Differentially private SGD (Algorithm 2, lines 11-16).

Each iteration:

1. Poisson-sample a batch (every row independently with probability
   ``b/n``) — done by the caller, which reports the *expected* batch
   size ``b``;
2. run forward + backward with ``per_sample=True`` so every
   :class:`~repro.nn.parameter.Parameter` carries ``grad_sample`` of
   shape ``(B, *shape)``;
3. call :meth:`DPSGD.step`: clip each example's concatenated gradient to
   L2 norm ``C`` (``g / max(1, ||g||_2 / C)``), sum over the batch, add
   ``N(0, sigma_d^2 C^2 I)``, divide by ``b``, and descend.

The privacy cost per step is one Sampled Gaussian Mechanism application
at rate ``b/n`` and scale ``sigma_d`` — accounted by
:func:`repro.privacy.rdp.rdp_sgm`.
"""

from __future__ import annotations

import numpy as np


class DPSGD:
    """Per-sample-clipped, noised gradient descent.

    Parameters
    ----------
    parameters:
        The model parameters; their ``grad_sample`` buffers are consumed
        (and ``grad`` overwritten) by :meth:`step`.
    lr:
        Learning rate eta.
    clip_norm:
        The L2 clipping threshold ``C``.
    noise_scale:
        The DP-SGD noise multiplier ``sigma_d``.
    expected_batch:
        The expected Poisson batch size ``b`` used as the averaging
        denominator (Algorithm 2 line 15 divides by ``b``, not by the
        realised batch size — dividing by the realised size would leak).
    rng:
        Noise source.
    """

    def __init__(self, parameters, lr: float, clip_norm: float,
                 noise_scale: float, expected_batch: int,
                 rng: np.random.Generator):
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")
        if expected_batch < 1:
            raise ValueError("expected_batch must be >= 1")
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.clip_norm = float(clip_norm)
        self.noise_scale = float(noise_scale)
        self.expected_batch = int(expected_batch)
        self.rng = rng

    def _batch_size(self) -> int:
        sizes = {p.grad_sample.shape[0] for p in self.parameters
                 if p.grad_sample is not None}
        if len(sizes) > 1:
            raise ValueError(f"inconsistent per-sample batch sizes: {sizes}")
        return sizes.pop() if sizes else 0

    def clip_factors(self) -> np.ndarray:
        """Per-example scaling ``1 / max(1, ||g_b||_2 / C)``."""
        batch = self._batch_size()
        if batch == 0:
            return np.zeros(0)
        sq_norms = np.zeros(batch)
        for p in self.parameters:
            if p.grad_sample is None:
                continue
            flat = p.grad_sample.reshape(batch, -1)
            sq_norms += np.einsum("bi,bi->b", flat, flat)
        norms = np.sqrt(sq_norms)
        return 1.0 / np.maximum(1.0, norms / self.clip_norm)

    def step(self) -> None:
        """Clip, noise, average, and apply one gradient-descent update.

        An empty batch (possible under Poisson sampling) still performs
        the noise addition — the mechanism's output distribution must
        not reveal whether any row was sampled.
        """
        batch = self._batch_size()
        factors = self.clip_factors()
        std = self.noise_scale * self.clip_norm
        for p in self.parameters:
            if p.grad_sample is not None and batch > 0:
                weighted = np.einsum(
                    "b,b...->...", factors, p.grad_sample)
            else:
                weighted = np.zeros_like(p.value)
            noise = self.rng.normal(0.0, std, size=p.value.shape)
            p.grad = (weighted + noise) / self.expected_batch
            p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
