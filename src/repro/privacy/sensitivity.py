"""L2 sensitivity helpers.

The DP analysis is under *bounded* neighbouring databases ("differ only
in one tuple" — one tuple replaced by another, Definition 1), so a
histogram's L2 sensitivity is sqrt(2): the replaced tuple leaves one bin
(-1) and enters another (+1).
"""

from __future__ import annotations

import math


def histogram_l2_sensitivity() -> float:
    """L2 sensitivity of a counting histogram under tuple replacement.

    One replacement decrements one count and increments another:
    ``||(. -1 ... +1 .)||_2 = sqrt(2)``.  Algorithm 2 line 3 adds noise
    ``N(0, 2 sigma_g^2)`` — exactly ``(sqrt(2) * sigma_g)^2`` — so the
    RDP cost of M1 is ``alpha / (2 sigma_g^2)`` as in Theorem 1.
    """
    return math.sqrt(2.0)


def violation_matrix_sensitivity(num_unary: int, num_binary: int,
                                 L_w: int) -> float:
    """Lemma 1: L2 sensitivity of the subsampled violation matrix.

    ``S_w = |phi_u| + |phi_b| * sqrt(L_w^2 - L_w)``: replacing one tuple
    in a sample of ``L_w`` rows can change a unary-DC column by 1 in one
    row, and a binary-DC column by up to ``L_w - 1`` in the changed row
    plus 1 in each of the other ``L_w - 1`` rows —
    ``sqrt((L_w-1) + (L_w-1)^2) = sqrt(L_w^2 - L_w)``.
    """
    if num_unary < 0 or num_binary < 0:
        raise ValueError("DC counts must be non-negative")
    if L_w < 1:
        raise ValueError("sample size L_w must be >= 1")
    return num_unary + num_binary * math.sqrt(L_w * L_w - L_w)


def capped_indicator_sensitivity(num_dcs: int, L_w: int) -> float:
    """L2 sensitivity of the *capped* violation-indicator matrix.

    Entries are ``min(V[i][l], 1)``: does tuple ``i`` participate in
    any violation of DC ``l``.  Replacing one tuple changes each entry
    by at most 1, and at most all ``L_w`` rows of all ``num_dcs``
    columns flip, so ``S = sqrt(L_w * num_dcs)`` — a factor
    ``~sqrt(L_w)`` below Lemma 1's uncapped bound.  This is what makes
    weight learning informative at honest budgets (see
    ``repro.core.weights``).
    """
    if num_dcs < 0:
        raise ValueError("DC count must be non-negative")
    if L_w < 1:
        raise ValueError("sample size L_w must be >= 1")
    return math.sqrt(L_w * num_dcs)
