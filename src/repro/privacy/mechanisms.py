"""Additive-noise mechanisms (§2.4).

The Gaussian mechanism perturbs a vector-valued query with noise
``N(0, S_f^2 sigma^2 I)`` where ``S_f`` is the L2 sensitivity and
``sigma`` the noise *scale* (the paper's convention — total standard
deviation is ``S_f * sigma``).  The Laplace mechanism is included for
the PATE vote aggregation and PrivBayes baselines.
"""

from __future__ import annotations

import numpy as np


def gaussian_sigma(epsilon: float, delta: float) -> float:
    """Classic calibration ``sigma >= sqrt(2 ln(1.25/delta)) / epsilon``.

    Valid for ``epsilon in (0, 1)``; the paper uses this form both in
    §2.4 and for the DC-weight noise (Algorithm 6, line 7).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return float(np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon)


class GaussianMechanism:
    """Gaussian noise addition with explicit sensitivity accounting.

    Parameters
    ----------
    sensitivity:
        L2 sensitivity ``S_f`` of the query being released.
    sigma:
        Noise scale; the released value is
        ``f(D) + N(0, (sensitivity * sigma)^2)`` per coordinate.
    rng:
        Source of randomness.
    """

    def __init__(self, sensitivity: float, sigma: float,
                 rng: np.random.Generator):
        if sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sensitivity = float(sensitivity)
        self.sigma = float(sigma)
        self.rng = rng

    @property
    def noise_std(self) -> float:
        return self.sensitivity * self.sigma

    def release(self, values: np.ndarray) -> np.ndarray:
        """Return a noisy copy of ``values``."""
        values = np.asarray(values, dtype=np.float64)
        return values + self.rng.normal(0.0, self.noise_std, size=values.shape)

    def rdp(self, alpha: float) -> float:
        """Per-release RDP cost ``alpha / (2 sigma^2)`` (scale-invariant:
        the sensitivity cancels because noise is proportional to it)."""
        return alpha / (2.0 * self.sigma ** 2)


class LaplaceMechanism:
    """Laplace noise addition calibrated to L1 sensitivity.

    Satisfies pure ``epsilon``-DP: noise scale is ``sensitivity/epsilon``.
    """

    def __init__(self, sensitivity: float, epsilon: float,
                 rng: np.random.Generator):
        if sensitivity < 0:
            raise ValueError("sensitivity must be non-negative")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.sensitivity = float(sensitivity)
        self.epsilon = float(epsilon)
        self.rng = rng

    @property
    def noise_scale(self) -> float:
        return self.sensitivity / self.epsilon

    def release(self, values: np.ndarray) -> np.ndarray:
        """Return a noisy copy of ``values``."""
        values = np.asarray(values, dtype=np.float64)
        return values + self.rng.laplace(0.0, self.noise_scale,
                                         size=values.shape)
