"""Differential-privacy substrate.

Implements everything §2.4 and §6 of the paper rely on:

* :mod:`repro.privacy.mechanisms` — Gaussian and Laplace mechanisms and
  the classic sigma calibration;
* :mod:`repro.privacy.rdp` — the Rényi-DP accountant: per-step RDP of
  the Sampled Gaussian Mechanism (Lemma 2), linear composition, the
  Kamino total of Theorem 1, and the tail-bound conversion to
  (epsilon, delta)-DP of Eqn. (7);
* :mod:`repro.privacy.dpsgd` — differentially private SGD with
  per-sample L2 clipping and Gaussian noising (Algorithm 2, lines
  13-16), consuming the per-sample gradients produced by
  :mod:`repro.nn`;
* :mod:`repro.privacy.sensitivity` — L2 sensitivity helpers, including
  Lemma 1's violation-matrix sensitivity.
"""

from repro.privacy.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    gaussian_sigma,
)
from repro.privacy.rdp import (
    DEFAULT_ALPHAS,
    calibrate_sgm_sigma,
    sgm_epsilon,
    kamino_rdp,
    kamino_epsilon,
    rdp_gaussian,
    rdp_sgm,
    rdp_to_epsilon,
)
from repro.privacy.dpsgd import DPSGD
from repro.privacy.ledger import BudgetExceededError, LedgerEntry, PrivacyLedger
from repro.privacy.sensitivity import (
    histogram_l2_sensitivity,
    violation_matrix_sensitivity,
)

__all__ = [
    "BudgetExceededError",
    "DEFAULT_ALPHAS",
    "DPSGD",
    "calibrate_sgm_sigma",
    "sgm_epsilon",
    "GaussianMechanism",
    "LaplaceMechanism",
    "LedgerEntry",
    "PrivacyLedger",
    "gaussian_sigma",
    "histogram_l2_sensitivity",
    "kamino_epsilon",
    "kamino_rdp",
    "rdp_gaussian",
    "rdp_sgm",
    "rdp_to_epsilon",
    "violation_matrix_sensitivity",
]
