"""A privacy-budget ledger for repeated releases against one dataset.

Each Kamino run (or any other DP mechanism touching the same private
instance) spends budget; composition across runs is what the data owner
must account for.  The :class:`PrivacyLedger` keeps one RDP curve per
release, composes them by pointwise addition over a fixed grid of Rényi
orders, and converts the total to ``(epsilon, delta)`` on demand via the
paper's Eqn. (7) tail bound.

Entries are recorded as RDP curves rather than ``(epsilon, delta)``
pairs, so composing many releases stays tight — summing epsilons (naïve
sequential composition) would be far more pessimistic.

The ledger serializes to JSON so it survives the process::

    ledger = PrivacyLedger(delta=1e-6)
    ledger.record_kamino("2024-01 release", result.params)
    ledger.save("ledger.json")
    ...
    ledger = PrivacyLedger.load("ledger.json")
    ledger.spent_epsilon()   # total across both sessions
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.privacy.rdp import (
    DEFAULT_ALPHAS,
    kamino_rdp,
    rdp_gaussian,
    rdp_sgm,
    rdp_to_epsilon,
)


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded release: a label and its RDP curve on the grid."""

    label: str
    #: RDP values aligned with the ledger's alpha grid.
    rdp: tuple[float, ...]


class BudgetExceededError(RuntimeError):
    """Raised by :meth:`PrivacyLedger.charge` when a release would push
    the composed cost past the configured budget."""


class PrivacyLedger:
    """Composes RDP costs of multiple releases against one database.

    Parameters
    ----------
    delta:
        The delta at which epsilons are reported.
    budget_epsilon:
        Optional hard cap; :meth:`charge` refuses releases that would
        exceed it (the already-recorded entries are never rolled back —
        DP spending is irrevocable).
    alphas:
        The grid of integer Rényi orders curves are evaluated on.
    """

    def __init__(self, delta: float, budget_epsilon: float | None = None,
                 alphas=DEFAULT_ALPHAS):
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if budget_epsilon is not None and budget_epsilon <= 0:
            raise ValueError("budget_epsilon must be positive")
        self.delta = float(delta)
        self.budget_epsilon = budget_epsilon
        self.alphas = tuple(int(a) for a in alphas)
        if any(a < 2 for a in self.alphas):
            raise ValueError("all Rényi orders must be >= 2")
        self.entries: list[LedgerEntry] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_rdp(self, label: str, rdp_fn) -> LedgerEntry:
        """Record a release from its RDP function ``alpha -> value``."""
        curve = tuple(float(rdp_fn(a)) for a in self.alphas)
        if any(not math.isfinite(v) or v < 0 for v in curve):
            raise ValueError(f"RDP curve for {label!r} must be finite "
                             f"and non-negative")
        entry = LedgerEntry(label=label, rdp=curve)
        self.entries.append(entry)
        return entry

    def record_gaussian(self, label: str, sigma: float,
                        count: int = 1) -> LedgerEntry:
        """Record ``count`` Gaussian-mechanism releases at scale ``sigma``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return self.record_rdp(
            label, lambda a: count * rdp_gaussian(sigma, a))

    def record_sgm(self, label: str, q: float, sigma: float,
                   steps: int) -> LedgerEntry:
        """Record ``steps`` Sampled-Gaussian applications at rate ``q``."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        return self.record_rdp(label, lambda a: steps * rdp_sgm(q, sigma, a))

    def record_kamino(self, label: str, params) -> LedgerEntry:
        """Record one full Kamino run from its :class:`KaminoParams`."""
        if not math.isfinite(params.epsilon):
            raise ValueError("cannot ledger a non-private run")
        return self.record_rdp(label, lambda a: kamino_rdp(
            a, sigma_g=params.sigma_g, sigma_d=params.sigma_d,
            T=params.iterations, k=params.k, b=params.batch, n=params.n,
            learn_weights=params.learn_weights, sigma_w=params.sigma_w,
            L_w=params.L_w, n_hist=params.n_hist,
            n_submodels=params.n_submodels))

    def charge(self, label: str, rdp_fn) -> LedgerEntry:
        """Record a release only if it keeps the total within budget.

        Raises :class:`BudgetExceededError` (recording nothing) if the
        composed epsilon would exceed ``budget_epsilon``.
        """
        entry = self.record_rdp(label, rdp_fn)
        if self.budget_epsilon is not None:
            spent, _ = self.spent()
            if spent > self.budget_epsilon * (1 + 1e-12):
                self.entries.pop()
                raise BudgetExceededError(
                    f"release {label!r} would spend {spent:.4f} > budget "
                    f"{self.budget_epsilon}")
        return entry

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def composed_rdp(self, alpha: int) -> float:
        """Total RDP at order ``alpha`` (must be on the grid)."""
        try:
            idx = self.alphas.index(int(alpha))
        except ValueError:
            raise ValueError(f"alpha {alpha} not on the ledger grid") from None
        return sum(e.rdp[idx] for e in self.entries)

    def spent(self) -> tuple[float, int]:
        """Composed ``(epsilon, best_alpha)`` at the ledger's delta."""
        if not self.entries:
            return 0.0, self.alphas[0]
        return rdp_to_epsilon(self.composed_rdp, self.delta, self.alphas)

    def spent_epsilon(self) -> float:
        """Composed epsilon at the ledger's delta."""
        return self.spent()[0]

    def remaining(self) -> float:
        """Budget headroom (requires ``budget_epsilon``); never negative."""
        if self.budget_epsilon is None:
            raise ValueError("ledger has no budget_epsilon configured")
        return max(0.0, self.budget_epsilon - self.spent_epsilon())

    def summary(self) -> str:
        """Human-readable multi-line report of all entries and the total."""
        lines = [f"PrivacyLedger(delta={self.delta:g})"]
        for entry in self.entries:
            eps, alpha = rdp_to_epsilon(
                lambda a, e=entry: e.rdp[self.alphas.index(a)],
                self.delta, self.alphas)
            lines.append(f"  {entry.label}: standalone eps={eps:.4f} "
                         f"(alpha={alpha})")
        eps, alpha = self.spent()
        lines.append(f"  TOTAL composed: eps={eps:.4f} (alpha={alpha})")
        if self.budget_epsilon is not None:
            lines.append(f"  budget: {self.budget_epsilon:g}, "
                         f"remaining: {self.remaining():.4f}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": "repro.ledger/1",
            "delta": self.delta,
            "budget_epsilon": self.budget_epsilon,
            "alphas": list(self.alphas),
            "entries": [
                {"label": e.label, "rdp": list(e.rdp)} for e in self.entries
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PrivacyLedger":
        if data.get("format") != "repro.ledger/1":
            raise ValueError(f"unsupported ledger format "
                             f"{data.get('format')!r}")
        ledger = cls(data["delta"], budget_epsilon=data.get("budget_epsilon"),
                     alphas=data["alphas"])
        for raw in data["entries"]:
            ledger.entries.append(
                LedgerEntry(label=raw["label"], rdp=tuple(raw["rdp"])))
        return ledger

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2)
            f.write("\n")

    @classmethod
    def load(cls, path: str) -> "PrivacyLedger":
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        eps, _ = self.spent()
        return (f"PrivacyLedger(entries={len(self.entries)}, "
                f"spent_epsilon={eps:.4f}, delta={self.delta:g})")
