"""Kamino behind the synthesizer protocol — a thin adapter.

:class:`repro.core.kamino.Kamino` already *is* staged (PR 4); this
module only wraps it in the protocol surface so the registry, router,
CLI ``--method``, and evaluation harness treat it like every other
backend.  The adapter adds nothing to the pipeline: draws delegate to
:meth:`FittedKamino.sample` (same determinism contract, bit-identical
outputs), persistence delegates to the native model format v2
(``.npz`` via :mod:`repro.core.model_io`), and the budget ledger
records the one composed RDP spend the pipeline makes.
"""

from __future__ import annotations

import math

from repro.core.kamino import FittedKamino, Kamino, KaminoConfig
from repro.synth.ledger import BudgetLedger
from repro.synth.protocol import FittedSynthesizer, Synthesizer


def _pipeline_ledger(config: KaminoConfig) -> BudgetLedger:
    """The pipeline's spend record, derived from its (public) config.

    Kamino composes its internal mechanisms (histogram, DP-SGD
    sub-models, DC-weight estimation) tightly on one RDP curve sized to
    the whole budget (Algorithm 6), so the ledger carries one composed
    entry rather than re-deriving the per-mechanism split the RDP
    accountant already owns.  Non-private fits spend nothing.
    """
    ledger = BudgetLedger()
    if math.isfinite(config.epsilon):
        ledger.spend("rdp:kamino-pipeline (histogram + dp-sgd + "
                     "dc-weights, Algorithm 6 split)", config.epsilon,
                     config.delta)
    return ledger


class FittedKaminoSynthesizer(FittedSynthesizer):
    """Protocol view of a :class:`FittedKamino` artifact."""

    method = "kamino"
    #: Kamino's blocked engine streams chunks at flat memory
    #: (:meth:`FittedKamino.sample_stream`), not the protocol's
    #: chunk-a-single-shot fallback.
    supports_native_stream = True

    def __init__(self, fitted: FittedKamino):
        super().__init__(fitted.relation, fitted.default_n,
                         fitted.config.seed,
                         ledger=_pipeline_ledger(fitted.config))
        self.fitted = fitted

    def sample(self, n=None, seed=None, *, trace=None):
        """Delegates to :meth:`FittedKamino.sample`; returns the table.

        All of Kamino's own draw knobs (engine, workers, pool,
        streaming) stay available on ``self.fitted`` — the protocol
        surface is the portable subset.
        """
        return self.fitted.sample(n=n, seed=seed, trace=trace).table

    def sample_stream(self, n=None, seed=None, chunk_rows=None, *,
                      trace=None):
        """Bounded-memory chunks via :meth:`FittedKamino.sample_stream`.

        Same contract as the protocol default — concatenated chunks
        equal the single-shot draw bit for bit — but peak memory holds
        one chunk, never the full ``n`` rows.  ``trace`` records one
        run-level :class:`~repro.obs.trace.SampleTrace` timed over the
        drain (the underlying stream has no per-column hook); it never
        touches an rng.
        """
        n_out = self.fitted.default_n if n is None else int(n)
        chunks = self.fitted.sample_stream(n=n_out, seed=seed,
                                           chunk_rows=chunk_rows)
        if trace is None:
            return chunks
        return self._traced_drain(chunks, n_out, seed, trace)

    def _traced_drain(self, chunks, n_out, seed, trace):
        import time
        run = trace.begin_sample(f"{self.fitted.config.engine}-stream",
                                 n_out, seed)
        start = time.perf_counter()
        for chunk in chunks:
            yield chunk
        run.finish(time.perf_counter() - start)

    def save(self, path: str) -> None:
        """Native Kamino model format v2, not the synth payload —
        existing artifacts and tooling keep working unchanged."""
        self.fitted.save(path)

    @classmethod
    def load(cls, path: str, relation, dcs=()):
        return cls(FittedKamino.load(path, relation, dcs))


class KaminoSynthesizer(Synthesizer):
    """The Kamino pipeline as a registry backend.

    Extra keyword arguments are :class:`KaminoConfig` knobs
    (``engine``, ``params_override``, ``group_max_domain``, ...), so
    harness- and CLI-level construction stays one call.
    """

    name = "kamino"
    uses_dcs = True
    supports_infinite_epsilon = True
    fitted_cls = FittedKaminoSynthesizer

    def __init__(self, epsilon: float, delta: float = 1e-6, seed: int = 0,
                 dcs=(), **config_kwargs):
        super().__init__(epsilon, delta=delta, seed=seed)
        self.dcs = list(dcs)
        self.config = KaminoConfig(epsilon=self.epsilon, delta=self.delta,
                                   seed=self.seed, **config_kwargs)

    def fit(self, table, *, trace=None) -> FittedKaminoSynthesizer:
        kamino = Kamino(table.relation, self.dcs, config=self.config)
        return FittedKaminoSynthesizer(kamino.fit(table, trace=trace))
