"""The synthesizer layer: one staged protocol over every backend.

Kamino's experiments are defined against a field of competing DP
synthesizers, and the ROADMAP's platform direction needs all of them to
speak one interface.  This package defines that interface and the
infrastructure around it:

* :mod:`repro.synth.protocol` — the staged :class:`Synthesizer`
  contract (``fit(table) -> FittedSynthesizer``,
  ``FittedSynthesizer.sample(n, seed)``, ``save``/``load``) every
  backend implements, mirroring PR 4's Kamino split: budget-consuming
  work happens once in ``fit``; draws are seeded post-processing;
* :mod:`repro.synth.ledger` — :class:`BudgetLedger`, the per-backend
  record of every ``(mechanism, epsilon, delta)`` spend a fit makes
  (replacing the baselines' hand-rolled epsilon splits);
* :mod:`repro.synth.registry` — the string-name registry
  (``kamino``, ``privbayes``, ``pategan``, ``dpvae``, ``nist_mst``,
  ``cleaning``) with lazy backend imports, so a missing optional
  dependency surfaces as a clear :class:`BackendUnavailable` error for
  that one backend instead of an ImportError at CLI startup;
* :mod:`repro.synth.router` — :func:`route`, the per-dataset method
  router (constraints present → ``kamino``; wide low-constraint tables
  → the marginal backend);
* :mod:`repro.synth.io` — the shared fitted-artifact payload format
  (``repro.synth/1`` ``.npz``) and format sniffing, so one
  ``load_fitted`` call dispatches both synth payloads and native
  Kamino model files.
"""

from repro.synth.io import is_synth_payload, peek_method
from repro.synth.ledger import BudgetLedger, Spend
from repro.synth.protocol import FittedSynthesizer, Synthesizer
from repro.synth.registry import (
    BACKENDS,
    BackendUnavailable,
    available_backends,
    backend_names,
    load_fitted,
    make_synthesizer,
    register_backend,
    resolve_backend,
)
from repro.synth.router import WIDE_TABLE_WIDTH, route

__all__ = [
    "BACKENDS",
    "BackendUnavailable",
    "BudgetLedger",
    "FittedSynthesizer",
    "Spend",
    "Synthesizer",
    "WIDE_TABLE_WIDTH",
    "available_backends",
    "backend_names",
    "is_synth_payload",
    "load_fitted",
    "make_synthesizer",
    "peek_method",
    "register_backend",
    "resolve_backend",
    "route",
]
