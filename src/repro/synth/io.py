"""The shared fitted-artifact file format of the synthesizer layer.

Every non-Kamino backend persists its fitted state as a ``repro.synth/1``
payload: one ``.npz`` holding a JSON manifest (``manifest.json``) whose
tree may reference numpy arrays stored alongside it.  The manifest
records which backend wrote the file, so loading dispatches without the
caller naming the method.  Kamino keeps its native model format
(:mod:`repro.core.model_io`); :func:`peek_method` tells the two apart.

The payload encoder handles exactly the state baselines carry — nested
dicts/lists of JSON scalars and numpy arrays (arbitrary dtype/shape) —
with no pickling: files are loadable with ``allow_pickle=False``.
Tuples round-trip as lists; backends re-tuple on load where it matters.
"""

from __future__ import annotations

import json
import zipfile

import numpy as np

from repro.core.model_io import ModelFormatError, atomic_savez

#: Format tag of the synth payload manifest.
FORMAT_TAG = "repro.synth/1"

_ARRAY_KEY = "__array__"


def _encode(node, arrays: dict):
    """Replace every ndarray in the tree with an npz slot reference."""
    if isinstance(node, np.ndarray):
        slot = f"arr{len(arrays)}"
        arrays[slot] = node
        return {_ARRAY_KEY: slot}
    if isinstance(node, dict):
        if _ARRAY_KEY in node:
            raise ValueError(f"payload dicts may not use the reserved "
                             f"key {_ARRAY_KEY!r}")
        return {str(k): _encode(v, arrays) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_encode(v, arrays) for v in node]
    if isinstance(node, (np.integer,)):
        return int(node)
    if isinstance(node, (np.floating,)):
        return float(node)
    if isinstance(node, (np.bool_,)):
        return bool(node)
    if node is None or isinstance(node, (str, int, float, bool)):
        return node
    raise TypeError(f"payload cannot encode {type(node).__name__}")


def _decode(node, data):
    if isinstance(node, dict):
        if set(node) == {_ARRAY_KEY}:
            return data[node[_ARRAY_KEY]]
        return {k: _decode(v, data) for k, v in node.items()}
    if isinstance(node, list):
        return [_decode(v, data) for v in node]
    return node


def save_payload(path: str, method: str, state: dict) -> None:
    """Write a fitted backend's ``state`` tree as a synth payload."""
    arrays: dict[str, np.ndarray] = {}
    manifest = {
        "format": FORMAT_TAG,
        "method": str(method),
        "state": _encode(state, arrays),
    }
    arrays["manifest.json"] = np.array(json.dumps(manifest))
    atomic_savez(path, arrays)


def load_payload(path: str) -> tuple[str, dict]:
    """Read a synth payload; returns ``(method, state)``.

    Corrupt or truncated files raise
    :class:`~repro.core.model_io.ModelFormatError` naming the file and
    the failing section.
    """
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (OSError, zipfile.BadZipFile, ValueError, EOFError) as exc:
        raise ModelFormatError(path, "container", str(exc)) from exc
    with data:
        if "manifest.json" not in data.files:
            raise ValueError(
                f"{path} is not a synth payload (no manifest.json); "
                f"Kamino model files load via FittedKamino.load")
        try:
            manifest = json.loads(str(data["manifest.json"]))
        except json.JSONDecodeError as exc:
            raise ModelFormatError(path, "manifest",
                                   f"bad JSON: {exc}") from exc
        if manifest.get("format") != FORMAT_TAG:
            raise ValueError(f"unsupported synth payload format "
                             f"{manifest.get('format')!r}")
        try:
            return manifest["method"], _decode(manifest["state"], data)
        except (KeyError, zipfile.BadZipFile) as exc:
            raise ModelFormatError(path, "state arrays",
                                   str(exc)) from exc


def is_synth_payload(path: str) -> bool:
    """True when ``path`` is a ``repro.synth/1`` payload file."""
    return peek_method(path) is not None


def peek_method(path: str) -> str | None:
    """The backend name recorded in a synth payload, else ``None``.

    ``None`` covers both native Kamino model files and anything
    unreadable — callers fall back to the Kamino loader, whose errors
    are the informative ones.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            if "manifest.json" not in data.files:
                return None
            manifest = json.loads(str(data["manifest.json"]))
    except (OSError, ValueError, zipfile.BadZipFile, KeyError):
        return None
    if manifest.get("format") != FORMAT_TAG:
        return None
    return manifest.get("method")
