"""The per-dataset method router: which backend should synthesize this?

The comparative-study literature's point (and this repo's experiments)
is that method choice is a routing decision, not a constant: Kamino's
tuple-by-tuple sampling is the only backend that *enforces* denial
constraints, but it pays a per-tuple price; marginal-based synthesis is
cheap and accurate on wide low-constraint tables; a Bayesian network is
the safe default in between.  :func:`route` encodes that decision so
``--method auto`` (and the future serve daemon) can pick per dataset.
"""

from __future__ import annotations

#: Attribute count at and beyond which a constraint-free table routes
#: to the marginal backend (measure + infer scales with the number of
#: low-order marginals, not with tuple interactions).
WIDE_TABLE_WIDTH = 10


def route(table=None, dcs=(), *, constraints_present: bool | None = None,
          width: int | None = None,
          wide_width: int = WIDE_TABLE_WIDTH) -> str:
    """Pick a backend name for a dataset.

    The decision needs only two facts, each either derived from
    ``table``/``dcs`` or passed explicitly (so callers can route from a
    schema description without materialising data):

    * ``constraints_present`` — any denial constraints?  Then only the
      constraint-aware backend preserves them: ``kamino``.
    * ``width`` — attribute count.  Wide (``>= wide_width``)
      low-constraint tables route to the marginal backend
      (``nist_mst``); narrower ones to ``privbayes``, whose network
      search is exponential-ish in parent sets but strong at small
      width.

    Returns a registry name; resolve it via
    :func:`repro.synth.registry.make_synthesizer`.
    """
    if constraints_present is None:
        constraints_present = bool(list(dcs))
    if width is None:
        if table is not None:
            width = len(table.relation.names)
    if constraints_present:
        return "kamino"
    if width is not None and width >= wide_width:
        return "nist_mst"
    return "privbayes"
