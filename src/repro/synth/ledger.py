"""Per-backend privacy spend accounting for the synthesizer protocol.

Every backend's ``fit`` used to split its epsilon by hand (PrivBayes'
``eps_struct = epsilon / 2.0``, the GAN/VAE calibrating one sigma for
the whole budget, ...) with no record of where the budget went.  The
:class:`BudgetLedger` makes each split an explicit, auditable
``(mechanism, epsilon, delta)`` entry: a backend *requests* its share
through :meth:`BudgetLedger.spend` and the ledger keeps the receipt.
The protocol-conformance suite asserts every backend's total recorded
spend equals its configured budget — an invariant hand-rolled splits
could silently break.

This is deliberately simpler than :class:`repro.privacy.PrivacyLedger`:
that one composes *releases against one database* tightly via RDP
curves; this one itemises *one fit's internal* budget split, where the
backend's own calibration (e.g. the RDP accountant sizing a sigma for
the whole ``(epsilon, delta)``) already guarantees the total.  Entries
here answer "which mechanism got how much", summed by plain sequential
composition.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Spend:
    """One mechanism invocation's share of the fit budget.

    ``resumed`` marks a spend that was *restored* from a fit checkpoint
    rather than executed: the budget was consumed by an earlier
    (interrupted) run and this fit re-used its output instead of
    re-spending.  Totals still count it — the epsilon is gone either
    way — but :meth:`BudgetLedger.fresh_epsilon` excludes it, which is
    how the crash-safety tests verify a resumed fit never double-spends.
    """

    mechanism: str
    epsilon: float
    delta: float = 0.0
    resumed: bool = False

    def to_dict(self) -> dict:
        return {"mechanism": self.mechanism, "epsilon": self.epsilon,
                "delta": self.delta, "resumed": self.resumed}


class BudgetLedger:
    """Ordered record of every ``(mechanism, epsilon, delta)`` spend.

    Backends call :meth:`spend` at the point they consume budget; the
    method returns the epsilon so a split reads as an assignment::

        eps_struct = ledger.spend("laplace:structure", epsilon / 2.0)
        eps_param = ledger.spend("laplace:cpt-counts", epsilon / 2.0)

    :meth:`total_epsilon` / :meth:`total_delta` report the sequential
    composition over all entries, which must equal the backend's
    configured budget (pinned by the conformance suite).
    """

    def __init__(self, entries=()):
        self.entries: list[Spend] = list(entries)

    def spend(self, mechanism: str, epsilon: float,
              delta: float = 0.0, resumed: bool = False) -> float:
        """Record one spend; returns ``epsilon`` for assignment chaining.

        ``resumed=True`` records budget restored from a checkpoint (the
        interrupted run already paid it) rather than newly consumed.
        """
        epsilon = float(epsilon)
        delta = float(delta)
        if epsilon < 0 or delta < 0:
            raise ValueError(
                f"spend({mechanism!r}) must be non-negative, got "
                f"epsilon={epsilon}, delta={delta}")
        self.entries.append(Spend(mechanism, epsilon, delta,
                                  resumed=bool(resumed)))
        return epsilon

    def extend(self, other: "BudgetLedger") -> None:
        """Absorb another ledger's entries (e.g. a wrapped backend's)."""
        self.entries.extend(other.entries)

    def total_epsilon(self) -> float:
        return sum(entry.epsilon for entry in self.entries)

    def fresh_epsilon(self) -> float:
        """Epsilon consumed by *this* run — excludes checkpoint-restored
        spends, whose budget an interrupted earlier run already paid."""
        return sum(entry.epsilon for entry in self.entries
                   if not entry.resumed)

    def total_delta(self) -> float:
        return sum(entry.delta for entry in self.entries)

    def summary(self) -> str:
        """Human-readable itemisation, one line per spend plus a total."""
        lines = ["budget ledger:"]
        for entry in self.entries:
            lines.append(f"  {entry.mechanism}: epsilon={entry.epsilon:g}"
                         + (f", delta={entry.delta:g}" if entry.delta
                            else "")
                         + (" [resumed]" if entry.resumed else ""))
        lines.append(f"  TOTAL: epsilon={self.total_epsilon():g}, "
                     f"delta={self.total_delta():g}")
        return "\n".join(lines)

    # -- persistence (embedded in the fitted-artifact payload) ---------
    def to_dict(self) -> dict:
        return {"entries": [entry.to_dict() for entry in self.entries]}

    @classmethod
    def from_dict(cls, data: dict) -> "BudgetLedger":
        return cls(Spend(raw["mechanism"], raw["epsilon"], raw["delta"],
                         resumed=raw.get("resumed", False))
                   for raw in data["entries"])

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __repr__(self) -> str:
        return (f"BudgetLedger(entries={len(self.entries)}, "
                f"epsilon={self.total_epsilon():g}, "
                f"delta={self.total_delta():g})")
