"""String-name registry of synthesis backends, with lazy imports.

The registry is the single place that knows which backends exist and
how to build them — the CLI's ``--method`` flag, the evaluation
harness, and the future serve daemon all resolve through it.  Entries
are ``"module:Class"`` strings imported only on first use, so a backend
whose optional dependency is missing (e.g. ``nist_mst`` without
networkx) costs nothing at import time and surfaces as a clear
:class:`BackendUnavailable` error — naming the backend and the missing
module — only when actually requested.
"""

from __future__ import annotations

import math
from importlib import import_module

#: The built-in backends: Kamino plus the paper's five baselines.
BACKENDS: dict[str, str] = {
    "kamino": "repro.synth.kamino:KaminoSynthesizer",
    "privbayes": "repro.baselines.privbayes:PrivBayes",
    "pategan": "repro.baselines.pategan:PateGan",
    "dpvae": "repro.baselines.dpvae:DPVae",
    "nist_mst": "repro.baselines.nist_mst:NistMst",
    "cleaning": "repro.baselines.cleaning:Cleaning",
}

#: Baselines have no non-private code path; ``epsilon=inf`` requests
#: substitute this huge finite budget (their noise scales need a
#: number), matching the evaluation harness's historical behavior.
NONPRIVATE_EPSILON = 1e6


class BackendUnavailable(RuntimeError):
    """A registered backend cannot be imported (missing optional dep)."""

    def __init__(self, name: str, reason: str):
        self.name = name
        self.reason = reason
        super().__init__(
            f"synthesis backend {name!r} is unavailable: {reason} "
            f"(install the missing dependency, or pick another backend "
            f"with --method)")


def register_backend(name: str, target: str) -> None:
    """Register (or override) a backend as a ``"module:Class"`` string."""
    if ":" not in target:
        raise ValueError(f"target must be 'module:Class', got {target!r}")
    BACKENDS[str(name)] = target


def backend_names() -> list[str]:
    """Registered backend names, registry order (Kamino first)."""
    return list(BACKENDS)


def resolve_backend(name: str):
    """Import and return the backend class for ``name``.

    Raises ``KeyError`` for unknown names and
    :class:`BackendUnavailable` when the backend's module cannot be
    imported (the registry itself never imports backends eagerly).
    """
    try:
        target = BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise KeyError(f"unknown synthesis backend {name!r}; "
                       f"registered: {known}") from None
    module_name, _, class_name = target.partition(":")
    try:
        module = import_module(module_name)
    except ImportError as exc:
        raise BackendUnavailable(name, str(exc)) from exc
    try:
        cls = getattr(module, class_name)
    except AttributeError as exc:
        raise BackendUnavailable(
            name, f"{module_name} has no attribute {class_name!r}") \
            from exc
    return cls


def available_backends() -> dict[str, str | None]:
    """Importability of every registered backend.

    Maps name → ``None`` when the backend resolves, else the reason it
    cannot (the message a ``--method`` request would fail with).
    """
    out: dict[str, str | None] = {}
    for name in BACKENDS:
        try:
            resolve_backend(name)
            out[name] = None
        except BackendUnavailable as exc:
            out[name] = exc.reason
    return out


def make_synthesizer(name: str, epsilon: float, *, delta: float = 1e-6,
                     seed: int = 0, dcs=(), **kwargs):
    """Build a backend by registry name with a uniform signature.

    ``dcs`` is forwarded only to backends that declare ``uses_dcs``
    (``kamino``, ``cleaning``); ``epsilon=inf`` is mapped to
    :data:`NONPRIVATE_EPSILON` for backends without a non-private mode.
    Extra ``kwargs`` go to the backend constructor verbatim.
    """
    cls = resolve_backend(name)
    if not math.isfinite(epsilon) and not cls.supports_infinite_epsilon:
        epsilon = NONPRIVATE_EPSILON
    if cls.uses_dcs:
        kwargs["dcs"] = dcs
    return cls(epsilon, delta=delta, seed=seed, **kwargs)


def load_fitted(path: str, relation, dcs=()):
    """Reload any fitted artifact, dispatching on the file format.

    ``repro.synth/1`` payloads carry their backend name; anything else
    is treated as a native Kamino model file.
    """
    from repro.synth.io import peek_method

    method = peek_method(path)
    if method is None:
        method = "kamino"
    cls = resolve_backend(method)
    return cls.fitted_class().load(path, relation, dcs)
