"""The staged ``fit -> fitted -> sample`` contract every backend obeys.

PR 4 split Kamino into ``Kamino.fit(table) -> FittedKamino`` plus free
post-processing draws; this module generalises that split into a
protocol the whole field of backends implements:

* :class:`Synthesizer` — an unfitted method bound to a budget
  ``(epsilon, delta)`` and a ``seed``.  :meth:`Synthesizer.fit` runs
  every budget-consuming phase once (recording each mechanism's share
  in a :class:`~repro.synth.ledger.BudgetLedger`) and returns a
* :class:`FittedSynthesizer` — the released artifact.
  :meth:`~FittedSynthesizer.sample` draws synthetic tables of any size
  at any seed without re-touching the private data or the budget;
  ``save``/``load`` persist the artifact (shared payload format, see
  :mod:`repro.synth.io`).

**Determinism contract.**  ``fit`` is a pure function of
``(table, constructor knobs)``; ``sample(n, seed)`` of
``(fitted state, n, seed)``.  ``seed=None`` resumes the rng exactly
where ``fit`` left it (the post-fit state rides on the artifact), so
``synth.fit_sample(table, n)`` — kept on every backend as the fused
convenience — is literally ``fit(table).sample(n)`` and bit-identical
to the historical fused implementations.

``trace`` threading mirrors the Kamino pipeline: ``fit`` phases are
timed via :meth:`repro.obs.trace.RunTrace.phase` (each backend names
its own phases), every draw appends a
:class:`~repro.obs.trace.SampleTrace` whose ``engine`` field is the
backend name, and tracing never touches an rng.
"""

from __future__ import annotations

import time

import numpy as np

from repro.schema.table import Table
from repro.synth.io import load_payload, save_payload
from repro.synth.ledger import BudgetLedger


#: Default rows per yielded chunk of the protocol-level
#: :meth:`FittedSynthesizer.sample_stream` fallback (matches
#: ``KaminoConfig.stream_chunk_rows``).
DEFAULT_STREAM_CHUNK_ROWS = 65536


def sliced_chunks(table: Table, relation, n: int, chunk: int):
    """Yield ``table`` as contiguous row slices of ``chunk`` rows."""
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        yield Table(relation,
                    {a: table.column(a)[lo:hi] for a in relation.names},
                    validate=False)


class Synthesizer:
    """Base class of every registered synthesis backend.

    Parameters
    ----------
    epsilon, delta:
        The fit's total privacy budget.  Backends that cannot run
        non-privately (every baseline) declare
        ``supports_infinite_epsilon = False``; the registry substitutes
        a huge finite budget for ``epsilon=inf`` requests.
    seed:
        Randomness for the whole fit + default draw.

    Class attributes subclasses set:

    ``name``
        The registry key (``"privbayes"``, ``"kamino"``, ...).
    ``uses_dcs``
        Whether the constructor takes the dataset's denial constraints
        (only the constraint-aware backends: ``kamino``, ``cleaning``).
    ``supports_infinite_epsilon``
        Whether ``epsilon=math.inf`` is a valid non-private mode.
    """

    name: str = ""
    uses_dcs: bool = False
    supports_infinite_epsilon: bool = False
    #: The :class:`FittedSynthesizer` subclass :meth:`fit` returns
    #: (used by :func:`repro.synth.registry.load_fitted` to dispatch).
    fitted_cls: type | None = None

    @classmethod
    def fitted_class(cls) -> type:
        if cls.fitted_cls is None:
            raise NotImplementedError(
                f"{cls.__name__} does not declare its fitted class")
        return cls.fitted_cls

    def __init__(self, epsilon: float, delta: float = 1e-6, seed: int = 0):
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.seed = int(seed)

    def fit(self, table: Table, *, trace=None) -> "FittedSynthesizer":
        """Run the budget-consuming phases once; returns the artifact."""
        raise NotImplementedError

    def fit_sample(self, table: Table, n: int | None = None) -> Table:
        """Fused convenience: literally ``fit(table).sample(n)``.

        Bit-identical to the historical fused implementations — the
        post-fit rng state rides on the artifact and the default draw
        resumes it.
        """
        return self.fit(table).sample(n)


class FittedSynthesizer:
    """A fitted backend: free draws, a spend ledger, and persistence.

    Subclasses implement :meth:`_sample` (the draw given a resolved rng)
    plus the ``_model_state`` / ``_from_model_state`` pair for
    persistence; everything rng- and format-shaped lives here so the
    determinism and round-trip guarantees hold uniformly.
    """

    #: Registry key of the backend that produced this artifact.
    method: str = ""
    #: Whether :meth:`sample_stream` is a true bounded-memory stream
    #: (Kamino's chunked engine) or the default chunk-a-single-shot
    #: fallback.  Surfaced per model in the serve layer's
    #: ``GET /models`` so clients know which artifacts can stream
    #: arbitrarily large draws at flat memory.
    supports_native_stream: bool = False

    def __init__(self, relation, default_n: int, seed: int,
                 ledger: BudgetLedger | None = None, rng_state=None):
        self.relation = relation
        self.default_n = int(default_n)
        self.seed = int(seed)
        #: Every (mechanism, epsilon, delta) the fit spent.
        self.ledger = ledger if ledger is not None else BudgetLedger()
        #: Post-fit rng state; ``sample(seed=None)`` resumes it so the
        #: default draw reproduces the fused ``fit_sample`` exactly.
        self.rng_state = rng_state

    # -- drawing -------------------------------------------------------
    def _sampling_rng(self, seed) -> np.random.Generator:
        if seed is not None:
            return np.random.default_rng(int(seed))
        if self.rng_state is not None:
            rng = np.random.default_rng(0)
            rng.bit_generator.state = self.rng_state
            return rng
        return np.random.default_rng(self.seed)

    def sample(self, n: int | None = None, seed: int | None = None, *,
               trace=None) -> Table:
        """Draw ``n`` synthetic rows (default: the fitted input size).

        Pure post-processing: no private data, no budget.  The draw is
        a deterministic function of ``(fitted state, n, seed)``;
        ``seed=None`` resumes the post-fit rng state (repeated default
        draws are identical to each other and to the fused
        ``fit_sample``).  ``trace`` appends one
        :class:`~repro.obs.trace.SampleTrace` under the backend name
        and never changes the output.
        """
        n_out = self.default_n if n is None else int(n)
        if n_out < 0:
            raise ValueError(f"n must be >= 0, got {n_out}")
        run = None
        if trace is not None:
            run = trace.begin_sample(self.method, n_out, seed)
        start = time.perf_counter()
        table = self._sample(n_out, self._sampling_rng(seed))
        if run is not None:
            run.finish(time.perf_counter() - start)
        return table

    def _sample(self, n: int, rng: np.random.Generator) -> Table:
        raise NotImplementedError

    def sample_stream(self, n: int | None = None, seed: int | None = None,
                      chunk_rows: int | None = None, *, trace=None):
        """Draw ``n`` rows as an iterator of :class:`Table` chunks.

        Concatenating the chunks in order is bit-identical to
        ``sample(n, seed)`` — chunking is pure output scheduling.  The
        protocol-level default materializes one single-shot draw and
        slices it (bounded *output* granularity, not bounded peak
        memory); backends with a genuinely incremental draw override
        this and set :attr:`supports_native_stream` (Kamino's blocked
        engine streams at flat memory).  ``chunk_rows`` defaults to
        :data:`DEFAULT_STREAM_CHUNK_ROWS`.
        """
        n_out = self.default_n if n is None else int(n)
        if n_out < 0:
            raise ValueError(f"n must be >= 0, got {n_out}")
        chunk = DEFAULT_STREAM_CHUNK_ROWS if chunk_rows is None \
            else int(chunk_rows)
        if chunk < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk}")
        table = self.sample(n_out, seed, trace=trace)
        return sliced_chunks(table, self.relation, n_out, chunk)

    # -- persistence ---------------------------------------------------
    def _model_state(self) -> dict:
        """Backend-specific state (JSON scalars + numpy arrays only)."""
        raise NotImplementedError

    @classmethod
    def _from_model_state(cls, state: dict, relation, dcs,
                          common: dict) -> "FittedSynthesizer":
        raise NotImplementedError

    def save(self, path: str) -> None:
        """Persist the artifact as a ``repro.synth/1`` payload.

        The schema (and any DCs) are public inputs the caller already
        persists and must supply again to :meth:`load` — exactly the
        :meth:`FittedKamino.save <repro.core.kamino.FittedKamino.save>`
        contract.
        """
        save_payload(path, self.method, {
            "common": self._common_state(),
            "model": self._model_state(),
        })

    def _common_state(self) -> dict:
        return {
            "default_n": self.default_n,
            "seed": self.seed,
            "ledger": self.ledger.to_dict(),
            "rng_state": self.rng_state,
        }

    @classmethod
    def load(cls, path: str, relation, dcs=()) -> "FittedSynthesizer":
        """Reload an artifact written by :meth:`save`.

        ``relation`` (and ``dcs`` for constraint-aware backends) are
        the public inputs the model was fitted with.
        """
        method, state = load_payload(path)
        if cls.method and method != cls.method:
            raise ValueError(
                f"{path} holds a {method!r} model, not {cls.method!r}; "
                f"load it via repro.synth.load_fitted")
        common = state["common"]
        fitted = cls._from_model_state(state["model"], relation, dcs,
                                       common)
        apply_common(fitted, common)
        return fitted


def apply_common(fitted: FittedSynthesizer, common: dict) -> None:
    """Restore the protocol-level fields a ``save`` payload carries.

    Shared with backends that nest another artifact (``cleaning``) so
    the inner fitted round-trips through the same contract.
    """
    fitted.default_n = int(common["default_n"])
    fitted.seed = int(common["seed"])
    fitted.ledger = BudgetLedger.from_dict(common["ledger"])
    fitted.rng_state = _restore_rng_state(common["rng_state"])


def _restore_rng_state(state):
    """Round-trip a ``bit_generator.state`` dict through JSON."""
    if state is None:
        return None
    # PCG64 state dicts are {str: int | {str: int}}; JSON preserves
    # arbitrary-precision ints, so the tree survives verbatim.
    return state
