"""Probabilistic database framework (§2.2).

Models a probability distribution over ordinary database instances with
denial constraints as parametric factors (Eqn. 1)::

    Pr(D)  ∝  prod_t Pr(t)  *  exp(- sum_phi w_phi |V(phi, D)|)

and provides the chain decomposition of §3.2 (Eqns. 3-6) that Kamino's
sampler walks: violations accumulate tuple-by-tuple (and, with a schema
sequence, attribute-by-attribute), so the joint factorises into per-cell
conditionals times per-cell violation penalties.
"""

from repro.probdb.model import (
    ProbabilisticDatabase,
    chain_log_potential,
    log_potential,
)

__all__ = ["ProbabilisticDatabase", "chain_log_potential", "log_potential"]
