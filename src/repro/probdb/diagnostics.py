"""Diagnostics for the probabilistic-database model and its samplers.

Two tools the paper leaves implicit:

* **MCMC convergence** — Algorithm 3's constrained MCMC re-samples
  cells "for a fixed number of times or till convergence" (Example 4).
  :class:`ChainTrace` collects the unnormalised log-score trace of a
  chain and :func:`geweke_zscore` / :func:`has_converged` give a
  concrete convergence test (Geweke's two-window mean comparison).

* **Expected violations** (Appendix A) — Theorem 2 argues a sampled
  instance violates hard DCs with probability -> 0 as weights -> inf.
  :func:`expected_new_violations` makes the finite-weight version
  computable: given per-candidate violation counts and the model's
  candidate probabilities, it returns the expected number of new
  violations one sampling step introduces, which
  :func:`expected_violation_curve` integrates over a weight grid to show
  the exponential suppression.
"""

from __future__ import annotations

import math

import numpy as np


class ChainTrace:
    """Accumulates a scalar score trace of an MCMC chain."""

    def __init__(self):
        self.scores: list[float] = []

    def record(self, score: float) -> None:
        """Append one step's (unnormalised) log score."""
        self.scores.append(float(score))

    def __len__(self) -> int:
        return len(self.scores)

    @property
    def array(self) -> np.ndarray:
        return np.asarray(self.scores, dtype=np.float64)


def geweke_zscore(trace, first: float = 0.1, last: float = 0.5) -> float:
    """Geweke (1992) convergence diagnostic.

    Compares the mean of the first ``first`` fraction of the trace with
    the mean of the last ``last`` fraction; under stationarity the
    difference, standardised by the two windows' standard errors, is
    approximately standard normal.

    Returns ``inf`` when either window has zero variance but differing
    means (a decisive non-convergence signal), and 0.0 when both windows
    are constant and equal.
    """
    x = trace.array if isinstance(trace, ChainTrace) else np.asarray(
        trace, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("trace must be 1-D")
    if not 0 < first < 1 or not 0 < last < 1 or first + last > 1:
        raise ValueError("window fractions must be in (0,1) and sum <= 1")
    if x.size < 4:
        raise ValueError("trace too short for a Geweke diagnostic")
    a = x[: max(1, int(first * x.size))]
    b = x[-max(1, int(last * x.size)):]
    mean_gap = float(a.mean() - b.mean())
    var = a.var(ddof=1) / a.size + b.var(ddof=1) / b.size if (
        a.size > 1 and b.size > 1) else 0.0
    if var <= 0:
        return 0.0 if mean_gap == 0.0 else math.inf
    return mean_gap / math.sqrt(var)


def has_converged(trace, z_threshold: float = 2.0) -> bool:
    """True if the Geweke |z| is below ``z_threshold`` (95%-ish level)."""
    return abs(geweke_zscore(trace)) < z_threshold


def effective_sample_size(trace, max_lag: int | None = None) -> float:
    """ESS via the initial-positive-sequence autocorrelation estimator.

    A chain of ``n`` perfectly independent samples returns ~``n``;
    heavy autocorrelation shrinks the value toward 1.
    """
    x = trace.array if isinstance(trace, ChainTrace) else np.asarray(
        trace, dtype=np.float64)
    n = x.size
    if n < 4:
        raise ValueError("trace too short for an ESS estimate")
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom <= 0:
        return float(n)
    max_lag = (n // 2) if max_lag is None else min(max_lag, n - 1)
    rho_sum = 0.0
    for lag in range(1, max_lag + 1):
        rho = float(np.dot(x[:-lag], x[lag:])) / denom
        if rho <= 0:
            break
        rho_sum += rho
    return n / (1.0 + 2.0 * rho_sum)


# ----------------------------------------------------------------------
# Expected-violation analysis (Appendix A, made quantitative)
# ----------------------------------------------------------------------
def constraint_adjusted_probabilities(base_probs, violation_counts,
                                      weight: float) -> np.ndarray:
    """Algorithm 3 line 10: ``P[v] ∝ p_v * exp(-w * vio_v)``.

    ``weight = math.inf`` zeroes every candidate with violations; if all
    candidates violate, the minimum-violation candidates share the mass
    (the sampler must still emit *something*, and these are the least
    bad choices).
    """
    p = np.asarray(base_probs, dtype=np.float64)
    v = np.asarray(violation_counts, dtype=np.float64)
    if p.shape != v.shape:
        raise ValueError("base_probs and violation_counts shapes differ")
    if np.any(p < 0) or np.any(v < 0):
        raise ValueError("probabilities and violation counts must be >= 0")
    if math.isinf(weight):
        mask = v == v.min()
        adjusted = np.where(mask, p, 0.0)
    else:
        adjusted = p * np.exp(-weight * v)
    total = adjusted.sum()
    if total <= 0:
        # Base model put all mass on violating candidates; fall back to
        # the minimum-violation set, uniformly.
        mask = v == v.min()
        adjusted = mask.astype(np.float64)
        total = adjusted.sum()
    return adjusted / total


def expected_new_violations(base_probs, violation_counts,
                            weight: float) -> float:
    """Expected violations introduced by one constraint-aware draw."""
    probs = constraint_adjusted_probabilities(
        base_probs, violation_counts, weight)
    v = np.asarray(violation_counts, dtype=np.float64)
    return float(np.dot(probs, v))


def expected_violation_curve(base_probs, violation_counts,
                             weights) -> list[tuple[float, float]]:
    """Evaluate :func:`expected_new_violations` over a weight grid.

    Theorem 2's qualitative claim appears as a monotone, exponentially
    decaying curve: higher weights, fewer expected violations.
    """
    return [(float(w), expected_new_violations(
        base_probs, violation_counts, w)) for w in weights]
