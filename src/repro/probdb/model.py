"""The parametric probabilistic-database model and its decomposition.

Weights are per-DC non-negative reals; ``math.inf`` encodes hard DCs
(any violation sends the instance probability to zero, matching the
paper's "infinitely large weight" treatment).
"""

from __future__ import annotations

import math

import numpy as np

from repro.constraints.violations import (
    count_violations,
    incremental_violations,
)


def log_potential(table, dcs, weights: dict) -> float:
    """``- sum_phi w_phi |V(phi, D)|`` — the log of Eqn. (1)'s factor.

    Returns ``-inf`` if a hard DC (infinite weight) has violations.
    """
    total = 0.0
    for dc in dcs:
        w = weights[dc.name]
        v = count_violations(dc, table)
        if v == 0:
            continue
        if math.isinf(w):
            return -math.inf
        total -= w * v
    return total


def chain_log_potential(table, dcs, weights: dict) -> float:
    """The same quantity accumulated tuple-by-tuple (Eqn. 3).

    Computes ``sum_i |V(phi, t_i | D_:i)|`` per DC and returns the
    weighted negative sum.  Exists to make the decomposition property
    testable: it must equal :func:`log_potential` exactly.
    """
    cols = {a: table.column(a) for a in table.relation.names}
    total = 0.0
    for dc in dcs:
        w = weights[dc.name]
        count = 0
        for i in range(table.n):
            row = {a: cols[a][i] for a in dc.attributes}
            prefix = {a: cols[a][:i] for a in dc.attributes}
            count += incremental_violations(dc, row, prefix)
        if count == 0:
            continue
        if math.isinf(w):
            return -math.inf
        total -= w * count
    return total


class ProbabilisticDatabase:
    """Pr(D) ∝ prod Pr(t) * exp(-sum w |V|), up to normalisation.

    Parameters
    ----------
    tuple_log_prob:
        Callable ``table -> (n,) array`` of per-tuple log probabilities
        under the tuple-independent part of the model.  Kamino plugs in
        the chain of learned conditionals; the uniform model
        (``lambda t: np.zeros(t.n)``) is useful in tests.
    dcs, weights:
        The constraint factors.
    """

    def __init__(self, tuple_log_prob, dcs, weights: dict):
        self.tuple_log_prob = tuple_log_prob
        self.dcs = list(dcs)
        self.weights = dict(weights)
        missing = {dc.name for dc in self.dcs} - set(self.weights)
        if missing:
            raise ValueError(f"missing weights for DCs: {sorted(missing)}")

    def log_score(self, table) -> float:
        """Unnormalised log probability of an instance."""
        potential = log_potential(table, self.dcs, self.weights)
        if math.isinf(potential):
            return -math.inf
        return float(np.sum(self.tuple_log_prob(table))) + potential

    def more_likely(self, a, b) -> bool:
        """True if instance ``a`` scores strictly higher than ``b``.

        Normalisation constants cancel, so unnormalised scores order
        instances correctly — the property Theorem 2 builds on.
        """
        return self.log_score(a) > self.log_score(b)
