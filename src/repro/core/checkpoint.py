"""Crash-safe fit checkpoints: never re-spend epsilon after a crash.

Every fit phase that touches the private instance consumes
irrecoverable privacy budget (the accountant composes each mechanism
invocation — §6 of the paper).  A crash between training and weight
learning therefore does not just lose wall-clock: a naive re-run would
pay the DP-SGD epsilon *again* against the same database.  This module
gives :meth:`repro.core.kamino.Kamino.fit` a durable notion of "this
phase already happened":

* after each phase, :class:`FitCheckpoint.save` persists one
  cumulative ``ckpt-<stage>.npz`` file — written through a tmp file +
  ``os.replace`` (:func:`repro.core.model_io.atomic_savez`) and sealed
  with a ``.sha256`` digest sidecar, so a crash mid-write can only ever
  leave an *invalid* checkpoint, never a silently truncated one;
* on the next ``fit(..., checkpoint_dir=)``, :meth:`load_latest` walks
  stages newest-first, drops anything whose digest or fit-key does not
  verify, and hands back the most advanced valid state: the phase
  outputs, the full :class:`~repro.core.params.KaminoParams`, and the
  exact pipeline-rng bit-generator state at the end of that phase.

Restoring the rng state is what makes a resumed fit *bit-identical* to
an uninterrupted one — the remaining phases consume the generator from
precisely where the interrupted run left it.

The **fit key** binds a checkpoint to the fit that wrote it: a sha256
over the persisted config fields, the private table's content digest,
and any caller-supplied known weights.  A checkpoint from a different
table, budget, or config never resumes.  ``params_override`` is a
callable and cannot be digested — only its presence is recorded, so
resuming under a *different* override with the same config is the
caller's responsibility (the restored params already reflect the
original override).

Checkpoint files are keyed by stage, not run: re-fitting over the same
directory overwrites stage by stage, and :meth:`FitCheckpoint.clear`
removes them once the fit completes (the fitted artifact supersedes
them).  The files contain model parameters derived from private data
under DP — treat them with the same care as the final model artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

import numpy as np

from repro.core.model_io import (
    ModelFormatError,
    _PERSISTED_CONFIG,
    _base_meta,
    _decode_weights,
    _encode_weights,
    _rebuild_model,
    atomic_savez,
)
from repro.core.params import KaminoParams

CKPT_FORMAT = "repro.ckpt/1"

#: Fit stages in execution order; each checkpoint is cumulative (a
#: ``dp_sgd`` checkpoint also carries the sequencing and params state).
STAGES = ("sequencing", "params", "dp_sgd", "weights")

_DIGEST_SUFFIX = ".sha256"


def table_digest(table) -> str:
    """Content digest of a table: attribute names, dtypes, and bytes."""
    digest = hashlib.sha256()
    for name in table.relation.names:
        column = np.ascontiguousarray(table.column(name))
        digest.update(name.encode())
        digest.update(str(column.dtype).encode())
        digest.update(column.tobytes())
    return digest.hexdigest()


def fit_key(config, table, known_weights=None) -> str:
    """The identity a checkpoint must match to be resumable."""
    payload = {
        "config": {f: getattr(config, f) for f in _PERSISTED_CONFIG},
        "params_override_used": config.params_override is not None,
        "table": table_digest(table),
        "known_weights": (None if known_weights is None
                          else _encode_weights(dict(known_weights))),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def _file_digest(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


@dataclasses.dataclass
class RestoredFit:
    """Everything :meth:`FitCheckpoint.load_latest` recovers."""

    stage: str
    sequence: list
    independent: list
    hyper_groups: list
    rng_state: dict
    timings: dict
    params: KaminoParams | None = None
    model: object | None = None
    hyper: object | None = None
    weights: dict | None = None


class FitCheckpoint:
    """Atomic, digest-verified, per-stage fit checkpoints."""

    def __init__(self, directory: str, key: str):
        self.directory = str(directory)
        self.key = key
        os.makedirs(self.directory, exist_ok=True)

    def path(self, stage: str) -> str:
        if stage not in STAGES:
            raise ValueError(f"unknown fit stage {stage!r}")
        return os.path.join(self.directory, f"ckpt-{stage}.npz")

    # -- writing -------------------------------------------------------
    def save(self, stage: str, *, sequence, independent, hyper,
             rng_state, timings, params=None, model=None,
             weights=None) -> str:
        """Persist the cumulative state at the end of ``stage``.

        The npz is written atomically, then sealed with a sha256
        sidecar; a crash at any point leaves either a complete sealed
        checkpoint or an unverifiable (hence ignored) one.
        """
        meta = {
            "format": CKPT_FORMAT,
            "stage": stage,
            "fit_key": self.key,
            "sequence": list(sequence),
            "independent": list(independent),
            "hyper_groups": [list(g) for g in hyper.groups],
            "rng_state": rng_state,
            "timings": {k: float(v) for k, v in timings.items()},
            "params": (None if params is None
                       else _params_to_dict(params)),
            "weights": (None if weights is None
                        else _encode_weights(dict(weights))),
            "model_meta": None,
        }
        arrays: dict[str, np.ndarray] = {}
        if model is not None:
            model_meta, arrays = _base_meta(model, weights or {},
                                            params, hyper)
            meta["model_meta"] = model_meta
        arrays["ckpt.json"] = np.array(json.dumps(meta))
        path = self.path(stage)
        atomic_savez(path, arrays)
        digest_tmp = f"{path}{_DIGEST_SUFFIX}.tmp-{os.getpid()}"
        with open(digest_tmp, "w") as handle:
            handle.write(_file_digest(path))
        os.replace(digest_tmp, path + _DIGEST_SUFFIX)
        return path

    def clear(self) -> None:
        """Remove all stage files (called when the fit completes)."""
        for stage in STAGES:
            for path in (self.path(stage),
                         self.path(stage) + _DIGEST_SUFFIX):
                try:
                    os.unlink(path)
                except OSError:
                    pass

    # -- reading -------------------------------------------------------
    def load_latest(self, relation) -> RestoredFit | None:
        """The most advanced valid checkpoint, or ``None``.

        Invalid candidates — missing/mismatched digest sidecar, a
        different fit key, unreadable bytes — are skipped, falling back
        to the next-older stage rather than failing the fit.
        """
        for stage in reversed(STAGES):
            restored = self._load_stage(stage, relation)
            if restored is not None:
                return restored
        return None

    def _load_stage(self, stage: str, relation) -> RestoredFit | None:
        path = self.path(stage)
        try:
            with open(path + _DIGEST_SUFFIX) as handle:
                expected = handle.read().strip()
            if _file_digest(path) != expected:
                return None
            with np.load(path, allow_pickle=False) as data:
                meta = json.loads(str(data["ckpt.json"]))
                if (meta.get("format") != CKPT_FORMAT
                        or meta.get("stage") != stage
                        or meta.get("fit_key") != self.key):
                    return None
                arrays = {key: data[key] for key in data.files}
        except (OSError, ValueError, KeyError, EOFError) as exc:
            del exc
            return None

        restored = RestoredFit(
            stage=stage,
            sequence=list(meta["sequence"]),
            independent=list(meta["independent"]),
            hyper_groups=[list(g) for g in meta["hyper_groups"]],
            rng_state=meta["rng_state"],
            timings=dict(meta["timings"]),
        )
        if meta["params"] is not None:
            restored.params = KaminoParams(**meta["params"])
        if meta["weights"] is not None:
            restored.weights = _decode_weights(meta["weights"])
        if meta["model_meta"] is not None:
            try:
                restored.model, hyper = _rebuild_model(
                    meta["model_meta"], arrays, relation)
            except (KeyError, ValueError, ModelFormatError):
                return None
            if hyper is not None:
                restored.hyper = hyper
        return restored


def _params_to_dict(params: KaminoParams) -> dict:
    """The *full* params state — unlike the model artifact, resume needs
    every training/weights field, not just the sampling subset."""
    return {f.name: getattr(params, f.name)
            for f in dataclasses.fields(KaminoParams)}
