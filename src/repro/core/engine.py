"""Block-scheduled vectorized sampling engine (``engine="blocked"``).

Algorithm 3 is sequential by definition: every cell's violation penalty
is counted against the prefix of already-sampled rows.  The row engine
(:mod:`repro.core.sampling`) therefore runs a Python loop per
constrained cell, and at production ``n`` the sampler is bounded by
interpreter overhead, not by the index math.  This module restructures
the same computation around two observations:

1.  **Conflict-free blocks.**  Within one column pass, a row's penalty
    only depends on prefix rows in the *same* constraint group (an FD's
    determinant group, an order DC's equality group) — groups whose
    keys are fully determined by earlier columns.  Consecutive rows
    whose group keys are pairwise disjoint cannot influence each
    other's penalties, so an entire block can be scored and drawn in
    one shot: batched candidate matrices, batched index probes
    (``probe_many`` / ``probe_block_codes`` on the violation indexes),
    and a single gumbel-argmax per block.  Columns where a group key
    cannot be determined up front (the target feeds a determinant, an
    eq-less order DC, a generic binary DC) degrade to singleton blocks
    — exactly the sequential semantics, minus the per-row rng calls.

2.  **Counter-based per-cell noise.**  All randomness comes from
    :class:`numpy.random.Philox` streams keyed by ``(seed, column,
    row-chunk)`` with a fixed per-row slot layout, so each cell reads
    the *same* uniforms no matter how rows are grouped into blocks or
    sharded across workers.  The drawn instance is a pure function of
    ``(model, DCs, weights, n, seed)`` — block size and worker count
    are scheduling details.  That property is what makes **sharded
    parallel draws** safe: ``workers=k`` fans the unconstrained-column
    row ranges out over a thread pool and stitches shards bit-identical
    to ``workers=1``.

Selection itself uses the Gumbel-max trick: ``argmax(logp - penalty +
gumbel)`` draws from exactly the normalised-product distribution of
Algorithm 3 line 10, so the blocked engine samples from the *same law*
as the row engine (its draws differ only through the rng scheme; the
``engine="row"`` config keeps the legacy stream for exact replay of
pre-engine outputs).

Entry point: :func:`synthesize_engine` — the blocked counterpart of
:func:`repro.core.sampling.synthesize`, dispatched from
:meth:`repro.core.kamino.FittedKamino.sample` via ``KaminoConfig.engine``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.hyper import HyperSpec
from repro.core.sampling import (
    _allocate_columns,
    _allocate_working,
    _append_row,
    _ColumnSampler,
    _forced_value,
    _mcmc_resample,
    _record_fd,
)
from repro.constraints.index import FDViolationIndex
from repro.constraints.violations import multi_candidate_violation_counts
from repro.schema.table import Table

#: Fixed row-chunk of the counter-based noise streams.  Part of the
#: persisted rng spec (model format v2): draws reproduce only under the
#: chunking they were made with.
NOISE_CHUNK = 2048

#: Default cap on conflict-free block length (bounds peak probe width).
MAX_BLOCK_ROWS = 512

#: Rows below which sharding an unconstrained column is not worth the
#: thread handoff.
_MIN_SHARD_ROWS = 2048

#: The rng spec persisted alongside the engine choice.
ENGINE_RNG_SPEC = {"scheme": "philox-cell", "chunk": NOISE_CHUNK}

#: Per-row uniform slots consumed by one fresh-value draw sequence.
_FRESH_TRIES = 24
#: Candidate-slot bounds mirrored from the row engine's limits:
#: ``_consistent_values`` yields at most 4 dependents + 2 order
#: endpoints per DC; ``_fresh_values`` at most 2 values per row.
_CONSISTENT_SLOTS = 6
_FRESH_SLOTS = 2

_EMPTY = np.empty(0, dtype=np.float64)


def _gumbel(u: np.ndarray) -> np.ndarray:
    """Gumbel noise from uniforms (same guards as the row engine)."""
    return -np.log(-np.log(u + 1e-300) + 1e-300)


def _box_muller(u: np.ndarray) -> np.ndarray:
    """Standard normals from uniform pairs, fixed two-per-normal.

    ``u`` has shape (B, 2d); the result has shape (B, d).  Inverse-free
    and exactly reproducible everywhere (no ziggurat, whose rejection
    loop consumes a data-dependent number of words).
    """
    d = u.shape[1] // 2
    r = np.sqrt(-2.0 * np.log(1.0 - u[:, :d]))
    return r * np.cos(2.0 * np.pi * u[:, d:])


class _CellNoise:
    """Counter-based per-cell uniform streams for one column.

    Row ``i``'s noise is row ``i % chunk`` of the ``(chunk, stride)``
    matrix drawn from the Philox stream keyed ``(seed, tag, i //
    chunk)``.  Chunks are fixed, so any row range regenerates the same
    values regardless of block boundaries or which worker asks.
    """

    def __init__(self, seed: int, tag: int, stride: int,
                 chunk: int = NOISE_CHUNK, n_rows: int | None = None):
        self.seed = seed
        self.tag = tag
        self.stride = max(int(stride), 1)
        self.chunk = int(chunk)
        self.n_rows = n_rows
        self._cache: dict[int, np.ndarray] = {}

    def _chunk_rows(self, c: int) -> np.ndarray:
        cached = self._cache.get(c)
        if cached is None:
            rows = self.chunk
            if self.n_rows is not None:
                # Generating only the needed prefix of the final chunk
                # yields the same values (Generator.random fills the
                # matrix row-major from one stream), just cheaper.
                rows = min(rows, self.n_rows - c * self.chunk)
            bitgen = np.random.Philox(
                np.random.SeedSequence([self.seed, self.tag, c]))
            cached = np.random.Generator(bitgen).random(
                (rows, self.stride))
            if len(self._cache) >= 4:
                self._cache.pop(next(iter(self._cache)))
            self._cache[c] = cached
        return cached

    def rows(self, lo: int, hi: int) -> np.ndarray:
        """The (hi - lo, stride) noise matrix for rows [lo, hi)."""
        if hi <= lo:
            return np.empty((0, self.stride))
        first, last = lo // self.chunk, (hi - 1) // self.chunk
        if first == last:
            block = self._chunk_rows(first)
            return block[lo - first * self.chunk:hi - first * self.chunk]
        parts = []
        for c in range(first, last + 1):
            block = self._chunk_rows(c)
            base = c * self.chunk
            parts.append(block[max(lo - base, 0):min(hi - base, self.chunk)])
        return np.concatenate(parts, axis=0)


@dataclass
class _Layout:
    """Per-row noise slot layout of one column."""

    kind: str          # "cat" | "num" | "numhist"
    d: int             # base candidate count (V, d, or q)
    extras: int        # worst-case appended candidates per row
    fresh_off: int     # offset of the fresh-value uniforms (or -1)
    gumbel_off: int    # offset of the gumbel slots
    stride: int

    @property
    def width(self) -> int:
        """Widest candidate vector any row can present."""
        return self.d + self.extras


def _layout_for(sampler: _ColumnSampler, j: int, base) -> _Layout:
    w = sampler.wseq[j]
    hard_binary = sum(
        1 for dc in sampler.active_at[j]
        if dc.hard and not dc.is_unary and w in dc.attributes)
    track_fresh = sampler.fresh_value_tracker(j) is not None
    if base[0] == "cat":
        d = sampler.wrel[w].domain.size
        return _Layout("cat", d, 0, -1, 0, d)
    if base[0] == "num":
        d = sampler.params.num_candidates
        value_slots = 2 * d          # box-muller pairs
    else:
        d = base[1].probs.shape[0]
        value_slots = d              # one in-bin decode uniform per bin
    extras = (_CONSISTENT_SLOTS * hard_binary
              + (_FRESH_SLOTS if track_fresh else 0))
    fresh = _FRESH_TRIES if track_fresh else 0
    gumbel_off = value_slots
    fresh_off = value_slots + d + extras if fresh else -1
    stride = value_slots + d + extras + fresh
    return _Layout(base[0], d, extras, fresh_off, gumbel_off, stride)


# ----------------------------------------------------------------------
# Unconstrained columns: fully vectorized, shardable across workers
# ----------------------------------------------------------------------
def _draw_unconstrained(sampler: _ColumnSampler, j: int, base,
                        layout: _Layout, noise: _CellNoise, cols: dict,
                        wcols: dict, lo: int, hi: int) -> None:
    w = sampler.wseq[j]
    wattr = sampler.wrel[w]
    u = noise.rows(lo, hi)
    if layout.kind == "cat":
        codes = np.argmax(base[1][lo:hi] + _gumbel(u[:, :layout.d]), axis=1)
        wcols[w][lo:hi] = codes
        if sampler.hyper.is_hyper(w):
            for attr, values in sampler.hyper.decode_codes(w, codes).items():
                cols[attr][lo:hi] = values
    elif layout.kind == "num":
        d = layout.d
        mu, sigma = base[1][lo:hi], base[2][lo:hi]
        z = _box_muller(u[:, :2 * d])
        cand = sampler.snap(
            w, wattr.domain.clip(mu[:, None] + sigma[:, None] * z))
        logp = -0.5 * ((cand - mu[:, None]) / sigma[:, None]) ** 2
        pick = np.argmax(
            logp + _gumbel(u[:, layout.gumbel_off:layout.gumbel_off + d]),
            axis=1)
        wcols[w][lo:hi] = cand[np.arange(hi - lo), pick]
    else:
        hist = base[1]
        q = layout.d
        logp = hist.log_prob_codes()[None, :]
        bins = np.argmax(
            logp + _gumbel(u[:, layout.gumbel_off:layout.gumbel_off + q]),
            axis=1)
        edges = hist.quantizer.edges
        dec = u[np.arange(hi - lo), bins]
        values = edges[bins] + dec * (edges[bins + 1] - edges[bins])
        wcols[w][lo:hi] = sampler.snap(
            w, hist.quantizer.domain.clip(values))


def _fill_unconstrained(sampler: _ColumnSampler, j: int, base,
                        layout: _Layout, noise_key: tuple, cols: dict,
                        wcols: dict, n: int,
                        pool: ThreadPoolExecutor | None,
                        workers: int, tracer=None) -> None:
    def run(lo: int, hi: int) -> None:
        # Each shard builds its own noise view: streams are keyed by
        # fixed chunks, so regeneration is bit-identical and the shard
        # split never shows in the output.
        _draw_unconstrained(sampler, j, base, layout,
                            _CellNoise(*noise_key), cols, wcols, lo, hi)

    if pool is None or n < max(2 * _MIN_SHARD_ROWS, workers):
        if tracer is not None:
            tracer.count("shards")
        run(0, n)
        return
    bounds = np.linspace(0, n, workers + 1).astype(int)
    spans = [(int(bounds[k]), int(bounds[k + 1]))
             for k in range(workers) if bounds[k] < bounds[k + 1]]
    if tracer is not None:
        tracer.count("shards", len(spans))
    list(pool.map(lambda se: run(se[0], se[1]), spans))


# ----------------------------------------------------------------------
# Constrained columns: conflict-aware blocks
# ----------------------------------------------------------------------
def _conflict_keys(sampler: _ColumnSampler, j: int) -> list | None:
    """Per-DC group-key attribute tuples, or None for conflict-all.

    A column can be block-scheduled only when every active non-unary DC
    has a group key (FD determinant / order equality attributes) fully
    determined by earlier positions and untouched by the target —
    otherwise any candidate could move a row into any group and every
    pair of rows potentially interacts.
    """
    w = sampler.wseq[j]
    if sampler.hyper.is_hyper(w):
        target_attrs = set(sampler.hyper.original_attrs(w))
    else:
        target_attrs = {w}
    earlier = sampler.covered_after[j - 1] if j > 0 else set()
    specs = []
    for dc in sampler.active_at[j]:
        if dc.is_unary:
            continue  # penalties depend on the row alone: no conflicts
        fd = dc.as_fd()
        if fd is not None:
            key = tuple(fd[0])
        else:
            shape = dc.as_conditional_order()
            if shape is None or not shape[0]:
                return None  # generic binary / eq-less order: one group
            key = tuple(shape[0])
        if any(a in target_attrs for a in key) or not set(key) <= earlier:
            return None
        specs.append(key)
    return specs


def _conflict_blocks(specs: list, cols: dict, n: int, max_block: int):
    """Greedy partition of 0..n into conflict-free consecutive blocks."""
    if not specs:
        # Only unary DCs: rows never interact; cap block width anyway to
        # bound the penalty-matrix memory.
        for lo in range(0, n, max_block):
            yield (lo, min(lo + max_block, n))
        return
    key_rows = []
    for s, key in enumerate(specs):
        columns = [cols[a].tolist() for a in key]
        key_rows.append(list(zip(*columns)) if len(columns) > 1
                        else columns[0])
    seen: set = set()
    start = 0
    for i in range(n):
        row_keys = [(s, key_rows[s][i]) for s in range(len(specs))]
        if (i - start) >= max_block or any(k in seen for k in row_keys):
            yield (start, i)
            seen.clear()
            start = i
        seen.update(row_keys)
    if n > start:
        yield (start, n)


class _ColumnPass:
    """Shared state of one constrained column pass."""

    def __init__(self, sampler: _ColumnSampler, j: int, base,
                 layout: _Layout, noise: _CellNoise, cols: dict,
                 wcols: dict, fd_indexes: list, tracer=None):
        self.sampler = sampler
        self.j = j
        self.base = base
        self.layout = layout
        self.noise = noise
        self.cols = cols
        self.wcols = wcols
        self.fd_indexes = fd_indexes
        self.w = sampler.wseq[j]
        self.vio = sampler.violation_indexes_for(j)
        self.tracer = tracer
        if tracer is not None:
            # Route every index probe into the column's probe counters;
            # constrained passes are single-threaded, so a plain dict
            # is race-free.
            for index in self.vio.values():
                index.counters = tracer.probes
        self.used = sampler.fresh_value_tracker(j)
        self.active = sampler.active_at[j]
        if layout.kind == "cat":
            codes = np.arange(layout.d, dtype=np.int64)
            if sampler.hyper.is_hyper(self.w):
                self.decoded = sampler.hyper.decode_codes(self.w, codes)
                self.decoded_is_codes = False
            else:
                self.decoded = {self.w: codes}
                self.decoded_is_codes = True
        else:
            self.decoded = None
            self.decoded_is_codes = False
        self._active_specs = [
            (dc, sampler.weight_of(dc),
             tuple(a for a in (self.decoded or {}) if a in dc.attributes))
            for dc in self.active]
        self._chunk_cache: dict[int, tuple] = {}
        self._n_rows = next(iter(cols.values())).shape[0]

    # -- penalties -----------------------------------------------------
    def _penalty(self, rows: np.ndarray, target_values,
                 per_row_tv: list | None,
                 prefix_upto: int | None = None) -> np.ndarray:
        """(B, width) weighted violation counts for the scored rows.

        ``target_values`` is the shared candidate decode (categorical)
        or None; ``per_row_tv`` lists per-row candidate dicts
        (numerical).  Probes go through the violation indexes
        (``probe_many``); DCs without one fall back to the scan engine
        — over the prefix ``[:prefix_upto]`` (the block start, matching
        the index state) or each row's own prefix when None.  Counts
        agree bit for bit, so ``use_violation_index`` never changes the
        draw.
        """
        cols = self.cols
        width = (next(iter(target_values.values())).shape[0]
                 if target_values is not None
                 else per_row_tv[0][self.w].shape[0])
        penalty = np.zeros((rows.shape[0], width))
        for dc, weight, tattrs in self._active_specs:
            fast = None
            if target_values is not None:
                fast = self._fd_block_counts(dc, tattrs, rows,
                                             target_values)
            if fast is not None:
                penalty += weight * fast
                continue
            if target_values is not None:
                tv = {a: target_values[a] for a in tattrs}
                tv_arg = tv
            else:
                tv_arg = [{a: v for a, v in row_tv.items()
                           if a in dc.attributes}
                          for row_tv in per_row_tv]
                tv = tv_arg[0]
            ctx_attrs = [a for a in dc.attributes if a not in tv]
            contexts = [{a: cols[a][i] for a in ctx_attrs} for i in rows]
            counts = None
            index = self.vio.get(dc.name)
            if index is not None:
                counts = index.probe_many(tv_arg, contexts)
            if counts is None:
                counts = np.vstack([
                    multi_candidate_violation_counts(
                        dc,
                        tv_arg if isinstance(tv_arg, dict) else tv_arg[r],
                        contexts[r],
                        {a: cols[a][:(prefix_upto if prefix_upto
                                      is not None else i)]
                         for a in dc.attributes})
                    for r, i in enumerate(rows)])
            penalty += weight * counts
        return penalty

    def _fd_block_counts(self, dc, tattrs: tuple, rows: np.ndarray,
                         target_values: dict) -> np.ndarray | None:
        """Vectorized block counts for the two hot FD probe layouts.

        Dependent-target (determinant known): one histogram subtraction
        per row via ``probe_block_codes``.  Determinant-target (single
        determinant attribute, dependent known): one det-major cache
        subtraction per row via ``probe_det_codes``.  None on any other
        layout — the caller takes the generic path.
        """
        index = self.vio.get(dc.name)
        if not isinstance(index, FDViolationIndex) \
                or not self.decoded_is_codes:
            return None
        cols, size = self.cols, self.layout.d
        if tattrs == (index.dependent,):
            det_cols = [cols[a][rows].tolist() for a in index.determinant]
            if len(det_cols) == 1:
                keys = [(v,) for v in det_cols[0]]
            else:
                keys = list(zip(*det_cols))
            return index.probe_block_codes(keys, size)
        if (len(index.determinant) == 1
                and tattrs == (index.determinant[0],)):
            deps = cols[index.dependent][rows].tolist()
            out = np.empty((rows.shape[0], size), dtype=np.int64)
            for r, dep in enumerate(deps):
                counts = index.probe_det_codes(dep, size)
                if counts is None:
                    return None
                out[r] = counts
            return out
        return None

    # -- scoring -------------------------------------------------------
    def _pen_at(self, i: int, pick: int) -> float:
        """Row ``i``'s penalty at candidate ``pick`` vs the live state.

        Same per-DC accumulation order (and hence bitwise-identical
        float result) as :meth:`_penalty` restricted to one candidate,
        so equality against the block-start matrix entry means "nothing
        this row depends on changed".
        """
        total = 0.0
        cols = self.cols
        for dc, weight, tattrs in self._active_specs:
            row = {a: cols[a][i] for a in dc.attributes if a not in tattrs}
            for a in tattrs:
                row[a] = self.decoded[a][pick]
            counts = None
            index = self.vio.get(dc.name)
            if index is not None:
                counts = index.candidate_counts(None, row)
            if counts is None:
                tv = {a: self.decoded[a][pick:pick + 1] for a in tattrs}
                context = {a: row[a] for a in dc.attributes
                           if a not in tattrs}
                counts = multi_candidate_violation_counts(
                    dc, tv, context,
                    {a: cols[a][:i] for a in dc.attributes})
            total += weight * counts[0]
        return total

    def _rescore_cat_row(self, i: int, logp_row: np.ndarray,
                         g_row: np.ndarray) -> int:
        """Sequential-exact re-score of one row against the live state."""
        rows = np.asarray([i], dtype=np.int64)
        penalty = self._penalty(rows, self.decoded, None)[0]
        return int(np.argmax(logp_row - penalty + g_row))

    def _write_cat(self, i: int, pick: int) -> None:
        self.wcols[self.w][i] = pick
        if self.sampler.hyper.is_hyper(self.w):
            for attr, values in self.decoded.items():
                self.cols[attr][i] = values[pick]

    def fill_cat(self, n: int, max_block: int) -> None:
        """Optimistic fixed blocks with per-row validation (cat target).

        Every block is scored in one shot against the block-start index
        state; rows are then validated in order against the live state.
        A row is kept iff its picked candidate's penalty is unchanged —
        exact, because in-block penalties are monotone nondecreasing
        (groups only grow), so other candidates' scores can only have
        fallen and the original first-index argmax still wins.  Rows
        that fail the check (an earlier in-block row entered one of
        their groups disruptively) are re-scored sequentially with the
        same per-cell noise, which is exactly the singleton-block
        computation.

        Columns whose active DCs are all FD-shaped (plus any unary) run
        the allocation-free pair-probe lane; anything else goes through
        the generic probe machinery.  Both lanes produce the same draws
        for any block size.
        """
        specs = self._fd_lane_specs()
        if self.tracer is not None:
            self.tracer.mode = ("cat-fd-lane" if specs is not None
                                else "cat-generic")
        if specs is not None:
            self._fill_cat_fd_lane(n, max_block, specs)
        else:
            self._fill_cat_generic(n, max_block)

    def _fill_cat_generic(self, n: int, max_block: int) -> None:
        cols, w = self.cols, self.w
        tracer = self.tracer
        V = self.layout.d
        for lo in range(0, n, max_block):
            hi = min(lo + max_block, n)
            if tracer is not None:
                tracer.observe_block(hi - lo)
            rows = np.arange(lo, hi, dtype=np.int64)
            u = self.noise.rows(lo, hi)
            logp = self.base[1][lo:hi]
            g = _gumbel(u[:, :V])
            penalty = self._penalty(rows, self.decoded, None,
                                    prefix_upto=lo)
            picks = np.argmax(logp - penalty + g, axis=1)
            for i in range(lo, hi):
                r = i - lo
                if self.fd_indexes:
                    forced = _forced_value(self.fd_indexes, cols, i)
                    if forced is not None:
                        if tracer is not None:
                            tracer.count("forced_rows")
                        self.wcols[w][i] = forced
                        self._fold_row(i)
                        continue
                pick = int(picks[r])
                if self._pen_at(i, pick) != penalty[r, pick]:
                    if tracer is not None:
                        tracer.count("rescored_rows")
                    pick = self._rescore_cat_row(i, logp[r], g[r])
                self._write_cat(i, pick)
                self._fold_row(i)

    def _fd_lane_specs(self) -> list | None:
        """Per-DC ``(weight, index, mode, source_attrs)`` for the pure-
        FD fast lane, or None when any active non-unary DC doesn't fit
        (no index, non-FD shape, hyper target, composite det target).
        """
        if not self.decoded_is_codes:
            return None
        specs = []
        for dc, weight, tattrs in self._active_specs:
            if dc.is_unary:
                continue
            index = self.vio.get(dc.name)
            if not isinstance(index, FDViolationIndex):
                return None
            if tattrs == (index.dependent,):
                specs.append((weight, index, "dep", index.determinant))
            elif (len(index.determinant) == 1
                    and tattrs == (index.determinant[0],)):
                specs.append((weight, index, "det", (index.dependent,)))
            else:
                return None
        return specs

    def _unary_penalty(self, lo: int, hi: int) -> np.ndarray | None:
        """(B, V) weighted unary counts (prefix-independent), or None."""
        unary = [(dc, wt) for dc, wt, _ in self._active_specs
                 if dc.is_unary]
        if not unary:
            return None
        cols, V = self.cols, self.layout.d
        penalty = np.zeros((hi - lo, V))
        for dc, weight in unary:
            tv = {a: self.decoded[a] for a in dc.attributes
                  if a in self.decoded}
            ctx_attrs = [a for a in dc.attributes if a not in tv]
            counts = np.vstack([
                multi_candidate_violation_counts(
                    dc, tv, {a: cols[a][i] for a in ctx_attrs}, {})
                for i in range(lo, hi)])
            penalty += weight * counts
        return penalty

    def _fill_cat_fd_lane(self, n: int, max_block: int,
                          specs: list) -> None:
        """The hot lane: FD-only columns, integer-exact validation.

        Per block: one vectorized probe per DC, one gumbel-argmax; per
        row: O(1) pair probes to validate, O(1) pair appends to fold.
        Validation compares raw per-DC counts (integers), so keep/
        rescore decisions carry no float subtleties at all.
        """
        cols, w = self.cols, self.w
        tracer = self.tracer
        V = self.layout.d
        logp_all = self.base[1]
        for lo in range(0, n, max_block):
            hi = min(lo + max_block, n)
            B = hi - lo
            if tracer is not None:
                tracer.observe_block(B)
            u = self.noise.rows(lo, hi)
            g = _gumbel(u[:, :V])
            scores = logp_all[lo:hi] + g
            per_dc = []
            for weight, index, mode, src in specs:
                if mode == "dep":
                    src_cols = [cols[a][lo:hi].tolist() for a in src]
                    keys = ([(v,) for v in src_cols[0]]
                            if len(src_cols) == 1 else
                            list(zip(*src_cols)))
                    counts = index.probe_block_codes(keys, V)
                    per_dc.append((weight, index, mode, keys, counts))
                else:
                    deps = cols[src[0]][lo:hi].tolist()
                    counts = np.empty((B, V), dtype=np.int64)
                    for r, dep in enumerate(deps):
                        index.probe_det_codes(dep, V, out=counts[r])
                    per_dc.append((weight, index, mode, deps, counts))
                scores -= weight * counts
            pen_unary = self._unary_penalty(lo, hi)
            if pen_unary is not None:
                scores -= pen_unary
            picks = np.argmax(scores, axis=1).tolist()
            for r in range(B):
                i = lo + r
                if self.fd_indexes:
                    forced = _forced_value(self.fd_indexes, cols, i)
                    if forced is not None:
                        if tracer is not None:
                            tracer.count("forced_rows")
                        self.wcols[w][i] = forced
                        pick = int(cols[w][i])
                        for weight, index, mode, side, counts in per_dc:
                            if mode == "dep":
                                index.add_pair(side[r], pick)
                            else:
                                index.add_pair((pick,), side[r])
                        _record_fd(self.fd_indexes, cols, i)
                        continue
                pick = picks[r]
                valid = True
                for weight, index, mode, side, counts in per_dc:
                    now = (index.probe_pair(side[r], pick)
                           if mode == "dep"
                           else index.probe_pair((pick,), side[r]))
                    if now != counts[r, pick]:
                        valid = False
                        break
                if not valid:
                    # Re-score vs the live state, same op order as the
                    # block pass so kept and re-scored rows are the
                    # same computation at B=1.
                    if tracer is not None:
                        tracer.count("rescored_rows")
                    s = logp_all[i] + g[r]
                    for weight, index, mode, side, counts in per_dc:
                        if mode == "dep":
                            c = index.probe_block_codes([side[r]], V)[0]
                        else:
                            c = index.probe_det_codes(side[r], V)
                        s = s - weight * c
                    if pen_unary is not None:
                        s = s - pen_unary[r]
                    pick = int(np.argmax(s))
                self.wcols[w][i] = pick
                for weight, index, mode, side, counts in per_dc:
                    if mode == "dep":
                        index.add_pair(side[r], pick)
                    else:
                        index.add_pair((pick,), side[r])
                _record_fd(self.fd_indexes, cols, i)

    def _fold_row(self, i: int) -> None:
        _record_fd(self.fd_indexes, self.cols, i)
        _append_row(self.vio, self.cols, i)
        if self.used is not None:
            self.used.add(float(self.cols[self.w][i]))

    def _base_candidates(self, lo: int, hi: int):
        """(cand, logp) base candidate matrices for rows [lo, hi).

        The d base candidates of a numerical target depend only on the
        row's conditional and its noise slots — never on the sampled
        prefix — so they are computed in noise-chunk-sized vectorized
        batches and cached, independent of how the scheduler groups
        rows.
        """
        chunk = self.noise.chunk
        first, last = lo // chunk, (hi - 1) // chunk
        parts = [self._base_chunk(c) for c in range(first, last + 1)]
        base = first * chunk
        if len(parts) == 1:
            cand, logp = parts[0]
            return cand[lo - base:hi - base], logp[lo - base:hi - base]
        cand = np.concatenate([p[0] for p in parts], axis=0)
        logp = np.concatenate([p[1] for p in parts], axis=0)
        return cand[lo - base:hi - base], logp[lo - base:hi - base]

    def _base_chunk(self, c: int):
        cached = self._chunk_cache.get(c)
        if cached is not None:
            return cached
        sampler, layout = self.sampler, self.layout
        w = self.w
        wattr = sampler.wrel[w]
        d = layout.d
        lo = c * self.noise.chunk
        hi = min(lo + self.noise.chunk, self._n_rows)
        u = self.noise.rows(lo, hi)
        if layout.kind == "num":
            mu, sigma = self.base[1][lo:hi], self.base[2][lo:hi]
            z = _box_muller(u[:, :2 * d])
            cand = sampler.snap(
                w, wattr.domain.clip(mu[:, None] + sigma[:, None] * z))
            logp = -0.5 * ((cand - mu[:, None]) / sigma[:, None]) ** 2
        else:
            hist = self.base[1]
            edges = hist.quantizer.edges
            dec = u[:, :d]
            raw = edges[:-1][None, :] + dec * np.diff(edges)[None, :]
            cand = sampler.snap(w, hist.quantizer.domain.clip(raw))
            logp = np.broadcast_to(hist.log_prob_codes()[None, :],
                                   (hi - lo, d)).copy()
        if len(self._chunk_cache) >= 2:
            self._chunk_cache.pop(next(iter(self._chunk_cache)))
        self._chunk_cache[c] = (cand, logp)
        return cand, logp

    def _score_numeric(self, rows: np.ndarray, u: np.ndarray,
                       lo: int) -> None:
        sampler, layout = self.sampler, self.layout
        w, cols = self.w, self.cols
        d, width = layout.d, layout.width
        sel = rows - lo
        B = rows.shape[0]
        hi = int(rows[-1]) + 1
        cand_all, logp_all = self._base_candidates(lo, hi)
        cand, logp = cand_all[sel], logp_all[sel]
        cmat = np.empty((B, width))
        cmat[:, :d] = cand
        if width > d:
            cmat[:, d:] = cand[:, :1]  # valid pad, masked by -inf below
        lpm = np.full((B, width), -np.inf)
        lpm[:, :d] = logp
        if layout.extras:
            for r, i in enumerate(rows):
                extra = sampler._consistent_values(self.j, w, cols, int(i),
                                                   indexes=self.vio)
                fresh = np.empty(0)
                if layout.fresh_off >= 0:
                    fresh = sampler._fresh_values(
                        self.j, w, cols, int(i), used=self.used,
                        uniforms=u[i - lo][layout.fresh_off:
                                           layout.fresh_off + _FRESH_TRIES])
                added = np.concatenate([extra, fresh])
                k = added.shape[0]
                if not k:
                    continue
                cmat[r, d:d + k] = added
                if layout.kind == "num":
                    lpm[r, d:d + k] = (-0.5 * ((added - self.base[1][i])
                                               / self.base[2][i]) ** 2)
                else:
                    hist = self.base[1]
                    lpm[r, d:d + k] = hist.log_prob_codes()[
                        hist.quantizer.encode(added)]
        per_row_tv = [{w: cmat[r]} for r in range(B)]
        penalty = self._penalty(rows, None, per_row_tv, prefix_upto=lo)
        g = _gumbel(u[sel][:, layout.gumbel_off:layout.gumbel_off + width])
        pick = np.argmax(lpm - penalty + g, axis=1)
        self.wcols[w][rows] = cmat[np.arange(B), pick]

    # -- sequential numeric driver (conflict-all columns) --------------
    def fill_numeric_sequential(self, n: int) -> None:
        """Per-row pass for columns whose rows all potentially interact
        (eq-less order DCs, determinant-feeding targets, generic binary
        DCs).  Candidates and noise still come from the vectorized
        chunk machinery; only extras, penalty probes, and the argmax
        run per row — strictly less per-row Python than the row engine
        (no per-row rng, no normalise-and-choice).
        """
        sampler, layout = self.sampler, self.layout
        w, cols = self.w, self.cols
        tracer = self.tracer
        if tracer is not None:
            tracer.count("sequential_rows", n)
        d = layout.d
        j = self.j
        gum_off, fresh_off = layout.gumbel_off, layout.fresh_off
        hist = self.base[1] if layout.kind == "numhist" else None
        for i in range(n):
            if self.fd_indexes:
                forced = _forced_value(self.fd_indexes, cols, i)
                if forced is not None:
                    if tracer is not None:
                        tracer.count("forced_rows")
                    self.wcols[w][i] = forced
                    self._fold_row(i)
                    continue
            cand_base, logp_base = self._base_candidates(i, i + 1)
            cand, logp = cand_base[0], logp_base[0]
            u_row = self.noise.rows(i, i + 1)[0]
            if layout.extras:
                extra = sampler._consistent_values(j, w, cols, i,
                                                   indexes=self.vio)
                fresh = _EMPTY
                if fresh_off >= 0:
                    fresh = sampler._fresh_values(
                        j, w, cols, i, used=self.used,
                        uniforms=u_row[fresh_off:fresh_off + _FRESH_TRIES])
                if extra.size or fresh.size:
                    added = np.concatenate([extra, fresh])
                    cand = np.concatenate([cand, added])
                    if layout.kind == "num":
                        added_lp = (-0.5 * ((added - self.base[1][i])
                                            / self.base[2][i]) ** 2)
                    else:
                        added_lp = hist.log_prob_codes()[
                            hist.quantizer.encode(added)]
                    logp = np.concatenate([logp, added_lp])
            k = cand.shape[0]
            pen = None
            for dc, weight, _ in self._active_specs:
                tv = {w: cand}
                context = {a: cols[a][i] for a in dc.attributes if a != w}
                counts = None
                index = self.vio.get(dc.name)
                if index is not None:
                    counts = index.candidate_counts(tv, context)
                if counts is None:
                    counts = multi_candidate_violation_counts(
                        dc, tv, context,
                        {a: cols[a][:i] for a in dc.attributes})
                pen = (weight * counts if pen is None
                       else pen + weight * counts)
            g = _gumbel(u_row[gum_off:gum_off + k])
            scores = logp + g if pen is None else logp - pen + g
            pick = int(np.argmax(scores))
            self.wcols[w][i] = cand[pick]
            self._fold_row(i)

    # -- block driver (numerical targets) ------------------------------
    def process_block(self, lo: int, hi: int) -> None:
        cols, w = self.cols, self.w
        tracer = self.tracer
        if tracer is not None:
            tracer.observe_block(hi - lo)
        score_rows = []
        if self.fd_indexes:
            for i in range(lo, hi):
                forced = _forced_value(self.fd_indexes, cols, i)
                if forced is not None:
                    if tracer is not None:
                        tracer.count("forced_rows")
                    self.wcols[w][i] = forced
                else:
                    score_rows.append(i)
        else:
            score_rows = list(range(lo, hi))
        if score_rows:
            rows = np.asarray(score_rows, dtype=np.int64)
            u = self.noise.rows(lo, hi)
            self._score_numeric(rows, u, lo)
        for i in range(lo, hi):
            self._fold_row(i)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def synthesize_engine(model, relation, dcs, weights, n: int, params,
                      seed: int, hyper: HyperSpec | None = None,
                      use_fd_lookup: bool = False,
                      use_violation_index: bool = True,
                      workers: int = 1,
                      max_block_rows: int = MAX_BLOCK_ROWS,
                      noise_chunk: int = NOISE_CHUNK,
                      trace=None) -> Table:
    """Blocked-engine counterpart of :func:`repro.core.sampling.synthesize`.

    The output is a deterministic function of the arguments — in
    particular it does **not** depend on ``workers`` or
    ``max_block_rows`` (scheduling knobs only).  ``seed`` keys every
    per-cell noise stream; ``noise_chunk`` is the persisted chunking of
    those streams (model format v2 records it so reloaded models replay
    their draws).

    ``trace`` (a :class:`repro.obs.trace.SampleTrace`) records one
    :class:`~repro.obs.trace.ColumnTrace` per working column: wall
    clock, lane (``unconstrained``/``cat-fd-lane``/``cat-generic``/
    ``num-blocked``/``num-sequential``), block sizes, re-scored/forced
    rows, and index probe counts.  Tracing reads no randomness — a
    traced draw is bit-identical to an untraced one — and ``None``
    costs nothing.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if hyper is None:
        hyper = HyperSpec.trivial(relation, model.sequence)
    master = int(seed)
    sampler = _ColumnSampler(
        model, relation, hyper, dcs, weights, params,
        rng=np.random.default_rng(0), use_fd_lookup=use_fd_lookup,
        use_violation_index=use_violation_index)
    cols = _allocate_columns(relation, n)
    wcols = _allocate_working(sampler, cols, n)

    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None
    try:
        for j in range(len(sampler.wseq)):
            col_trace = None
            if trace is not None:
                col_trace = trace.column(sampler.wseq[j])
                col_start = time.perf_counter()
            base = sampler.base_distribution(j, wcols, n)
            layout = _layout_for(sampler, j, base)
            noise_key = (master, 2 * j, layout.stride, noise_chunk, n)
            active = sampler.active_at[j]
            fd_indexes = sampler.fd_indexes_for(j)
            if not active and not fd_indexes:
                if col_trace is not None:
                    col_trace.mode = "unconstrained"
                _fill_unconstrained(sampler, j, base, layout, noise_key,
                                    cols, wcols, n, pool, workers,
                                    tracer=col_trace)
            elif n > 0:
                col = _ColumnPass(sampler, j, base, layout,
                                  _CellNoise(*noise_key), cols, wcols,
                                  fd_indexes, tracer=col_trace)
                if layout.kind == "cat":
                    # Candidates are the fixed code domain: score whole
                    # blocks optimistically, validate per row.
                    col.fill_cat(n, max_block_rows)
                else:
                    # Numerical candidates depend on the prefix (hard-DC
                    # augmentation): only schedule provably disjoint
                    # rows together.
                    specs = _conflict_keys(sampler, j)
                    if specs is None:
                        if col_trace is not None:
                            col_trace.mode = "num-sequential"
                        col.fill_numeric_sequential(n)
                    else:
                        if col_trace is not None:
                            col_trace.mode = "num-blocked"
                        for lo, hi in _conflict_blocks(specs, cols, n,
                                                       max_block_rows):
                            col.process_block(lo, hi)
            if col_trace is not None:
                col_trace.finish(time.perf_counter() - col_start, n)
            if params.mcmc_m > 0:
                # The refinement is inherently sequential; it draws from
                # its own keyed stream so the column passes above stay
                # schedule-invariant.
                sampler.rng = np.random.Generator(np.random.Philox(
                    np.random.SeedSequence([master, 2 * j + 1])))
                _mcmc_resample(sampler, j, cols, wcols, n, params.mcmc_m)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return Table(relation, cols, validate=False)
