"""Block-scheduled vectorized sampling engine (``engine="blocked"``).

Algorithm 3 is sequential by definition: every cell's violation penalty
is counted against the prefix of already-sampled rows.  The row engine
(:mod:`repro.core.sampling`) therefore runs a Python loop per
constrained cell, and at production ``n`` the sampler is bounded by
interpreter overhead, not by the index math.  This module restructures
the same computation around two observations:

1.  **Conflict-free blocks.**  Within one column pass, a row's penalty
    only depends on prefix rows in the *same* constraint group (an FD's
    determinant group, an order DC's equality group) — groups whose
    keys are fully determined by earlier columns.  Consecutive rows
    whose group keys are pairwise disjoint cannot influence each
    other's penalties, so an entire block can be scored and drawn in
    one shot: batched candidate matrices, batched index probes
    (``probe_many`` / ``probe_block_codes`` on the violation indexes),
    and a single gumbel-argmax per block.  Columns where a group key
    cannot be determined up front (the target feeds a determinant, an
    eq-less order DC, a generic binary DC) degrade to singleton blocks
    — exactly the sequential semantics, minus the per-row rng calls.

2.  **Counter-based per-cell noise.**  All randomness comes from
    :class:`numpy.random.Philox` streams keyed by ``(seed, column,
    row-chunk)`` with a fixed per-row slot layout, so each cell reads
    the *same* uniforms no matter how rows are grouped into blocks or
    sharded across workers.  The drawn instance is a pure function of
    ``(model, DCs, weights, n, seed)`` — block size and worker count
    are scheduling details.  That property is what makes **sharded
    parallel draws** safe: ``workers=k`` fans the unconstrained-column
    row ranges out over a thread pool and stitches shards bit-identical
    to ``workers=1``.

Selection itself uses the Gumbel-max trick: ``argmax(logp - penalty +
gumbel)`` draws from exactly the normalised-product distribution of
Algorithm 3 line 10, so the blocked engine samples from the *same law*
as the row engine (its draws differ only through the rng scheme; the
``engine="row"`` config keeps the legacy stream for exact replay of
pre-engine outputs).

Built on those two properties, three further execution lanes (all
bit-identical to the plain single-worker draw, pinned by
``tests/test_engine_blocked.py``):

3.  **Group-disjoint constrained sub-schedules.**  Rows in different
    determinant / equality groups provably cannot interact, so a
    constrained column whose group keys are determined up front can be
    partitioned into *group-closed* row shards (:func:`_shard_rows`,
    union-find over the per-DC group ids) and each shard run as its own
    sub-schedule with shard-local violation indexes — the same pass,
    gathered onto the shard's rows.

4.  **A process-pool lane** (``pool="process"``): shards ship to worker
    processes as compact picklable specs (row indices + gathered
    context slices + the noise key); each worker holds one
    :class:`_ColumnSampler` built from the model payload at pool init
    and recomputes its base conditional locally (the conditional is
    row-pure).  Outputs stitch back by row index — bit-identical to
    ``workers=1`` because every cell's noise is position-pure.

5.  **Streaming chunked draws** (:func:`synthesize_stream`): the same
    column passes run chunk-major with per-column state (violation
    indexes, FD lookups, used-value sets, noise streams) persisting
    across chunks, yielding bounded-memory row chunks whose
    concatenation equals the single-shot draw bit for bit.  DC shapes
    that would need the full sampled prefix raise
    :class:`~repro.core.sampling.PrefixScanRequired` instead of
    silently degrading.

Entry point: :func:`synthesize_engine` — the blocked counterpart of
:func:`repro.core.sampling.synthesize`, dispatched from
:meth:`repro.core.kamino.FittedKamino.sample` via ``KaminoConfig.engine``.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.core.hyper import HyperSpec
from repro.faults import fault_point
from repro.core.sampling import (
    PrefixScanRequired,
    _allocate_columns,
    _allocate_working,
    _append_row,
    _ColumnSampler,
    _forced_value,
    _mcmc_resample,
    _record_fd,
    synthesize as _synthesize_row,
)
from repro.constraints.index import FDViolationIndex
from repro.constraints.violations import multi_candidate_violation_counts
from repro.schema.table import Table

_LOG = logging.getLogger("repro.engine")

#: Fixed row-chunk of the counter-based noise streams.  Part of the
#: persisted rng spec (model format v2): draws reproduce only under the
#: chunking they were made with.
NOISE_CHUNK = 2048

#: Default cap on conflict-free block length (bounds peak probe width).
MAX_BLOCK_ROWS = 512

#: Rows below which sharding an unconstrained column is not worth the
#: thread handoff.
_MIN_SHARD_ROWS = 2048

#: Default row-chunk of a streaming draw (``sample_stream``); a pure
#: scheduling knob — chunk boundaries never change a cell.
STREAM_CHUNK_ROWS = 65536

#: Bounds on the per-column chunk caches (noise matrices and base
#: candidate matrices).  Small LRUs: a streaming n=10M draw touches
#: thousands of chunks but only ever needs the last few.
_NOISE_CACHE_CHUNKS = 4
_BASE_CACHE_CHUNKS = 2

#: The rng spec persisted alongside the engine choice.
ENGINE_RNG_SPEC = {"scheme": "philox-cell", "chunk": NOISE_CHUNK}

#: Per-row uniform slots consumed by one fresh-value draw sequence.
_FRESH_TRIES = 24
#: Candidate-slot bounds mirrored from the row engine's limits:
#: ``_consistent_values`` yields at most 4 dependents + 2 order
#: endpoints per DC; ``_fresh_values`` at most 2 values per row.
_CONSISTENT_SLOTS = 6
_FRESH_SLOTS = 2

_EMPTY = np.empty(0, dtype=np.float64)


def _gumbel(u: np.ndarray) -> np.ndarray:
    """Gumbel noise from uniforms (same guards as the row engine)."""
    return -np.log(-np.log(u + 1e-300) + 1e-300)


def _box_muller(u: np.ndarray) -> np.ndarray:
    """Standard normals from uniform pairs, fixed two-per-normal.

    ``u`` has shape (B, 2d); the result has shape (B, d).  Inverse-free
    and exactly reproducible everywhere (no ziggurat, whose rejection
    loop consumes a data-dependent number of words).
    """
    d = u.shape[1] // 2
    r = np.sqrt(-2.0 * np.log(1.0 - u[:, :d]))
    return r * np.cos(2.0 * np.pi * u[:, d:])


class _LRU:
    """A tiny bounded mapping with least-recently-used eviction.

    Backs the per-column chunk caches (regenerated noise matrices, base
    candidate matrices): hits move the chunk to the back, inserts evict
    from the front once ``cap`` entries are held — so long draws and
    streaming runs hold O(cap) chunks regardless of n.
    """

    __slots__ = ("cap", "_data")

    def __init__(self, cap: int):
        self.cap = int(cap)
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.cap:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


class _CellNoise:
    """Counter-based per-cell uniform streams for one column.

    Row ``i``'s noise is row ``i % chunk`` of the ``(chunk, stride)``
    matrix drawn from the Philox stream keyed ``(seed, tag, i //
    chunk)``.  Chunks are fixed, so any row range regenerates the same
    values regardless of block boundaries or which worker asks.
    """

    def __init__(self, seed: int, tag: int, stride: int,
                 chunk: int = NOISE_CHUNK, n_rows: int | None = None):
        self.seed = seed
        self.tag = tag
        self.stride = max(int(stride), 1)
        self.chunk = int(chunk)
        self.n_rows = n_rows
        self._cache = _LRU(_NOISE_CACHE_CHUNKS)

    def _chunk_rows(self, c: int) -> np.ndarray:
        cached = self._cache.get(c)
        if cached is None:
            rows = self.chunk
            if self.n_rows is not None:
                # Generating only the needed prefix of the final chunk
                # yields the same values (Generator.random fills the
                # matrix row-major from one stream), just cheaper.
                rows = min(rows, self.n_rows - c * self.chunk)
            bitgen = np.random.Philox(
                np.random.SeedSequence([self.seed, self.tag, c]))
            cached = np.random.Generator(bitgen).random(
                (rows, self.stride))
            self._cache.put(c, cached)
        return cached

    def rows(self, lo: int, hi: int) -> np.ndarray:
        """The (hi - lo, stride) noise matrix for rows [lo, hi)."""
        if hi <= lo:
            return np.empty((0, self.stride))
        first, last = lo // self.chunk, (hi - 1) // self.chunk
        if first == last:
            block = self._chunk_rows(first)
            return block[lo - first * self.chunk:hi - first * self.chunk]
        parts = []
        for c in range(first, last + 1):
            block = self._chunk_rows(c)
            base = c * self.chunk
            parts.append(block[max(lo - base, 0):min(hi - base, self.chunk)])
        return np.concatenate(parts, axis=0)


class _OffsetNoise:
    """A noise view shifted by a fixed global row offset.

    Streaming chunks (and contiguous shard specs) work on chunk-local
    arrays but every cell must read the uniforms of its *global* row —
    local row ``r`` maps to ``offset + r`` of the inner stream.
    """

    __slots__ = ("inner", "offset", "stride", "chunk")

    def __init__(self, inner, offset: int):
        self.inner = inner
        self.offset = int(offset)
        self.stride = inner.stride
        self.chunk = inner.chunk

    def rows(self, lo: int, hi: int) -> np.ndarray:
        return self.inner.rows(lo + self.offset, hi + self.offset)


class _GatherNoise:
    """A noise view over an arbitrary (sorted) global row selection.

    Group-closed shards gather non-contiguous rows; local row ``r``
    maps to global row ``rows[r]``.  Rows are fetched chunk by chunk so
    regeneration cost matches the contiguous path.
    """

    __slots__ = ("inner", "_rows", "stride", "chunk")

    def __init__(self, inner, rows: np.ndarray):
        self.inner = inner
        self._rows = np.asarray(rows, dtype=np.int64)
        self.stride = inner.stride
        self.chunk = inner.chunk

    def rows(self, lo: int, hi: int) -> np.ndarray:
        sel = self._rows[lo:hi]
        if sel.shape[0] == 0:
            return np.empty((0, self.stride))
        out = np.empty((sel.shape[0], self.stride))
        chunks = sel // self.chunk
        for c in np.unique(chunks):
            mask = chunks == c
            block = self.inner._chunk_rows(int(c))
            out[mask] = block[sel[mask] - int(c) * self.chunk]
        return out


@dataclass
class _Layout:
    """Per-row noise slot layout of one column."""

    kind: str          # "cat" | "num" | "numhist"
    d: int             # base candidate count (V, d, or q)
    extras: int        # worst-case appended candidates per row
    fresh_off: int     # offset of the fresh-value uniforms (or -1)
    gumbel_off: int    # offset of the gumbel slots
    stride: int

    @property
    def width(self) -> int:
        """Widest candidate vector any row can present."""
        return self.d + self.extras


def _layout_for(sampler: _ColumnSampler, j: int, base) -> _Layout:
    w = sampler.wseq[j]
    hard_binary = sum(
        1 for dc in sampler.active_at[j]
        if dc.hard and not dc.is_unary and w in dc.attributes)
    track_fresh = sampler.fresh_value_tracker(j) is not None
    if base[0] == "cat":
        d = sampler.wrel[w].domain.size
        return _Layout("cat", d, 0, -1, 0, d)
    if base[0] == "num":
        d = sampler.params.num_candidates
        value_slots = 2 * d          # box-muller pairs
    else:
        d = base[1].probs.shape[0]
        value_slots = d              # one in-bin decode uniform per bin
    extras = (_CONSISTENT_SLOTS * hard_binary
              + (_FRESH_SLOTS if track_fresh else 0))
    fresh = _FRESH_TRIES if track_fresh else 0
    gumbel_off = value_slots
    fresh_off = value_slots + d + extras if fresh else -1
    stride = value_slots + d + extras + fresh
    return _Layout(base[0], d, extras, fresh_off, gumbel_off, stride)


# ----------------------------------------------------------------------
# Unconstrained columns: fully vectorized, shardable across workers
# ----------------------------------------------------------------------
def _draw_unconstrained(sampler: _ColumnSampler, j: int, base,
                        layout: _Layout, noise: _CellNoise, cols: dict,
                        wcols: dict, lo: int, hi: int) -> None:
    w = sampler.wseq[j]
    wattr = sampler.wrel[w]
    u = noise.rows(lo, hi)
    if layout.kind == "cat":
        codes = np.argmax(base[1][lo:hi] + _gumbel(u[:, :layout.d]), axis=1)
        wcols[w][lo:hi] = codes
        if sampler.hyper.is_hyper(w):
            for attr, values in sampler.hyper.decode_codes(w, codes).items():
                cols[attr][lo:hi] = values
    elif layout.kind == "num":
        d = layout.d
        mu, sigma = base[1][lo:hi], base[2][lo:hi]
        z = _box_muller(u[:, :2 * d])
        cand = sampler.snap(
            w, wattr.domain.clip(mu[:, None] + sigma[:, None] * z))
        logp = -0.5 * ((cand - mu[:, None]) / sigma[:, None]) ** 2
        pick = np.argmax(
            logp + _gumbel(u[:, layout.gumbel_off:layout.gumbel_off + d]),
            axis=1)
        wcols[w][lo:hi] = cand[np.arange(hi - lo), pick]
    else:
        hist = base[1]
        q = layout.d
        logp = hist.log_prob_codes()[None, :]
        bins = np.argmax(
            logp + _gumbel(u[:, layout.gumbel_off:layout.gumbel_off + q]),
            axis=1)
        edges = hist.quantizer.edges
        dec = u[np.arange(hi - lo), bins]
        values = edges[bins] + dec * (edges[bins + 1] - edges[bins])
        wcols[w][lo:hi] = sampler.snap(
            w, hist.quantizer.domain.clip(values))


def _fill_unconstrained(sampler: _ColumnSampler, j: int, base,
                        layout: _Layout, noise_key: tuple, cols: dict,
                        wcols: dict, n: int,
                        pool: ThreadPoolExecutor | None,
                        workers: int, tracer=None) -> None:
    def run(lo: int, hi: int) -> None:
        # Each shard builds its own noise view: streams are keyed by
        # fixed chunks, so regeneration is bit-identical and the shard
        # split never shows in the output.
        _draw_unconstrained(sampler, j, base, layout,
                            _CellNoise(*noise_key), cols, wcols, lo, hi)

    if pool is None or n < max(2 * _MIN_SHARD_ROWS, workers):
        if tracer is not None:
            tracer.count("shards")
        run(0, n)
        return
    bounds = np.linspace(0, n, workers + 1).astype(int)
    spans = [(int(bounds[k]), int(bounds[k + 1]))
             for k in range(workers) if bounds[k] < bounds[k + 1]]
    if tracer is not None:
        tracer.count("shards", len(spans))
    list(pool.map(lambda se: run(se[0], se[1]), spans))


# ----------------------------------------------------------------------
# Constrained columns: conflict-aware blocks
# ----------------------------------------------------------------------
def _conflict_keys(sampler: _ColumnSampler, j: int) -> list | None:
    """Per-DC group-key attribute tuples, or None for conflict-all.

    A column can be block-scheduled only when every active non-unary DC
    has a group key (FD determinant / order equality attributes) fully
    determined by earlier positions and untouched by the target —
    otherwise any candidate could move a row into any group and every
    pair of rows potentially interacts.
    """
    w = sampler.wseq[j]
    if sampler.hyper.is_hyper(w):
        target_attrs = set(sampler.hyper.original_attrs(w))
    else:
        target_attrs = {w}
    earlier = sampler.covered_after[j - 1] if j > 0 else set()
    specs = []
    for dc in sampler.active_at[j]:
        if dc.is_unary:
            continue  # penalties depend on the row alone: no conflicts
        fd = dc.as_fd()
        if fd is not None:
            key = tuple(fd[0])
        else:
            shape = dc.as_conditional_order()
            if shape is None or not shape[0]:
                return None  # generic binary / eq-less order: one group
            key = tuple(shape[0])
        if any(a in target_attrs for a in key) or not set(key) <= earlier:
            return None
        specs.append(key)
    return specs


def _conflict_blocks(specs: list, cols: dict, n: int, max_block: int):
    """Greedy partition of 0..n into conflict-free consecutive blocks."""
    if not specs:
        # Only unary DCs: rows never interact; cap block width anyway to
        # bound the penalty-matrix memory.
        for lo in range(0, n, max_block):
            yield (lo, min(lo + max_block, n))
        return
    key_rows = []
    for s, key in enumerate(specs):
        columns = [cols[a].tolist() for a in key]
        key_rows.append(list(zip(*columns)) if len(columns) > 1
                        else columns[0])
    seen: set = set()
    start = 0
    for i in range(n):
        row_keys = [(s, key_rows[s][i]) for s in range(len(specs))]
        if (i - start) >= max_block or any(k in seen for k in row_keys):
            yield (start, i)
            seen.clear()
            start = i
        seen.update(row_keys)
    if n > start:
        yield (start, n)


# ----------------------------------------------------------------------
# Group-disjoint sub-schedules: partition rows into closed shards
# ----------------------------------------------------------------------
def _group_components(specs: list, cols: dict, n: int) -> np.ndarray:
    """Connected-component id per row under the group-key relation.

    Two rows interact iff they share a group under *some* active DC, so
    the closed units are the connected components of the union of the
    per-spec group partitions — computed with a union-find over the
    per-spec group ids (unions only over the distinct co-occurring
    pairs, not per row).
    """
    inv = []
    for key in specs:
        if len(key) == 1:
            _, ids = np.unique(cols[key[0]][:n], return_inverse=True)
        else:
            stack = np.stack([cols[a][:n] for a in key], axis=1)
            _, ids = np.unique(stack, axis=0, return_inverse=True)
        inv.append(ids.astype(np.int64))
    if len(inv) == 1:
        return inv[0]
    offsets = np.cumsum([0] + [int(ids.max()) + 1 for ids in inv[:-1]])
    parent = np.arange(offsets[-1] + int(inv[-1].max()) + 1,
                       dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    base = inv[0]
    for s in range(1, len(inv)):
        pairs = np.unique(np.stack(
            [base, inv[s] + offsets[s]], axis=1), axis=0)
        for a, b in pairs:
            ra, rb = find(int(a)), find(int(b))
            if ra != rb:
                # Deterministic: the smaller root id wins.
                if rb < ra:
                    ra, rb = rb, ra
                parent[rb] = ra
    roots = np.array([find(int(g)) for g in range(offsets[1])],
                     dtype=np.int64)
    _, comp = np.unique(roots[base], return_inverse=True)
    return comp


def _shard_rows(specs: list | None, cols: dict, n: int,
                k: int) -> list[np.ndarray] | None:
    """Partition rows 0..n into ≤ ``k`` group-closed shards, or None.

    Rows sharing a constraint group always land in the same shard, so
    shard-local sub-schedules (with shard-local indexes) compute the
    exact same penalties as the sequential pass — the partition is pure
    scheduling.  Components are balanced greedily (largest first onto
    the lightest shard; deterministic tie-breaks).  Returns None when
    sharding cannot pay off: too few rows, a single dominating
    component, or no spec structure at all (``specs is None``).
    """
    if specs is None or k <= 1 or n < max(2 * _MIN_SHARD_ROWS, k):
        return None
    if not specs:
        # Unary-only column: every row is its own component.
        bounds = np.linspace(0, n, k + 1).astype(int)
        return [np.arange(bounds[t], bounds[t + 1], dtype=np.int64)
                for t in range(k) if bounds[t] < bounds[t + 1]]
    comp = _group_components(specs, cols, n)
    sizes = np.bincount(comp)
    if int(sizes.max()) > n - _MIN_SHARD_ROWS:
        return None  # one component dominates: sharding buys nothing
    order = np.lexsort((np.arange(sizes.shape[0]), -sizes))
    load = np.zeros(k, dtype=np.int64)
    shard_of_comp = np.empty(sizes.shape[0], dtype=np.int64)
    for comp_id in order:
        t = int(np.argmin(load))  # first minimum: deterministic
        shard_of_comp[comp_id] = t
        load[t] += sizes[comp_id]
    shard_of_row = shard_of_comp[comp]
    shards = [np.flatnonzero(shard_of_row == t) for t in range(k)]
    shards = [s for s in shards if s.shape[0]]
    return shards if len(shards) > 1 else None


@dataclass
class _PassState:
    """Per-column incremental state that outlives one chunk.

    A single-shot pass creates (and discards) this implicitly; a
    streaming draw keeps one per column so the violation indexes, FD
    lookups, and used-value sets accumulate across chunks exactly as
    they would over one long pass.
    """

    vio: dict
    fd_indexes: list
    used: set | None


class _ColumnPass:
    """Shared state of one constrained column pass.

    ``state`` carries persistent per-column indexes across streaming
    chunks (None builds fresh ones — the single-shot case).  ``strict``
    raises :class:`PrefixScanRequired` instead of scanning the local
    prefix (which, in a chunk, is not the global prefix).
    ``row_offset`` is the global index of local row 0, used only for
    the "is the global prefix empty" guards of the candidate
    augmentation — never for array indexing.
    """

    def __init__(self, sampler: _ColumnSampler, j: int, base,
                 layout: _Layout, noise, cols: dict,
                 wcols: dict, fd_indexes: list | None = None,
                 tracer=None, state: _PassState | None = None,
                 strict: bool = False, row_offset: int = 0):
        self.sampler = sampler
        self.j = j
        self.base = base
        self.layout = layout
        self.noise = noise
        self.cols = cols
        self.wcols = wcols
        self.strict = strict
        self.row_offset = int(row_offset)
        self.w = sampler.wseq[j]
        if state is not None:
            self.vio = state.vio
            self.fd_indexes = state.fd_indexes
            self.used = state.used
        else:
            self.vio = sampler.violation_indexes_for(j)
            self.fd_indexes = (fd_indexes if fd_indexes is not None
                               else sampler.fd_indexes_for(j))
            self.used = sampler.fresh_value_tracker(j)
        self.tracer = tracer
        if tracer is not None:
            # Route every index probe into the column's probe counters;
            # constrained passes are single-threaded, so a plain dict
            # is race-free.
            for index in self.vio.values():
                index.counters = tracer.probes
        self.active = sampler.active_at[j]
        if layout.kind == "cat":
            codes = np.arange(layout.d, dtype=np.int64)
            if sampler.hyper.is_hyper(self.w):
                self.decoded = sampler.hyper.decode_codes(self.w, codes)
                self.decoded_is_codes = False
            else:
                self.decoded = {self.w: codes}
                self.decoded_is_codes = True
        else:
            self.decoded = None
            self.decoded_is_codes = False
        self._active_specs = [
            (dc, sampler.weight_of(dc),
             tuple(a for a in (self.decoded or {}) if a in dc.attributes))
            for dc in self.active]
        self._chunk_cache = _LRU(_BASE_CACHE_CHUNKS)
        self._n_rows = next(iter(cols.values())).shape[0]

    # -- penalties -----------------------------------------------------
    def _penalty(self, rows: np.ndarray, target_values,
                 per_row_tv: list | None,
                 prefix_upto: int | None = None) -> np.ndarray:
        """(B, width) weighted violation counts for the scored rows.

        ``target_values`` is the shared candidate decode (categorical)
        or None; ``per_row_tv`` lists per-row candidate dicts
        (numerical).  Probes go through the violation indexes
        (``probe_many``); DCs without one fall back to the scan engine
        — over the prefix ``[:prefix_upto]`` (the block start, matching
        the index state) or each row's own prefix when None.  Counts
        agree bit for bit, so ``use_violation_index`` never changes the
        draw.
        """
        cols = self.cols
        width = (next(iter(target_values.values())).shape[0]
                 if target_values is not None
                 else per_row_tv[0][self.w].shape[0])
        penalty = np.zeros((rows.shape[0], width))
        for dc, weight, tattrs in self._active_specs:
            fast = None
            if target_values is not None:
                fast = self._fd_block_counts(dc, tattrs, rows,
                                             target_values)
            if fast is not None:
                penalty += weight * fast
                continue
            if target_values is not None:
                tv = {a: target_values[a] for a in tattrs}
                tv_arg = tv
            else:
                tv_arg = [{a: v for a, v in row_tv.items()
                           if a in dc.attributes}
                          for row_tv in per_row_tv]
                tv = tv_arg[0]
            ctx_attrs = [a for a in dc.attributes if a not in tv]
            contexts = [{a: cols[a][i] for a in ctx_attrs} for i in rows]
            counts = None
            index = self.vio.get(dc.name)
            if index is not None:
                counts = index.probe_many(tv_arg, contexts)
            if counts is None:
                self._check_scan_allowed(dc)
                counts = np.vstack([
                    multi_candidate_violation_counts(
                        dc,
                        tv_arg if isinstance(tv_arg, dict) else tv_arg[r],
                        contexts[r],
                        {a: cols[a][:(prefix_upto if prefix_upto
                                      is not None else i)]
                         for a in dc.attributes})
                    for r, i in enumerate(rows)])
            penalty += weight * counts
        return penalty

    def _check_scan_allowed(self, dc) -> None:
        """Strict mode refuses prefix scans for non-unary DCs.

        A streaming chunk's local prefix is not the global one, so a
        scan would silently change the draw; unary penalties ignore the
        prefix entirely and always scan safely.
        """
        if self.strict and not dc.is_unary:
            raise PrefixScanRequired(
                f"DC {dc.name!r} needs a prefix scan at column "
                f"{self.w!r}; streaming draws require an index-served "
                f"probe path (use_violation_index=True and an "
                f"FD/order-shaped DC)")

    def _fd_block_counts(self, dc, tattrs: tuple, rows: np.ndarray,
                         target_values: dict) -> np.ndarray | None:
        """Vectorized block counts for the two hot FD probe layouts.

        Dependent-target (determinant known): one histogram subtraction
        per row via ``probe_block_codes``.  Determinant-target (single
        determinant attribute, dependent known): one det-major cache
        subtraction per row via ``probe_det_codes``.  None on any other
        layout — the caller takes the generic path.
        """
        index = self.vio.get(dc.name)
        if not isinstance(index, FDViolationIndex) \
                or not self.decoded_is_codes:
            return None
        cols, size = self.cols, self.layout.d
        if tattrs == (index.dependent,):
            det_cols = [cols[a][rows].tolist() for a in index.determinant]
            if len(det_cols) == 1:
                keys = [(v,) for v in det_cols[0]]
            else:
                keys = list(zip(*det_cols))
            return index.probe_block_codes(keys, size)
        if (len(index.determinant) == 1
                and tattrs == (index.determinant[0],)):
            deps = cols[index.dependent][rows].tolist()
            out = np.empty((rows.shape[0], size), dtype=np.int64)
            for r, dep in enumerate(deps):
                counts = index.probe_det_codes(dep, size)
                if counts is None:
                    return None
                out[r] = counts
            return out
        return None

    # -- scoring -------------------------------------------------------
    def _pen_at(self, i: int, pick: int) -> float:
        """Row ``i``'s penalty at candidate ``pick`` vs the live state.

        Same per-DC accumulation order (and hence bitwise-identical
        float result) as :meth:`_penalty` restricted to one candidate,
        so equality against the block-start matrix entry means "nothing
        this row depends on changed".
        """
        total = 0.0
        cols = self.cols
        for dc, weight, tattrs in self._active_specs:
            row = {a: cols[a][i] for a in dc.attributes if a not in tattrs}
            for a in tattrs:
                row[a] = self.decoded[a][pick]
            counts = None
            index = self.vio.get(dc.name)
            if index is not None:
                counts = index.candidate_counts(None, row)
            if counts is None:
                self._check_scan_allowed(dc)
                tv = {a: self.decoded[a][pick:pick + 1] for a in tattrs}
                context = {a: row[a] for a in dc.attributes
                           if a not in tattrs}
                counts = multi_candidate_violation_counts(
                    dc, tv, context,
                    {a: cols[a][:i] for a in dc.attributes})
            total += weight * counts[0]
        return total

    def _rescore_cat_row(self, i: int, logp_row: np.ndarray,
                         g_row: np.ndarray) -> int:
        """Sequential-exact re-score of one row against the live state."""
        rows = np.asarray([i], dtype=np.int64)
        penalty = self._penalty(rows, self.decoded, None)[0]
        return int(np.argmax(logp_row - penalty + g_row))

    def _write_cat(self, i: int, pick: int) -> None:
        self.wcols[self.w][i] = pick
        if self.sampler.hyper.is_hyper(self.w):
            for attr, values in self.decoded.items():
                self.cols[attr][i] = values[pick]

    def fill_cat(self, n: int, max_block: int) -> None:
        """Optimistic fixed blocks with per-row validation (cat target).

        Every block is scored in one shot against the block-start index
        state; rows are then validated in order against the live state.
        A row is kept iff its picked candidate's penalty is unchanged —
        exact, because in-block penalties are monotone nondecreasing
        (groups only grow), so other candidates' scores can only have
        fallen and the original first-index argmax still wins.  Rows
        that fail the check (an earlier in-block row entered one of
        their groups disruptively) are re-scored sequentially with the
        same per-cell noise, which is exactly the singleton-block
        computation.

        Columns whose active DCs are all FD-shaped (plus any unary) run
        the allocation-free pair-probe lane; anything else goes through
        the generic probe machinery.  Both lanes produce the same draws
        for any block size.
        """
        specs = self._fd_lane_specs()
        if self.tracer is not None:
            self.tracer.mode = ("cat-fd-lane" if specs is not None
                                else "cat-generic")
        if specs is not None:
            self._fill_cat_fd_lane(n, max_block, specs)
        else:
            self._fill_cat_generic(n, max_block)

    def _fill_cat_generic(self, n: int, max_block: int) -> None:
        cols, w = self.cols, self.w
        tracer = self.tracer
        V = self.layout.d
        for lo in range(0, n, max_block):
            hi = min(lo + max_block, n)
            if tracer is not None:
                tracer.observe_block(hi - lo)
            rows = np.arange(lo, hi, dtype=np.int64)
            u = self.noise.rows(lo, hi)
            logp = self.base[1][lo:hi]
            g = _gumbel(u[:, :V])
            penalty = self._penalty(rows, self.decoded, None,
                                    prefix_upto=lo)
            picks = np.argmax(logp - penalty + g, axis=1)
            for i in range(lo, hi):
                r = i - lo
                if self.fd_indexes:
                    forced = _forced_value(self.fd_indexes, cols, i)
                    if forced is not None:
                        if tracer is not None:
                            tracer.count("forced_rows")
                        self.wcols[w][i] = forced
                        self._fold_row(i)
                        continue
                pick = int(picks[r])
                if self._pen_at(i, pick) != penalty[r, pick]:
                    if tracer is not None:
                        tracer.count("rescored_rows")
                    pick = self._rescore_cat_row(i, logp[r], g[r])
                self._write_cat(i, pick)
                self._fold_row(i)

    def _fd_lane_specs(self) -> list | None:
        """Per-DC ``(weight, index, mode, source_attrs)`` for the pure-
        FD fast lane, or None when any active non-unary DC doesn't fit
        (no index, non-FD shape, hyper target, composite det target).
        """
        if not self.decoded_is_codes:
            return None
        specs = []
        for dc, weight, tattrs in self._active_specs:
            if dc.is_unary:
                continue
            index = self.vio.get(dc.name)
            if not isinstance(index, FDViolationIndex):
                return None
            if tattrs == (index.dependent,):
                specs.append((weight, index, "dep", index.determinant))
            elif (len(index.determinant) == 1
                    and tattrs == (index.determinant[0],)):
                specs.append((weight, index, "det", (index.dependent,)))
            else:
                return None
        return specs

    def _unary_penalty(self, lo: int, hi: int) -> np.ndarray | None:
        """(B, V) weighted unary counts (prefix-independent), or None."""
        unary = [(dc, wt) for dc, wt, _ in self._active_specs
                 if dc.is_unary]
        if not unary:
            return None
        cols, V = self.cols, self.layout.d
        penalty = np.zeros((hi - lo, V))
        for dc, weight in unary:
            tv = {a: self.decoded[a] for a in dc.attributes
                  if a in self.decoded}
            ctx_attrs = [a for a in dc.attributes if a not in tv]
            counts = np.vstack([
                multi_candidate_violation_counts(
                    dc, tv, {a: cols[a][i] for a in ctx_attrs}, {})
                for i in range(lo, hi)])
            penalty += weight * counts
        return penalty

    def _fill_cat_fd_lane(self, n: int, max_block: int,
                          specs: list) -> None:
        """The hot lane: FD-only columns, integer-exact validation.

        Per block: one vectorized probe per DC, one gumbel-argmax; per
        row: O(1) pair probes to validate, O(1) pair appends to fold.
        Validation compares raw per-DC counts (integers), so keep/
        rescore decisions carry no float subtleties at all.
        """
        cols, w = self.cols, self.w
        tracer = self.tracer
        V = self.layout.d
        logp_all = self.base[1]
        for lo in range(0, n, max_block):
            hi = min(lo + max_block, n)
            B = hi - lo
            if tracer is not None:
                tracer.observe_block(B)
            u = self.noise.rows(lo, hi)
            g = _gumbel(u[:, :V])
            scores = logp_all[lo:hi] + g
            per_dc = []
            for weight, index, mode, src in specs:
                if mode == "dep":
                    src_cols = [cols[a][lo:hi].tolist() for a in src]
                    keys = ([(v,) for v in src_cols[0]]
                            if len(src_cols) == 1 else
                            list(zip(*src_cols)))
                    counts = index.probe_block_codes(keys, V)
                    per_dc.append((weight, index, mode, keys, counts))
                else:
                    deps = cols[src[0]][lo:hi].tolist()
                    counts = np.empty((B, V), dtype=np.int64)
                    for r, dep in enumerate(deps):
                        index.probe_det_codes(dep, V, out=counts[r])
                    per_dc.append((weight, index, mode, deps, counts))
                scores -= weight * counts
            pen_unary = self._unary_penalty(lo, hi)
            if pen_unary is not None:
                scores -= pen_unary
            picks = np.argmax(scores, axis=1).tolist()
            for r in range(B):
                i = lo + r
                if self.fd_indexes:
                    forced = _forced_value(self.fd_indexes, cols, i)
                    if forced is not None:
                        if tracer is not None:
                            tracer.count("forced_rows")
                        self.wcols[w][i] = forced
                        pick = int(cols[w][i])
                        for weight, index, mode, side, counts in per_dc:
                            if mode == "dep":
                                index.add_pair(side[r], pick)
                            else:
                                index.add_pair((pick,), side[r])
                        _record_fd(self.fd_indexes, cols, i)
                        continue
                pick = picks[r]
                valid = True
                for weight, index, mode, side, counts in per_dc:
                    now = (index.probe_pair(side[r], pick)
                           if mode == "dep"
                           else index.probe_pair((pick,), side[r]))
                    if now != counts[r, pick]:
                        valid = False
                        break
                if not valid:
                    # Re-score vs the live state, same op order as the
                    # block pass so kept and re-scored rows are the
                    # same computation at B=1.
                    if tracer is not None:
                        tracer.count("rescored_rows")
                    s = logp_all[i] + g[r]
                    for weight, index, mode, side, counts in per_dc:
                        if mode == "dep":
                            c = index.probe_block_codes([side[r]], V)[0]
                        else:
                            c = index.probe_det_codes(side[r], V)
                        s = s - weight * c
                    if pen_unary is not None:
                        s = s - pen_unary[r]
                    pick = int(np.argmax(s))
                self.wcols[w][i] = pick
                for weight, index, mode, side, counts in per_dc:
                    if mode == "dep":
                        index.add_pair(side[r], pick)
                    else:
                        index.add_pair((pick,), side[r])
                _record_fd(self.fd_indexes, cols, i)

    def _fold_row(self, i: int) -> None:
        _record_fd(self.fd_indexes, self.cols, i)
        _append_row(self.vio, self.cols, i)
        if self.used is not None:
            self.used.add(float(self.cols[self.w][i]))

    def _base_candidates(self, lo: int, hi: int):
        """(cand, logp) base candidate matrices for rows [lo, hi).

        The d base candidates of a numerical target depend only on the
        row's conditional and its noise slots — never on the sampled
        prefix — so they are computed in noise-chunk-sized vectorized
        batches and cached, independent of how the scheduler groups
        rows.
        """
        chunk = self.noise.chunk
        first, last = lo // chunk, (hi - 1) // chunk
        parts = [self._base_chunk(c) for c in range(first, last + 1)]
        base = first * chunk
        if len(parts) == 1:
            cand, logp = parts[0]
            return cand[lo - base:hi - base], logp[lo - base:hi - base]
        cand = np.concatenate([p[0] for p in parts], axis=0)
        logp = np.concatenate([p[1] for p in parts], axis=0)
        return cand[lo - base:hi - base], logp[lo - base:hi - base]

    def _base_chunk(self, c: int):
        cached = self._chunk_cache.get(c)
        if cached is not None:
            return cached
        sampler, layout = self.sampler, self.layout
        w = self.w
        wattr = sampler.wrel[w]
        d = layout.d
        lo = c * self.noise.chunk
        hi = min(lo + self.noise.chunk, self._n_rows)
        u = self.noise.rows(lo, hi)
        if layout.kind == "num":
            mu, sigma = self.base[1][lo:hi], self.base[2][lo:hi]
            z = _box_muller(u[:, :2 * d])
            cand = sampler.snap(
                w, wattr.domain.clip(mu[:, None] + sigma[:, None] * z))
            logp = -0.5 * ((cand - mu[:, None]) / sigma[:, None]) ** 2
        else:
            hist = self.base[1]
            edges = hist.quantizer.edges
            dec = u[:, :d]
            raw = edges[:-1][None, :] + dec * np.diff(edges)[None, :]
            cand = sampler.snap(w, hist.quantizer.domain.clip(raw))
            logp = np.broadcast_to(hist.log_prob_codes()[None, :],
                                   (hi - lo, d)).copy()
        self._chunk_cache.put(c, (cand, logp))
        return cand, logp

    def _score_numeric(self, rows: np.ndarray, u: np.ndarray,
                       lo: int) -> None:
        sampler, layout = self.sampler, self.layout
        w, cols = self.w, self.cols
        d, width = layout.d, layout.width
        sel = rows - lo
        B = rows.shape[0]
        hi = int(rows[-1]) + 1
        cand_all, logp_all = self._base_candidates(lo, hi)
        cand, logp = cand_all[sel], logp_all[sel]
        cmat = np.empty((B, width))
        cmat[:, :d] = cand
        if width > d:
            cmat[:, d:] = cand[:, :1]  # valid pad, masked by -inf below
        lpm = np.full((B, width), -np.inf)
        lpm[:, :d] = logp
        if layout.extras:
            for r, i in enumerate(rows):
                extra = sampler._consistent_values(
                    self.j, w, cols, int(i), indexes=self.vio,
                    strict=self.strict,
                    prefix_rows=self.row_offset + int(i))
                fresh = np.empty(0)
                if layout.fresh_off >= 0:
                    fresh = sampler._fresh_values(
                        self.j, w, cols, int(i), used=self.used,
                        uniforms=u[i - lo][layout.fresh_off:
                                           layout.fresh_off + _FRESH_TRIES],
                        prefix_rows=self.row_offset + int(i))
                added = np.concatenate([extra, fresh])
                k = added.shape[0]
                if not k:
                    continue
                cmat[r, d:d + k] = added
                if layout.kind == "num":
                    lpm[r, d:d + k] = (-0.5 * ((added - self.base[1][i])
                                               / self.base[2][i]) ** 2)
                else:
                    hist = self.base[1]
                    lpm[r, d:d + k] = hist.log_prob_codes()[
                        hist.quantizer.encode(added)]
        per_row_tv = [{w: cmat[r]} for r in range(B)]
        penalty = self._penalty(rows, None, per_row_tv, prefix_upto=lo)
        g = _gumbel(u[sel][:, layout.gumbel_off:layout.gumbel_off + width])
        pick = np.argmax(lpm - penalty + g, axis=1)
        self.wcols[w][rows] = cmat[np.arange(B), pick]

    # -- sequential numeric driver (conflict-all columns) --------------
    def fill_numeric_sequential(self, n: int) -> None:
        """Per-row pass for columns whose rows all potentially interact
        (eq-less order DCs, determinant-feeding targets, generic binary
        DCs).  Candidates and noise still come from the vectorized
        chunk machinery; only extras, penalty probes, and the argmax
        run per row — strictly less per-row Python than the row engine
        (no per-row rng, no normalise-and-choice).
        """
        sampler, layout = self.sampler, self.layout
        w, cols = self.w, self.cols
        tracer = self.tracer
        if tracer is not None:
            tracer.count("sequential_rows", n)
        d = layout.d
        j = self.j
        gum_off, fresh_off = layout.gumbel_off, layout.fresh_off
        hist = self.base[1] if layout.kind == "numhist" else None
        for i in range(n):
            if self.fd_indexes:
                forced = _forced_value(self.fd_indexes, cols, i)
                if forced is not None:
                    if tracer is not None:
                        tracer.count("forced_rows")
                    self.wcols[w][i] = forced
                    self._fold_row(i)
                    continue
            cand_base, logp_base = self._base_candidates(i, i + 1)
            cand, logp = cand_base[0], logp_base[0]
            u_row = self.noise.rows(i, i + 1)[0]
            if layout.extras:
                extra = sampler._consistent_values(
                    j, w, cols, i, indexes=self.vio, strict=self.strict,
                    prefix_rows=self.row_offset + i)
                fresh = _EMPTY
                if fresh_off >= 0:
                    fresh = sampler._fresh_values(
                        j, w, cols, i, used=self.used,
                        uniforms=u_row[fresh_off:fresh_off + _FRESH_TRIES],
                        prefix_rows=self.row_offset + i)
                if extra.size or fresh.size:
                    added = np.concatenate([extra, fresh])
                    cand = np.concatenate([cand, added])
                    if layout.kind == "num":
                        added_lp = (-0.5 * ((added - self.base[1][i])
                                            / self.base[2][i]) ** 2)
                    else:
                        added_lp = hist.log_prob_codes()[
                            hist.quantizer.encode(added)]
                    logp = np.concatenate([logp, added_lp])
            k = cand.shape[0]
            pen = None
            for dc, weight, _ in self._active_specs:
                tv = {w: cand}
                context = {a: cols[a][i] for a in dc.attributes if a != w}
                counts = None
                index = self.vio.get(dc.name)
                if index is not None:
                    counts = index.candidate_counts(tv, context)
                if counts is None:
                    self._check_scan_allowed(dc)
                    counts = multi_candidate_violation_counts(
                        dc, tv, context,
                        {a: cols[a][:i] for a in dc.attributes})
                pen = (weight * counts if pen is None
                       else pen + weight * counts)
            g = _gumbel(u_row[gum_off:gum_off + k])
            scores = logp + g if pen is None else logp - pen + g
            pick = int(np.argmax(scores))
            self.wcols[w][i] = cand[pick]
            self._fold_row(i)

    # -- block driver (numerical targets) ------------------------------
    def process_block(self, lo: int, hi: int) -> None:
        cols, w = self.cols, self.w
        tracer = self.tracer
        if tracer is not None:
            tracer.observe_block(hi - lo)
        score_rows = []
        if self.fd_indexes:
            for i in range(lo, hi):
                forced = _forced_value(self.fd_indexes, cols, i)
                if forced is not None:
                    if tracer is not None:
                        tracer.count("forced_rows")
                    self.wcols[w][i] = forced
                else:
                    score_rows.append(i)
        else:
            score_rows = list(range(lo, hi))
        if score_rows:
            rows = np.asarray(score_rows, dtype=np.int64)
            u = self.noise.rows(lo, hi)
            self._score_numeric(rows, u, lo)
        for i in range(lo, hi):
            self._fold_row(i)


# ----------------------------------------------------------------------
# Shard execution: gathered sub-schedules (thread and process lanes)
# ----------------------------------------------------------------------
def _shard_attrs(sampler: _ColumnSampler, j: int) -> list[str]:
    """Earlier-column attributes a constrained shard must gather: every
    active DC's attributes plus the FD-lookup determinants, minus the
    target's own (not yet sampled) attributes."""
    w = sampler.wseq[j]
    if sampler.hyper.is_hyper(w):
        tattrs = set(sampler.hyper.original_attrs(w))
    else:
        tattrs = {w}
    need: set[str] = set()
    for dc in sampler.active_at[j]:
        need |= set(dc.attributes)
    for fdx in sampler.fd_indexes_for(j):
        need |= set(fdx.determinant)
        need.add(fdx.dependent)
    return sorted(need - tattrs)


def _shard_buffers(sampler: _ColumnSampler, j: int, m: int):
    """Fresh target output buffers for an ``m``-row shard.

    Returns ``(tcols, gw)``: the original-attribute buffers the pass
    writes (aliasing ``gw`` for non-hyper targets, exactly like
    ``_allocate_working``) and the working-column buffer itself.
    """
    w = sampler.wseq[j]
    tcols: dict[str, np.ndarray] = {}
    if sampler.hyper.is_hyper(w):
        gw = np.zeros(m, dtype=np.int64)
        for a in sampler.hyper.original_attrs(w):
            attr = sampler.relation[a]
            tcols[a] = (np.zeros(m, dtype=np.int64)
                        if attr.is_categorical
                        else np.full(m, attr.domain.low, dtype=np.float64))
    else:
        attr = sampler.relation[w]
        gw = (np.zeros(m, dtype=np.int64) if attr.is_categorical
              else np.full(m, attr.domain.low, dtype=np.float64))
        tcols[w] = gw
    return tcols, gw


def _gather_base(base, rows):
    """Row-select a base conditional (numhist bases carry no rows)."""
    if base[0] == "cat":
        return ("cat", base[1][rows])
    if base[0] == "num":
        return ("num", base[1][rows], base[2][rows])
    return base


def _run_shard_pass(sampler: _ColumnSampler, j: int, base, layout,
                    noise, gcols: dict, gw: np.ndarray,
                    specs: list, m: int, max_block: int) -> None:
    """One gathered constrained sub-schedule, writing ``gw``/``gcols``.

    The pass builds its own (shard-local) violation and FD-lookup
    indexes: rows outside the shard share no group with rows inside it,
    so the local indexes answer every probe with exactly the global
    counts.
    """
    wcols_g = {sampler.wseq[j]: gw}
    col = _ColumnPass(sampler, j, base, layout, noise, gcols, wcols_g)
    if layout.kind == "cat":
        col.fill_cat(m, max_block)
    else:
        for lo, hi in _conflict_blocks(specs, gcols, m, max_block):
            col.process_block(lo, hi)


def _context_attrs(sampler: _ColumnSampler, j: int) -> list:
    """Working attributes the base conditional of position ``j`` reads."""
    w = sampler.wseq[j]
    if j == 0 or w in sampler.model.independent:
        return []
    return list(sampler.model.context_attrs[w])


# ----------------------------------------------------------------------
# Process-pool lane
# ----------------------------------------------------------------------
#: The per-process sampler, built once per worker from the pickled
#: model payload by :func:`_pool_init`.
_POOL_SAMPLER: _ColumnSampler | None = None


def _pool_context():
    """Prefer fork (cheap, payload inherited); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


def _pool_init(model, relation, dcs, weights, params, hyper,
               use_fd_lookup: bool, use_violation_index: bool) -> None:
    global _POOL_SAMPLER
    _POOL_SAMPLER = _ColumnSampler(
        model, relation, hyper, dcs, weights, params,
        rng=np.random.default_rng(0), use_fd_lookup=use_fd_lookup,
        use_violation_index=use_violation_index)


def _pool_unconstrained(j: int, lo: int, hi: int, noise_key: tuple,
                        wctx: dict):
    """Worker-side contiguous unconstrained shard.

    The base conditional is row-pure, so recomputing it over the
    gathered context slices equals the parent's full-table slice; the
    noise key addresses global rows, so the draw is position-exact.
    """
    fault_point("engine.worker")
    s = _POOL_SAMPLER
    m = hi - lo
    base = s.base_distribution(j, wctx, m)
    layout = _layout_for(s, j, base)
    tcols, gw = _shard_buffers(s, j, m)
    noise = _OffsetNoise(_CellNoise(*noise_key), lo)
    _draw_unconstrained(s, j, base, layout, noise, tcols,
                        {s.wseq[j]: gw}, 0, m)
    w = s.wseq[j]
    members = tcols if s.hyper.is_hyper(w) else {}
    return gw, members


def _pool_constrained(j: int, rows: np.ndarray, noise_key: tuple,
                      wctx: dict, gctx: dict, specs: list,
                      max_block: int):
    """Worker-side group-closed constrained shard (compact spec in,
    target column slices out)."""
    fault_point("engine.worker")
    s = _POOL_SAMPLER
    m = rows.shape[0]
    base = s.base_distribution(j, wctx, m)
    layout = _layout_for(s, j, base)
    tcols, gw = _shard_buffers(s, j, m)
    gcols = dict(gctx)
    gcols.update(tcols)
    noise = _GatherNoise(_CellNoise(*noise_key), rows)
    _run_shard_pass(s, j, base, layout, noise, gcols, gw, specs, m,
                    max_block)
    w = s.wseq[j]
    members = ({a: tcols[a] for a in tcols if a != w}
               if s.hyper.is_hyper(w) else {})
    return gw, members


def synthesize_row_subprocess(model, relation, dcs, weights, n: int,
                              params, rng, hyper=None,
                              use_fd_lookup: bool = False,
                              use_violation_index: bool = True) -> Table:
    """Run the legacy row engine in one worker process.

    The row engine is inherently sequential, so ``pool="process"``
    means "the whole draw in a subprocess" — same computation, other
    address space, trivially bit-identical.  The parent's rng object is
    never advanced (the child works on the pickled copy) — which is
    also what makes the self-healing path safe: if the worker dies, the
    draw re-runs in-process from the same starting state, bit-identical
    to what the worker would have produced.
    """
    try:
        with ProcessPoolExecutor(max_workers=1,
                                 mp_context=_pool_context()) as ex:
            cols = ex.submit(
                _row_draw_task, model, relation, dcs, weights, n, params,
                rng, hyper, use_fd_lookup, use_violation_index).result()
    except BrokenProcessPool:
        _LOG.warning("row-draw worker process died; retrying the draw "
                     "in-process (output unchanged)")
        return _synthesize_row(
            model, relation, dcs, weights, n, params, rng, hyper=hyper,
            use_fd_lookup=use_fd_lookup,
            use_violation_index=use_violation_index)
    return Table(relation, cols, validate=False)


def _row_draw_task(model, relation, dcs, weights, n, params, rng, hyper,
                   use_fd_lookup, use_violation_index):
    fault_point("engine.worker")
    table = _synthesize_row(
        model, relation, dcs, weights, n, params, rng, hyper=hyper,
        use_fd_lookup=use_fd_lookup,
        use_violation_index=use_violation_index)
    return table.columns


# ----------------------------------------------------------------------
# Sharded dispatch (parent side)
# ----------------------------------------------------------------------
def _heal_pool(ppool, workers: int, tpool, tracer=None):
    """Retire a broken process pool; return the thread-pool fallback.

    Safe to call mid-draw: both process dispatchers collect *every*
    shard future before stitching a single byte, so a worker death
    leaves the output columns untouched and the whole column pass can
    re-run on the surviving lane — bit-identical, because the draw is a
    pure function of ``(model, n, seed)`` and the lane is scheduling.
    The degrade is recorded on the column trace (``pool_broken``) and
    the ``repro.engine`` logger.
    """
    _LOG.warning("process-pool worker died; degrading this draw to the "
                 "thread pool (output unchanged)")
    ppool.shutdown(wait=False)
    if tracer is not None:
        tracer.count("pool_broken", 1)
    if tpool is None:
        tpool = ThreadPoolExecutor(max_workers=workers)
    return tpool


def _fd_shard_closed(specs: list, fd_indexes: list) -> bool:
    """True when every FD-lookup determinant group is shard-closed.

    The component partition joins the *spec* partitions, so an FD
    lookup's forced-value semantics survive sharding iff some spec key
    is a subset of its determinant (then determinant groups refine that
    spec's groups and never straddle shards).
    """
    return all(
        any(set(key) <= set(fdx.determinant) for key in specs)
        for fdx in fd_indexes)


def _fill_unconstrained_process(sampler: _ColumnSampler, j: int,
                                noise_key: tuple, cols: dict,
                                wcols: dict, n: int, ppool, workers: int,
                                tracer=None) -> None:
    """Contiguous unconstrained shards dispatched to worker processes."""
    ctx = _context_attrs(sampler, j)
    bounds = np.linspace(0, n, workers + 1).astype(int)
    spans = [(int(bounds[k]), int(bounds[k + 1]))
             for k in range(workers) if bounds[k] < bounds[k + 1]]
    futs = [ppool.submit(_pool_unconstrained, j, lo, hi, noise_key,
                         {a: wcols[a][lo:hi] for a in ctx})
            for lo, hi in spans]
    if tracer is not None:
        tracer.count("shards", len(spans))
    results = [f.result() for f in futs]
    w = sampler.wseq[j]
    t0 = time.perf_counter()
    for (lo, hi), (gw, members) in zip(spans, results):
        wcols[w][lo:hi] = gw
        for a, vals in members.items():
            cols[a][lo:hi] = vals
    if tracer is not None:
        tracer.count("stitch_us", int((time.perf_counter() - t0) * 1e6))


def _run_sharded(sampler: _ColumnSampler, j: int, base, layout,
                 noise_key: tuple, cols: dict, wcols: dict, specs: list,
                 shards: list, max_block: int, tpool, ppool,
                 tracer=None) -> None:
    """Group-closed constrained shards on the thread or process lane.

    Shard outputs are stitched back by their (disjoint) global row
    indices; completion order cannot matter.
    """
    w = sampler.wseq[j]
    need = _shard_attrs(sampler, j)
    ctx = _context_attrs(sampler, j)
    if ppool is not None:
        futs = [ppool.submit(_pool_constrained, j, rows, noise_key,
                             {a: wcols[a][rows] for a in ctx},
                             {a: cols[a][rows] for a in need},
                             specs, max_block)
                for rows in shards]
        results = [f.result() for f in futs]
    else:
        def run(rows: np.ndarray):
            m = rows.shape[0]
            gcols = {a: cols[a][rows] for a in need}
            tcols, gw = _shard_buffers(sampler, j, m)
            gcols.update(tcols)
            noise = _GatherNoise(_CellNoise(*noise_key), rows)
            _run_shard_pass(sampler, j, _gather_base(base, rows),
                            layout, noise, gcols, gw, specs, m,
                            max_block)
            return gw, {a: v for a, v in tcols.items() if a != w}

        results = list(tpool.map(run, shards))
    t0 = time.perf_counter()
    for rows, (gw, members) in zip(shards, results):
        wcols[w][rows] = gw
        for a, vals in members.items():
            cols[a][rows] = vals
    if tracer is not None:
        tracer.count("stitch_us", int((time.perf_counter() - t0) * 1e6))


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def synthesize_engine(model, relation, dcs, weights, n: int, params,
                      seed: int, hyper: HyperSpec | None = None,
                      use_fd_lookup: bool = False,
                      use_violation_index: bool = True,
                      workers: int = 1, pool: str = "thread",
                      max_block_rows: int = MAX_BLOCK_ROWS,
                      noise_chunk: int = NOISE_CHUNK,
                      trace=None) -> Table:
    """Blocked-engine counterpart of :func:`repro.core.sampling.synthesize`.

    The output is a deterministic function of the arguments — in
    particular it does **not** depend on ``workers``, ``pool``, or
    ``max_block_rows`` (scheduling knobs only).  ``seed`` keys every
    per-cell noise stream; ``noise_chunk`` is the persisted chunking of
    those streams (model format v2 records it so reloaded models replay
    their draws).

    ``pool`` selects the execution lane for ``workers > 1``:
    ``"thread"`` shares the parent's arrays (GIL-bound, cheap to start)
    while ``"process"`` ships each shard as a compact picklable spec to
    a :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
    hold their own ``_ColumnSampler`` (built once per worker by
    :func:`_pool_init`).  Constrained columns additionally shard when
    their active DCs expose group keys: :func:`_shard_rows` partitions
    rows into group-closed components, each shard runs a gathered
    sub-schedule with shard-local indexes, and outputs stitch back by
    row index — bit-identical to ``workers=1`` because no two rows in
    different shards can interact and every cell's noise is addressed
    by its global position.

    ``trace`` (a :class:`repro.obs.trace.SampleTrace`) records one
    :class:`~repro.obs.trace.ColumnTrace` per working column: wall
    clock, lane (``unconstrained``/``cat-fd-lane``/``cat-generic``/
    ``num-blocked``/``num-sequential``, plus ``cat-sharded``/
    ``num-sharded`` with ``shards``/``stitch_us`` counters when a
    constrained column splits), block sizes, re-scored/forced rows, and
    index probe counts.  Tracing reads no randomness — a traced draw is
    bit-identical to an untraced one — and ``None`` costs nothing.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if pool not in ("thread", "process"):
        raise ValueError(f"pool must be 'thread' or 'process', got {pool!r}")
    if hyper is None:
        hyper = HyperSpec.trivial(relation, model.sequence)
    master = int(seed)
    sampler = _ColumnSampler(
        model, relation, hyper, dcs, weights, params,
        rng=np.random.default_rng(0), use_fd_lookup=use_fd_lookup,
        use_violation_index=use_violation_index)
    cols = _allocate_columns(relation, n)
    wcols = _allocate_working(sampler, cols, n)

    # Pools only pay off past the sharding floor; below it every column
    # runs inline regardless of ``workers``.
    pooled = workers > 1 and n >= max(2 * _MIN_SHARD_ROWS, workers)
    tpool = ppool = None
    if pooled:
        if pool == "process":
            ppool = ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(),
                initializer=_pool_init,
                initargs=(model, relation, dcs, weights, params, hyper,
                          use_fd_lookup, use_violation_index))
        else:
            tpool = ThreadPoolExecutor(max_workers=workers)
    try:
        for j in range(len(sampler.wseq)):
            col_trace = None
            if trace is not None:
                col_trace = trace.column(sampler.wseq[j])
                col_start = time.perf_counter()
            base = sampler.base_distribution(j, wcols, n)
            layout = _layout_for(sampler, j, base)
            noise_key = (master, 2 * j, layout.stride, noise_chunk, n)
            active = sampler.active_at[j]
            fd_indexes = sampler.fd_indexes_for(j)
            if not active and not fd_indexes:
                if col_trace is not None:
                    col_trace.mode = "unconstrained"
                if ppool is not None:
                    try:
                        _fill_unconstrained_process(
                            sampler, j, noise_key, cols, wcols, n, ppool,
                            workers, tracer=col_trace)
                    except BrokenProcessPool:
                        tpool = _heal_pool(ppool, workers, tpool,
                                           tracer=col_trace)
                        ppool = None
                        _fill_unconstrained(sampler, j, base, layout,
                                            noise_key, cols, wcols, n,
                                            tpool, workers,
                                            tracer=col_trace)
                else:
                    _fill_unconstrained(sampler, j, base, layout,
                                        noise_key, cols, wcols, n,
                                        tpool, workers, tracer=col_trace)
            elif n > 0:
                specs = _conflict_keys(sampler, j)
                shards = None
                if (pooled and params.mcmc_m == 0 and specs is not None
                        and sampler.fresh_value_tracker(j) is None
                        and _fd_shard_closed(specs, fd_indexes)):
                    shards = _shard_rows(specs, cols, n, workers)
                if shards is not None:
                    if col_trace is not None:
                        col_trace.mode = (
                            "cat-sharded" if layout.kind == "cat"
                            else "num-sharded")
                        col_trace.count("shards", len(shards))
                    try:
                        _run_sharded(sampler, j, base, layout, noise_key,
                                     cols, wcols, specs, shards,
                                     max_block_rows, tpool, ppool,
                                     tracer=col_trace)
                    except BrokenProcessPool:
                        if ppool is None:
                            raise
                        tpool = _heal_pool(ppool, workers, tpool,
                                           tracer=col_trace)
                        ppool = None
                        _run_sharded(sampler, j, base, layout, noise_key,
                                     cols, wcols, specs, shards,
                                     max_block_rows, tpool, None,
                                     tracer=col_trace)
                else:
                    col = _ColumnPass(sampler, j, base, layout,
                                      _CellNoise(*noise_key), cols,
                                      wcols, fd_indexes,
                                      tracer=col_trace)
                    if layout.kind == "cat":
                        # Candidates are the fixed code domain: score
                        # whole blocks optimistically, validate per row.
                        col.fill_cat(n, max_block_rows)
                    elif specs is None:
                        # Numerical candidates depend on the prefix
                        # (hard-DC augmentation): conflict-all columns
                        # stay sequential.
                        if col_trace is not None:
                            col_trace.mode = "num-sequential"
                        col.fill_numeric_sequential(n)
                    else:
                        if col_trace is not None:
                            col_trace.mode = "num-blocked"
                        for lo, hi in _conflict_blocks(specs, cols, n,
                                                       max_block_rows):
                            col.process_block(lo, hi)
            if col_trace is not None:
                col_trace.finish(time.perf_counter() - col_start, n)
            if params.mcmc_m > 0:
                # The refinement is inherently sequential; it draws from
                # its own keyed stream so the column passes above stay
                # schedule-invariant.
                sampler.rng = np.random.Generator(np.random.Philox(
                    np.random.SeedSequence([master, 2 * j + 1])))
                _mcmc_resample(sampler, j, cols, wcols, n, params.mcmc_m)
    finally:
        if tpool is not None:
            tpool.shutdown(wait=True)
        if ppool is not None:
            ppool.shutdown(wait=True)
    return Table(relation, cols, validate=False)


# ----------------------------------------------------------------------
# Streaming entry point
# ----------------------------------------------------------------------
def synthesize_stream(model, relation, dcs, weights, n: int, params,
                      seed: int, hyper: HyperSpec | None = None,
                      use_fd_lookup: bool = False,
                      use_violation_index: bool = True,
                      chunk_rows: int = STREAM_CHUNK_ROWS,
                      max_block_rows: int = MAX_BLOCK_ROWS,
                      noise_chunk: int = NOISE_CHUNK):
    """Yield the blocked-engine draw of ``n`` rows in bounded chunks.

    Concatenating the yielded :class:`Table` chunks (in order) is
    bit-identical to ``synthesize_engine(..., workers=1)`` with the
    same arguments: each cell's noise is addressed by its *global* row
    (``_OffsetNoise`` over the same keyed streams), chunk and block
    boundaries are pure scheduling, and the per-column constraint state
    (:class:`_PassState`: violation indexes, FD lookups, used-value
    sets) persists across chunks exactly as one long pass would build
    it.  Peak memory holds one ``chunk_rows``-row table plus that
    per-column index state — never the full ``n`` rows.

    Columns run in ``strict`` mode: a DC whose exact answer would need
    the full sampled prefix (no violation index, non-unary) raises
    :class:`~repro.core.sampling.PrefixScanRequired` instead of
    silently answering from the chunk-local prefix — streaming never
    trades exactness for memory.  ``mcmc_m > 0`` is rejected for the
    same reason (the refinement re-reads the whole instance).
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if params.mcmc_m > 0:
        raise ValueError(
            "streaming draws require mcmc_m == 0: the MCMC refinement "
            "re-reads the full instance")
    if hyper is None:
        hyper = HyperSpec.trivial(relation, model.sequence)
    master = int(seed)
    sampler = _ColumnSampler(
        model, relation, hyper, dcs, weights, params,
        rng=np.random.default_rng(0), use_fd_lookup=use_fd_lookup,
        use_violation_index=use_violation_index)
    ncols = len(sampler.wseq)
    states: list[_PassState | None] = []
    for j in range(ncols):
        fd_indexes = sampler.fd_indexes_for(j)
        if sampler.active_at[j] or fd_indexes:
            states.append(_PassState(
                vio=sampler.violation_indexes_for(j),
                fd_indexes=fd_indexes,
                used=sampler.fresh_value_tracker(j)))
        else:
            states.append(None)
    specs_of = [_conflict_keys(sampler, j) for j in range(ncols)]
    layouts: list[_Layout | None] = [None] * ncols
    noises: list[_CellNoise | None] = [None] * ncols
    for off in range(0, n, chunk_rows):
        m = min(chunk_rows, n - off)
        cols = _allocate_columns(relation, m)
        wcols = _allocate_working(sampler, cols, m)
        for j in range(ncols):
            base = sampler.base_distribution(j, wcols, m)
            if layouts[j] is None:
                layouts[j] = _layout_for(sampler, j, base)
                noises[j] = _CellNoise(master, 2 * j, layouts[j].stride,
                                       noise_chunk, n)
            layout = layouts[j]
            noise = _OffsetNoise(noises[j], off)
            if states[j] is None:
                _draw_unconstrained(sampler, j, base, layout, noise,
                                    cols, wcols, 0, m)
            else:
                col = _ColumnPass(sampler, j, base, layout, noise,
                                  cols, wcols, state=states[j],
                                  strict=True, row_offset=off)
                if layout.kind == "cat":
                    col.fill_cat(m, max_block_rows)
                elif specs_of[j] is None:
                    col.fill_numeric_sequential(m)
                else:
                    for lo, hi in _conflict_blocks(specs_of[j], cols, m,
                                                   max_block_rows):
                        col.process_block(lo, hi)
        yield Table(relation, cols, validate=False)
