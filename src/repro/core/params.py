"""Algorithm 6 — privacy parameter search.

Given a total budget (epsilon, delta), pick the configuration set Psi
(noise scales, batch size, iteration counts) so that the composed RDP
cost of the whole pipeline (Theorem 1) converts to at most epsilon at
the given delta.  The search starts from the most accurate ("boldest")
setting — minimal noise, maximal iterations/batch — and walks a priority
order (decrease T, increase sigma_d, increase sigma_g, decrease b) until
the budget constraint is met.

Deviation from the paper, documented in DESIGN.md: Algorithm 6 line 7
fixes the DC-weight noise via ``epsilon_w = 100``, which by the paper's
own Theorem 1 contributes far more than epsilon = 1 on its own.  We
therefore include ``sigma_w`` in the tuning loop (after ``sigma_g``),
so the search always terminates with a configuration that genuinely
satisfies the requested budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.privacy.rdp import kamino_epsilon


@dataclass
class KaminoParams:
    """The configuration set Psi consumed by Algorithms 2, 3, and 5."""

    epsilon: float
    delta: float
    # -- DP-SGD (Algorithm 2) -----------------------------------------
    clip_norm: float = 1.0          # C, the L2 gradient clip
    lr: float = 0.05                # eta
    sigma_g: float = 1.0            # first-attribute histogram noise
    sigma_d: float = 1.0            # DP-SGD noise multiplier
    batch: int = 32                 # b (expected Poisson batch size)
    iterations: int = 100           # T per sub-model
    quant_bins: int = 16            # q, bins for numerical first attr
    embed_dim: int = 16             # d, shared embedding dimension
    # -- DC-weight learning (Algorithm 5) ------------------------------
    learn_weights: bool = False
    sigma_w: float = 0.3
    L_w: int = 50
    batch_w: int = 1                # b_w
    iterations_w: int = 50          # T_w
    lr_w: float = 0.5
    weight_init: float = 5.0
    weight_max: float = 10.0
    # -- Sampling (Algorithm 3) ----------------------------------------
    num_candidates: int = 25        # d, candidates for numerical targets
    mcmc_m: int = 0                 # resampled cells per attribute
    # -- Structure (§4.3 optimisations) ---------------------------------
    n_hist: int = 1                 # Gaussian-histogram releases
    n_submodels: int | None = None  # override of k - 1 (grouping/fallback)
    # -- Bookkeeping -----------------------------------------------------
    n: int = 0
    k: int = 0
    achieved_epsilon: float = field(default=math.nan)
    best_alpha: int = field(default=0)

    def accounted_epsilon(self) -> tuple[float, int]:
        """Recompute the end-to-end (epsilon, alpha) for this config."""
        return kamino_epsilon(
            self.delta, sigma_g=self.sigma_g, sigma_d=self.sigma_d,
            T=self.iterations, k=self.k, b=self.batch, n=self.n,
            learn_weights=self.learn_weights, sigma_w=self.sigma_w,
            L_w=self.L_w, n_hist=self.n_hist, n_submodels=self.n_submodels,
        )


def _backoff_sigma_g(params: "KaminoParams", epsilon: float,
                     sigma_g_min: float) -> None:
    """Re-tighten the histogram noise once the budget is met.

    The priority loop bumps every knob per round, so sigma_g often ends
    far above what the composition needs (M2 dominates).  Walking it
    back down while the total stays within budget recovers first-
    attribute marginal accuracy for free.
    """
    while params.sigma_g > sigma_g_min:
        candidate = max(sigma_g_min, params.sigma_g / 1.25)
        saved = params.sigma_g
        params.sigma_g = candidate
        achieved, _ = params.accounted_epsilon()
        if achieved > epsilon:
            params.sigma_g = saved
            return


def _backoff_sigma_w(params: "KaminoParams", epsilon: float,
                     sigma_w_min: float = 0.3) -> None:
    """Re-tighten the DC-weight noise once the budget is met.

    M3 is a single subsampled release, so its share of the composition
    is tiny; the priority loop nevertheless inflates sigma_w in lock
    step with the other knobs.  Walking it back down keeps the
    violation-rate estimates informative (see repro.core.weights) at
    negligible epsilon cost.
    """
    if not params.learn_weights:
        return
    while params.sigma_w > sigma_w_min:
        candidate = max(sigma_w_min, params.sigma_w / 1.25)
        saved = params.sigma_w
        params.sigma_w = candidate
        achieved, _ = params.accounted_epsilon()
        if achieved > epsilon:
            params.sigma_w = saved
            return


def _histogram_share(params: "KaminoParams") -> float:
    """Fraction of the total RDP cost contributed by the histogram
    releases (M1) at the configuration's best order."""
    from repro.privacy.rdp import kamino_rdp, rdp_gaussian
    _, alpha = params.accounted_epsilon()
    total = kamino_rdp(
        alpha, sigma_g=params.sigma_g, sigma_d=params.sigma_d,
        T=params.iterations, k=params.k, b=params.batch, n=params.n,
        learn_weights=params.learn_weights, sigma_w=params.sigma_w,
        L_w=params.L_w, n_hist=params.n_hist,
        n_submodels=params.n_submodels)
    hist = params.n_hist * rdp_gaussian(params.sigma_g, alpha)
    return hist / max(total, 1e-12)


def search_dp_params(epsilon: float, delta: float, relation, sequence,
                     n: int, learn_weights: bool = False,
                     n_hist: int = 1, n_submodels: int | None = None,
                     max_rounds: int = 10_000) -> KaminoParams:
    """Algorithm 6: find Psi with end-to-end cost at most (epsilon, delta).

    Parameters
    ----------
    epsilon, delta:
        The total privacy budget.
    relation, sequence:
        Schema and schema sequence (the first attribute's domain size
        bounds the histogram-noise search range, Algorithm 6 line 3).
    n:
        Number of rows in the private instance.
    learn_weights:
        Whether Algorithm 5 will run (soft DCs present).
    n_hist, n_submodels:
        Structural overrides from the §4.3 optimisations.
    max_rounds:
        Safety bound on the tuning loop.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    k = len(sequence)
    first_domain = relation[sequence[0]].domain.size

    # Search ranges (Algorithm 6, lines 2-4).  The paper's heuristic
    # ranges assume n ~ 30k rows; at smaller scales they can be
    # infeasible for tight budgets, so a relaxation stage below widens
    # sigma_d and lowers the iteration floor before giving up.
    sigma_g_min = max(0.1 / first_domain, 0.05)
    sigma_g_max = 4.0 * math.sqrt(math.log(1.25 / delta)) / epsilon
    sigma_d_min, sigma_d_max = 1.0, 1.5
    sigma_d_ceiling = 64.0
    b_min, b_max = 16, 32
    b_floor = 8
    T_max = max(1, (5 * n) // b_min)
    T_min = max(1, n // b_max)

    params = KaminoParams(
        epsilon=epsilon, delta=delta, n=n, k=k,
        sigma_g=sigma_g_min, sigma_d=sigma_d_min,
        batch=b_max, iterations=T_max,
        learn_weights=learn_weights, n_hist=n_hist,
        n_submodels=n_submodels,
    )
    sigma_w_max = max(sigma_g_max, params.sigma_w)

    for _ in range(max_rounds):
        achieved, alpha = params.accounted_epsilon()
        if achieved <= epsilon:
            _backoff_sigma_g(params, epsilon, sigma_g_min)
            _backoff_sigma_w(params, epsilon)
            achieved, alpha = params.accounted_epsilon()
            params.achieved_epsilon = achieved
            params.best_alpha = alpha
            return params
        progressed = False
        if params.iterations > T_min:
            params.iterations = max(T_min, int(params.iterations * 0.9))
            progressed = True
        if params.sigma_d < sigma_d_max:
            params.sigma_d = min(sigma_d_max, params.sigma_d + 0.05)
            progressed = True
        if params.sigma_g < sigma_g_max and _histogram_share(params) > 0.05:
            # Only trade histogram accuracy for budget when M1 actually
            # contributes: raising sigma_g past the point where M2
            # dominates the composition would destroy the first
            # attribute's marginal for no epsilon savings.
            params.sigma_g = min(sigma_g_max, params.sigma_g * 1.25)
            progressed = True
        if learn_weights and params.sigma_w < sigma_w_max:
            params.sigma_w = min(sigma_w_max, params.sigma_w * 1.25)
            progressed = True
        if params.batch > b_min:
            params.batch = max(b_min, params.batch - 2)
            progressed = True
        if not progressed:
            # Relaxation stage for small-n / tight-budget settings.
            if T_min > 1:
                T_min = 1
                progressed = True
            elif params.iterations > 1:
                params.iterations = max(1, int(params.iterations * 0.8))
                progressed = True
            if sigma_d_max < sigma_d_ceiling:
                sigma_d_max = min(sigma_d_ceiling, sigma_d_max * 1.5)
                progressed = True
            if b_min > b_floor:
                b_min = b_floor
                progressed = True
        if not progressed:
            raise ValueError(
                f"no parameter setting fits budget epsilon={epsilon}: "
                f"cheapest configuration still costs {achieved:.3f}"
            )
    raise RuntimeError("parameter search did not terminate")
