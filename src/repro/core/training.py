"""Algorithm 2 — private learning of the tuple-probability chain.

The tuple probability factorises along the schema sequence (Eqn. 2):
the first attribute's marginal is released with the Gaussian mechanism
over its (quantized) histogram, and each later attribute's conditional
is a discriminative :class:`~repro.aimnet.AimNet` sub-model trained
with DP-SGD.

Two §4.3 structural optimisations are honoured here:

* attributes listed in ``independent`` (extremely large domains) are
  modeled by standalone noisy histograms and never appear as context;
* hyper attributes (grouped small domains) are ordinary categorical
  attributes of the *working relation* the caller passes in — no special
  handling is needed beyond the caller's encode/decode.

Experiment 10's parallel mode (``parallel=True``) drops the embedding
reuse: each sub-model trains from freshly initialised encoders, which
removes the sequential dependency between sub-models (they could run on
separate machines) at a small quality cost.
"""

from __future__ import annotations

import numpy as np

from repro.aimnet import AimNet, EmbeddingStore
from repro.privacy.dpsgd import DPSGD
from repro.privacy.mechanisms import GaussianMechanism
from repro.privacy.sensitivity import histogram_l2_sensitivity
from repro.schema.quantize import Quantizer


class HistogramModel:
    """A noisy (Gaussian-mechanism) marginal of one attribute.

    Categorical attributes histogram their codes; numerical attributes
    are quantized into ``q`` equi-width bins first and decode by uniform
    sampling inside the drawn bin (§4.2).
    """

    def __init__(self, attribute, probs: np.ndarray,
                 quantizer: Quantizer | None = None):
        self.attribute = attribute
        self.probs = np.asarray(probs, dtype=np.float64)
        self.quantizer = quantizer

    @classmethod
    def fit(cls, column: np.ndarray, attribute, sigma_g: float,
            quant_bins: int, rng: np.random.Generator,
            private: bool = True) -> "HistogramModel":
        """Fit the noisy histogram (Algorithm 2, lines 2-4)."""
        if attribute.is_categorical:
            quantizer = None
            codes = np.asarray(column, dtype=np.int64)
            size = attribute.domain.size
        else:
            quantizer = Quantizer(attribute.domain, quant_bins)
            codes = quantizer.encode(column)
            size = quantizer.q
        counts = np.bincount(codes, minlength=size).astype(np.float64)
        if private:
            mechanism = GaussianMechanism(
                histogram_l2_sensitivity(), sigma_g, rng)
            counts = mechanism.release(counts)
        counts = np.maximum(counts, 0.0)
        total = counts.sum()
        probs = (counts / total if total > 0
                 else np.full(size, 1.0 / size))
        return cls(attribute, probs, quantizer)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` attribute values (codes or raw floats)."""
        idx = rng.choice(self.probs.shape[0], size=n, p=self.probs)
        if self.quantizer is None:
            return idx.astype(np.int64)
        return self.quantizer.decode(idx, rng)

    def log_prob_codes(self) -> np.ndarray:
        """Log probabilities over codes/bins (for instance scoring)."""
        return np.log(np.maximum(self.probs, 1e-300))


class ProbModel:
    """The learned probabilistic data model M (output of Algorithm 2)."""

    def __init__(self, relation, sequence, first: HistogramModel,
                 submodels: dict, independent: dict,
                 context_attrs: dict):
        self.relation = relation
        self.sequence = list(sequence)
        self.first = first
        self.submodels = submodels        # target attr -> AimNet
        self.independent = independent    # attr -> HistogramModel
        self.context_attrs = context_attrs  # target attr -> [context names]

    def conditional(self, target: str, batch_cols: dict):
        """Conditional distribution of ``target`` given context columns.

        Returns an ``(n, V)`` probability matrix for categorical targets
        or an ``(mu, sigma)`` pair of ``(n,)`` arrays for numerical
        targets.
        """
        model: AimNet = self.submodels[target]
        if model.target_is_categorical:
            return model.predict_proba(batch_cols)
        return model.predict_gaussian(batch_cols)


def _poisson_batch(n: int, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Indices of a Poisson-sampled batch (each row independently)."""
    return np.nonzero(rng.random(n) < rate)[0]


def train_model(table, relation, sequence, params, rng: np.random.Generator,
                independent_attrs=(), parallel: bool = False,
                private: bool = True) -> ProbModel:
    """Algorithm 2: fit the first-attribute histogram and the sub-models.

    Parameters
    ----------
    table:
        The (working-schema) private instance ``D*``.
    relation, sequence:
        Working schema and schema sequence.
    params:
        A :class:`~repro.core.params.KaminoParams`.
    rng:
        Randomness for noise, batching, and initialisation.
    independent_attrs:
        §4.3 large-domain attributes: modeled as standalone histograms,
        excluded from every sub-model's context.
    parallel:
        Disable embedding reuse (Experiment 10).
    private:
        False disables all noise — the epsilon = inf configuration of
        Figure 6.
    """
    independent_set = set(independent_attrs)
    n = table.n

    first_attr = sequence[0]
    first = HistogramModel.fit(
        table.column(first_attr), relation[first_attr], params.sigma_g,
        params.quant_bins, rng, private=private)

    independent = {}
    for attr in sequence[1:]:
        if attr in independent_set:
            independent[attr] = HistogramModel.fit(
                table.column(attr), relation[attr], params.sigma_g,
                params.quant_bins, rng, private=private)

    store = EmbeddingStore(params.embed_dim, rng)
    submodels: dict[str, AimNet] = {}
    context_attrs: dict[str, list[str]] = {}
    sample_rate = min(params.batch / n, 1.0)

    for j in range(1, len(sequence)):
        target = sequence[j]
        if target in independent_set:
            continue
        context = [a for a in sequence[:j] if a not in independent_set]
        if not context:
            # Degenerate: every earlier attribute is independent; fall
            # back to a histogram for this attribute as well.
            independent[target] = HistogramModel.fit(
                table.column(target), relation[target], params.sigma_g,
                params.quant_bins, rng, private=private)
            continue
        model_store = (EmbeddingStore(params.embed_dim, rng)
                       if parallel else store)
        model = AimNet(relation, context, target, params.embed_dim, rng,
                       store=model_store)
        # Non-private runs skip the noise and relax (but keep) the
        # gradient clip: clipping exists to bound the DP sensitivity,
        # yet a loose clip also stabilises the Gaussian-NLL head, whose
        # gradients blow up when log-sigma drifts low early in training.
        noise = params.sigma_d if private else 0.0
        clip = params.clip_norm if private else 10.0
        optimizer = DPSGD(model.parameters(), lr=params.lr,
                          clip_norm=clip, noise_scale=noise,
                          expected_batch=params.batch, rng=rng)
        target_col = table.column(target)
        cols = {a: table.column(a) for a in context}
        for _ in range(params.iterations):
            idx = _poisson_batch(n, sample_rate, rng)
            optimizer.zero_grad()
            if idx.size:
                batch_cols = {a: cols[a][idx] for a in context}
                model.loss_backward(batch_cols, target_col[idx],
                                    per_sample=True)
            optimizer.step()
        submodels[target] = model
        context_attrs[target] = context

    return ProbModel(relation, sequence, first, submodels, independent,
                     context_attrs)
