"""Kamino core: the paper's primary contribution.

* :mod:`repro.core.sequencing` — Algorithm 4 (constraint-aware
  attribute sequencing) and the §4.3 domain-size optimisations;
* :mod:`repro.core.params` — Algorithm 6 (privacy parameter search);
* :mod:`repro.core.training` — Algorithm 2 (private learning of the
  tuple probability chain);
* :mod:`repro.core.weights` — Algorithm 5 (private DC-weight learning);
* :mod:`repro.core.sampling` — Algorithm 3 (constraint-aware instance
  sampling), the constrained MCMC refinement, the accept-reject
  alternative (Experiment 6), and the hard-FD lookup fast path
  (Experiment 10);
* :mod:`repro.core.engine` — the block-scheduled vectorized sampling
  engine (``KaminoConfig.engine = "blocked"``, the default): conflict-
  aware batching over the violation-index group keys, counter-based
  per-cell rng, and sharded parallel draws (``sample(..., workers=k)``);
* :mod:`repro.core.kamino` — Algorithm 1 (end-to-end orchestration),
  staged as ``KaminoConfig`` -> ``Kamino.fit`` -> ``FittedKamino``
  (train once, sample/persist many);
* :mod:`repro.core.model_io` — persistence for fitted models.
"""

from repro.core.sequencing import sequence_attributes, group_small_domains
from repro.core.params import KaminoParams, search_dp_params
from repro.core.training import ProbModel, train_model
from repro.core.weights import learn_dc_weights
from repro.core.sampling import ar_sample, synthesize
from repro.core.engine import synthesize_engine
from repro.core.kamino import (
    FittedKamino, Kamino, KaminoConfig, KaminoResult,
)
from repro.core.growing import GrowingSynthesizer, UpdateDecision
from repro.core.model_io import load_model, save_model

__all__ = [
    "FittedKamino",
    "GrowingSynthesizer",
    "Kamino",
    "KaminoConfig",
    "KaminoParams",
    "KaminoResult",
    "ProbModel",
    "ar_sample",
    "group_small_domains",
    "learn_dc_weights",
    "load_model",
    "save_model",
    "search_dp_params",
    "sequence_attributes",
    "synthesize",
    "synthesize_engine",
    "train_model",
    "UpdateDecision",
]
