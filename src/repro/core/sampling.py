"""Algorithm 3 — constraint-aware database instance sampling.

The sampler walks the working schema sequence attribute by attribute and
tuple by tuple.  For each cell it combines

* the learned conditional ``p_{v|c}`` from the probabilistic data model
  (batched over all rows — the conditional does not depend on the DC
  state, so one forward pass per attribute suffices), and
* the violation penalty ``exp(- sum_phi w_phi * vio_phi,v)`` against the
  already-sampled prefix (Algorithm 3, lines 7-10),

and samples from the normalised product.  Hard DCs use an effectively
infinite weight: any candidate that would create a violation is
excluded unless *every* candidate violates, in which case the sampler
falls back to the minimum-violation candidates (the probabilistic-
database semantics: all remaining instances are "almost surely" ruled
out, so we pick the least bad).

Also implemented here:

* the constrained MCMC refinement (line 12): after a column is filled,
  ``m`` random cells are re-sampled conditioned on *all* other cells;
* :func:`ar_sample` — the accept-reject alternative of Experiment 6;
* the hard-FD lookup fast path of Experiment 10 (``use_fd_lookup``):
  when the target is the dependent of a hard FD whose determinant is
  already sampled, the forced value is read from an incremental index
  instead of scanning the prefix.

The violation counts themselves come from the incremental violation
indexes of :mod:`repro.constraints.index` (``use_violation_index``,
default on): as each row is sampled it is folded into a per-DC index,
and the per-candidate count at line 8 becomes an O(group) probe instead
of an O(prefix) broadcast rescan.  DC shapes without an indexable
structure fall back to the scan engine; counts are bit-identical in
both modes.

Both entry points are pure post-processing over a trained model: they
read only the model, the (public) DCs and weights, and an rng.  Each
call builds its own fresh violation-index state, so one
:class:`~repro.core.kamino.FittedKamino` can serve arbitrarily many
concurrent draws at different sizes and seeds — the train-once /
sample-many service shape.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.constraints.fd import FDIndex, extract_fds
from repro.constraints.index import (
    FDViolationIndex, OrderViolationIndex, ViolationIndex, build_index,
)
from repro.constraints.violations import multi_candidate_violation_counts
from repro.core.hyper import HyperSpec
from repro.schema.table import Table

#: Weight standing in for "infinitely large" on hard DCs; applied in
#: log space, it zeroes every violating candidate's probability.
HARD_WEIGHT = 1e9


class PrefixScanRequired(RuntimeError):
    """An exact answer would need the full sampled prefix arrays.

    Raised in *strict* mode (streaming chunked draws, which retain only
    the incremental violation indexes — not the prefix itself) when a
    DC shape has no index-served path.  Single-shot draws never strict
    and simply scan.
    """


def _log_normalise_sample(log_p: np.ndarray, rng: np.random.Generator) -> int:
    """Sample an index from unnormalised log probabilities."""
    shifted = log_p - log_p.max()
    probs = np.exp(shifted)
    total = probs.sum()
    if not np.isfinite(total) or total <= 0:
        # Every candidate is excluded: fall back to the least-penalised.
        best = np.flatnonzero(log_p == log_p.max())
        return int(rng.choice(best))
    return int(rng.choice(log_p.shape[0], p=probs / total))


def _gumbel_argmax(log_p: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorized categorical sampling: one draw per row of ``log_p``."""
    gumbel = -np.log(-np.log(rng.random(log_p.shape) + 1e-300) + 1e-300)
    return np.argmax(log_p + gumbel, axis=1)


class _ColumnSampler:
    """Shared machinery between the direct sampler and accept-reject."""

    def __init__(self, model, relation, hyper: HyperSpec, dcs, weights,
                 params, rng, use_fd_lookup: bool = False,
                 use_violation_index: bool = True):
        self.model = model
        self.relation = relation
        self.hyper = hyper
        self.dcs = list(dcs)
        self.weights = dict(weights)
        self.params = params
        self.rng = rng
        self.use_fd_lookup = use_fd_lookup
        self.use_violation_index = use_violation_index

        self.wseq = hyper.working_sequence
        self.wrel = hyper.working_relation
        # Original attributes covered after each working position.
        self.covered_after: list[set[str]] = []
        covered: set[str] = set()
        for w in self.wseq:
            covered |= set(hyper.original_attrs(w))
            self.covered_after.append(set(covered))
        # Assign each DC to the first working position covering it.
        self.active_at: dict[int, list] = {j: [] for j in range(len(self.wseq))}
        for dc in self.dcs:
            for j, cov in enumerate(self.covered_after):
                if dc.attributes <= cov:
                    self.active_at[j].append(dc)
                    break
            else:
                raise ValueError(
                    f"DC {dc.name} references attributes outside the schema")
        # Numerical attributes participating in DCs get their candidates
        # snapped to a coarse grid: order constraints (hard or soft) are
        # only satisfiable/cheap when values collide (as they do in real
        # data), and a continuous column is almost-surely collision
        # free.  Mirrors the paper's quantized numeric handling.  Small
        # integer domains snap to the integers themselves.
        self.snap_grids: dict[str, np.ndarray] = {}
        dc_attrs: set[str] = set()
        for dc in self.dcs:
            dc_attrs |= dc.attributes
        for name in dc_attrs:
            attr = relation[name]
            if attr.is_numerical:
                domain = attr.domain
                if domain.integer and domain.width <= 64:
                    grid = np.arange(domain.low, domain.high + 1)
                else:
                    from repro.schema.quantize import Quantizer
                    grid = Quantizer(domain, params.quant_bins).centers()
                    # Integer domains must stay integral after snapping.
                    grid = np.unique(domain.clip(grid))
                self.snap_grids[name] = grid

    def snap(self, name: str, values: np.ndarray) -> np.ndarray:
        """Snap values to the attribute's grid if it has one."""
        grid = self.snap_grids.get(name)
        if grid is None:
            return values
        idx = np.clip(np.searchsorted(grid, values), 0, grid.size - 1)
        left = np.clip(idx - 1, 0, grid.size - 1)
        nearer_left = (np.abs(grid[left] - values)
                       < np.abs(grid[idx] - values))
        return np.where(nearer_left, grid[left], grid[idx])

    # ------------------------------------------------------------------
    def weight_of(self, dc) -> float:
        if dc.hard:
            return HARD_WEIGHT
        w = self.weights.get(dc.name, 0.0)
        return HARD_WEIGHT if math.isinf(w) else float(w)

    def base_distribution(self, j: int, wcols: dict, n: int):
        """Per-row base conditional for working position ``j``.

        Returns ``("cat", logp)`` with ``logp`` of shape (n, V), or
        ``("num", mu, sigma)`` for numerical sub-model targets, or
        ``("numhist", hist)`` for histogram-modeled numerical targets.
        """
        w = self.wseq[j]
        wattr = self.wrel[w]
        if j == 0 or w in self.model.independent:
            hist = self.model.first if j == 0 else self.model.independent[w]
            if wattr.is_categorical:
                logp = np.tile(hist.log_prob_codes(), (n, 1))
                return ("cat", logp)
            return ("numhist", hist)
        batch_cols = {a: wcols[a] for a in self.model.context_attrs[w]}
        # BLAS routes a 1-row batch through a different kernel (gemv)
        # whose reduction order can drift an ulp from the row-sliced
        # gemm of a larger batch.  Duplicate the row so every schedule
        # (single-shot, sharded, streamed) sees the same row-pure gemm.
        pad = n == 1
        if pad:
            batch_cols = {a: np.repeat(c[:1], 2)
                          for a, c in batch_cols.items()}
        if wattr.is_categorical:
            probs = self.model.conditional(w, batch_cols)
            if pad:
                probs = probs[:1]
            return ("cat", np.log(np.maximum(probs, 1e-300)))
        mu, sigma = self.model.conditional(w, batch_cols)
        if pad:
            mu, sigma = mu[:1], sigma[:1]
        return ("num", mu, np.maximum(sigma, 1e-9))

    def candidates_for_row(self, j: int, base, i: int,
                           cols: dict | None = None,
                           indexes: dict[str, ViolationIndex] | None = None,
                           used: set | None = None):
        """(working_values, original_decodes, base_logp) for row ``i``.

        ``working_values`` is the length-d candidate vector in working
        space; ``original_decodes`` maps each member attribute to its
        length-d decoded candidate column.

        For *numerical* targets the Gaussian candidate draw is augmented
        with values copied from prefix rows that agree with row ``i`` on
        the other attributes of each active hard DC.  A categorical
        target always contains its zero-violation value (the full domain
        is enumerated) — the augmentation restores the same guarantee
        for continuous domains, where a finite draw can miss the single
        consistent value (e.g. the dependent of a hard FD).
        """
        w = self.wseq[j]
        wattr = self.wrel[w]
        if base[0] == "cat":
            cand = np.arange(wattr.domain.size, dtype=np.int64)
            logp = base[1][i]
        elif base[0] == "num":
            _, mu, sigma = base
            d = self.params.num_candidates
            cand = self.rng.normal(mu[i], sigma[i], size=d)
            cand = self.snap(w, wattr.domain.clip(cand))
            if cols is not None:
                extra = self._consistent_values(j, w, cols, i,
                                                indexes=indexes)
                fresh = self._fresh_values(j, w, cols, i, used=used)
                if extra.size or fresh.size:
                    cand = np.concatenate([cand, extra, fresh])
            logp = -0.5 * ((cand - mu[i]) / sigma[i]) ** 2
        else:  # numerical histogram
            hist = base[1]
            bins = np.arange(hist.probs.shape[0])
            cand = self.snap(w, hist.quantizer.decode(bins, self.rng))
            logp = hist.log_prob_codes()
            if cols is not None:
                extra = self._consistent_values(j, w, cols, i,
                                                indexes=indexes)
                fresh = self._fresh_values(j, w, cols, i, used=used)
                if extra.size or fresh.size:
                    added = np.concatenate([extra, fresh])
                    cand = np.concatenate([cand, added])
                    logp = np.concatenate(
                        [logp, hist.log_prob_codes()[
                            hist.quantizer.encode(added)]])
        if self.hyper.is_hyper(w):
            decode = self.hyper.decode_codes(w, cand)
        else:
            decode = {w: cand}
        return cand, decode, logp

    def _consistent_values(self, j: int, target: str, cols: dict,
                           i: int, limit: int = 4,
                           indexes: dict[str, ViolationIndex] | None = None,
                           strict: bool = False,
                           prefix_rows: int | None = None) -> np.ndarray:
        """Target values of prefix rows matching row ``i`` on the other
        attributes of each active hard DC (always violation-free for
        two-tuple DCs against those rows).

        When a violation index covering the prefix is available it
        replaces the scan exactly: an FD determinant group (or its
        reverse histogram lookup when the target sits *inside* the
        determinant) and an order group's point arrays yield the same
        sorted-distinct sets as ``np.unique`` over the prefix.  In
        ``strict`` mode (streaming — the prefix arrays are gone) a DC
        with no index-served path raises :class:`PrefixScanRequired`.
        ``prefix_rows`` is the number of rows already sampled *globally*
        when it differs from ``i`` (chunked draws).
        """
        hist = i if prefix_rows is None else prefix_rows
        values: list[float] = []
        for dc in self.active_at[j]:
            if not dc.hard or dc.is_unary or target not in dc.attributes:
                continue
            others = [a for a in dc.attributes if a != target]
            if not others or hist == 0:
                continue
            index = indexes.get(dc.name) if indexes else None
            matched: list | None = None
            if (isinstance(index, OrderViolationIndex)
                    and target in (index.greater_attr, index.less_attr)):
                partner = (index.less_attr
                           if target == index.greater_attr
                           else index.greater_attr)
                profile = index.group_profile(
                    {a: cols[a][i] for a in index.eq_attrs}, target,
                    cols[partner][i], limit)
                if profile is not None:
                    # Fenwick-backed group: the equality-matched values
                    # and the feasible-interval endpoints in O(log g),
                    # identical to the scans below.
                    matching, below_max, above_min = profile
                    values.extend(matching)
                    if below_max is not None:
                        values.append(below_max)
                    if above_min is not None:
                        values.append(above_min)
                    continue
                points = index.group_points(
                    {a: cols[a][i] for a in index.eq_attrs})
                if points is None:
                    matched = []  # empty group == empty scan mask
                else:
                    t_vals, p_vals = ((points[0], points[1])
                                      if target == index.greater_attr
                                      else (points[1], points[0]))
                    sel = np.asarray(p_vals) == cols[partner][i]
                    matched = np.unique(
                        np.asarray(t_vals)[sel])[:limit].tolist()
            elif isinstance(index, FDViolationIndex):
                if index.dependent == target:
                    key_row = {a: cols[a][i] for a in index.determinant}
                    matched = index.dependents_of(key_row)[:limit]
                else:
                    row = {a: cols[a][i] for a in dc.attributes}
                    matched = index.matched_det_values(target,
                                                       row)[:limit]
            if matched is None:
                if strict:
                    raise PrefixScanRequired(
                        f"DC {dc.name!r} (target {target!r}) has no "
                        f"index-served consistent-value path")
                mask = np.ones(i, dtype=bool)
                for a in others:
                    mask &= cols[a][:i] == cols[a][i]
                matched = np.unique(
                    cols[target][:i][mask])[:limit].tolist()
            values.extend(matched)
            values.extend(self._order_interval(dc, target, cols, i,
                                               index=index,
                                               strict=strict))
        if not values:
            return np.empty(0, dtype=np.float64)
        # sorted-distinct == np.unique, without the array machinery
        # (the list rarely exceeds a dozen values).
        return np.array(sorted({float(v) for v in values}),
                        dtype=np.float64)

    def fresh_value_tracker(self, j: int) -> set | None:
        """Incrementally maintained used-value set for position ``j``.

        :meth:`_fresh_values` needs the set of target values already
        present in the prefix; re-deriving it with ``np.unique`` per row
        is O(prefix) per numerical candidate row.  When the target is
        the (numerical, non-hyper) determinant of an active hard FD, the
        fill loops maintain this set instead — add the written value
        after every row — and membership matches the scan exactly.
        Returns None when tracking is unnecessary for this position.
        """
        w = self.wseq[j]
        if self.hyper.is_hyper(w) or not self.wrel[w].is_numerical:
            return None
        is_fd_det = any(
            dc.hard and (shape := dc.as_fd()) is not None
            and w in shape[0]
            for dc in self.active_at[j])
        return set() if is_fd_det else None

    def _fresh_values(self, j: int, target: str, cols: dict, i: int,
                      limit: int = 2, tries: int = 24,
                      used: set | None = None,
                      uniforms: np.ndarray | None = None,
                      prefix_rows: int | None = None) -> np.ndarray:
        """Unused domain values for determinants of active hard FDs.

        A key-like numerical attribute (e.g. TPC-H's ``c_custkey``) gets
        its Gaussian candidates snapped to a coarse grid; once every
        grid value is bound to a dependent value, a row carrying a new
        dependent has no feasible snapped candidate.  Values *absent*
        from the prefix are always violation-free for FD-shaped DCs, so
        a few fresh draws (deliberately not snapped) keep the hard
        constraint satisfiable.

        ``used`` is the incrementally maintained prefix-value set from
        :meth:`fresh_value_tracker` (None re-scans the prefix, the
        legacy behaviour).  ``uniforms`` supplies ``tries`` pre-drawn
        uniform variates in [0, 1) instead of consuming ``self.rng`` —
        the counter-based stream hook of the blocked engine.
        """
        is_fd_det = any(
            dc.hard and (shape := dc.as_fd()) is not None
            and target in shape[0]
            for dc in self.active_at[j])
        hist = i if prefix_rows is None else prefix_rows
        if not is_fd_det or hist == 0:
            return np.empty(0, dtype=np.float64)
        attr = self.relation[target]
        if not attr.is_numerical:
            return np.empty(0, dtype=np.float64)
        domain = attr.domain
        if used is None:
            used = set(np.unique(cols[target][:i]).tolist())
            drawn = used
        else:
            drawn: set = set()
        out: list[float] = []
        for t in range(tries):
            if len(out) >= limit:
                break
            if uniforms is None:
                if domain.integer:
                    v = float(self.rng.integers(int(domain.low),
                                                int(domain.high) + 1))
                else:
                    v = float(self.rng.uniform(domain.low, domain.high))
            else:
                u = float(uniforms[t])
                if domain.integer:
                    span = int(domain.high) - int(domain.low) + 1
                    v = float(int(domain.low) + min(int(u * span), span - 1))
                else:
                    v = float(domain.low + u * (domain.high - domain.low))
            if v not in used and v not in drawn:
                out.append(v)
                drawn.add(v)
        return np.asarray(out, dtype=np.float64)

    def _order_interval(self, dc, target: str, cols: dict, i: int,
                        index: ViolationIndex | None = None,
                        strict: bool = False) -> list[float]:
        """Feasible-interval endpoints for conditional-order hard DCs.

        For ``not(E= and A> and B<)`` with the prefix consistent, the
        zero-violation values of the target given the already-set
        partner attribute form the closed interval
        ``[max{t_p : partner_p "below"}, min{t_p : partner_p "above"}]``
        within the equality group, and both endpoints are feasible.

        With an order violation index covering the prefix the group's
        point arrays replace the O(prefix) equality scan.
        """
        shape = dc.as_conditional_order()
        if shape is None:
            return []
        eq_attrs, greater_attr, less_attr = shape
        if target == greater_attr:
            partner = less_attr
        elif target == less_attr:
            partner = greater_attr
        else:
            return []
        p_now = cols[partner][i]
        if isinstance(index, OrderViolationIndex):
            points = index.group_points(
                {a: cols[a][i] for a in eq_attrs})
            if points is None:
                return []
            a_vals, b_vals = points
            t_vals = a_vals if target == greater_attr else b_vals
            p_vals = b_vals if target == greater_attr else a_vals
        else:
            if strict:
                raise PrefixScanRequired(
                    f"DC {dc.name!r} (target {target!r}) has no order "
                    f"index covering the prefix")
            mask = np.ones(i, dtype=bool)
            for a in eq_attrs:
                mask &= cols[a][:i] == cols[a][i]
            if not mask.any():
                return []
            t_vals = cols[target][:i][mask]
            p_vals = cols[partner][:i][mask]
        # For target = greater_attr (A), partner below means B_p < b_i
        # under orientation "new as i"; for target = less_attr the
        # inequalities mirror, and the same below/above split applies.
        # Both orientations reduce to: the target must lie at or above
        # every group row whose partner is below the current one, and at
        # or below every group row whose partner is above it.
        below = t_vals[p_vals < p_now]
        above = t_vals[p_vals > p_now]
        out = []
        if below.size:
            out.append(float(below.max()))
        if above.size:
            out.append(float(above.min()))
        return out

    def violation_penalty(self, j: int, decode: dict, cols: dict,
                          i: int, exclude_self: bool = False,
                          indexes: dict[str, ViolationIndex] | None = None,
                          ) -> np.ndarray:
        """Weighted violation counts per candidate (Algorithm 3 line 8).

        ``exclude_self`` switches from prefix counting (rows < i) to
        all-other-rows counting (the MCMC re-sampling conditional).
        ``indexes`` maps DC names to incremental violation indexes whose
        state covers exactly the rows the probe should count against;
        DCs without an index (or probes an index cannot answer) fall
        back to the O(prefix) scan engine.
        """
        d = next(iter(decode.values())).shape[0]
        penalty = np.zeros(d)
        for dc in self.active_at[j]:
            target_values = {a: decode[a] for a in dc.attributes
                             if a in decode}
            context = {a: cols[a][i] for a in dc.attributes
                       if a not in target_values}
            counts = None
            if indexes is not None:
                index = indexes.get(dc.name)
                if index is not None:
                    counts = index.candidate_counts(target_values, context)
            if counts is None:
                if exclude_self:
                    prefix = {a: np.concatenate([cols[a][:i],
                                                 cols[a][i + 1:]])
                              for a in dc.attributes}
                else:
                    prefix = {a: cols[a][:i] for a in dc.attributes}
                counts = multi_candidate_violation_counts(
                    dc, target_values, context, prefix)
            penalty = penalty + self.weight_of(dc) * counts
        return penalty

    def violation_indexes_for(self, j: int,
                              removable: bool = False,
                              ) -> dict[str, ViolationIndex]:
        """Fresh (empty) incremental indexes for the DCs active at ``j``.

        Only shapes with a group-structured probe are indexed (FD and
        conditional-order DCs): unary probes are already O(d) without a
        prefix, and generic binary probes have no exploitable structure.
        ``removable`` additionally requires remove support (the MCMC
        all-but-one conditional).
        """
        if not self.use_violation_index:
            return {}
        out: dict[str, ViolationIndex] = {}
        for dc in self.active_at[j]:
            if dc.is_unary:
                continue
            index = build_index(dc)
            if not index.supports_candidates:
                continue
            if removable and not index.supports_removal:
                continue
            if isinstance(index, OrderViolationIndex):
                # Fenwick-backed order groups: the sampler knows both
                # order attributes' value grids up front (snap grids /
                # code ranges), which is exactly the compressed universe
                # the O(log group) probe path needs.
                index.provide_universe(
                    self.value_universe(index.greater_attr),
                    self.value_universe(index.less_attr))
            out[dc.name] = index
        return out

    def value_universe(self, name: str) -> np.ndarray | None:
        """Every value attribute ``name`` can take in sampled output
        (codes for categoricals, the snap grid for DC numericals), or
        None when the value set is not enumerable."""
        attr = self.relation[name]
        if attr.is_categorical:
            return np.arange(attr.domain.size, dtype=np.float64)
        return self.snap_grids.get(name)

    def fd_indexes_for(self, j: int) -> list[FDIndex]:
        """Hard-FD indexes usable at position ``j`` (fast path).

        The FD must be hard, its dependent must be the (singleton)
        target, and its determinant fully covered by earlier positions.
        """
        if not self.use_fd_lookup:
            return []
        w = self.wseq[j]
        if self.hyper.is_hyper(w):
            return []
        earlier = self.covered_after[j - 1] if j > 0 else set()
        out = []
        for determinant, dependent, dc in extract_fds(self.dcs):
            if dc.hard and dependent == w and set(determinant) <= earlier:
                out.append(FDIndex(determinant, dependent))
        return out


def synthesize(model, relation, dcs, weights, n: int, params,
               rng: np.random.Generator, hyper: HyperSpec | None = None,
               use_fd_lookup: bool = False,
               use_violation_index: bool = True,
               trace=None) -> Table:
    """Algorithm 3: sample a synthetic instance of ``n`` rows.

    Parameters
    ----------
    model:
        The learned :class:`~repro.core.training.ProbModel`.
    relation:
        The *original* schema (output table schema).
    dcs, weights:
        Denial constraints (bound to the schema) and their weights; hard
        DCs are enforced regardless of their weight entry.
    n:
        Number of rows to generate.
    params:
        :class:`~repro.core.params.KaminoParams` (candidate counts and
        the MCMC budget ``mcmc_m`` are read from here).
    hyper:
        Grouping spec; defaults to the trivial one.
    use_fd_lookup:
        Enable the hard-FD lookup fast path (Experiment 10).
    use_violation_index:
        Probe per-cell violation counts through the incremental
        violation indexes (O(group) per probe) instead of re-scanning
        the sampled prefix.  Counts are bit-identical either way; this
        switch exists for benchmarking and as a fallback.
    trace:
        Optional :class:`repro.obs.trace.SampleTrace`: records one
        :class:`~repro.obs.trace.ColumnTrace` per working column (wall
        clock, lane, forced rows, index probe counts).  Tracing never
        touches the rng — a traced draw is bit-identical to an untraced
        one — and None (the default) costs nothing.
    """
    if hyper is None:
        hyper = HyperSpec.trivial(relation, model.sequence)
    sampler = _ColumnSampler(model, relation, hyper, dcs, weights, params,
                             rng, use_fd_lookup,
                             use_violation_index=use_violation_index)
    cols = _allocate_columns(relation, n)
    wcols = _allocate_working(sampler, cols, n)

    for j in range(len(sampler.wseq)):
        col_trace = None
        if trace is not None:
            col_trace = trace.column(sampler.wseq[j])
            col_start = time.perf_counter()
        _fill_column(sampler, j, cols, wcols, n, tracer=col_trace)
        if params.mcmc_m > 0:
            _mcmc_resample(sampler, j, cols, wcols, n, params.mcmc_m)
        if col_trace is not None:
            col_trace.finish(time.perf_counter() - col_start, n)
    return Table(relation, cols, validate=False)


def _allocate_columns(relation, n: int) -> dict:
    cols = {}
    for attr in relation:
        if attr.is_categorical:
            cols[attr.name] = np.zeros(n, dtype=np.int64)
        else:
            cols[attr.name] = np.full(n, attr.domain.low, dtype=np.float64)
    return cols


def _allocate_working(sampler: _ColumnSampler, cols: dict, n: int) -> dict:
    """Working columns; singletons alias the original column arrays."""
    wcols = {}
    for w in sampler.wseq:
        if sampler.hyper.is_hyper(w):
            wcols[w] = np.zeros(n, dtype=np.int64)
        else:
            wcols[w] = cols[w]
    return wcols


def _write_cell(sampler: _ColumnSampler, j: int, i: int, cand_idx: int,
                working_values: np.ndarray, decode: dict, cols: dict,
                wcols: dict) -> None:
    w = sampler.wseq[j]
    wcols[w][i] = working_values[cand_idx]
    if sampler.hyper.is_hyper(w):
        for attr, values in decode.items():
            cols[attr][i] = values[cand_idx]


def _fill_column(sampler: _ColumnSampler, j: int, cols: dict, wcols: dict,
                 n: int, fd_indexes: list | None = None,
                 tracer=None) -> None:
    rng = sampler.rng
    base = sampler.base_distribution(j, wcols, n)
    active = sampler.active_at[j]
    if fd_indexes is None:
        fd_indexes = sampler.fd_indexes_for(j)

    if not active and not fd_indexes:
        if tracer is not None:
            tracer.mode = "iid-vectorized"
        _fill_column_vectorized(sampler, j, base, cols, wcols, n)
        return

    w = sampler.wseq[j]
    vio_indexes = sampler.violation_indexes_for(j)
    used = sampler.fresh_value_tracker(j)
    if tracer is not None:
        tracer.mode = "sequential"
        tracer.count("sequential_rows", n)
        for index in vio_indexes.values():
            index.counters = tracer.probes
    for i in range(n):
        if fd_indexes:
            forced = _forced_value(fd_indexes, cols, i)
            if forced is not None:
                if tracer is not None:
                    tracer.count("forced_rows")
                wcols[w][i] = forced
                # The forced row pins its determinant groups in *every*
                # FD index targeting this dependent, not only the one
                # that forced it — otherwise, with two hard FDs sharing
                # a dependent, the second index misses forced rows and
                # can later force a value inconsistent with them.
                _record_fd(fd_indexes, cols, i)
                _append_row(vio_indexes, cols, i)
                if used is not None:
                    used.add(float(cols[w][i]))
                continue
        cand, decode, logp = sampler.candidates_for_row(
            j, base, i, cols, indexes=vio_indexes, used=used)
        penalty = sampler.violation_penalty(j, decode, cols, i,
                                            indexes=vio_indexes)
        choice = _log_normalise_sample(logp - penalty, rng)
        _write_cell(sampler, j, i, choice, cand, decode, cols, wcols)
        _record_fd(fd_indexes, cols, i)
        _append_row(vio_indexes, cols, i)
        if used is not None:
            used.add(float(cols[w][i]))


def _forced_value(fd_indexes, cols: dict, i: int):
    for index in fd_indexes:
        row = {a: cols[a][i] for a in index.determinant}
        value = index.forced_value(row)
        if value is not None:
            return value
    return None


def _record_fd(fd_indexes, cols: dict, i: int) -> None:
    """Pin row ``i``'s determinant -> dependent mapping in every index."""
    for index in fd_indexes:
        row = {a: cols[a][i] for a in index.determinant}
        index.record(row, cols[index.dependent][i])


def _append_row(vio_indexes: dict, cols: dict, i: int) -> None:
    """Fold the freshly written row ``i`` into the violation indexes."""
    for index in vio_indexes.values():
        index.append_from(cols, i)


def _fill_column_vectorized(sampler: _ColumnSampler, j: int, base,
                            cols: dict, wcols: dict, n: int) -> None:
    """No active DCs at this position: i.i.d. sampling, fully batched."""
    rng = sampler.rng
    w = sampler.wseq[j]
    if base[0] == "cat":
        codes = _gumbel_argmax(base[1], rng)
        wcols[w][:] = codes
        if sampler.hyper.is_hyper(w):
            for attr, values in sampler.hyper.decode_codes(w, codes).items():
                cols[attr][:] = values
    elif base[0] == "num":
        _, mu, sigma = base
        # Candidate-and-reweight (paper §4.2): d draws per row, chosen
        # with probability proportional to the Gaussian density.
        d = sampler.params.num_candidates
        cand = rng.normal(mu[:, None], sigma[:, None], size=(n, d))
        cand = sampler.snap(w, sampler.wrel[w].domain.clip(cand))
        logp = -0.5 * ((cand - mu[:, None]) / sigma[:, None]) ** 2
        pick = _gumbel_argmax(logp, rng)
        wcols[w][:] = cand[np.arange(n), pick]
    else:  # numerical histogram
        hist = base[1]
        wcols[w][:] = sampler.snap(w, hist.sample(n, rng))


def _mcmc_resample(sampler: _ColumnSampler, j: int, cols: dict, wcols: dict,
                   n: int, m: int) -> None:
    """Constrained MCMC (Algorithm 3 line 12): re-sample ``m`` random
    cells of column ``j`` conditioned on every other cell."""
    rng = sampler.rng
    base = sampler.base_distribution(j, wcols, n)
    vio_indexes = sampler.violation_indexes_for(j, removable=True)
    for index in vio_indexes.values():
        index.build(cols, n)
    for _ in range(m):
        i = int(rng.integers(0, n))
        # The conditional counts against all *other* rows: lift row i
        # out of the indexes, probe, then fold the re-sampled row back.
        for index in vio_indexes.values():
            index.remove_from(cols, i)
        cand, decode, logp = sampler.candidates_for_row(j, base, i, cols)
        penalty = sampler.violation_penalty(j, decode, cols, i,
                                            exclude_self=True,
                                            indexes=vio_indexes)
        choice = _log_normalise_sample(logp - penalty, rng)
        _write_cell(sampler, j, i, choice, cand, decode, cols, wcols)
        _append_row(vio_indexes, cols, i)


def ar_sample(model, relation, dcs, weights, n: int, params,
              rng: np.random.Generator, hyper: HyperSpec | None = None,
              max_tries: int = 300,
              use_violation_index: bool = True) -> Table:
    """Experiment 6's accept-reject sampler.

    Each cell repeatedly draws a value from the base conditional and
    accepts it with probability ``exp(-sum w * vio)``; after
    ``max_tries`` rejections the last draw is kept (so hard-DC
    violations *can* occur — the behaviour the paper reports).
    """
    if hyper is None:
        hyper = HyperSpec.trivial(relation, model.sequence)
    sampler = _ColumnSampler(model, relation, hyper, dcs, weights, params,
                             rng, use_violation_index=use_violation_index)
    cols = _allocate_columns(relation, n)
    wcols = _allocate_working(sampler, cols, n)

    for j in range(len(sampler.wseq)):
        base = sampler.base_distribution(j, wcols, n)
        active = sampler.active_at[j]
        if not active:
            _fill_column_vectorized(sampler, j, base, cols, wcols, n)
            continue
        vio_indexes = sampler.violation_indexes_for(j)
        used = sampler.fresh_value_tracker(j)
        for i in range(n):
            cand, decode, logp = sampler.candidates_for_row(
                j, base, i, cols, indexes=vio_indexes, used=used)
            shifted = np.exp(logp - logp.max())
            probs = shifted / shifted.sum()
            choice = None
            for _ in range(max_tries):
                draw = int(rng.choice(probs.shape[0], p=probs))
                one = {a: v[draw:draw + 1] for a, v in decode.items()}
                penalty = sampler.violation_penalty(j, one, cols, i,
                                                    indexes=vio_indexes)[0]
                if penalty <= 0 or rng.random() < math.exp(-min(penalty, 700)):
                    choice = draw
                    break
                choice = draw  # keep the last draw if all rejected
            _write_cell(sampler, j, i, choice, cand, decode, cols, wcols)
            _append_row(vio_indexes, cols, i)
            if used is not None:
                used.add(float(cols[sampler.wseq[j]][i]))
    return Table(relation, cols, validate=False)
