"""Growing-database support (§3.2 discussion; paper future work [27]).

The paper's system assumes a static instance, but notes the intended
operational policy for input changes:

* if the DCs change such that Algorithm 4 would produce a *different
  schema sequence*, re-run all of Kamino;
* if the data distribution *shifts significantly*, re-run the generative
  process (training + weight learning);
* otherwise the learned model still describes the data — sampling again
  is pure post-processing and costs no additional privacy budget.

:class:`GrowingSynthesizer` implements that policy.  Shift detection is
itself differentially private: each ``publish``/``update`` releases a
noisy per-attribute histogram fingerprint (Gaussian mechanism, a small
``fingerprint_epsilon`` slice of budget) and compares total variation
distance against the fingerprint the current model was trained on.
Every spend — fingerprints and full runs — is recorded in a
:class:`~repro.privacy.ledger.PrivacyLedger`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.kamino import FittedKamino, Kamino, KaminoResult
from repro.core.sequencing import sequence_attributes
from repro.privacy.ledger import PrivacyLedger
from repro.privacy.mechanisms import GaussianMechanism, gaussian_sigma
from repro.schema.table import Table

#: Update actions, in increasing order of work (and privacy spend).
RESAMPLE = "resample"
RETRAIN = "retrain"
RESEQUENCE = "resequence"


@dataclass
class UpdateDecision:
    """What an update did and why."""

    action: str                  # RESAMPLE | RETRAIN | RESEQUENCE
    reason: str
    shift: float                 # noisy TVD vs the trained fingerprint
    result: KaminoResult
    #: Epsilon spent by this update (fingerprint + run, 0 for pure
    #: resampling with a previously paid fingerprint).
    epsilon_spent: float


def _attribute_histogram(table: Table, attr) -> np.ndarray:
    """Normalized histogram of one attribute (bins for numericals)."""
    col = table.column(attr.name)
    if attr.is_categorical:
        counts = np.bincount(col.astype(np.int64),
                             minlength=attr.domain.size).astype(np.float64)
    else:
        edges = attr.domain.bin_edges()
        counts, _ = np.histogram(col, bins=edges)
        counts = counts.astype(np.float64)
    total = counts.sum()
    return counts / total if total > 0 else counts


def fingerprint_cell_std(table: Table, sigma: float) -> float:
    """Per-cell noise standard deviation of one fingerprint release.

    The fingerprint is one Gaussian query over the concatenation of all
    k normalized histograms.  Replacing one tuple moves one unit of mass
    in each histogram (two cells change by 1/n each), so the L2
    sensitivity of the concatenated vector is ``sqrt(2k)/n`` and the
    per-cell noise std is ``sqrt(2k)/n * sigma``.
    """
    k = table.relation.arity
    return math.sqrt(2.0 * k) / max(table.n, 1) * sigma


def noisy_fingerprint(table: Table, sigma: float,
                      rng: np.random.Generator) -> list[np.ndarray]:
    """DP fingerprint: per-attribute normalized histograms + noise.

    Negative noisy cells are clipped to zero (post-processing, free).
    """
    k = table.relation.arity
    sensitivity = math.sqrt(2.0 * k) / max(table.n, 1)
    mech = GaussianMechanism(sensitivity, sigma, rng)
    out = []
    for attr in table.relation:
        hist = _attribute_histogram(table, attr)
        out.append(np.clip(mech.release(hist), 0.0, None))
    return out


def fingerprint_distance(a: list[np.ndarray], b: list[np.ndarray],
                         cell_std: float = 0.0, n_a: int | None = None,
                         n_b: int | None = None) -> float:
    """Max over attributes of the *debiased* histogram TVD.

    Two identical distributions produce a non-zero raw TVD from (i) the
    Gaussian fingerprint noise and (ii) finite-sample variation between
    the two instances.  Each attribute's raw TVD is therefore reduced by
    an analytic noise floor — the expected TVD under the null (half-
    normal means) plus a two-standard-deviation fluctuation margin — and
    clamped at zero, so the returned value estimates genuine
    *distribution* shift.

    Parameters
    ----------
    cell_std:
        Combined per-cell DP noise std of the two releases
        (``sqrt(std_a^2 + std_b^2)``); 0 disables the DP-noise floor.
    n_a, n_b:
        Row counts of the two instances; None disables the
        sampling-noise floor (the bound uses the worst case of a uniform
        histogram).

    Detection power scales with ``n * epsilon_fp``: at the paper's
    n≈30k a 0.1-epsilon fingerprint resolves percent-level shifts; tiny
    test instances need a looser budget.
    """
    if len(a) != len(b):
        raise ValueError("fingerprints cover different attribute counts")
    half_normal = math.sqrt(2.0 / math.pi)
    half_normal_spread = math.sqrt(1.0 - 2.0 / math.pi)
    s_sample = 0.0
    if n_a and n_b:
        s_sample = math.sqrt(1.0 / n_a + 1.0 / n_b)
    worst = 0.0
    for ha, hb in zip(a, b):
        bins = ha.shape[0]
        raw = 0.5 * float(np.abs(ha - hb).sum())
        dp_floor = 0.5 * cell_std * (
            bins * half_normal + 2.0 * math.sqrt(bins) * half_normal_spread)
        sample_floor = 0.5 * s_sample * (
            math.sqrt(bins) * half_normal + 2.0 * half_normal_spread)
        worst = max(worst, max(0.0, raw - dp_floor - sample_floor))
    return worst


class GrowingSynthesizer:
    """Kamino with an update policy for growing/changing inputs.

    Parameters
    ----------
    relation, dcs, epsilon, delta:
        As for :class:`~repro.core.kamino.Kamino`; ``epsilon`` is the
        budget of *one* generative run (each retrain spends it again —
        the ledger keeps the composed total honest).
    fingerprint_epsilon:
        Budget of one shift-detection fingerprint release.
    shift_threshold:
        Noisy-TVD above which the generative process is re-run.
    ledger:
        Budget ledger to record spends into (one is created if omitted).
    sample_workers:
        Thread workers handed to every :meth:`FittedKamino.sample` call
        (the blocked engine's sharded draws); output is bit-identical
        for any worker count.
    kamino_kwargs:
        Extra keyword arguments forwarded to :class:`Kamino` (e.g.
        ``params_override`` for small-scale runs, or ``engine="row"``
        for exact replay of legacy draws).
    """

    def __init__(self, relation, dcs, epsilon: float, delta: float = 1e-6,
                 fingerprint_epsilon: float = 0.1,
                 shift_threshold: float = 0.05,
                 ledger: PrivacyLedger | None = None, seed: int = 0,
                 sample_workers: int = 1,
                 **kamino_kwargs):
        if fingerprint_epsilon <= 0:
            raise ValueError("fingerprint_epsilon must be positive")
        if not 0 < shift_threshold < 1:
            raise ValueError("shift_threshold must be in (0, 1)")
        self.relation = relation
        self.dcs = list(dcs)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.fingerprint_epsilon = float(fingerprint_epsilon)
        self.shift_threshold = float(shift_threshold)
        self.ledger = ledger if ledger is not None else PrivacyLedger(delta)
        self.seed = seed
        if sample_workers < 1:
            raise ValueError("sample_workers must be >= 1")
        self.sample_workers = int(sample_workers)
        self.kamino_kwargs = kamino_kwargs
        self._fingerprint: list[np.ndarray] | None = None
        self._fingerprint_cell_std = 0.0
        self._fingerprint_n = 0
        self._fingerprint_sigma = gaussian_sigma(
            self.fingerprint_epsilon, self.delta)
        self._fitted: FittedKamino | None = None
        self._sequence: list[str] | None = None
        self._runs = 0

    # ------------------------------------------------------------------
    @property
    def published(self) -> bool:
        return self._fitted is not None

    def publish(self, table: Table) -> UpdateDecision:
        """First release: run the full pipeline and store a fingerprint."""
        if self.published:
            raise RuntimeError("already published; use update()")
        return self._full_run(table, RESEQUENCE, "initial release")

    def update(self, table: Table, dcs=None) -> UpdateDecision:
        """Apply the paper's update policy to a new instance version.

        1. New DCs changing the Algorithm 4 sequence -> full re-run.
        2. Noisy distribution shift beyond threshold -> re-train.
        3. Otherwise -> re-sample only (no privacy spend).
        """
        if not self.published:
            raise RuntimeError("publish() an initial release first")
        if dcs is not None:
            new_dcs = [dc.bind(self.relation) for dc in dcs]
            new_seq = sequence_attributes(self.relation, new_dcs)
            if new_seq != self._sequence:
                self.dcs = list(dcs)
                return self._full_run(
                    table, RESEQUENCE,
                    "DC change altered the schema sequence")
            self.dcs = list(dcs)
            # Same sequence: the stored model stays valid, but future
            # draws must enforce the updated constraint set.  DCs that
            # were not present at fit time have no learned weight, so
            # give them the Algorithm 5 initial weight (hard DCs are
            # enforced via their hardness flag regardless).
            self._fitted.dcs = new_dcs
            for dc in new_dcs:
                self._fitted.weights.setdefault(
                    dc.name, math.inf if dc.hard
                    else self._fitted.params.weight_init)

        shift, fp = self._measure_shift(table)
        if shift > self.shift_threshold:
            decision = self._full_run(
                table, RETRAIN,
                f"distribution shift {shift:.3f} > "
                f"threshold {self.shift_threshold:g}")
            decision.shift = shift
            return decision

        # Post-processing: sample a fresh instance from the fitted
        # model — a pure FittedKamino.sample, no privacy spend.
        result = self._fitted.sample(n=table.n,
                                     seed=self.seed + 101 + self._runs,
                                     workers=self.sample_workers)
        return UpdateDecision(
            action=RESAMPLE,
            reason=f"shift {shift:.3f} within threshold "
                   f"{self.shift_threshold:g}; model reused",
            shift=shift, result=result,
            epsilon_spent=self.fingerprint_epsilon)

    # ------------------------------------------------------------------
    def _make_kamino(self) -> Kamino:
        return Kamino(self.relation, self.dcs, self.epsilon,
                      delta=self.delta, seed=self.seed + self._runs,
                      **self.kamino_kwargs)

    def _measure_shift(self, table: Table):
        rng = np.random.default_rng(self.seed + 7919 + self._runs)
        fp = noisy_fingerprint(table, self._fingerprint_sigma, rng)
        self.ledger.record_gaussian(
            f"fingerprint#{self._runs}", self._fingerprint_sigma)
        new_cell_std = fingerprint_cell_std(table, self._fingerprint_sigma)
        combined = math.hypot(self._fingerprint_cell_std, new_cell_std)
        shift = fingerprint_distance(self._fingerprint, fp,
                                     cell_std=combined,
                                     n_a=self._fingerprint_n, n_b=table.n)
        return shift, fp

    def _full_run(self, table: Table, action: str,
                  reason: str) -> UpdateDecision:
        kamino = self._make_kamino()
        fitted = kamino.fit(table)
        result = fitted.sample(workers=self.sample_workers)
        rng = np.random.default_rng(self.seed + 7919 + self._runs)
        self._fingerprint = noisy_fingerprint(
            table, self._fingerprint_sigma, rng)
        self._fingerprint_cell_std = fingerprint_cell_std(
            table, self._fingerprint_sigma)
        self._fingerprint_n = table.n
        self.ledger.record_gaussian(
            f"fingerprint#{self._runs}", self._fingerprint_sigma)
        if kamino.private:
            self.ledger.record_kamino(f"run#{self._runs}", result.params)
        self._fitted = fitted
        self._sequence = list(result.sequence)
        self._runs += 1
        return UpdateDecision(
            action=action, reason=reason, shift=0.0, result=result,
            epsilon_spent=self.fingerprint_epsilon + (
                self.epsilon if kamino.private else 0.0))
