"""Algorithm 4 — constraint-aware attribute sequencing.

The schema sequence decides which attributes condition which: for an FD
``X -> Y``, placing X before Y lets the sub-model for Y see its
determinant, so the correlation survives the noisy training (the paper's
Experiment 5 shows what breaks without this).  The heuristic is
instance-independent — it reads only the schema, domain sizes, and the
DC set — and therefore costs **zero privacy budget**.

Procedure (Algorithm 4, with a topological refinement):

1. collect the FD-shaped DCs; sort them by the minimal domain size of
   their determinant attributes (small determinants first);
2. for each FD, append its determinant attributes (sorted by domain
   size) and then its dependent attribute, skipping ones already placed;
3. append all remaining attributes in increasing domain-size order
   (smaller context domains -> more accurately learnable sub-models,
   see the paper's 2+6-vs-20 example);
4. **refinement** (deviation documented in DESIGN.md): re-order
   attributes topologically over the *uniquely-determined* part of the
   FD graph.  The paper's stated goal is "for an FD X -> Y, X ahead of
   Y in S (unless Y -> X too)", but the literal greedy breaks it on FD
   *chains*: with ``custkey -> n_name`` and ``n_name -> regionkey``
   (TPC-H), sorting by determinant domain size emits ``n_name`` before
   ``custkey``, and sampling a dependent before its determinant forces
   the sampler to invert the FD under domain exhaustion, producing
   violations.  Edges are only added for dependents with exactly one
   determining FD — see :func:`_topological_refinement` for why
   multi-FD dependents (Tax's ``state``) must stay put.  The
   refinement condenses strongly connected components (mutual FDs stay
   in greedy order — the paper's "unless" clause) and topologically
   sorts the condensation, tie-breaking by greedy position.

Also here: the §4.3 optimisations' helpers — grouping adjacent
small-domain attributes into one hyper attribute, and flagging
extremely-large-domain attributes for the independent-histogram
fallback.
"""

from __future__ import annotations

import networkx as nx

from repro.constraints.fd import extract_fds


def _greedy_sequence(relation, fds) -> list[str]:
    """Steps 1-3: the paper's literal greedy Algorithm 4."""
    def min_lhs_domain(fd) -> int:
        determinant, _, _ = fd
        return min(relation[a].domain.size for a in determinant)

    fds = sorted(fds, key=lambda fd: (min_lhs_domain(fd), fd[1]))

    sequence: list[str] = []
    placed: set[str] = set()

    def append(name: str) -> None:
        if name not in placed:
            placed.add(name)
            sequence.append(name)

    for determinant, dependent, _ in fds:
        for attr in sorted(determinant,
                           key=lambda a: relation[a].domain.size):
            append(attr)
        append(dependent)

    rest = [a.name for a in relation if a.name not in placed]
    rest.sort(key=lambda a: (relation[a].domain.size, a))
    for attr in rest:
        append(attr)
    return sequence


def _topological_refinement(greedy: list[str], fds) -> list[str]:
    """Step 4: put FD determinants ahead of dependents where that is
    *safe*, i.e. for dependents determined by exactly one FD.

    Re-orders only the affected attributes (their slot positions in
    ``greedy`` are preserved, so other attributes keep the domain-size
    ordering).  Mutual-FD cycles are condensed and kept in greedy order
    internally.

    Why single-FD dependents only: a dependent with one determining FD,
    placed after its determinant, is always satisfiable — the sampler
    copies the bound value or binds a fresh one.  A dependent with two
    or more determining FDs (e.g. Tax's ``areacode -> state`` and
    ``zip -> state``) placed after all its determinants faces *joint*
    constraints: the determinants were sampled without mutual
    consistency, and a (zip, areacode) pair bound to different states
    leaves no feasible value at all.  Sampling such a dependent first
    instead lets each determinant be drawn consistently against it,
    which is what the paper's greedy order happens to do.
    """
    determined_by: dict[str, int] = {}
    for _, dependent, _ in fds:
        determined_by[dependent] = determined_by.get(dependent, 0) + 1
    graph = nx.DiGraph()
    for determinant, dependent, _ in fds:
        if determined_by[dependent] != 1:
            continue
        for attr in determinant:
            graph.add_edge(attr, dependent)
    if graph.number_of_edges() == 0:
        return greedy
    position = {name: i for i, name in enumerate(greedy)}

    condensed = nx.condensation(graph)
    ordered_components = nx.lexicographical_topological_sort(
        condensed,
        key=lambda c: min(position[a]
                          for a in condensed.nodes[c]["members"]))
    fd_order: list[str] = []
    for comp in ordered_components:
        members = sorted(condensed.nodes[comp]["members"],
                         key=position.__getitem__)
        fd_order.extend(members)

    fd_set = set(fd_order)
    replacement = iter(fd_order)
    return [next(replacement) if name in fd_set else name
            for name in greedy]


def sequence_attributes(relation, dcs) -> list[str]:
    """Return the schema sequence S (a permutation of attribute names)."""
    fds = extract_fds(dcs)
    greedy = _greedy_sequence(relation, fds)
    if not fds:
        return greedy
    return _topological_refinement(greedy, fds)


def group_small_domains(relation, sequence, max_group_domain: int = 128
                        ) -> list[list[str]]:
    """Group adjacent small-domain categorical attributes (§4.3).

    Returns a partition of ``sequence`` into runs: each run is either a
    single attribute or a maximal block of *adjacent categorical*
    attributes whose product domain size stays at or below
    ``max_group_domain``.  A hyper attribute replaces each multi-element
    run during training/sampling — fewer sub-models, less privacy budget
    (the paper's BR2000 example groups 7 binary attributes into one
    2^7-value hyper attribute).

    Attributes participating in no grouping opportunity (numerical, or
    blocks that would exceed the cap) stay singleton.
    """
    groups: list[list[str]] = []
    current: list[str] = []
    current_size = 1
    for name in sequence:
        attr = relation[name]
        size = attr.domain.size
        can_extend = (attr.is_categorical
                      and current_size * size <= max_group_domain)
        if can_extend:
            current.append(name)
            current_size *= size
        else:
            if current:
                groups.append(current)
            if attr.is_categorical and size <= max_group_domain:
                current = [name]
                current_size = size
            else:
                groups.append([name])
                current = []
                current_size = 1
    if current:
        groups.append(current)
    return groups


def large_domain_attributes(relation, threshold: int = 1000) -> list[str]:
    """Attributes whose domain exceeds ``threshold`` (§4.3 fallback).

    Their conditionals cannot be learned well from a bounded training
    sample, so Kamino releases a Gaussian-noised histogram and samples
    them independently of the context.
    """
    return [a.name for a in relation if a.domain.size > threshold]
