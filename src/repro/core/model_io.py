"""Persistence for trained probabilistic data models.

Training is the expensive, privacy-consuming phase; sampling is free
post-processing.  Persisting the fitted model lets a data owner
synthesize more instances later — different sizes, different seeds,
different machines — without touching the private data or the budget
again.  The staged API makes this one line each way::

    fitted = Kamino(relation, dcs, config=cfg).fit(private_table)
    fitted.save("model.npz")
    ...
    fitted = FittedKamino.load("model.npz", relation, dcs)
    more = fitted.sample(n=10_000, seed=1).table

The lower-level :func:`save_model` / :func:`load_model` pair persists
just the ``(model, weights, params)`` triple for callers that drive
:func:`repro.core.sampling.synthesize` themselves.

Format: one ``.npz`` holding every parameter array (namespaced per
sub-model, so parallel-trained models with per-model encoders round-trip
too) plus a JSON metadata blob.  Version 2 of the format additionally
records the hyper-attribute grouping (as member-name groups — the
working relation is re-derived from them), the schema sequence, the
independent-attribute set, the :class:`~repro.core.kamino.KaminoConfig`
(including the sampling ``engine``), the post-fit sampler randomness
state, and the blocked engine's counter-rng spec (Philox scheme + noise
chunking), so grouped and large-domain-fallback models round-trip and a
reloaded model reproduces the original draws bit for bit under either
engine.  Version 1 files still load; v2 files written before the engine
knob existed load with ``engine="row"`` so their historical draws keep
replaying.

The relation is *not* stored — it is public schema the caller already
persists via :mod:`repro.io`; passing a mismatching relation fails
fast.  Denial constraints are likewise re-supplied on load
(:meth:`FittedKamino.load`); only their learned weights are stored.
"""

from __future__ import annotations

import json
import math
import os
import zipfile

import numpy as np

from repro.aimnet import AimNet, EmbeddingStore
from repro.core.hyper import HyperSpec
from repro.core.params import KaminoParams
from repro.core.training import HistogramModel, ProbModel
from repro.faults import fault_point
from repro.schema.quantize import Quantizer

FORMAT_TAG = "repro.model/2"
_V1_FORMAT_TAG = "repro.model/1"


class ModelFormatError(ValueError):
    """A model artifact that cannot be read: names the file and the
    section that failed so a corrupt or truncated save is a one-line
    diagnosis instead of a raw numpy/zipfile traceback."""

    def __init__(self, path: str, section: str, detail: str):
        self.path = str(path)
        self.section = section
        self.detail = detail
        super().__init__(f"{path}: unreadable model artifact "
                         f"({section}): {detail}")


def atomic_savez(path: str, arrays: dict) -> None:
    """``np.savez`` through a same-directory tmp file + ``os.replace``.

    A crash (or injected fault) mid-save leaves the previous artifact —
    if any — untouched; the final path is either the old complete file
    or the new complete file, never a truncation.  The tmp file is
    opened explicitly so numpy cannot append ``.npz`` to suffix-less
    destinations.
    """
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
        fault_point("model_io.save")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise

#: KaminoParams fields the sampler reads; everything else is training
#: state that has already been consumed.
_SAMPLING_PARAMS = ("epsilon", "delta", "num_candidates", "mcmc_m",
                    "quant_bins", "n", "k")

#: KaminoConfig fields that are persisted (all but ``params_override``,
#: which is a callable consumed during fit).
_PERSISTED_CONFIG = ("epsilon", "delta", "seed", "group_max_domain",
                     "large_domain_threshold", "use_fd_lookup",
                     "use_violation_index", "parallel_training",
                     "random_sequence", "constraint_aware_sampling",
                     "weight_estimator", "engine", "workers", "pool",
                     "max_block_rows", "stream_chunk_rows")


def _histogram_meta(hist: HistogramModel) -> dict:
    return {
        "attr": hist.attribute.name,
        "quantized": hist.quantizer is not None,
        "q": hist.quantizer.q if hist.quantizer is not None else None,
    }


def _rebuild_histogram(relation, meta: dict,
                       probs: np.ndarray) -> HistogramModel:
    attribute = relation[meta["attr"]]
    quantizer = (Quantizer(attribute.domain, meta["q"])
                 if meta["quantized"] else None)
    return HistogramModel(attribute, probs, quantizer)


def _store_is_shared(model: ProbModel) -> bool:
    """True if sub-models share encoder objects (sequential training)."""
    seen: dict[int, str] = {}
    for target, sub in model.submodels.items():
        for attr, encoder in sub.encoders.items():
            owner = seen.setdefault(id(encoder), target)
            if owner != target:
                return True
    return len(model.submodels) <= 1


def _encode_weights(weights: dict) -> dict:
    return {name: ("inf" if math.isinf(w) else float(w))
            for name, w in weights.items()}


def _decode_weights(meta_weights: dict) -> dict:
    return {name: (math.inf if w == "inf" else float(w))
            for name, w in meta_weights.items()}


def _base_meta(model: ProbModel, weights: dict, params: KaminoParams,
               hyper: HyperSpec | None) -> tuple[dict, dict]:
    """The (meta, arrays) common to plain and fitted saves."""
    is_hyper = any("+" in w for w in model.sequence)
    if is_hyper:
        if hyper is None:
            raise ValueError(
                "hyper-attribute models need their HyperSpec to "
                "round-trip; pass hyper= (or save via FittedKamino.save)")
        if set(model.sequence) - set(hyper.working_sequence):
            raise ValueError(
                "hyper spec does not cover the model sequence")
    arrays: dict[str, np.ndarray] = {"first.probs": model.first.probs}
    meta = {
        "format": FORMAT_TAG,
        "dim": next(iter(model.submodels.values())).dim
               if model.submodels else 0,
        "sequence": model.sequence,
        "schema": model.relation.names,
        "base_schema": (hyper.relation.names if hyper is not None
                        else model.relation.names),
        "hyper_groups": hyper.groups if hyper is not None else None,
        "targets": {t: model.context_attrs[t] for t in model.submodels},
        "first": _histogram_meta(model.first),
        "independent": {},
        "shared_store": _store_is_shared(model),
        "weights": _encode_weights(weights),
        "params": {f: getattr(params, f) for f in _SAMPLING_PARAMS},
        "params_extra": {"achieved_epsilon": params.achieved_epsilon,
                         "best_alpha": params.best_alpha},
    }
    for attr, hist in model.independent.items():
        meta["independent"][attr] = _histogram_meta(hist)
        arrays[f"indep.{attr}.probs"] = hist.probs
    for target, sub in model.submodels.items():
        for p in sub.parameters():
            arrays[f"{target}::{p.name}"] = p.value
    return meta, arrays


def save_model(path: str, model: ProbModel, weights: dict,
               params: KaminoParams, hyper: HyperSpec | None = None) -> None:
    """Write the model, DC weights, and sampling parameters to ``path``.

    Models over a grouped working relation additionally need the
    ``hyper`` spec (its member groups are stored so the working relation
    can be re-derived on load).
    """
    meta, arrays = _base_meta(model, weights, params, hyper)
    arrays["meta.json"] = np.array(json.dumps(meta))
    atomic_savez(path, arrays)


def save_fitted(path: str, fitted) -> None:
    """Write a full :class:`~repro.core.kamino.FittedKamino` to ``path``.

    On top of :func:`save_model` this records the schema sequence, the
    independent-attribute set, the config, the fit timings, and the
    post-fit sampler state, so the reloaded artifact reproduces the
    original default draw bit for bit.
    """
    meta, arrays = _base_meta(fitted.model, fitted.weights, fitted.params,
                              fitted.hyper)
    config = fitted.config
    meta["fitted"] = {
        "sequence": list(fitted.sequence),
        "independent": list(fitted.independent),
        "default_n": int(fitted.default_n),
        "fit_timings": {k: float(v)
                        for k, v in fitted.fit_timings.items()},
        "sampling_state": fitted.sampling_state,
        "config": {f: getattr(config, f) for f in _PERSISTED_CONFIG},
        "params_override_used": config.params_override is not None,
        # Counter-rng spec of the blocked engine: a reloaded model must
        # draw with the chunking it was fitted under to replay draws.
        "rng_spec": fitted.rng_spec,
    }
    arrays["meta.json"] = np.array(json.dumps(meta))
    atomic_savez(path, arrays)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _read_npz(path: str) -> tuple[dict, dict]:
    fault_point("model_io.read")
    try:
        with np.load(path, allow_pickle=False) as data:
            try:
                raw_meta = data["meta.json"]
            except KeyError:
                raise ModelFormatError(
                    path, "metadata", "missing meta.json member") from None
            try:
                meta = json.loads(str(raw_meta))
            except json.JSONDecodeError as exc:
                raise ModelFormatError(path, "metadata",
                                       f"bad JSON: {exc}") from exc
            if meta.get("format") not in (FORMAT_TAG, _V1_FORMAT_TAG):
                raise ModelFormatError(
                    path, "metadata",
                    f"unsupported model format {meta.get('format')!r}")
            try:
                arrays = {key: data[key] for key in data.files}
            except (ValueError, OSError, zipfile.BadZipFile) as exc:
                raise ModelFormatError(path, "parameter arrays",
                                       str(exc)) from exc
    except ModelFormatError:
        raise
    except (OSError, zipfile.BadZipFile, ValueError, EOFError) as exc:
        # np.load raises OSError/ValueError on truncated or non-zip
        # bytes; FileNotFoundError stays a plain missing-file error.
        if isinstance(exc, FileNotFoundError):
            raise
        raise ModelFormatError(path, "container", str(exc)) from exc
    return meta, arrays


def _rebuild_model(meta: dict, arrays: dict, relation
                   ) -> tuple[ProbModel, HyperSpec | None]:
    groups = meta.get("hyper_groups")
    base_schema = meta.get("base_schema", meta["schema"])
    if sorted(base_schema) != sorted(relation.names):
        raise ValueError(
            f"schema mismatch: model was trained over "
            f"{sorted(base_schema)}, got {sorted(relation.names)}")
    if groups is not None:
        hyper = HyperSpec(relation, groups)
        model_relation = hyper.working_relation
    else:
        hyper = None
        model_relation = relation

    first = _rebuild_histogram(model_relation, meta["first"],
                               arrays["first.probs"])
    independent = {
        attr: _rebuild_histogram(model_relation, h_meta,
                                 arrays[f"indep.{attr}.probs"])
        for attr, h_meta in meta["independent"].items()
    }

    rng = np.random.default_rng(0)  # values are overwritten below
    shared = EmbeddingStore(meta["dim"], rng) if meta["shared_store"] \
        else None
    submodels: dict[str, AimNet] = {}
    context_attrs: dict[str, list[str]] = {}
    # Rebuild in sequence order so shared encoders are created in the
    # same order as during training.
    for target in meta["sequence"]:
        if target not in meta["targets"]:
            continue
        context = list(meta["targets"][target])
        store = shared if shared is not None \
            else EmbeddingStore(meta["dim"], rng)
        sub = AimNet(model_relation, context, target, meta["dim"], rng,
                     store=store)
        for p in sub.parameters():
            key = f"{target}::{p.name}"
            saved = arrays[key]
            if saved.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {key}: saved {saved.shape}, "
                    f"model {p.value.shape}")
            p.value[...] = saved
        submodels[target] = sub
        context_attrs[target] = context

    model = ProbModel(model_relation, meta["sequence"], first, submodels,
                      independent, context_attrs)
    return model, hyper


def _rebuild_params(meta: dict) -> KaminoParams:
    params = KaminoParams(
        **{f: meta["params"][f] for f in _SAMPLING_PARAMS})
    extra = meta.get("params_extra")
    if extra is not None:
        params.achieved_epsilon = extra["achieved_epsilon"]
        params.best_alpha = extra["best_alpha"]
    return params


def load_model(path: str, relation
               ) -> tuple[ProbModel, dict, KaminoParams]:
    """Read back ``(model, weights, params)`` saved by :func:`save_model`.

    ``relation`` must be the same public schema the model was trained
    over (attribute names are checked; domains are trusted, as they are
    part of the same public schema file).  Grouped models are rebuilt
    over the working relation re-derived from the stored groups; use
    :func:`load_fitted` to also recover the :class:`HyperSpec` the
    sampler needs.
    """
    meta, arrays = _read_npz(path)
    try:
        model, _ = _rebuild_model(meta, arrays, relation)
    except KeyError as exc:
        raise ModelFormatError(path, "parameter arrays",
                               f"missing member {exc}") from exc
    weights = _decode_weights(meta["weights"])
    return model, weights, _rebuild_params(meta)


def load_fitted(path: str, relation) -> dict:
    """Read back everything :func:`save_fitted` stored, as a payload
    dict consumed by :meth:`repro.core.kamino.FittedKamino.load`."""
    from repro.core.kamino import KaminoConfig

    meta, arrays = _read_npz(path)
    fitted_meta = meta.get("fitted")
    if fitted_meta is None:
        raise ValueError(
            f"{path} holds a bare model (save_model), not a fitted "
            f"pipeline artifact; load it with load_model() instead")
    try:
        model, hyper = _rebuild_model(meta, arrays, relation)
    except KeyError as exc:
        raise ModelFormatError(path, "parameter arrays",
                               f"missing member {exc}") from exc
    if hyper is None:
        hyper = HyperSpec.trivial(relation, fitted_meta["sequence"])
    config_meta = dict(fitted_meta["config"])
    # Files saved before the engine knob existed were fitted (and had
    # their draws pinned) under the per-row sampler: default them to
    # engine="row" so reloading reproduces their historical outputs.
    config_meta.setdefault("engine", "row")
    config = KaminoConfig(params_override=None, **config_meta)
    return {
        "model": model,
        "hyper": hyper,
        "weights": _decode_weights(meta["weights"]),
        "params": _rebuild_params(meta),
        "config": config,
        "sequence": list(fitted_meta["sequence"]),
        "independent": list(fitted_meta["independent"]),
        "default_n": int(fitted_meta["default_n"]),
        "fit_timings": dict(fitted_meta["fit_timings"]),
        "sampling_state": fitted_meta["sampling_state"],
        "rng_spec": fitted_meta.get("rng_spec"),
    }
