"""Persistence for trained probabilistic data models.

Training is the expensive, privacy-consuming phase; sampling is free
post-processing.  Saving the fitted :class:`~repro.core.training.ProbModel`
(plus the DC weights and the sampling-relevant parameters) lets a data
owner synthesize more instances later — different sizes, different
seeds — without touching the private data or the budget again::

    result = kamino.fit_sample(private_table)
    save_model("model.npz", result.model, result.weights, result.params)
    ...
    model, weights, params = load_model("model.npz", relation)
    more = synthesize(model, relation, dcs, weights, 10_000, params, rng)

Format: one ``.npz`` holding every parameter array (namespaced per
sub-model, so parallel-trained models with per-model encoders round-trip
too) plus a JSON metadata blob.  The relation is *not* stored — it is
public schema the caller already persists via :mod:`repro.io`; passing a
mismatching relation fails fast.

Scope: models over the plain schema (no hyper-attribute grouping — the
grouped working relation is an internal artifact; re-run Kamino for
those).
"""

from __future__ import annotations

import json
import math

import numpy as np

from repro.aimnet import AimNet, EmbeddingStore
from repro.core.params import KaminoParams
from repro.core.training import HistogramModel, ProbModel
from repro.schema.quantize import Quantizer

FORMAT_TAG = "repro.model/1"

#: KaminoParams fields the sampler reads; everything else is training
#: state that has already been consumed.
_SAMPLING_PARAMS = ("epsilon", "delta", "num_candidates", "mcmc_m",
                    "quant_bins", "n", "k")


def _histogram_meta(hist: HistogramModel) -> dict:
    return {
        "attr": hist.attribute.name,
        "quantized": hist.quantizer is not None,
        "q": hist.quantizer.q if hist.quantizer is not None else None,
    }


def _rebuild_histogram(relation, meta: dict,
                       probs: np.ndarray) -> HistogramModel:
    attribute = relation[meta["attr"]]
    quantizer = (Quantizer(attribute.domain, meta["q"])
                 if meta["quantized"] else None)
    return HistogramModel(attribute, probs, quantizer)


def _store_is_shared(model: ProbModel) -> bool:
    """True if sub-models share encoder objects (sequential training)."""
    seen: dict[int, str] = {}
    for target, sub in model.submodels.items():
        for attr, encoder in sub.encoders.items():
            owner = seen.setdefault(id(encoder), target)
            if owner != target:
                return True
    return len(model.submodels) <= 1


def save_model(path: str, model: ProbModel, weights: dict,
               params: KaminoParams) -> None:
    """Write the model, DC weights, and sampling parameters to ``path``."""
    if any("+" in w for w in model.sequence):
        raise ValueError(
            "hyper-attribute models are not persistable; re-run with "
            "group_max_domain=None")
    arrays: dict[str, np.ndarray] = {"first.probs": model.first.probs}
    meta = {
        "format": FORMAT_TAG,
        "dim": next(iter(model.submodels.values())).dim
               if model.submodels else 0,
        "sequence": model.sequence,
        "schema": model.relation.names,
        "targets": {t: model.context_attrs[t] for t in model.submodels},
        "first": _histogram_meta(model.first),
        "independent": {},
        "shared_store": _store_is_shared(model),
        "weights": {name: ("inf" if math.isinf(w) else float(w))
                    for name, w in weights.items()},
        "params": {f: getattr(params, f) for f in _SAMPLING_PARAMS},
    }
    for attr, hist in model.independent.items():
        meta["independent"][attr] = _histogram_meta(hist)
        arrays[f"indep.{attr}.probs"] = hist.probs
    for target, sub in model.submodels.items():
        for p in sub.parameters():
            arrays[f"{target}::{p.name}"] = p.value
    arrays["meta.json"] = np.array(json.dumps(meta))
    np.savez(path, **arrays)


def load_model(path: str, relation
               ) -> tuple[ProbModel, dict, KaminoParams]:
    """Read back ``(model, weights, params)`` saved by :func:`save_model`.

    ``relation`` must be the same public schema the model was trained
    over (attribute names are checked; domains are trusted, as they are
    part of the same public schema file).
    """
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta.json"]))
        if meta.get("format") != FORMAT_TAG:
            raise ValueError(
                f"unsupported model format {meta.get('format')!r}")
        if sorted(meta["schema"]) != sorted(relation.names):
            raise ValueError(
                f"schema mismatch: model was trained over "
                f"{sorted(meta['schema'])}, got {sorted(relation.names)}")
        arrays = {key: data[key] for key in data.files}

    first = _rebuild_histogram(relation, meta["first"],
                               arrays["first.probs"])
    independent = {
        attr: _rebuild_histogram(relation, h_meta,
                                 arrays[f"indep.{attr}.probs"])
        for attr, h_meta in meta["independent"].items()
    }

    rng = np.random.default_rng(0)  # values are overwritten below
    shared = EmbeddingStore(meta["dim"], rng) if meta["shared_store"] \
        else None
    submodels: dict[str, AimNet] = {}
    context_attrs: dict[str, list[str]] = {}
    # Rebuild in sequence order so shared encoders are created in the
    # same order as during training.
    for target in meta["sequence"]:
        if target not in meta["targets"]:
            continue
        context = list(meta["targets"][target])
        store = shared if shared is not None \
            else EmbeddingStore(meta["dim"], rng)
        sub = AimNet(relation, context, target, meta["dim"], rng,
                     store=store)
        for p in sub.parameters():
            key = f"{target}::{p.name}"
            saved = arrays[key]
            if saved.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {key}: saved {saved.shape}, "
                    f"model {p.value.shape}")
            p.value[...] = saved
        submodels[target] = sub
        context_attrs[target] = context

    weights = {name: (math.inf if w == "inf" else float(w))
               for name, w in meta["weights"].items()}
    params = KaminoParams(
        **{f: meta["params"][f] for f in _SAMPLING_PARAMS})
    model = ProbModel(relation, meta["sequence"], first, submodels,
                      independent, context_attrs)
    return model, weights, params
