"""Algorithm 5 — private learning of denial-constraint weights.

Hard DCs get infinite weight by fiat; soft DC weights are estimated
from a *noisy, subsampled* violation matrix:

1. Poisson-sample roughly ``L_w`` rows from the true instance (crop if
   over — the crop bounds the sensitivity);
2. build the per-tuple violation matrix ``V`` (tuple x DC);
3. perturb every entry with Gaussian noise scaled by Lemma 1's
   sensitivity ``S_w = |phi_u| + |phi_b| sqrt(L_w^2 - L_w)``, then clamp
   negatives to zero (post-processing);
4. fit weights by iterating the paper's objective: for each attribute
   of the schema sequence and each of ``T_w`` rounds, sample ``b_w``
   rows and ascend ``O = exp(-sum_l W[l] V[i][l])`` over the DCs active
   at that attribute.  The gradient step ``w <- w - lr * V[i][l] * O``
   decays the weight of frequently-violated DCs and leaves clean DCs at
   their (large) initial weight — exactly the paper's stated intuition.
   Weights are clipped into ``[0, weight_max]``.

A second estimator (``estimator="capped"``) replaces steps 2-4 with
capped violation *indicators* ``min(V[i][l], 1)`` and a log-odds
calibration ``w_l = min(w_max, log(1 / p_l))`` over the estimated
fraction ``p_l`` of tuples involved in any violation.  Its sensitivity
``sqrt(L_w |Phi|)`` is a ``sqrt(L_w)`` factor below Lemma 1's, so the
released rates carry real signal whenever the budget affords
``sigma_w`` below ~1 (loose budgets, or the non-private mode, where
the calibration is exact).

Why "matrix" stays the default: the paper makes the release affordable
by spending ``epsilon_w = 100`` on it (Algorithm 6 line 7) — exempting
it from the budget in all but name.  Under honest accounting at total
``epsilon ~ 1``, the sampled-Gaussian mechanism needs
``sigma_w >~ 2.5``, at which point *both* estimators' inputs are
noise-dominated — and they fail differently: the matrix fit's
gradients vanish, leaving every weight at the ``weight_init`` prior (a
safe, conservative outcome), while a noise-driven rate estimate can
calibrate a soft DC's weight to ~0 and flood the sample with
violations.  Graceful degradation wins at tight budgets.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constraints.dc import active_dc_map
from repro.constraints.violations import violation_matrix
from repro.privacy.mechanisms import GaussianMechanism
from repro.privacy.sensitivity import (
    capped_indicator_sensitivity,
    violation_matrix_sensitivity,
)


def learn_dc_weights(table, dcs, sequence, params,
                     rng: np.random.Generator,
                     private: bool = True,
                     estimator: str = "matrix") -> dict[str, float]:
    """Return ``{dc.name: weight}`` with ``inf`` for hard DCs.

    Parameters
    ----------
    table:
        The private instance ``D*`` (original schema).
    dcs:
        All DCs; only soft ones are estimated.
    sequence:
        The schema sequence (drives the per-attribute update order of
        Algorithm 5 line 8).
    params:
        :class:`~repro.core.params.KaminoParams` — reads ``L_w``,
        ``sigma_w``, ``batch_w``, ``iterations_w``, ``lr_w``,
        ``weight_init``, ``weight_max``.
    private:
        False skips the noise (the epsilon = inf configuration).
    estimator:
        ``"matrix"`` (default) — the paper's literal Algorithm 5 over
        the uncapped violation matrix; ``"capped"`` — log-odds
        calibration from the noisy capped-indicator matrix (see the
        module docstring for the trade-off).  Both consume the same
        one SGM release of the accountant (the capped matrix is a
        variant of the same query with its own, smaller sensitivity).
    """
    if estimator not in ("capped", "matrix"):
        raise ValueError(f"unknown estimator {estimator!r}")
    weights: dict[str, float] = {dc.name: math.inf for dc in dcs if dc.hard}
    soft = [dc for dc in dcs if not dc.hard]
    if not soft:
        return weights

    n = table.n
    L_w = min(params.L_w, n)
    # Poisson sample at rate L_w / n, cropped to L_w rows (lines 3-4).
    mask = rng.random(n) < (L_w / n)
    idx = np.nonzero(mask)[0]
    if idx.size > L_w:
        idx = rng.choice(idx, size=L_w, replace=False)
    if idx.size == 0:
        # Degenerate sample: fall back to the initial weights.
        for dc in soft:
            weights[dc.name] = params.weight_init
        return weights
    sample = table.take(idx)

    matrix = violation_matrix(sample, soft)
    if estimator == "capped":
        return _capped_estimate(matrix, soft, weights, params, L_w, rng,
                                private)

    if private:
        num_unary = sum(1 for dc in soft if dc.is_unary)
        num_binary = len(soft) - num_unary
        sens = violation_matrix_sensitivity(num_unary, num_binary, L_w)
        mechanism = GaussianMechanism(sens, params.sigma_w, rng)
        matrix = mechanism.release(matrix)
    matrix = np.maximum(matrix, 0.0)

    soft_index = {dc.name: l for l, dc in enumerate(soft)}
    active = active_dc_map(soft, sequence)
    w = np.full(len(soft), params.weight_init, dtype=np.float64)
    rows = matrix.shape[0]
    rate = min(params.batch_w / rows, 1.0)

    for attr in sequence:
        active_here = [soft_index[dc.name] for dc in active[attr]]
        if not active_here:
            continue
        cols = np.array(active_here, dtype=np.int64)
        for _ in range(params.iterations_w):
            picked = np.nonzero(rng.random(rows) < rate)[0]
            for i in picked:
                v = matrix[i, cols]
                objective = math.exp(-min(float(np.dot(w[cols], v)), 700.0))
                w[cols] = np.clip(w[cols] - params.lr_w * v * objective,
                                  0.0, params.weight_max)

    for dc in soft:
        weights[dc.name] = float(w[soft_index[dc.name]])
    return weights


def _capped_estimate(matrix: np.ndarray, soft, weights: dict, params,
                     L_w: int, rng: np.random.Generator,
                     private: bool) -> dict[str, float]:
    """Log-odds weights from the noisy capped-indicator matrix.

    ``p_l`` estimates the fraction of tuples involved in at least one
    violation of DC ``l``; ``w_l = min(w_max, log(1/p_l))`` maps clean
    DCs to large weights and violation-riddled ones toward zero.  The
    estimate is clipped into ``[1/(2 L_w), 0.5]``: the floor keeps a
    clean DC's weight finite (soft DCs must stay soft), the 0.5 cap
    keeps the weight at or above ``log 2`` so a noise-driven rate of
    ~1 cannot zero a constraint out entirely.
    """
    capped = np.minimum(matrix, 1.0)
    if private:
        sens = capped_indicator_sensitivity(len(soft), L_w)
        mechanism = GaussianMechanism(sens, params.sigma_w, rng)
        capped = mechanism.release(capped)
    rates = np.clip(capped.mean(axis=0), 1.0 / (2 * L_w), 0.5)
    for l, dc in enumerate(soft):
        weights[dc.name] = float(
            min(params.weight_max, math.log(1.0 / rates[l])))
    return weights
