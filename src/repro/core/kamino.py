"""Algorithm 1 — the end-to-end Kamino pipeline.

    S   <- Sequencing(R, D, Phi)               (Algorithm 4, no budget)
    Psi <- SearchDParas(eps, delta, D, S)      (Algorithm 6, no budget)
    M   <- TrainModel(D*, S, D, Psi)           (Algorithm 2, DP)
    W   <- LearnWeight(D*, Phi, S, M, Psi)     (Algorithm 5, DP)
    D'  <- Synthesize(S, M, Phi, D, W)         (Algorithm 3, post-proc)

:class:`Kamino` wires the pieces together, applies the §4.3 structural
optimisations (hyper-attribute grouping, large-domain histogram
fallback), records the per-phase wall-clock profile that Figure 7
reports, and returns a :class:`KaminoResult`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.hyper import HyperSpec
from repro.core.params import KaminoParams, search_dp_params
from repro.core.sampling import ar_sample, synthesize
from repro.core.sequencing import (
    group_small_domains,
    large_domain_attributes,
    sequence_attributes,
)
from repro.core.training import ProbModel, train_model
from repro.core.weights import learn_dc_weights
from repro.schema.table import Table


@dataclass
class KaminoResult:
    """Everything a run produces, for inspection and evaluation."""

    table: Table
    sequence: list[str]
    params: KaminoParams
    weights: dict[str, float]
    model: ProbModel = None
    #: Per-phase seconds: Seq. / Tra. / Vio.+DC.W. / Sam. (Figure 7).
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


class Kamino:
    """Constraint-aware differentially private data synthesizer.

    Parameters
    ----------
    relation:
        Schema of the private instance.
    dcs:
        Denial constraints (hardness flags set); constants should be in
        raw domain values — they are bound to the schema here.
    epsilon, delta:
        The end-to-end privacy budget.  ``epsilon=math.inf`` runs the
        non-private configuration (Figure 6's rightmost points).
    seed:
        Randomness seed for the whole pipeline.
    group_max_domain:
        Hyper-attribute grouping cap (``None`` disables grouping).
    large_domain_threshold:
        Domain size beyond which an attribute is modeled by an
        independent histogram (``None`` disables the fallback).
    use_fd_lookup:
        Hard-FD lookup fast path in the sampler (Experiment 10).
    use_violation_index:
        Probe sampler violation counts through the incremental
        violation indexes (:mod:`repro.constraints.index`) instead of
        rescanning the sampled prefix per cell.  On by default; counts
        (and hence outputs) are bit-identical either way.
    parallel_training:
        Train sub-models without embedding reuse (Experiment 10).
    params_override:
        Callable mutating the searched :class:`KaminoParams` before
        training (e.g. to cap iterations in small-scale benchmarks);
        the accountant re-checks the budget after the override.
    random_sequence:
        Ablation switch (Experiment 5's "RandSequence"): replace
        Algorithm 4 with a seeded random permutation.
    constraint_aware_sampling:
        Ablation switch (Experiment 5's "RandSampling"): when False the
        sampler ignores the DCs and draws i.i.d. tuples.
    weight_estimator:
        Soft-DC weight estimator: ``"matrix"`` (default, the paper's
        literal Algorithm 5) or ``"capped"`` (log-odds over capped
        violation indicators — better when the budget affords an
        informative release); see :mod:`repro.core.weights`.
    """

    def __init__(self, relation, dcs, epsilon: float, delta: float = 1e-6,
                 seed: int = 0, group_max_domain: int | None = None,
                 large_domain_threshold: int | None = 1000,
                 use_fd_lookup: bool = False,
                 use_violation_index: bool = True,
                 parallel_training: bool = False,
                 params_override=None,
                 random_sequence: bool = False,
                 constraint_aware_sampling: bool = True,
                 weight_estimator: str = "matrix"):
        self.relation = relation
        self.dcs = [dc.bind(relation) for dc in dcs]
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.seed = seed
        self.group_max_domain = group_max_domain
        self.large_domain_threshold = large_domain_threshold
        self.use_fd_lookup = use_fd_lookup
        self.use_violation_index = use_violation_index
        self.parallel_training = parallel_training
        self.params_override = params_override
        self.random_sequence = random_sequence
        self.constraint_aware_sampling = constraint_aware_sampling
        self.weight_estimator = weight_estimator

    @property
    def private(self) -> bool:
        return math.isfinite(self.epsilon)

    # ------------------------------------------------------------------
    def fit_sample(self, table: Table, n: int | None = None,
                   weights: dict[str, float] | None = None) -> KaminoResult:
        """Run the full pipeline on the private instance ``table``.

        ``n`` defaults to the input size; pass known DC ``weights`` to
        skip Algorithm 5 (the paper's "known weights" setting of §4).
        """
        rng = np.random.default_rng(self.seed)
        n_out = table.n if n is None else int(n)
        timings: dict[str, float] = {}

        # -- Sequencing (Algorithm 4) + structure ----------------------
        start = time.perf_counter()
        if self.random_sequence:
            sequence = list(self.relation.names)
            np.random.default_rng(self.seed + 17).shuffle(sequence)
        else:
            sequence = sequence_attributes(self.relation, self.dcs)
        independent = self._independent_attrs(sequence)
        hyper = self._build_hyper(sequence, independent)
        timings["Seq."] = time.perf_counter() - start

        # -- Parameter search (Algorithm 6) ----------------------------
        learn_weights = weights is None and any(
            not dc.hard for dc in self.dcs)
        n_hist = 1 + len(independent)
        n_submodels = max(len(hyper.working_sequence) - 1 - len(independent),
                          0)
        if self.private:
            params = search_dp_params(
                self.epsilon, self.delta, hyper.working_relation,
                hyper.working_sequence, table.n,
                learn_weights=learn_weights, n_hist=n_hist,
                n_submodels=n_submodels)
        else:
            params = KaminoParams(
                epsilon=math.inf, delta=self.delta, n=table.n,
                k=len(hyper.working_sequence),
                iterations=max(1, (2 * table.n) // 32),
                learn_weights=learn_weights, n_hist=n_hist,
                n_submodels=n_submodels)
        if self.params_override is not None:
            self.params_override(params)
            if self.private:
                achieved, alpha = params.accounted_epsilon()
                if achieved > self.epsilon * (1 + 1e-9):
                    raise ValueError(
                        f"params_override broke the budget: "
                        f"{achieved:.4f} > {self.epsilon}")
                params.achieved_epsilon = achieved
                params.best_alpha = alpha

        # -- Model training (Algorithm 2) ------------------------------
        start = time.perf_counter()
        working = hyper.encode_table(table)
        model = train_model(
            working, hyper.working_relation, hyper.working_sequence, params,
            rng, independent_attrs=independent,
            parallel=self.parallel_training, private=self.private)
        timings["Tra."] = time.perf_counter() - start

        # -- DC weights (Algorithm 5) -----------------------------------
        start = time.perf_counter()
        if weights is None:
            weights = learn_dc_weights(table, self.dcs, sequence, params,
                                       rng, private=self.private,
                                       estimator=self.weight_estimator)
        else:
            weights = dict(weights)
            for dc in self.dcs:
                weights.setdefault(dc.name, math.inf if dc.hard
                                   else params.weight_init)
        timings["DC.W."] = time.perf_counter() - start

        # -- Sampling (Algorithm 3, post-processing) --------------------
        start = time.perf_counter()
        sampled_dcs = self.dcs if self.constraint_aware_sampling else []
        synthetic = synthesize(model, self.relation, sampled_dcs, weights,
                               n_out, params, rng, hyper=hyper,
                               use_fd_lookup=self.use_fd_lookup,
                               use_violation_index=self.use_violation_index)
        timings["Sam."] = time.perf_counter() - start

        return KaminoResult(table=synthetic, sequence=sequence,
                            params=params, weights=weights, model=model,
                            timings=timings)

    def fit_sample_ar(self, table: Table, n: int | None = None,
                      weights: dict[str, float] | None = None,
                      max_tries: int = 300) -> KaminoResult:
        """The Experiment 6 variant: accept-reject sampling instead of
        direct target-distribution sampling."""
        result = self._fit_only(table, weights)
        rng = np.random.default_rng(self.seed + 1)
        n_out = table.n if n is None else int(n)
        start = time.perf_counter()
        synthetic = ar_sample(result.model, self.relation, self.dcs,
                              result.weights, n_out, result.params, rng,
                              hyper=result._hyper, max_tries=max_tries,
                              use_violation_index=self.use_violation_index)
        result.timings["Sam."] = time.perf_counter() - start
        result.table = synthetic
        return result

    # ------------------------------------------------------------------
    def _fit_only(self, table: Table, weights) -> KaminoResult:
        """Train everything but do not sample (used by the AR variant)."""
        saved = self.use_fd_lookup
        result = None
        try:
            self.use_fd_lookup = False
            result = self.fit_sample(table, n=1, weights=weights)
        finally:
            self.use_fd_lookup = saved
        sequence = result.sequence
        independent = self._independent_attrs(sequence)
        result._hyper = self._build_hyper(sequence, independent)
        return result

    def _independent_attrs(self, sequence) -> list[str]:
        if self.large_domain_threshold is None:
            return []
        independent = large_domain_attributes(
            self.relation, self.large_domain_threshold)
        # The first attribute is already histogram-modeled.
        return [a for a in independent if a != sequence[0]]

    def _build_hyper(self, sequence, independent) -> HyperSpec:
        if self.group_max_domain is None:
            return HyperSpec.trivial(self.relation, sequence)
        # Independent attributes must stay singleton (they are sampled
        # from standalone histograms, not sub-models).
        groups = []
        for group in group_small_domains(self.relation, sequence,
                                         self.group_max_domain):
            if any(a in independent for a in group) and len(group) > 1:
                groups.extend([[a] for a in group])
            else:
                groups.append(group)
        return HyperSpec(self.relation, groups)


def make_kamino(relation, dcs, epsilon: float, **kwargs) -> Kamino:
    """Convenience constructor mirroring the paper's defaults."""
    return Kamino(relation, dcs, epsilon, **kwargs)
