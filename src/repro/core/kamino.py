"""Algorithm 1 — the end-to-end Kamino pipeline, as staged fit/sample.

    S   <- Sequencing(R, D, Phi)               (Algorithm 4, no budget)
    Psi <- SearchDParas(eps, delta, D, S)      (Algorithm 6, no budget)
    M   <- TrainModel(D*, S, D, Psi)           (Algorithm 2, DP)
    W   <- LearnWeight(D*, Phi, S, M, Psi)     (Algorithm 5, DP)
    D'  <- Synthesize(S, M, Phi, D, W)         (Algorithm 3, post-proc)

The first four lines touch the private instance and consume the privacy
budget; the last is pure post-processing.  The public API mirrors that
split:

* :class:`KaminoConfig` — a frozen, validated bag of every pipeline
  knob (structure optimisations, engine flags, ablation switches);
* :class:`Kamino` — binds a schema, the denial constraints, and a
  config; :meth:`Kamino.fit` runs the budget-consuming phases **once**
  and returns a
* :class:`FittedKamino` — the released model artifact.  Its
  :meth:`~FittedKamino.sample` / :meth:`~FittedKamino.sample_ar` draw
  synthetic instances of any size, at any seed, as often as wanted,
  without re-touching the private data or the budget; ``save``/``load``
  persist it (see :mod:`repro.core.model_io`) so a synthesis service
  can train on one machine and serve draws from many.

``Kamino.fit_sample`` remains as the one-shot convenience — it is
literally ``fit(table).sample(n)`` and produces bit-identical output to
the historical fused pipeline.  :class:`Kamino` also applies the §4.3
structural optimisations (hyper-attribute grouping, large-domain
histogram fallback) and records the per-phase wall-clock profile that
Figure 7 reports.

Typical service shape::

    fitted = Kamino(relation, dcs, config=cfg).fit(private_table)
    fitted.save("model.npz")                  # budget spent: cfg.epsilon
    ...
    fitted = FittedKamino.load("model.npz", relation, dcs)
    small = fitted.sample(n=1_000,  seed=1)   # free post-processing
    large = fitted.sample(n=50_000, seed=2)   # still free
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.hyper import HyperSpec
from repro.core.params import KaminoParams, search_dp_params
from repro.core.sampling import ar_sample, synthesize
from repro.core.sequencing import (
    group_small_domains,
    large_domain_attributes,
    sequence_attributes,
)
from repro.core.training import ProbModel, train_model
from repro.core.weights import learn_dc_weights
from repro.faults import fault_point
from repro.schema.table import Table

_WEIGHT_ESTIMATORS = ("matrix", "capped")
_ENGINES = ("blocked", "row")
_POOLS = ("thread", "process")


def _resolve_workers(workers: int, engine: str, pool: str) -> int:
    """Resolve ``workers=0`` ("auto") at draw time.

    Auto means ``os.cpu_count()`` for lanes that can shard; the
    sequential row engine's thread lane resolves to 1 (there is nothing
    to shard there).  The literal 0 is what configs persist — a model
    artifact never bakes in one machine's core count.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 1, or 0 for auto, "
                         f"got {workers}")
    if workers != 0:
        return workers
    if engine == "row" and pool == "thread":
        return 1
    return os.cpu_count() or 1


@dataclass(frozen=True)
class KaminoConfig:
    """Every knob of the pipeline, validated once, immutable thereafter.

    Parameters
    ----------
    epsilon, delta:
        The end-to-end privacy budget.  ``epsilon=math.inf`` runs the
        non-private configuration (Figure 6's rightmost points).
    seed:
        Randomness seed for the whole pipeline.
    group_max_domain:
        Hyper-attribute grouping cap (``None`` disables grouping).
    large_domain_threshold:
        Domain size beyond which an attribute is modeled by an
        independent histogram (``None`` disables the fallback).
    use_fd_lookup:
        Hard-FD lookup fast path in the sampler (Experiment 10).
    use_violation_index:
        Probe sampler violation counts through the incremental
        violation indexes (:mod:`repro.constraints.index`) instead of
        rescanning the sampled prefix per cell.  On by default; counts
        (and hence outputs) are bit-identical either way.
    parallel_training:
        Train sub-models without embedding reuse (Experiment 10).
    params_override:
        Callable mutating the searched :class:`KaminoParams` before
        training (e.g. to cap iterations in small-scale benchmarks);
        the accountant re-checks the budget after the override.  Being
        a callable it is consumed during :meth:`Kamino.fit` and is not
        part of the persisted model artifact.
    random_sequence:
        Ablation switch (Experiment 5's "RandSequence"): replace
        Algorithm 4 with a seeded random permutation.
    constraint_aware_sampling:
        Ablation switch (Experiment 5's "RandSampling"): when False the
        sampler ignores the DCs and draws i.i.d. tuples.
    weight_estimator:
        Soft-DC weight estimator: ``"matrix"`` (default, the paper's
        literal Algorithm 5) or ``"capped"`` (log-odds over capped
        violation indicators — better when the budget affords an
        informative release); see :mod:`repro.core.weights`.
    engine:
        Sampling engine: ``"blocked"`` (default — the block-scheduled
        vectorized engine of :mod:`repro.core.engine`, counter-based
        per-cell rng, supports ``workers``) or ``"row"`` (the legacy
        per-row loop, bit-exact replay of pre-engine outputs).  Both
        sample the same distribution; they differ only in rng scheme
        and speed.
    workers:
        Default worker count for :meth:`FittedKamino.sample` (the
        per-call ``workers=`` argument overrides it).  ``0`` means
        "auto": resolve from ``os.cpu_count()`` at draw time — the
        literal ``0`` is what persists in model v2, never a
        machine-specific count.  Only the blocked engine shards on it —
        unconstrained passes over contiguous spans, constrained passes
        over group-disjoint sub-schedules — and the drawn instance is
        bit-identical for any worker count (a scheduling knob, never a
        semantics knob).
    pool:
        Execution lane for ``workers > 1``: ``"thread"`` (default,
        shared-memory, GIL-bound) or ``"process"`` (worker processes
        holding their own sampler; shards travel as compact picklable
        specs and stitch back bit-identically).  Under
        ``engine="row"``, ``pool="process"`` runs the whole sequential
        draw in one subprocess.  Pure scheduling: never changes a cell.
    stream_chunk_rows:
        Default chunk size of :meth:`FittedKamino.sample_stream` (rows
        per yielded table; the per-call ``chunk_rows=`` argument
        overrides it).  Pure scheduling — concatenated chunks are
        bit-identical to the single-shot draw at any value.
    max_block_rows:
        Cap on the blocked engine's conflict-free block length.  Larger
        blocks amortise more Python per probe but widen the peak
        penalty matrices (memory ~ ``max_block_rows x domain``).  Like
        ``workers`` this is pure scheduling: any value yields the same
        draw.  Default 512 (:data:`repro.core.engine.MAX_BLOCK_ROWS`).
    """

    epsilon: float
    delta: float = 1e-6
    seed: int = 0
    group_max_domain: int | None = None
    large_domain_threshold: int | None = 1000
    use_fd_lookup: bool = False
    use_violation_index: bool = True
    parallel_training: bool = False
    params_override: Callable[[KaminoParams], None] | None = None
    random_sequence: bool = False
    constraint_aware_sampling: bool = True
    weight_estimator: str = "matrix"
    engine: str = "blocked"
    workers: int = 1
    pool: str = "thread"
    max_block_rows: int = 512
    stream_chunk_rows: int = 65536

    def __post_init__(self):
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "delta", float(self.delta))
        if not self.epsilon > 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if self.group_max_domain is not None and self.group_max_domain < 2:
            raise ValueError("group_max_domain must be >= 2 or None")
        if (self.large_domain_threshold is not None
                and self.large_domain_threshold < 1):
            raise ValueError("large_domain_threshold must be >= 1 or None")
        if (self.params_override is not None
                and not callable(self.params_override)):
            raise ValueError("params_override must be callable or None")
        if self.weight_estimator not in _WEIGHT_ESTIMATORS:
            raise ValueError(
                f"weight_estimator must be one of {_WEIGHT_ESTIMATORS}, "
                f"got {self.weight_estimator!r}")
        if self.engine not in _ENGINES:
            raise ValueError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if self.workers < 0:
            raise ValueError(
                f"workers must be >= 1, or 0 for auto, got {self.workers}")
        if self.pool not in _POOLS:
            raise ValueError(
                f"pool must be one of {_POOLS}, got {self.pool!r}")
        if self.max_block_rows < 1:
            raise ValueError(
                f"max_block_rows must be >= 1, got {self.max_block_rows}")
        if self.stream_chunk_rows < 1:
            raise ValueError(
                f"stream_chunk_rows must be >= 1, "
                f"got {self.stream_chunk_rows}")

    @property
    def private(self) -> bool:
        return math.isfinite(self.epsilon)

    def replace(self, **changes) -> "KaminoConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


#: Config field names, used by the :class:`Kamino` back-compat shim to
#: forward attribute reads/writes onto the frozen config.
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(KaminoConfig))

#: Sentinel distinguishing "knob not passed" from any real value, so
#: ``Kamino(..., config=cfg, seed=5)`` can be rejected instead of
#: silently dropping ``seed``.
_UNSET = object()


@dataclass
class KaminoResult:
    """Everything a run produces, for inspection and evaluation."""

    table: Table
    sequence: list[str]
    params: KaminoParams
    weights: dict[str, float]
    model: ProbModel | None = None
    #: Grouping spec the sampler used (trivial when grouping is off).
    hyper: HyperSpec | None = None
    #: Per-phase seconds: Seq. / Tra. / Vio.+DC.W. / Sam. (Figure 7).
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


@dataclass
class FittedKamino:
    """A trained Kamino model: the releasable, budget-consumed artifact.

    Produced by :meth:`Kamino.fit`.  Holds the learned probabilistic
    data model, the DC weights, the schema sequence and structural
    specs, and the post-fit sampler randomness state — everything
    Algorithm 3 needs, and nothing that touches the private instance.
    Sampling from it is pure post-processing: every draw (any ``n``,
    any ``seed``, direct or accept-reject) is free under DP.
    """

    relation: object
    dcs: list
    config: KaminoConfig
    sequence: list[str]
    independent: list[str]
    hyper: HyperSpec
    params: KaminoParams
    weights: dict[str, float]
    model: ProbModel
    #: Input size; the default draw size of :meth:`sample`.
    default_n: int
    #: Seq./Tra./DC.W. seconds of the fit phases.
    fit_timings: dict[str, float] = field(default_factory=dict)
    #: Bit-generator state right after training — ``sample(seed=None)``
    #: resumes from here, which is what makes ``fit(t).sample(n)``
    #: bit-identical to the historical fused ``fit_sample(t, n)``.
    sampling_state: dict | None = None
    #: Counter-rng spec of the blocked engine (scheme + noise chunking),
    #: persisted with the model so reloaded artifacts replay their
    #: draws; None on legacy artifacts (which default to engine="row").
    rng_spec: dict | None = None
    #: Per-phase privacy-spend itemisation of the fit that produced
    #: this artifact (a :class:`repro.synth.ledger.BudgetLedger`;
    #: checkpoint-restored phases are marked ``resumed``).  Runtime
    #: record of the fit — not part of the persisted model format, so
    #: :meth:`load` leaves it ``None``.
    ledger: object | None = None
    #: Checkpoint stage this fit resumed from (``None`` for a fresh,
    #: uninterrupted fit).  Runtime-only, like ``ledger``.
    resumed_from: str | None = None

    @property
    def private(self) -> bool:
        return self.config.private

    # ------------------------------------------------------------------
    def _sampling_rng(self, seed, offset: int = 0) -> np.random.Generator:
        if seed is not None:
            return np.random.default_rng(seed)
        if offset == 0 and self.sampling_state is not None:
            rng = np.random.default_rng(0)
            rng.bit_generator.state = self.sampling_state
            return rng
        return np.random.default_rng(self.config.seed + offset)

    def _result(self, synthetic: Table, seconds: float) -> KaminoResult:
        timings = dict(self.fit_timings)
        timings["Sam."] = seconds
        return KaminoResult(table=synthetic, sequence=list(self.sequence),
                            params=self.params, weights=dict(self.weights),
                            model=self.model, hyper=self.hyper,
                            timings=timings)

    def sample(self, n: int | None = None, seed: int | None = None,
               workers: int | None = None, engine: str | None = None,
               pool: str | None = None, trace=None) -> KaminoResult:
        """Draw a synthetic instance (Algorithm 3, post-processing).

        ``n`` defaults to the fitted input size.  ``seed=None`` draws
        with the fitted config's seed; under ``engine="row"`` it resumes
        the pipeline rng where :meth:`Kamino.fit` left it (so the first
        default draw reproduces the fused ``fit_sample`` bit for bit,
        and repeated default draws are identical); pass distinct seeds
        for distinct draws.

        ``engine`` overrides the fitted ``config.engine`` for this draw:
        ``"blocked"`` is the block-scheduled vectorized engine,
        ``"row"`` the legacy loop for exact replay of pre-engine
        outputs.  ``workers`` (default: ``config.workers``; ``0`` =
        auto from ``os.cpu_count()``) shards the blocked engine's
        column passes — unconstrained ones over contiguous spans,
        constrained ones over group-disjoint sub-schedules — and
        ``pool`` (default: ``config.pool``) picks the ``"thread"`` or
        ``"process"`` lane.  Under ``engine="row"``,
        ``pool="process"`` runs the whole sequential draw in one
        subprocess (``workers`` stays 1; with a ``trace`` the draw runs
        in-process so the trace object can be populated).

        **Determinism guarantees.**  For a given fitted model, the drawn
        instance is a pure function of ``(n, seed, engine)``:

        * the blocked engine keys every cell's noise off counter-based
          Philox streams, so ``workers``, ``pool``,
          ``config.max_block_rows``, and ``config.use_violation_index``
          are pure scheduling knobs — any combination yields
          bit-identical output;
        * the row engine replays the single legacy numpy stream, so
          equal seeds give equal draws (and ``seed=None`` resumes the
          fit-time rng, reproducing the fused pipeline exactly);
        * passing a ``trace`` (see below) never touches any rng: a
          traced draw is bit-identical to an untraced one.

        ``trace`` is an optional :class:`repro.obs.trace.RunTrace`; the
        draw appends one :class:`~repro.obs.trace.SampleTrace` with
        per-column wall-clock, engine lanes, block sizes, and
        violation-index probe counts.
        """
        n_out = self.default_n if n is None else int(n)
        cfg = self.config
        engine = cfg.engine if engine is None else engine
        pool = cfg.pool if pool is None else pool
        workers = cfg.workers if workers is None else int(workers)
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, "
                             f"got {engine!r}")
        if pool not in _POOLS:
            raise ValueError(f"pool must be one of {_POOLS}, "
                             f"got {pool!r}")
        workers = _resolve_workers(workers, engine, pool)
        if workers != 1 and engine != "blocked":
            raise ValueError("workers != 1 requires engine='blocked' "
                             "(the row engine is sequential; use "
                             "pool='process' to move its draw off the "
                             "main process)")
        sampled_dcs = self.dcs if cfg.constraint_aware_sampling else []
        run_trace = None
        if trace is not None:
            run_trace = trace.begin_sample(engine, n_out, seed,
                                           workers=workers, pool=pool)
        start = time.perf_counter()
        if engine == "blocked":
            from repro.core.engine import NOISE_CHUNK, synthesize_engine
            spec = self.rng_spec or {}
            scheme = spec.get("scheme", "philox-cell")
            if scheme != "philox-cell":
                # Drawing with a different stream than the artifact
                # records would silently break draw replay.
                raise ValueError(
                    f"model was fitted under rng scheme {scheme!r}, "
                    f"which this version cannot reproduce")
            chunk = spec.get("chunk", NOISE_CHUNK)
            master = int(cfg.seed if seed is None else seed)
            synthetic = synthesize_engine(
                self.model, self.relation, sampled_dcs, self.weights,
                n_out, self.params, master, hyper=self.hyper,
                use_fd_lookup=cfg.use_fd_lookup,
                use_violation_index=cfg.use_violation_index,
                workers=workers, pool=pool,
                max_block_rows=cfg.max_block_rows,
                noise_chunk=chunk, trace=run_trace)
        elif pool == "process" and run_trace is None:
            from repro.core.engine import synthesize_row_subprocess
            synthetic = synthesize_row_subprocess(
                self.model, self.relation, sampled_dcs, self.weights,
                n_out, self.params, self._sampling_rng(seed),
                hyper=self.hyper, use_fd_lookup=cfg.use_fd_lookup,
                use_violation_index=cfg.use_violation_index)
        else:
            rng = self._sampling_rng(seed)
            synthetic = synthesize(
                self.model, self.relation, sampled_dcs, self.weights,
                n_out, self.params, rng, hyper=self.hyper,
                use_fd_lookup=cfg.use_fd_lookup,
                use_violation_index=cfg.use_violation_index,
                trace=run_trace)
        seconds = time.perf_counter() - start
        if run_trace is not None:
            run_trace.finish(seconds)
        return self._result(synthetic, seconds)

    def sample_stream(self, n: int | None = None, seed: int | None = None,
                      chunk_rows: int | None = None,
                      engine: str | None = None):
        """Draw ``n`` rows as an iterator of bounded-memory table chunks.

        Concatenating the yielded :class:`Table` chunks in order is
        bit-identical to ``sample(n, seed).table`` — chunking is pure
        scheduling (see :func:`repro.core.engine.synthesize_stream`).
        ``chunk_rows`` defaults to ``config.stream_chunk_rows``.  Under
        the blocked engine, peak memory holds one chunk plus the
        per-column constraint-index state, never the full ``n`` rows —
        this is the lane behind ``repro-kamino sample --out`` streaming
        n=10M draws straight to disk.  The row engine is sequential
        with a full in-memory prefix by construction, so there it
        materializes the draw once and slices it (bounded *output*
        granularity, not bounded peak).

        Requires ``mcmc_m == 0`` (the refinement re-reads the whole
        instance); a DC that cannot be answered from the violation
        indexes raises :class:`~repro.core.sampling.PrefixScanRequired`
        rather than silently answering from a partial prefix.
        """
        n_out = self.default_n if n is None else int(n)
        cfg = self.config
        engine = cfg.engine if engine is None else engine
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, "
                             f"got {engine!r}")
        chunk = (cfg.stream_chunk_rows if chunk_rows is None
                 else int(chunk_rows))
        if chunk < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk}")
        sampled_dcs = self.dcs if cfg.constraint_aware_sampling else []
        if engine == "blocked":
            from repro.core.engine import NOISE_CHUNK, synthesize_stream
            spec = self.rng_spec or {}
            scheme = spec.get("scheme", "philox-cell")
            if scheme != "philox-cell":
                raise ValueError(
                    f"model was fitted under rng scheme {scheme!r}, "
                    f"which this version cannot reproduce")
            master = int(cfg.seed if seed is None else seed)
            return synthesize_stream(
                self.model, self.relation, sampled_dcs, self.weights,
                n_out, self.params, master, hyper=self.hyper,
                use_fd_lookup=cfg.use_fd_lookup,
                use_violation_index=cfg.use_violation_index,
                chunk_rows=chunk, max_block_rows=cfg.max_block_rows,
                noise_chunk=spec.get("chunk", NOISE_CHUNK))
        return self._row_stream(n_out, seed, chunk)

    def _row_stream(self, n_out: int, seed, chunk: int):
        table = self.sample(n=n_out, seed=seed, engine="row").table
        for lo in range(0, n_out, chunk):
            hi = min(lo + chunk, n_out)
            yield Table(self.relation,
                        {a: table.column(a)[lo:hi]
                         for a in self.relation.names}, validate=False)

    def sample_ar(self, n: int | None = None, seed: int | None = None,
                  max_tries: int = 300, trace=None) -> KaminoResult:
        """Accept-reject draw (the Experiment 6 sampler variant).

        ``trace`` records a run-level :class:`SampleTrace` (engine
        ``"ar"``, no per-column breakdown).
        """
        n_out = self.default_n if n is None else int(n)
        rng = self._sampling_rng(seed, offset=1)
        cfg = self.config
        sampled_dcs = self.dcs if cfg.constraint_aware_sampling else []
        run_trace = None
        if trace is not None:
            run_trace = trace.begin_sample("ar", n_out, seed)
        start = time.perf_counter()
        synthetic = ar_sample(
            self.model, self.relation, sampled_dcs, self.weights, n_out,
            self.params, rng, hyper=self.hyper, max_tries=max_tries,
            use_violation_index=cfg.use_violation_index)
        seconds = time.perf_counter() - start
        if run_trace is not None:
            run_trace.finish(seconds)
        return self._result(synthetic, seconds)

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the fitted model to a ``.npz`` file.

        Everything except the DCs and the schema round-trips — both are
        public inputs the caller already persists (see
        :mod:`repro.io`) and must supply again to :meth:`load`.
        """
        from repro.core.model_io import save_fitted
        save_fitted(path, self)

    @classmethod
    def load(cls, path: str, relation, dcs) -> "FittedKamino":
        """Reload a fitted model saved by :meth:`save`.

        ``relation`` and ``dcs`` are the same public schema and denial
        constraints the model was fitted with; constants in the DCs are
        bound to the schema here.
        """
        from repro.core.model_io import load_fitted
        payload = load_fitted(path, relation)
        bound = [dc.bind(relation) for dc in dcs]
        return cls(relation=relation, dcs=bound, config=payload["config"],
                   sequence=payload["sequence"],
                   independent=payload["independent"],
                   hyper=payload["hyper"], params=payload["params"],
                   weights=payload["weights"], model=payload["model"],
                   default_n=payload["default_n"],
                   fit_timings=payload["fit_timings"],
                   sampling_state=payload["sampling_state"],
                   rng_spec=payload["rng_spec"])


def _phase_epsilons(params: KaminoParams) -> tuple[float, float]:
    """Split the achieved end-to-end epsilon across the fit phases.

    The accountant converts one *composed* RDP curve (Theorem 1), so
    per-phase epsilons are an attribution, not independent guarantees:
    each mechanism family's share of the total RDP at the converting
    order ``best_alpha`` is applied pro-rata to ``achieved_epsilon``.
    Returns ``(training, weights)`` — training covers M1 (histogram
    releases) + M2 (DP-SGD), weights covers M3 (the violation-matrix
    release); the two sum to ``achieved_epsilon``.
    """
    eps = params.achieved_epsilon
    if not math.isfinite(eps) or eps <= 0:
        return 0.0, 0.0
    alpha = int(params.best_alpha)
    if not params.learn_weights or alpha < 2 or params.n <= 0:
        return eps, 0.0
    from repro.privacy.rdp import kamino_rdp, rdp_sgm
    total_rdp = kamino_rdp(
        alpha, sigma_g=params.sigma_g, sigma_d=params.sigma_d,
        T=params.iterations, k=params.k, b=params.batch, n=params.n,
        learn_weights=True, sigma_w=params.sigma_w, L_w=params.L_w,
        n_hist=params.n_hist, n_submodels=params.n_submodels)
    m3_rdp = rdp_sgm(min(params.L_w / params.n, 1.0), params.sigma_w,
                     alpha)
    share = m3_rdp / total_rdp if total_rdp > 0 else 0.0
    return eps * (1.0 - share), eps * share


class Kamino:
    """Constraint-aware differentially private data synthesizer.

    Binds the public inputs — ``relation`` (the schema) and ``dcs``
    (denial constraints, hardness flags set; constants in raw domain
    values are bound to the schema here) — to a :class:`KaminoConfig`.

    Two construction styles::

        Kamino(relation, dcs, config=KaminoConfig(epsilon=1.0, seed=3))
        Kamino(relation, dcs, 1.0, seed=3)     # back-compat shim

    The second forwards the keyword knobs into a ``KaminoConfig``;
    attribute reads and writes (``kamino.seed``, ``kamino.use_fd_lookup
    = True``) keep working and transparently re-derive the frozen
    config.

    :meth:`fit` runs the budget-consuming phases and returns a
    :class:`FittedKamino`; :meth:`fit_sample` / :meth:`fit_sample_ar`
    are the fused conveniences (``fit().sample()`` /
    ``fit().sample_ar()``).
    """

    def __init__(self, relation, dcs, epsilon: float | None = None,
                 delta: float = _UNSET, seed: int = _UNSET,
                 group_max_domain: int | None = _UNSET,
                 large_domain_threshold: int | None = _UNSET,
                 use_fd_lookup: bool = _UNSET,
                 use_violation_index: bool = _UNSET,
                 parallel_training: bool = _UNSET,
                 params_override=_UNSET,
                 random_sequence: bool = _UNSET,
                 constraint_aware_sampling: bool = _UNSET,
                 weight_estimator: str = _UNSET,
                 engine: str = _UNSET,
                 workers: int = _UNSET,
                 pool: str = _UNSET,
                 max_block_rows: int = _UNSET,
                 stream_chunk_rows: int = _UNSET,
                 config: KaminoConfig | None = None):
        knobs = {
            name: value for name, value in (
                ("delta", delta), ("seed", seed),
                ("group_max_domain", group_max_domain),
                ("large_domain_threshold", large_domain_threshold),
                ("use_fd_lookup", use_fd_lookup),
                ("use_violation_index", use_violation_index),
                ("parallel_training", parallel_training),
                ("params_override", params_override),
                ("random_sequence", random_sequence),
                ("constraint_aware_sampling", constraint_aware_sampling),
                ("weight_estimator", weight_estimator),
                ("engine", engine),
                ("workers", workers),
                ("pool", pool),
                ("max_block_rows", max_block_rows),
                ("stream_chunk_rows", stream_chunk_rows),
            ) if value is not _UNSET}
        if config is None:
            if epsilon is None:
                raise TypeError(
                    "Kamino() needs either epsilon=... or config=...")
            config = KaminoConfig(epsilon=epsilon, **knobs)
        elif epsilon is not None or knobs:
            given = ((["epsilon"] if epsilon is not None else [])
                     + sorted(knobs))
            raise TypeError(
                "config= is exclusive with epsilon and the individual "
                f"knob arguments (got {', '.join(given)})")
        self.relation = relation
        self.dcs = [dc.bind(relation) for dc in dcs]
        self.config = config

    # -- config delegation (back-compat attribute surface) --------------
    def __getattr__(self, name):
        config = self.__dict__.get("config")
        if config is not None and name in _CONFIG_FIELDS:
            return getattr(config, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name, value):
        if name in _CONFIG_FIELDS and "config" in self.__dict__:
            object.__setattr__(
                self, "config", self.config.replace(**{name: value}))
        else:
            object.__setattr__(self, name, value)

    @property
    def private(self) -> bool:
        return self.config.private

    # ------------------------------------------------------------------
    def fit(self, table: Table,
            weights: dict[str, float] | None = None,
            trace=None, checkpoint_dir: str | None = None) -> FittedKamino:
        """Run the budget-consuming phases on the private ``table``.

        Sequencing (Algorithm 4), parameter search (Algorithm 6), model
        training (Algorithm 2), and DC-weight learning (Algorithm 5) —
        everything that touches the private instance — happen here,
        once.  Pass known DC ``weights`` to skip Algorithm 5 (the
        paper's "known weights" setting of §4).  The returned
        :class:`FittedKamino` samples any number of instances for free.

        ``trace`` is an optional :class:`repro.obs.trace.RunTrace`; the
        four phases are timed under the canonical names ``sequencing``,
        ``params``, ``dp_sgd``, ``weights``.  Tracing never touches the
        pipeline rng, so a traced fit equals an untraced one.

        ``checkpoint_dir`` makes the fit crash-safe: after each phase an
        atomic, digest-verified checkpoint is written there (see
        :mod:`repro.core.checkpoint`), and a later ``fit`` over the same
        table/config resumes from the newest valid one instead of
        re-running — and re-*spending* — the completed phases.  The
        resumed fit restores the pipeline rng state, so its model, its
        draws, and its ``sampling_state`` are bit-identical to an
        uninterrupted fit; the returned artifact's ``ledger`` marks the
        restored phases' spends as ``resumed``.  Checkpoints carry
        DP-protected model state — guard the directory like the model
        artifact itself — and are cleared when the fit completes.
        """
        from repro.synth.ledger import BudgetLedger

        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        known_weights = weights
        ledger = BudgetLedger()

        ckpt = None
        restored = None
        if checkpoint_dir is not None:
            from repro.core.checkpoint import FitCheckpoint, fit_key
            ckpt = FitCheckpoint(checkpoint_dir,
                                 fit_key(cfg, table, known_weights))
            restored = ckpt.load_latest(self.relation)
        from repro.core.checkpoint import STAGES
        timings: dict[str, float] = dict(restored.timings) if restored \
            else {}
        if restored is not None:
            # Phases still to run consume the generator from exactly
            # where the interrupted fit left it — this is what makes the
            # resumed fit bit-identical to an uninterrupted one.
            rng.bit_generator.state = restored.rng_state

        def _done(stage: str) -> bool:
            return (restored is not None
                    and STAGES.index(restored.stage) >= STAGES.index(stage))

        def _phase(name: str):
            return trace.phase(name) if trace is not None else nullcontext()

        def _after_stage(stage: str, **state) -> None:
            """Checkpoint a freshly executed stage (skipped for restored
            ones — their checkpoint already exists and re-writing would
            reseal identical state for no benefit)."""
            if _done(stage):
                return
            if ckpt is not None:
                ckpt.save(stage, rng_state=rng.bit_generator.state,
                          timings=timings, **state)
            fault_point(f"fit.{stage}")

        # -- Sequencing (Algorithm 4) + structure ----------------------
        if _done("sequencing"):
            sequence = restored.sequence
            independent = restored.independent
            hyper = HyperSpec(self.relation, restored.hyper_groups)
        else:
            start = time.perf_counter()
            with _phase("sequencing"):
                if cfg.random_sequence:
                    sequence = list(self.relation.names)
                    np.random.default_rng(cfg.seed + 17).shuffle(sequence)
                else:
                    sequence = sequence_attributes(self.relation, self.dcs)
                independent = self._independent_attrs(sequence)
                hyper = self._build_hyper(sequence, independent)
            timings["Seq."] = time.perf_counter() - start
        _after_stage("sequencing", sequence=sequence,
                     independent=independent, hyper=hyper)

        # -- Parameter search (Algorithm 6) ----------------------------
        if _done("params"):
            params = restored.params
        else:
            with _phase("params"):
                learn_weights = known_weights is None and any(
                    not dc.hard for dc in self.dcs)
                n_hist = 1 + len(independent)
                n_submodels = max(
                    len(hyper.working_sequence) - 1 - len(independent), 0)
                if self.private:
                    params = search_dp_params(
                        cfg.epsilon, cfg.delta, hyper.working_relation,
                        hyper.working_sequence, table.n,
                        learn_weights=learn_weights, n_hist=n_hist,
                        n_submodels=n_submodels)
                else:
                    params = KaminoParams(
                        epsilon=math.inf, delta=cfg.delta, n=table.n,
                        k=len(hyper.working_sequence),
                        iterations=max(1, (2 * table.n) // 32),
                        learn_weights=learn_weights, n_hist=n_hist,
                        n_submodels=n_submodels)
                if cfg.params_override is not None:
                    cfg.params_override(params)
                    if self.private:
                        achieved, alpha = params.accounted_epsilon()
                        if achieved > cfg.epsilon * (1 + 1e-9):
                            raise ValueError(
                                f"params_override broke the budget: "
                                f"{achieved:.4f} > {cfg.epsilon}")
                        params.achieved_epsilon = achieved
                        params.best_alpha = alpha
        _after_stage("params", sequence=sequence, independent=independent,
                     hyper=hyper, params=params)

        eps_train, eps_weights = (_phase_epsilons(params) if self.private
                                  else (0.0, 0.0))

        # -- Model training (Algorithm 2) ------------------------------
        if _done("dp_sgd"):
            model = restored.model
        else:
            start = time.perf_counter()
            with _phase("dp_sgd"):
                working = hyper.encode_table(table)
                model = train_model(
                    working, hyper.working_relation, hyper.working_sequence,
                    params, rng, independent_attrs=independent,
                    parallel=cfg.parallel_training, private=self.private)
            timings["Tra."] = time.perf_counter() - start
        if self.private:
            ledger.spend("rdp:m1-histograms+m2-dp-sgd", eps_train,
                         cfg.delta, resumed=_done("dp_sgd"))
        _after_stage("dp_sgd", sequence=sequence, independent=independent,
                     hyper=hyper, params=params, model=model)

        # -- DC weights (Algorithm 5) -----------------------------------
        if _done("weights") and restored.weights is not None:
            weights = restored.weights
        else:
            start = time.perf_counter()
            with _phase("weights"):
                if known_weights is None:
                    weights = learn_dc_weights(table, self.dcs, sequence,
                                               params, rng,
                                               private=self.private,
                                               estimator=cfg.weight_estimator)
                else:
                    weights = dict(known_weights)
                    for dc in self.dcs:
                        weights.setdefault(dc.name, math.inf if dc.hard
                                           else params.weight_init)
            timings["DC.W."] = time.perf_counter() - start
        if self.private and params.learn_weights:
            ledger.spend("rdp:m3-dc-weights", eps_weights,
                         resumed=_done("weights"))
        _after_stage("weights", sequence=sequence, independent=independent,
                     hyper=hyper, params=params, model=model,
                     weights=weights)

        if ckpt is not None:
            # The fitted artifact supersedes the checkpoints; clearing
            # keeps the directory from resuming a *completed* fit.
            ckpt.clear()

        from repro.core.engine import ENGINE_RNG_SPEC
        return FittedKamino(
            relation=self.relation, dcs=list(self.dcs), config=cfg,
            sequence=sequence, independent=independent, hyper=hyper,
            params=params, weights=weights, model=model,
            default_n=table.n, fit_timings=timings,
            sampling_state=rng.bit_generator.state,
            rng_spec=dict(ENGINE_RNG_SPEC), ledger=ledger,
            resumed_from=restored.stage if restored is not None else None)

    def fit_sample(self, table: Table, n: int | None = None,
                   weights: dict[str, float] | None = None) -> KaminoResult:
        """Fused convenience: ``fit(table).sample(n)``.

        ``n`` defaults to the input size; pass known DC ``weights`` to
        skip Algorithm 5.  Prefer :meth:`fit` + repeated
        :meth:`FittedKamino.sample` when more than one draw is needed —
        the training cost (and the privacy budget) is paid only once.
        """
        return self.fit(table, weights=weights).sample(n)

    def fit_sample_ar(self, table: Table, n: int | None = None,
                      weights: dict[str, float] | None = None,
                      max_tries: int = 300) -> KaminoResult:
        """The Experiment 6 variant: accept-reject sampling instead of
        direct target-distribution sampling."""
        return self.fit(table, weights=weights).sample_ar(
            n, max_tries=max_tries)

    # ------------------------------------------------------------------
    def _independent_attrs(self, sequence) -> list[str]:
        if self.config.large_domain_threshold is None:
            return []
        independent = large_domain_attributes(
            self.relation, self.config.large_domain_threshold)
        # The first attribute is already histogram-modeled.
        return [a for a in independent if a != sequence[0]]

    def _build_hyper(self, sequence, independent) -> HyperSpec:
        if self.config.group_max_domain is None:
            return HyperSpec.trivial(self.relation, sequence)
        # Independent attributes must stay singleton (they are sampled
        # from standalone histograms, not sub-models).
        groups = []
        for group in group_small_domains(self.relation, sequence,
                                         self.config.group_max_domain):
            if any(a in independent for a in group) and len(group) > 1:
                groups.extend([[a] for a in group])
            else:
                groups.append(group)
        return HyperSpec(self.relation, groups)


def make_kamino(relation, dcs, epsilon: float, **kwargs) -> Kamino:
    """Convenience constructor mirroring the paper's defaults."""
    return Kamino(relation, dcs, epsilon, **kwargs)
