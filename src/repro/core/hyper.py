"""Hyper attributes — §4.3's small-domain grouping optimisation.

Adjacent small-domain categorical attributes in the schema sequence are
merged into one *hyper attribute* whose domain is the cross product of
the members' domains (mixed-radix coding).  One discriminative
sub-model then covers the whole group, so fewer DP-SGD training runs
compose — the saved budget buys lower noise elsewhere.

The :class:`HyperSpec` owns the bidirectional coding, the construction
of the *working relation* (hyper attributes substituted into the
sequence), and the per-candidate decode the constraint-aware sampler
needs to check DCs on the original member attributes.
"""

from __future__ import annotations

import numpy as np

from repro.schema.domain import CategoricalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


class HyperSpec:
    """Grouping of a schema sequence into (possibly hyper) attributes.

    Parameters
    ----------
    relation:
        The original schema.
    groups:
        A partition of the schema sequence into runs, as produced by
        :func:`repro.core.sequencing.group_small_domains`.  Runs of
        length 1 stay ordinary attributes; longer runs become hyper
        attributes.
    """

    def __init__(self, relation: Relation, groups):
        self.relation = relation
        self.groups = [list(g) for g in groups]
        self.members: dict[str, list[str]] = {}
        self._radices: dict[str, np.ndarray] = {}
        working_attrs = []
        for group in self.groups:
            if len(group) == 1:
                working_attrs.append(relation[group[0]])
                continue
            name = "+".join(group)
            sizes = np.array([relation[a].domain.size for a in group],
                             dtype=np.int64)
            # Mixed radix: code = sum_i member_code_i * prod(sizes[i+1:]).
            radices = np.ones(len(group), dtype=np.int64)
            radices[:-1] = np.cumprod(sizes[::-1])[::-1][1:]
            total = int(sizes.prod())
            values = [f"h{v}" for v in range(total)]
            working_attrs.append(Attribute(name, CategoricalDomain(values)))
            self.members[name] = group
            self._radices[name] = radices
        self.working_relation = Relation(working_attrs)
        self.working_sequence = [a.name for a in working_attrs]

    # ------------------------------------------------------------------
    def is_hyper(self, name: str) -> bool:
        return name in self.members

    def original_attrs(self, name: str) -> list[str]:
        """Member attributes of a working attribute (singleton if plain)."""
        return self.members.get(name, [name])

    def encode_codes(self, name: str, member_cols: dict) -> np.ndarray:
        """Mixed-radix encode member code columns into hyper codes."""
        radices = self._radices[name]
        out = np.zeros_like(np.asarray(member_cols[self.members[name][0]],
                                       dtype=np.int64))
        for attr, radix in zip(self.members[name], radices):
            out = out + np.asarray(member_cols[attr], dtype=np.int64) * radix
        return out

    def decode_codes(self, name: str, codes: np.ndarray) -> dict:
        """Inverse of :meth:`encode_codes`: hyper codes -> member columns."""
        codes = np.asarray(codes, dtype=np.int64)
        out = {}
        rem = codes.copy()
        for attr, radix in zip(self.members[name], self._radices[name]):
            out[attr] = rem // radix
            rem = rem % radix
        return out

    def encode_table(self, table: Table) -> Table:
        """Transform an original-schema table into the working schema."""
        cols = {}
        for wattr in self.working_relation:
            if self.is_hyper(wattr.name):
                member_cols = {a: table.column(a)
                               for a in self.members[wattr.name]}
                cols[wattr.name] = self.encode_codes(wattr.name, member_cols)
            else:
                cols[wattr.name] = table.column(wattr.name).copy()
        return Table(self.working_relation, cols, validate=False)

    def decode_table(self, working: Table,
                     target_relation: Relation) -> Table:
        """Transform a working-schema table back to the original schema."""
        cols: dict[str, np.ndarray] = {}
        for wattr in working.relation:
            if self.is_hyper(wattr.name):
                cols.update(self.decode_codes(wattr.name,
                                              working.column(wattr.name)))
            else:
                cols[wattr.name] = working.column(wattr.name).copy()
        return Table(target_relation,
                     {a.name: cols[a.name] for a in target_relation},
                     validate=False)

    @classmethod
    def trivial(cls, relation: Relation, sequence) -> "HyperSpec":
        """A spec with no grouping (every attribute is its own run)."""
        return cls(relation, [[a] for a in sequence])
