"""Seeded synthetic workloads mirroring the paper's four datasets.

The build environment is offline, so the public Adult / BR2000 / Tax /
TPC-H files cannot be downloaded.  Each generator here reproduces the
*structure* the experiments depend on — the schema, approximate domain
sizes, the denial constraints of Table 1, and strong inter-attribute
correlations — from a seeded generative process:

* :func:`adult` — 15 census-style attributes; the hard FD
  ``edu -> edu_num`` and the hard order DC on capital gain/loss hold
  exactly (zero violating pairs, as in the real data);
* :func:`br2000` — 14 small-domain attributes (7 binary, exercising the
  hyper-attribute grouping) with three *soft* order DCs violated by a
  fraction of a percent of pairs;
* :func:`tax` — 12 attributes with a large-domain ``zip`` (exercising
  the independent-histogram fallback) and six hard DCs (FDs plus a
  salary/rate monotonicity per state);
* :func:`tpch` — a 9-attribute denormalised Orders-Customer-Nation join
  whose four hard FDs come from the original key/foreign-key
  constraints.

All generators return a :class:`Dataset` with the table, the bound DCs,
and the metadata the harness prints.
"""

from repro.datasets.base import Dataset
from repro.datasets.adult import adult
from repro.datasets.br2000 import br2000
from repro.datasets.tax import tax
from repro.datasets.tpch import tpch

_GENERATORS = {"adult": adult, "br2000": br2000, "tax": tax, "tpch": tpch}


def load(name: str, n: int = 1000, seed: int = 0) -> Dataset:
    """Load a dataset by name ('adult', 'br2000', 'tax', 'tpch')."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_GENERATORS)}"
        ) from None
    return generator(n=n, seed=seed)


def dataset_names() -> list[str]:
    """All registered dataset names, in the paper's order."""
    return ["adult", "br2000", "tax", "tpch"]


__all__ = ["Dataset", "adult", "br2000", "dataset_names", "load", "tax",
           "tpch"]
