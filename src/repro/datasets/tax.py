"""Tax-style workload (12 attributes, 6 hard DCs, one huge domain).

Mirrors the Tax dataset of Table 1: a very large ``zip`` domain
(exercising the §4.3 independent-histogram fallback), FDs
``zip -> city``, ``zip -> state``, ``areacode -> state``, two
conditional FDs on exemptions, and the per-state salary/rate
monotonicity DC.  All six DCs hold exactly by construction:

* each zip code belongs to one (city, state) via fixed lookup tables;
* each areacode belongs to one state;
* ``child_exemp`` is a deterministic function of (state, has_child) and
  ``single_exemp`` of (state, marital);
* ``rate`` is a deterministic nondecreasing bracket function of salary
  plus a per-state offset, so within a state higher salary never gets a
  lower rate.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.parser import parse_dc
from repro.datasets.base import Dataset
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table

_N_STATES = 50
_N_ZIPS = 2000          # large domain -> independent-histogram fallback
_N_CITIES = 400
_N_AREACODES = 200
_MARITAL = ["single", "married", "divorced", "widowed"]
_GENDERS = ["M", "F"]
_OCCUPATIONS = [f"occ{i}" for i in range(10)]

_SALARY_BRACKETS = np.array([0, 20000, 50000, 90000, 150000, 250000])
_BRACKET_RATES = np.array([0.0, 2.0, 4.0, 6.0, 8.0, 10.0])


def _rate_of(salary: np.ndarray, state: np.ndarray) -> np.ndarray:
    """Nondecreasing bracket rate plus a small per-state offset."""
    idx = np.searchsorted(_SALARY_BRACKETS, salary, side="right") - 1
    idx = np.clip(idx, 0, len(_BRACKET_RATES) - 1)
    return _BRACKET_RATES[idx] + (state % 5) * 0.1


def tax_relation() -> Relation:
    return Relation([
        Attribute("zip", CategoricalDomain([f"z{i:04d}"
                                            for i in range(_N_ZIPS)])),
        Attribute("city", CategoricalDomain([f"city{i}"
                                             for i in range(_N_CITIES)])),
        Attribute("state", CategoricalDomain([f"st{i:02d}"
                                              for i in range(_N_STATES)])),
        Attribute("areacode", CategoricalDomain(
            [f"ac{i:03d}" for i in range(_N_AREACODES)])),
        Attribute("has_child", CategoricalDomain(["no", "yes"])),
        Attribute("child_exemp", NumericalDomain(0, 4000, integer=True,
                                                 bins=16)),
        Attribute("marital", CategoricalDomain(_MARITAL)),
        Attribute("single_exemp", NumericalDomain(0, 3000, integer=True,
                                                  bins=16)),
        Attribute("salary", NumericalDomain(5000, 250000, bins=32)),
        Attribute("rate", NumericalDomain(0.0, 11.0, bins=23)),
        Attribute("gender", CategoricalDomain(_GENDERS)),
        Attribute("occupation", CategoricalDomain(_OCCUPATIONS)),
    ])


def tax_dcs(relation: Relation):
    """Table 1's six hard Tax DCs."""
    texts = {
        "phi_t1": "not(ti.zip == tj.zip and ti.city != tj.city)",
        "phi_t2": "not(ti.areacode == tj.areacode and ti.state != tj.state)",
        "phi_t3": "not(ti.zip == tj.zip and ti.state != tj.state)",
        "phi_t4": ("not(ti.state == tj.state and ti.has_child == "
                   "tj.has_child and ti.child_exemp != tj.child_exemp)"),
        "phi_t5": ("not(ti.state == tj.state and ti.marital == tj.marital "
                   "and ti.single_exemp != tj.single_exemp)"),
        "phi_t6": ("not(ti.state == tj.state and ti.salary > tj.salary "
                   "and ti.rate < tj.rate)"),
    }
    return [parse_dc(text, name=name, hard=True, relation=relation)
            for name, text in texts.items()]


def tax(n: int = 1000, seed: int = 0) -> Dataset:
    """Generate a Tax-style instance of ``n`` rows."""
    rng = np.random.default_rng(seed)
    relation = tax_relation()

    # Fixed geography: zip -> (city, state), areacode -> state.
    geo_rng = np.random.default_rng(12345)  # schema-level, not per-seed
    zip_state = geo_rng.integers(0, _N_STATES, size=_N_ZIPS)
    zip_city = (zip_state * (_N_CITIES // _N_STATES)
                + geo_rng.integers(0, _N_CITIES // _N_STATES, size=_N_ZIPS))
    area_state = geo_rng.integers(0, _N_STATES, size=_N_AREACODES)
    # Guarantee every state owns at least one areacode (areacode i is
    # pinned to state i for i < 50), keeping areacode -> state an FD.
    area_state[:_N_STATES] = np.arange(_N_STATES)
    # Per-state exemption tables (deterministic -> the CFDs hold).
    child_table = geo_rng.integers(0, 9, size=(_N_STATES, 2)) * 500
    single_table = geo_rng.integers(0, 7, size=(_N_STATES, 4)) * 500

    # Population skew: a few zips dominate, as real zips do.
    zip_weights = geo_rng.pareto(1.5, size=_N_ZIPS) + 0.05
    zip_probs = zip_weights / zip_weights.sum()

    zips = rng.choice(_N_ZIPS, size=n, p=zip_probs)
    state = zip_state[zips]
    city = zip_city[zips]
    # Pick an areacode consistent with the state where one exists.
    state_areacodes = [np.flatnonzero(area_state == s)
                       for s in range(_N_STATES)]
    areacode = np.array(
        [rng.choice(state_areacodes[s]) for s in state], dtype=np.int64)

    latent = rng.normal(0.0, 1.0, size=n)
    has_child = (rng.random(n) < 0.45).astype(np.int64)
    marital = rng.choice(4, size=n, p=[0.35, 0.45, 0.15, 0.05])
    child_exemp = child_table[state, has_child].astype(float)
    single_exemp = single_table[state, marital].astype(float)

    salary = np.clip(np.exp(10.6 + 0.55 * latent + 0.25
                            * rng.normal(size=n)), 5000, 250000)
    rate = _rate_of(salary, state)

    gender = (rng.random(n) < 0.5).astype(np.int64)
    occupation = np.clip(np.rint(4.5 + 2.0 * latent
                                 + 1.5 * rng.normal(size=n)),
                         0, 9).astype(np.int64)

    table = Table(relation, {
        "zip": zips, "city": city, "state": state, "areacode": areacode,
        "has_child": has_child, "child_exemp": child_exemp,
        "marital": marital, "single_exemp": single_exemp,
        "salary": salary, "rate": rate, "gender": gender,
        "occupation": occupation,
    })
    return Dataset(
        name="tax", table=table, dcs=tax_dcs(relation),
        notes="Seeded synthetic mirror of Tax (Table 1 row 3); large zip "
              "domain exercises the independent-histogram fallback.",
        label_attrs=["has_child", "marital", "gender", "occupation",
                     "salary", "rate"],
    )
