"""TPC-H-style workload (9 attributes, 4 hard FDs from key constraints).

Mirrors the paper's denormalised Orders ⋈ Customer ⋈ Nation table:
each order row carries its customer's attributes, so the original
primary-key / foreign-key constraints surface as hard FDs
(``c_custkey -> c_nationkey``, ``c_custkey -> c_mktsegment``,
``c_custkey -> n_name``, ``n_name -> n_regionkey``).

The generator first materialises a customer dimension (custkey ->
nation, segment) and a nation dimension (nation -> region), then
samples orders referencing customers — exactly the join structure of
the benchmark, so all four FDs hold with zero violations.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.parser import parse_dc
from repro.datasets.base import Dataset
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table

_N_NATIONS = 25
_N_REGIONS = 5
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
             "MACHINERY"]
_STATUSES = ["F", "O", "P"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT-SPECIFIED",
               "5-LOW"]
_NATIONS = [f"nation{i:02d}" for i in range(_N_NATIONS)]


def tpch_relation(n_customers: int) -> Relation:
    return Relation([
        Attribute("c_custkey", CategoricalDomain(
            [f"cust{i:05d}" for i in range(n_customers)])),
        Attribute("c_nationkey", CategoricalDomain(
            [f"nk{i:02d}" for i in range(_N_NATIONS)])),
        Attribute("c_mktsegment", CategoricalDomain(_SEGMENTS)),
        Attribute("n_name", CategoricalDomain(_NATIONS)),
        Attribute("n_regionkey", CategoricalDomain(
            [f"rk{i}" for i in range(_N_REGIONS)])),
        Attribute("o_orderstatus", CategoricalDomain(_STATUSES)),
        Attribute("o_totalprice", NumericalDomain(900, 480000, bins=32)),
        Attribute("o_orderdate", NumericalDomain(0, 2500, integer=True,
                                                 bins=25)),
        Attribute("o_orderpriority", CategoricalDomain(_PRIORITIES)),
    ])


def tpch_dcs(relation: Relation):
    """Table 1's four hard key-induced FDs."""
    texts = {
        "phi_h1": ("not(ti.c_custkey == tj.c_custkey and "
                   "ti.c_nationkey != tj.c_nationkey)"),
        "phi_h2": ("not(ti.c_custkey == tj.c_custkey and "
                   "ti.c_mktsegment != tj.c_mktsegment)"),
        "phi_h3": ("not(ti.c_custkey == tj.c_custkey and "
                   "ti.n_name != tj.n_name)"),
        "phi_h4": ("not(ti.n_name == tj.n_name and "
                   "ti.n_regionkey != tj.n_regionkey)"),
    }
    return [parse_dc(text, name=name, hard=True, relation=relation)
            for name, text in texts.items()]


def tpch(n: int = 1000, seed: int = 0, n_customers: int | None = None
         ) -> Dataset:
    """Generate a TPC-H-style order table of ``n`` rows.

    ``n_customers`` defaults to ``max(50, n // 5)`` so each customer has
    a handful of orders (the FDs then constrain many pairs).
    """
    rng = np.random.default_rng(seed)
    if n_customers is None:
        n_customers = max(50, n // 5)
    relation = tpch_relation(n_customers)

    # Dimensions (schema-level seed: the catalog is public structure).
    dim_rng = np.random.default_rng(54321)
    nation_region = dim_rng.integers(0, _N_REGIONS, size=_N_NATIONS)
    cust_nation = dim_rng.integers(0, _N_NATIONS, size=n_customers)
    cust_segment = dim_rng.integers(0, len(_SEGMENTS), size=n_customers)

    # Orders: customer popularity is skewed.
    cust_weights = rng.pareto(1.2, size=n_customers) + 0.1
    cust_probs = cust_weights / cust_weights.sum()
    custkey = rng.choice(n_customers, size=n, p=cust_probs)

    nationkey = cust_nation[custkey]
    segment = cust_segment[custkey]
    n_name = nationkey            # n_name codes mirror nation keys
    regionkey = nation_region[nationkey]

    status = rng.choice(3, size=n, p=[0.48, 0.48, 0.04])
    # Price correlates with segment and priority.
    priority = rng.choice(5, size=n, p=[0.2, 0.2, 0.2, 0.2, 0.2])
    base = np.exp(10.2 + 0.25 * rng.normal(size=n)
                  + 0.08 * segment - 0.05 * priority)
    totalprice = np.clip(base, 900, 480000)
    orderdate = np.clip(np.rint(rng.uniform(0, 2500, size=n)
                                - 100 * (status == 0)), 0, 2500)

    table = Table(relation, {
        "c_custkey": custkey, "c_nationkey": nationkey,
        "c_mktsegment": segment, "n_name": n_name,
        "n_regionkey": regionkey, "o_orderstatus": status,
        "o_totalprice": totalprice, "o_orderdate": orderdate,
        "o_orderpriority": priority,
    })
    return Dataset(
        name="tpch", table=table, dcs=tpch_dcs(relation),
        notes="Seeded synthetic mirror of the TPC-H Orders-Customer-"
              "Nation join (Table 1 row 4).",
        label_attrs=["c_mktsegment", "o_orderstatus", "o_orderpriority",
                     "o_totalprice", "n_regionkey"],
    )
