"""Adult-style census workload (15 attributes, 2 hard DCs).

Mirrors the UCI Adult dataset of the paper's Table 1:

* ``phi_a1``: ``not(ti.edu = tj.edu and ti.edu_num != tj.edu_num)`` —
  the FD ``edu -> edu_num``, satisfied exactly because ``edu_num`` is a
  deterministic function of ``edu``;
* ``phi_a2``: ``not(ti.cap_gain > tj.cap_gain and ti.cap_loss <
  tj.cap_loss)`` — satisfied exactly because ``cap_loss`` is a
  nondecreasing step function of ``cap_gain``.

The generative process builds correlated attributes through a latent
"socio-economic" score so that the classification tasks of Metric II
have real signal (income depends on education/age/hours, occupation on
workclass, and so on).
"""

from __future__ import annotations

import numpy as np

from repro.constraints.parser import parse_dc
from repro.datasets.base import Dataset
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table

_EDU_LEVELS = [
    "Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th", "11th",
    "12th", "HS-grad", "Some-college", "Assoc-voc", "Assoc-acdm",
    "Bachelors", "Masters", "Prof-school", "Doctorate",
]
#: The hard FD edu -> edu_num: one number per education level.
_EDU_NUM = {level: i + 1 for i, level in enumerate(_EDU_LEVELS)}

_WORKCLASSES = ["Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
                "Local-gov", "State-gov", "Without-pay", "Never-worked",
                "Unknown"]
_MARITAL = ["Married", "Divorced", "Never-married", "Separated", "Widowed",
            "Spouse-absent", "AF-spouse"]
_OCCUPATIONS = ["Tech", "Craft", "Sales", "Exec", "Prof", "Clerical",
                "Service", "Machine-op", "Transport", "Farming", "Cleaners",
                "Protective", "Armed-Forces", "Priv-house", "Unknown"]
_RELATIONSHIPS = ["Husband", "Wife", "Own-child", "Not-in-family",
                  "Other-relative", "Unmarried"]
_RACES = ["White", "Black", "Asian", "Amer-Indian", "Other"]
_SEXES = ["Male", "Female"]
_COUNTRIES = ["United-States", "Mexico", "Philippines", "Germany", "Canada",
              "India", "England", "Cuba", "China", "Other"]
_INCOMES = ["<=50K", ">50K"]

#: cap_loss as a nondecreasing step function of cap_gain (guarantees
#: zero phi_a2 violations, matching the paper's "Truth = 0.0").
_GAIN_STEPS = np.array([0, 2000, 5000, 10000, 30000, 100000])
_LOSS_STEPS = np.array([0, 100, 400, 900, 1500, 1900])


def _cap_loss_of(gain: np.ndarray) -> np.ndarray:
    idx = np.searchsorted(_GAIN_STEPS, gain, side="right") - 1
    return _LOSS_STEPS[np.clip(idx, 0, len(_LOSS_STEPS) - 1)].astype(float)


def adult_relation() -> Relation:
    """The 15-attribute Adult-style schema."""
    return Relation([
        Attribute("age", NumericalDomain(17, 90, integer=True, bins=24)),
        Attribute("workclass", CategoricalDomain(_WORKCLASSES)),
        Attribute("fnlwgt", NumericalDomain(1e4, 1.5e6, bins=32)),
        Attribute("edu", CategoricalDomain(_EDU_LEVELS)),
        Attribute("edu_num", NumericalDomain(1, 16, integer=True, bins=16)),
        Attribute("marital", CategoricalDomain(_MARITAL)),
        Attribute("occupation", CategoricalDomain(_OCCUPATIONS)),
        Attribute("relationship", CategoricalDomain(_RELATIONSHIPS)),
        Attribute("race", CategoricalDomain(_RACES)),
        Attribute("sex", CategoricalDomain(_SEXES)),
        Attribute("cap_gain", NumericalDomain(0, 100000, bins=32)),
        Attribute("cap_loss", NumericalDomain(0, 1900, bins=16)),
        Attribute("hours", NumericalDomain(1, 99, integer=True, bins=20)),
        Attribute("country", CategoricalDomain(_COUNTRIES)),
        Attribute("income", CategoricalDomain(_INCOMES)),
    ])


def adult_dcs(relation: Relation):
    """Table 1's two hard DCs, bound to the schema."""
    return [
        parse_dc("not(ti.edu == tj.edu and ti.edu_num != tj.edu_num)",
                 name="phi_a1", hard=True, relation=relation),
        parse_dc("not(ti.cap_gain > tj.cap_gain and ti.cap_loss < "
                 "tj.cap_loss)", name="phi_a2", hard=True, relation=relation),
    ]


def adult(n: int = 1000, seed: int = 0) -> Dataset:
    """Generate an Adult-style instance of ``n`` rows."""
    rng = np.random.default_rng(seed)
    relation = adult_relation()

    # Latent socio-economic score drives most correlations.
    latent = rng.normal(0.0, 1.0, size=n)

    age = np.clip(np.rint(38 + 12 * rng.normal(size=n) + 4 * latent), 17, 90)

    edu_idx = np.clip(
        np.rint(8 + 3.0 * latent + 1.5 * rng.normal(size=n)),
        0, len(_EDU_LEVELS) - 1).astype(np.int64)
    edu_num = np.array([_EDU_NUM[_EDU_LEVELS[i]] for i in edu_idx],
                       dtype=float)

    workclass = rng.choice(
        len(_WORKCLASSES), size=n,
        p=[0.70, 0.08, 0.04, 0.03, 0.06, 0.04, 0.01, 0.01, 0.03])
    # Occupation correlates with workclass and education.
    occ_base = (edu_idx // 4 + workclass) % len(_OCCUPATIONS)
    occupation = (occ_base + rng.integers(0, 3, size=n)) % len(_OCCUPATIONS)

    sex = (rng.random(n) < 0.33).astype(np.int64)  # 0 Male, 1 Female
    married = (rng.random(n) < 0.55 + 0.1 * np.tanh(latent)).astype(bool)
    marital = np.where(married, 0, rng.choice([1, 2, 3, 4, 5, 6], size=n,
                       p=[0.25, 0.55, 0.06, 0.08, 0.04, 0.02]))
    relationship = np.where(
        married & (sex == 0), 0,
        np.where(married & (sex == 1), 1,
                 rng.choice([2, 3, 4, 5], size=n)))

    race = rng.choice(len(_RACES), size=n, p=[0.78, 0.11, 0.06, 0.02, 0.03])
    country = rng.choice(len(_COUNTRIES), size=n,
                         p=[0.85, 0.03, 0.02, 0.015, 0.015, 0.015, 0.015,
                            0.01, 0.01, 0.02])

    hours = np.clip(np.rint(40 + 8 * latent + 8 * rng.normal(size=n)), 1, 99)
    fnlwgt = np.clip(np.exp(12.0 + 0.5 * rng.normal(size=n)), 1e4, 1.5e6)

    # Capital gain: zero-heavy, right tail grows with the latent score.
    has_gain = rng.random(n) < (0.05 + 0.08 * (latent > 0.8))
    cap_gain = np.where(
        has_gain, np.clip(np.exp(8.0 + 0.9 * np.abs(latent)
                                 + 0.6 * rng.normal(size=n)), 0, 100000),
        0.0)
    cap_loss = _cap_loss_of(cap_gain)

    income_score = (0.8 * latent + 0.25 * (edu_num - 9)
                    + 0.02 * (hours - 40) + 0.01 * (age - 38)
                    + 0.4 * married - 0.3 * sex)
    income = (income_score + 0.8 * rng.normal(size=n) > 0.9).astype(np.int64)

    table = Table(relation, {
        "age": age, "workclass": workclass, "fnlwgt": fnlwgt,
        "edu": edu_idx, "edu_num": edu_num, "marital": marital,
        "occupation": occupation, "relationship": relationship,
        "race": race, "sex": sex, "cap_gain": cap_gain,
        "cap_loss": cap_loss, "hours": hours, "country": country,
        "income": income,
    })
    return Dataset(
        name="adult", table=table, dcs=adult_dcs(relation),
        notes="Seeded synthetic mirror of UCI Adult (Table 1 row 1).",
        label_attrs=["income", "sex", "marital", "workclass", "edu",
                     "occupation", "relationship", "race", "country",
                     "age", "hours", "edu_num"],
    )
