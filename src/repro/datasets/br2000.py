"""BR2000-style workload (14 small-domain attributes, 3 soft DCs).

Mirrors the Brazilian-census extract of the paper's Table 1: a small
overall domain (~2^16), a run of binary attributes (which exercises the
hyper-attribute grouping optimisation of §4.3), and three *soft* order
DCs over ordinal attributes with a fraction-of-a-percent violation rate
in the truth (the paper reports 0.4-0.9% of pairs).

The soft DCs are made "mostly true" by generating the participating
ordinal attributes from a shared latent score with small independent
noise: monotone co-movement holds for most pairs, and the noise
produces the residual violations.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.parser import parse_dc
from repro.datasets.base import Dataset
from repro.schema.domain import CategoricalDomain, NumericalDomain
from repro.schema.relation import Attribute, Relation
from repro.schema.table import Table


def br2000_relation() -> Relation:
    """The 14-attribute BR2000-style schema (a1..a14)."""
    binary = CategoricalDomain(["no", "yes"])
    return Relation([
        Attribute("a1", binary),
        Attribute("a2", binary),
        Attribute("a3", NumericalDomain(0, 4, integer=True, bins=5)),
        Attribute("a4", binary),
        Attribute("a5", NumericalDomain(0, 9, integer=True, bins=10)),
        Attribute("a6", binary),
        Attribute("a7", binary),
        Attribute("a8", binary),
        Attribute("a9", binary),
        Attribute("a10", CategoricalDomain(["c0", "c1", "c2", "c3"])),
        Attribute("a11", NumericalDomain(0, 7, integer=True, bins=8)),
        Attribute("a12", CategoricalDomain(["g0", "g1", "g2"])),
        Attribute("a13", NumericalDomain(0, 5, integer=True, bins=6)),
        Attribute("a14", CategoricalDomain(["r0", "r1", "r2", "r3", "r4",
                                            "r5"])),
    ])


def br2000_dcs(relation: Relation):
    """Table 1's three soft DCs."""
    return [
        parse_dc("not(ti.a13 == tj.a13 and ti.a11 < tj.a11 and "
                 "ti.a3 > tj.a3)", name="phi_b1", hard=False,
                 relation=relation),
        parse_dc("not(ti.a12 != tj.a12 and ti.a13 <= tj.a13 and "
                 "ti.a5 >= tj.a5)", name="phi_b2", hard=False,
                 relation=relation),
        parse_dc("not(ti.a5 <= tj.a5 and ti.a3 > tj.a3 and "
                 "ti.a12 != tj.a12 and ti.a11 > tj.a11)", name="phi_b3",
                 hard=False, relation=relation),
    ]


def br2000(n: int = 1000, seed: int = 0) -> Dataset:
    """Generate a BR2000-style instance of ``n`` rows."""
    rng = np.random.default_rng(seed)
    relation = br2000_relation()

    latent = rng.normal(0.0, 1.0, size=n)

    def binary_from(score, threshold=0.0):
        return (score > threshold).astype(np.int64)

    # Seven correlated binaries (grouping fodder).
    a1 = binary_from(latent + 0.7 * rng.normal(size=n))
    a2 = binary_from(latent + 0.9 * rng.normal(size=n), 0.3)
    a4 = binary_from(-latent + 0.8 * rng.normal(size=n))
    a6 = binary_from(latent + 1.2 * rng.normal(size=n), -0.2)
    a7 = binary_from(0.5 * latent + rng.normal(size=n), 0.5)
    a8 = binary_from(a1 + a2 - 1 + 0.6 * rng.normal(size=n))
    a9 = binary_from(0.8 * latent + rng.normal(size=n), -0.5)

    # Ordinals sharing the latent score: a3, a5, a11 co-move, so the
    # order DCs are nearly always satisfied.
    a3 = np.clip(np.rint(2.0 + 1.1 * latent + 0.35 * rng.normal(size=n)),
                 0, 4)
    a5 = np.clip(np.rint(4.5 + 2.2 * latent + 0.6 * rng.normal(size=n)),
                 0, 9)
    a11 = np.clip(np.rint(3.5 + 1.8 * latent + 0.5 * rng.normal(size=n)),
                  0, 7)
    # a13 tracks a5's tertile strictly (two a13 levels per tertile), so
    # pairs in different tertiles cannot tie on a13 — which is what
    # keeps phi_b2 nearly satisfied.  A 2% perturbation keeps a13 from
    # being a pure function of a5.
    a5_tertile = np.digitize(a5, [3.5, 6.5])
    a13 = 2.0 * a5_tertile + (rng.random(n) < 0.5)
    perturb = rng.random(n) < 0.02
    a13 = np.clip(a13 + perturb * rng.choice([-1.0, 1.0], size=n), 0, 5)

    # a12 follows a5's tertiles: pairs tied on a5 then almost always
    # share a12, so phi_b2's "a12 differs and a5 >= " pattern is rare —
    # the truth keeps a fraction-of-a-percent violation rate, like the
    # real BR2000.  A small flip rate supplies the residual violations.
    tertile = np.digitize(a5, [3.5, 6.5])
    flips = rng.random(n) < 0.04
    a12 = np.where(flips, rng.integers(0, 3, size=n), tertile)

    a10 = rng.choice(4, size=n, p=[0.4, 0.3, 0.2, 0.1])
    a14 = np.clip(np.rint(2.5 + latent + 1.5 * rng.normal(size=n)),
                  0, 5).astype(np.int64)

    table = Table(relation, {
        "a1": a1, "a2": a2, "a3": a3, "a4": a4, "a5": a5, "a6": a6,
        "a7": a7, "a8": a8, "a9": a9, "a10": a10, "a11": a11, "a12": a12,
        "a13": a13, "a14": a14,
    })
    return Dataset(
        name="br2000", table=table, dcs=br2000_dcs(relation),
        notes="Seeded synthetic mirror of BR2000 (Table 1 row 2); "
              "soft DCs only.",
        label_attrs=["a1", "a2", "a4", "a6", "a7", "a8", "a9", "a10",
                     "a12", "a14"],
    )
