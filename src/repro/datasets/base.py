"""Common dataset container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.dc import DenialConstraint
from repro.schema.relation import Relation
from repro.schema.table import Table


@dataclass
class Dataset:
    """A generated workload: instance + schema + denial constraints."""

    name: str
    table: Table
    dcs: list[DenialConstraint]
    #: Free-form notes (e.g. which paper dataset this mirrors).
    notes: str = ""
    #: Attributes recommended as classification targets in Metric II
    #: (binary or binarizable); empty means "all attributes".
    label_attrs: list[str] = field(default_factory=list)

    @property
    def relation(self) -> Relation:
        return self.table.relation

    @property
    def n(self) -> int:
        return self.table.n

    @property
    def k(self) -> int:
        return self.relation.arity

    def hard_dcs(self) -> list[DenialConstraint]:
        return [dc for dc in self.dcs if dc.hard]

    def soft_dcs(self) -> list[DenialConstraint]:
        return [dc for dc in self.dcs if not dc.hard]

    def summary(self) -> str:
        """One-line description in the style of Table 1."""
        log_dom = self.relation.log2_domain_size()
        hard = "Yes" if self.hard_dcs() else "No"
        return (f"{self.name}: n={self.n} k={self.k} "
                f"domain~2^{log_dom:.0f} hard DCs: {hard} "
                f"({len(self.dcs)} DCs)")
