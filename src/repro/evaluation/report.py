"""Markdown experiment reports.

The bench suite prints paper-vs-measured rows to stdout; this module
turns the same data into Markdown sections so EXPERIMENTS.md (and any
user-run report) is generated, not hand-maintained.  The central object
is :class:`ExperimentReport`: a named experiment accumulating rows,
paper-claim checks, and free-form notes, rendered with
:meth:`to_markdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _format_cell(value, precision: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def markdown_table(rows: list[dict], columns: list[str],
                   precision: int = 3) -> str:
    """Render rows (dicts) as a GitHub-flavoured Markdown table."""
    if not columns:
        raise ValueError("need at least one column")
    head = "| " + " | ".join(columns) + " |"
    sep = "|" + "|".join(["---"] * len(columns)) + "|"
    body = []
    for row in rows:
        cells = [_format_cell(row.get(c, ""), precision) for c in columns]
        body.append("| " + " | ".join(cells) + " |")
    return "\n".join([head, sep] + body)


@dataclass
class ClaimCheck:
    """One qualitative paper claim and whether the measurement holds it."""

    claim: str
    holds: bool
    detail: str = ""

    def to_markdown(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"- **{mark}**: {self.claim}{suffix}"


@dataclass
class ExperimentReport:
    """A single experiment (paper table or figure) report section.

    Parameters
    ----------
    exp_id:
        Paper artifact id, e.g. ``"Table 2"`` or ``"Figure 6"``.
    title:
        Short description of what the experiment measures.
    """

    exp_id: str
    title: str
    columns: list[str] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)
    claims: list[ClaimCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    precision: int = 3

    def add_row(self, **cells) -> None:
        """Append one measurement row; new keys extend the column list."""
        for key in cells:
            if key not in self.columns:
                self.columns.append(key)
        self.rows.append(cells)

    def check(self, claim: str, holds: bool, detail: str = "") -> bool:
        """Record a paper-claim verification; returns ``holds``."""
        self.claims.append(ClaimCheck(claim, bool(holds), detail))
        return bool(holds)

    def note(self, text: str) -> None:
        self.notes.append(text)

    @property
    def all_claims_hold(self) -> bool:
        return all(c.holds for c in self.claims)

    def to_markdown(self) -> str:
        parts = [f"### {self.exp_id} — {self.title}", ""]
        if self.rows:
            parts += [markdown_table(self.rows, self.columns,
                                     self.precision), ""]
        if self.claims:
            parts += [c.to_markdown() for c in self.claims] + [""]
        for note in self.notes:
            parts += [f"> {note}", ""]
        return "\n".join(parts).rstrip() + "\n"


@dataclass
class ReportCollection:
    """All experiment sections, rendered as one Markdown document."""

    title: str
    preamble: str = ""
    reports: list[ExperimentReport] = field(default_factory=list)

    def new(self, exp_id: str, title: str, **kwargs) -> ExperimentReport:
        report = ExperimentReport(exp_id, title, **kwargs)
        self.reports.append(report)
        return report

    @property
    def all_claims_hold(self) -> bool:
        return all(r.all_claims_hold for r in self.reports)

    def to_markdown(self) -> str:
        parts = [f"# {self.title}", ""]
        if self.preamble:
            parts += [self.preamble, ""]
        total = sum(len(r.claims) for r in self.reports)
        held = sum(1 for r in self.reports for c in r.claims if c.holds)
        if total:
            parts += [f"**Claim checks: {held}/{total} hold.**", ""]
        for report in self.reports:
            parts += [report.to_markdown(), ""]
        return "\n".join(parts).rstrip() + "\n"

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_markdown())
