"""Metric I — denial-constraint violations (Table 2)."""

from __future__ import annotations

from repro.constraints.violations import violating_pair_percentage


def dc_violation_report(dcs, true_table, synthetic_tables: dict
                        ) -> list[dict]:
    """Rows of Table 2: per DC, the violating-pair percentage in the
    truth and in each method's synthetic instance.

    ``synthetic_tables`` maps method name -> Table.  Returns a list of
    dicts with keys ``dc``, ``truth``, and one key per method.
    """
    rows = []
    for dc in dcs:
        row = {"dc": dc.name,
               "truth": violating_pair_percentage(dc, true_table)}
        for method, table in synthetic_tables.items():
            row[method] = violating_pair_percentage(dc, table)
        rows.append(row)
    return rows
