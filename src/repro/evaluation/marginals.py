"""Metric III — alpha-way marginal distances (Figure 4).

For an attribute set A, the alpha-way marginal ``h`` maps each cell of
A's (discretised) domain to its relative frequency.  The paper reports
``max_a |h(D')[a] - h(D*)[a]|`` and calls it total variation distance;
:func:`total_variation_distance` implements exactly that (the ``mode``
switch also offers the classic ``0.5 * L1`` definition).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.schema.quantize import Quantizer
from repro.schema.table import Table


def _marginal_vector(table: Table, attrs, quant_bins: int) -> np.ndarray:
    """Normalised joint histogram of ``attrs`` (numerics binned)."""
    sizes = []
    codes = []
    for name in attrs:
        attr = table.relation[name]
        col = table.column(name)
        if attr.is_categorical:
            sizes.append(attr.domain.size)
            codes.append(col.astype(np.int64))
        else:
            quant = Quantizer(attr.domain, quant_bins)
            sizes.append(quant.q)
            codes.append(quant.encode(col))
    flat = np.zeros(table.n, dtype=np.int64)
    for size, code in zip(sizes, codes):
        flat = flat * size + code
    total = int(np.prod(sizes))
    counts = np.bincount(flat, minlength=total).astype(np.float64)
    return counts / max(counts.sum(), 1e-12)


def total_variation_distance(true_table: Table, synth_table: Table,
                             attrs, quant_bins: int = 16,
                             mode: str = "max") -> float:
    """Distance between the true and synthetic marginals on ``attrs``.

    ``mode="max"`` is the paper's formula (L-infinity of the difference);
    ``mode="l1"`` is the classic total variation ``0.5 * L1``.
    """
    h_true = _marginal_vector(true_table, attrs, quant_bins)
    h_synth = _marginal_vector(synth_table, attrs, quant_bins)
    diff = np.abs(h_true - h_synth)
    if mode == "max":
        return float(diff.max())
    if mode == "l1":
        return float(0.5 * diff.sum())
    raise ValueError(f"unknown mode {mode!r}")


def marginal_distances(true_table: Table, synth_table: Table,
                       alpha: int = 1, quant_bins: int = 16,
                       max_sets: int | None = None,
                       seed: int = 0) -> list[tuple[tuple, float]]:
    """Distances for all (or sampled) alpha-way attribute combinations.

    Returns ``[(attr_tuple, distance), ...]``; 2-way combinations are
    subsampled to ``max_sets`` when requested (the paper samples pairs
    for large schemas).
    """
    names = true_table.relation.names
    combos = list(itertools.combinations(names, alpha))
    if max_sets is not None and len(combos) > max_sets:
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(combos), size=max_sets, replace=False)
        combos = [combos[i] for i in idx]
    return [(combo, total_variation_distance(true_table, synth_table,
                                             combo, quant_bins))
            for combo in combos]
