"""Metric II — classification quality (Figure 3).

For each target attribute: binarise it (majority-vs-rest or
above-median, thresholds computed on the *true* data so labelings
agree), train every classifier of the nine-model panel on 70% of the
*synthetic* instance, test on the aligned 30% slice of the *true*
instance, and average the panel's accuracy and F1.  "Truth" rows train
on the true training slice instead.
"""

from __future__ import annotations

import numpy as np

from repro.ml import CLASSIFIER_PANEL, accuracy_score, f1_score
from repro.ml.features import FeatureEncoder, binarize_target
from repro.schema.split import train_test_split
from repro.schema.table import Table


def train_on_synthetic_test_on_true(true_table: Table, synth_table: Table,
                                    target: str, panel=None, seed: int = 0,
                                    ) -> dict[str, float]:
    """Panel-averaged accuracy/F1 for one target attribute.

    ``synth_table`` may be the true table itself to produce the paper's
    "Truth" reference row.
    """
    panel = panel if panel is not None else CLASSIFIER_PANEL
    synth_train, _ = train_test_split(synth_table, 0.3, seed=seed)
    _, true_test = train_test_split(true_table, 0.3, seed=seed)

    encoder = FeatureEncoder(true_table.relation, exclude=(target,))
    X_train = encoder.transform(synth_train)
    X_test = encoder.transform(true_test)
    y_train = binarize_target(synth_train, target, reference=true_table)
    y_test = binarize_target(true_test, target, reference=true_table)

    if len(np.unique(y_train)) < 2:
        # Degenerate synthetic labels: constant prediction.
        constant = int(y_train[0]) if y_train.size else 0
        pred = np.full(y_test.shape, constant)
        acc = accuracy_score(y_test, pred)
        f1 = f1_score(y_test, pred)
        return {"accuracy": acc, "f1": f1}

    accs, f1s = [], []
    for name, cls in panel.items():
        clf = cls(seed=seed).fit(X_train, y_train)
        pred = clf.predict(X_test)
        accs.append(accuracy_score(y_test, pred))
        f1s.append(f1_score(y_test, pred))
    return {"accuracy": float(np.mean(accs)), "f1": float(np.mean(f1s))}


def classification_report(true_table: Table, synth_table: Table,
                          targets=None, panel=None, seed: int = 0
                          ) -> list[dict]:
    """One row per target attribute: panel-mean accuracy and F1."""
    targets = (list(targets) if targets is not None
               else true_table.relation.names)
    rows = []
    for target in targets:
        scores = train_on_synthetic_test_on_true(
            true_table, synth_table, target, panel=panel, seed=seed)
        rows.append({"target": target, **scores})
    return rows
