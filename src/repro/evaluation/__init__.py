"""The paper's three utility metrics and the experiment harness.

* Metric I  — DC violations: % of violating tuple pairs (§7.1).
* Metric II — model training: 9-classifier panel per attribute,
  trained on synthetic, tested on true (accuracy + F1).
* Metric III — alpha-way marginals: total variation distance between
  synthetic and true marginal vectors.

:mod:`repro.evaluation.harness` wires methods x datasets x metrics into
the rows each benchmark prints.
"""

from repro.evaluation.violations import dc_violation_report
from repro.evaluation.marginals import (
    marginal_distances,
    total_variation_distance,
)
from repro.evaluation.model_training import (
    classification_report,
    train_on_synthetic_test_on_true,
)
from repro.evaluation.compare import compare_methods
from repro.evaluation.report import (
    ClaimCheck,
    ExperimentReport,
    ReportCollection,
    markdown_table,
)
from repro.evaluation.harness import (
    METHODS,
    make_synthesizer,
    run_method,
)

__all__ = [
    "ClaimCheck",
    "ExperimentReport",
    "METHODS",
    "ReportCollection",
    "classification_report",
    "compare_methods",
    "dc_violation_report",
    "make_synthesizer",
    "marginal_distances",
    "markdown_table",
    "run_method",
    "total_variation_distance",
    "train_on_synthetic_test_on_true",
]
