"""Method registry and experiment runner.

Every benchmark (one per paper table/figure) goes through
:func:`run_method`, which builds the named synthesizer at the requested
privacy budget and returns its synthetic instance plus wall-clock time.
``fast=True`` applies the reduced-scale settings used by the bench
suite (documented in DESIGN.md: shapes are scale-stable; the paper's
server-scale settings are reproduced by the same code with
``fast=False``).
"""

from __future__ import annotations

import math
import time

from repro.baselines import DPVae, NistMst, PateGan, PrivBayes
from repro.core import Kamino
from repro.datasets.base import Dataset
from repro.schema.table import Table

#: Methods in the paper's reporting order.
METHODS = ["DP-VAE", "NIST", "PrivBayes", "PATE-GAN", "Kamino"]


def _fast_kamino_override(params) -> None:
    """Bench-scale caps on the searched parameters."""
    params.iterations = min(params.iterations, 60)
    params.embed_dim = min(params.embed_dim, 12)


def make_synthesizer(name: str, dataset: Dataset, epsilon: float,
                     delta: float = 1e-6, seed: int = 0,
                     fast: bool = True, **kwargs):
    """Construct a synthesizer with a uniform fit_sample interface.

    For Kamino the returned object is a closure over the dataset's DCs;
    the baselines ignore constraints entirely.
    """
    if name == "Kamino":
        overrides = {}
        if fast:
            overrides["params_override"] = kwargs.pop(
                "params_override", _fast_kamino_override)
        kam = Kamino(dataset.relation, dataset.dcs, epsilon, delta,
                     seed=seed, **overrides, **kwargs)

        class _KaminoAdapter:
            def fit_sample(self, table, n=None):
                return kam.fit_sample(table, n=n).table
        adapter = _KaminoAdapter()
        adapter.kamino = kam
        return adapter
    if not math.isfinite(epsilon):
        # Baselines' non-private mode: a huge finite budget (their code
        # paths need a numeric epsilon).
        epsilon = 1e6
    if name == "PrivBayes":
        return PrivBayes(epsilon, delta, seed=seed, **kwargs)
    if name == "PATE-GAN":
        iters = 60 if fast else 400
        return PateGan(epsilon, delta, seed=seed, iterations=iters,
                       **kwargs)
    if name == "DP-VAE":
        iters = 80 if fast else 600
        return DPVae(epsilon, delta, seed=seed, iterations=iters, **kwargs)
    if name == "NIST":
        return NistMst(epsilon, delta, seed=seed, **kwargs)
    raise KeyError(f"unknown method {name!r}; choose from {METHODS}")


def run_method(name: str, dataset: Dataset, epsilon: float,
               delta: float = 1e-6, seed: int = 0, n: int | None = None,
               fast: bool = True, **kwargs) -> tuple[Table, float]:
    """Synthesize with one method; returns (table, seconds)."""
    synthesizer = make_synthesizer(name, dataset, epsilon, delta, seed,
                                   fast, **kwargs)
    start = time.perf_counter()
    table = synthesizer.fit_sample(dataset.table, n=n)
    return table, time.perf_counter() - start


def format_table(rows: list[dict], columns: list[str],
                 precision: int = 3) -> str:
    """Render report rows as an aligned text table."""
    header = " | ".join(f"{c:>12s}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                cells.append(f"{value:>12.{precision}f}")
            else:
                cells.append(f"{str(value):>12s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
