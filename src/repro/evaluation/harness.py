"""Method registry and experiment runner.

Every benchmark (one per paper table/figure) goes through
:func:`run_method`, which builds the named synthesizer at the requested
privacy budget and returns its synthetic instance plus wall-clock time.
``fast=True`` applies the reduced-scale settings used by the bench
suite (documented in DESIGN.md: shapes are scale-stable; the paper's
server-scale settings are reproduced by the same code with
``fast=False``).

Construction goes through the :mod:`repro.synth` registry — the paper's
display names (``"PATE-GAN"``) map onto registry keys (``"pategan"``)
via :data:`DISPLAY_TO_BACKEND`, and the returned object is a protocol
:class:`~repro.synth.protocol.Synthesizer` (so callers can use the
staged ``fit``/``sample`` split, not just ``fit_sample``).
"""

from __future__ import annotations

import time

from repro.datasets.base import Dataset
from repro.schema.table import Table
from repro.synth import registry as synth_registry

#: Methods in the paper's reporting order.
METHODS = ["DP-VAE", "NIST", "PrivBayes", "PATE-GAN", "Kamino"]

#: Paper display name -> registry backend key.
DISPLAY_TO_BACKEND = {
    "DP-VAE": "dpvae",
    "NIST": "nist_mst",
    "PrivBayes": "privbayes",
    "PATE-GAN": "pategan",
    "Kamino": "kamino",
    "Cleaning": "cleaning",
}


def _fast_kamino_override(params) -> None:
    """Bench-scale caps on the searched parameters."""
    params.iterations = min(params.iterations, 60)
    params.embed_dim = min(params.embed_dim, 12)


def make_synthesizer(name: str, dataset: Dataset, epsilon: float,
                     delta: float = 1e-6, seed: int = 0,
                     fast: bool = True, **kwargs):
    """Construct the named backend bound to ``dataset``'s constraints.

    ``name`` may be a paper display name (``"PATE-GAN"``) or a registry
    key (``"pategan"``).  ``fast=True`` applies bench-scale iteration
    caps; constraint-aware backends receive the dataset's DCs, the
    others ignore constraints entirely.
    """
    backend = DISPLAY_TO_BACKEND.get(name, name)
    if backend not in synth_registry.backend_names():
        raise KeyError(f"unknown method {name!r}; choose from {METHODS} "
                       f"or {synth_registry.backend_names()}")
    if fast:
        if backend == "kamino":
            kwargs.setdefault("params_override", _fast_kamino_override)
        elif backend == "pategan":
            kwargs.setdefault("iterations", 60)
        elif backend == "dpvae":
            kwargs.setdefault("iterations", 80)
    else:
        if backend == "pategan":
            kwargs.setdefault("iterations", 400)
        elif backend == "dpvae":
            kwargs.setdefault("iterations", 600)
    return synth_registry.make_synthesizer(
        backend, epsilon, delta=delta, seed=seed, dcs=dataset.dcs,
        **kwargs)


def run_method(name: str, dataset: Dataset, epsilon: float,
               delta: float = 1e-6, seed: int = 0, n: int | None = None,
               fast: bool = True, trace=None, **kwargs) -> tuple[Table, float]:
    """Synthesize with one method; returns (table, seconds).

    Runs the staged protocol explicitly — ``fit`` then the default
    ``sample`` — which is bit-identical to the fused ``fit_sample``.
    """
    synthesizer = make_synthesizer(name, dataset, epsilon, delta, seed,
                                   fast, **kwargs)
    start = time.perf_counter()
    fitted = synthesizer.fit(dataset.table, trace=trace)
    table = fitted.sample(n, trace=trace)
    return table, time.perf_counter() - start


def format_table(rows: list[dict], columns: list[str],
                 precision: int = 3) -> str:
    """Render report rows as an aligned text table."""
    header = " | ".join(f"{c:>12s}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for c in columns:
            value = row.get(c, "")
            if isinstance(value, float):
                cells.append(f"{value:>12.{precision}f}")
            else:
                cells.append(f"{str(value):>12s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
