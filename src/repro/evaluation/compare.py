"""One-call method comparison.

:func:`compare_methods` runs any subset of the registered synthesizers
on a :class:`~repro.datasets.base.Dataset` and evaluates all three of
the paper's metrics, returning a
:class:`~repro.evaluation.report.ReportCollection` ready to print or
save as Markdown — the programmatic equivalent of "run the paper's
evaluation on *my* data".
"""

from __future__ import annotations

import numpy as np

from repro.constraints.violations import violating_pair_percentage
from repro.evaluation.harness import METHODS, run_method
from repro.evaluation.marginals import marginal_distances
from repro.evaluation.model_training import classification_report
from repro.evaluation.report import ReportCollection


def compare_methods(dataset, methods=None, epsilon: float = 1.0,
                    delta: float = 1e-6, seed: int = 0,
                    classify: bool = False, classify_targets=None,
                    max_marginal_sets: int = 20,
                    fast: bool = True) -> ReportCollection:
    """Synthesize with each method and evaluate Metrics I-III.

    Parameters
    ----------
    dataset:
        The workload (table + DCs + schema).
    methods:
        Method names from the harness registry (default: all five).
    epsilon, delta, seed, fast:
        Forwarded to :func:`~repro.evaluation.harness.run_method`.
    classify:
        Also run the (slow) Metric II classifier panel.
    classify_targets:
        Target attributes for Metric II (default: the dataset's
        ``label_attrs`` or its first three attributes).
    max_marginal_sets:
        Cap on the number of 2-way attribute pairs evaluated.
    """
    methods = list(methods) if methods is not None else list(METHODS)
    collection = ReportCollection(
        f"Method comparison on {dataset.name}",
        preamble=(f"n={dataset.n}, k={dataset.k}, epsilon={epsilon:g}, "
                  f"delta={delta:g}, seed={seed}."))

    synthetic = {}
    timing = collection.new("Runtime", "synthesis wall-clock seconds")
    for method in methods:
        table, seconds = run_method(method, dataset, epsilon, delta,
                                    seed=seed, fast=fast)
        synthetic[method] = table
        timing.add_row(method=method, seconds=seconds)

    if dataset.dcs:
        violations = collection.new(
            "Metric I", "% of violating tuple pairs per DC")
        for dc in dataset.dcs:
            row = {"dc": dc.name,
                   "truth": violating_pair_percentage(dc, dataset.table)}
            for method in methods:
                row[method] = violating_pair_percentage(
                    dc, synthetic[method])
            violations.add_row(**row)
        hard = [dc for dc in dataset.dcs if dc.hard]
        if hard and "Kamino" in methods:
            worst = max(violating_pair_percentage(dc, synthetic["Kamino"])
                        for dc in hard)
            violations.check(
                "Kamino preserves the hard DCs (< 0.5% violating pairs)",
                worst < 0.5, f"worst hard-DC rate {worst:.3f}%")

    marginals = collection.new(
        "Metric III", "marginal total variation distance (mean over "
                      "attribute sets)")
    for method in methods:
        row = {"method": method}
        for alpha in (1, 2):
            dists = [d for _, d in marginal_distances(
                dataset.table, synthetic[method], alpha=alpha,
                max_sets=max_marginal_sets, seed=seed)]
            row[f"{alpha}-way"] = float(np.mean(dists))
        marginals.add_row(**row)

    if classify:
        targets = classify_targets
        if targets is None:
            targets = dataset.label_attrs or dataset.relation.names[:3]
        panel = collection.new(
            "Metric II", "classifier panel accuracy/F1 "
                         "(train synthetic, test true)")
        for method in methods:
            rows = classification_report(dataset.table, synthetic[method],
                                         targets=targets)
            panel.add_row(
                method=method,
                accuracy=float(np.mean([r["accuracy"] for r in rows])),
                f1=float(np.mean([r["f1"] for r in rows])))
        truth_rows = classification_report(dataset.table, dataset.table,
                                           targets=targets)
        panel.add_row(
            method="Truth",
            accuracy=float(np.mean([r["accuracy"] for r in truth_rows])),
            f1=float(np.mean([r["f1"] for r in truth_rows])))
    return collection
