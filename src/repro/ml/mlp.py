"""A one-hidden-layer MLP classifier trained with Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, ReLU
from repro.nn.losses import bce_with_logits_loss
from repro.nn.optim import Adam
from repro.nn.functional import sigmoid


class MLPClassifier:
    """ReLU MLP with one hidden layer and a BCE-on-logits objective.

    Parameters
    ----------
    hidden:
        Hidden layer width.
    epochs:
        Passes over the data (mini-batched).
    batch_size, lr, seed:
        The usual knobs.
    """

    def __init__(self, hidden: int = 32, epochs: int = 30,
                 batch_size: int = 64, lr: float = 1e-2, seed: int = 0):
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._layers = None

    def _forward(self, X: np.ndarray) -> np.ndarray:
        lin1, act, lin2 = self._layers
        return lin2.forward(act.forward(lin1.forward(X)))[:, 0]

    def fit(self, X, y) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        lin1 = Linear(X.shape[1], self.hidden, rng, name="mlp.lin1")
        act = ReLU()
        lin2 = Linear(self.hidden, 1, rng, name="mlp.lin2")
        self._layers = (lin1, act, lin2)
        params = lin1.parameters() + lin2.parameters()
        optimizer = Adam(params, lr=self.lr)
        n = X.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                optimizer.zero_grad()
                logits = self._forward(X[idx])
                _, grad = bce_with_logits_loss(logits, y[idx])
                grad = (grad / idx.shape[0])[:, None]
                g = lin2.backward(grad)
                g = act.backward(g)
                lin1.backward(g)
                optimizer.step()
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self._layers is None:
            raise RuntimeError("fit() before predict()")
        return sigmoid(self._forward(np.asarray(X, dtype=np.float64)))

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)
