"""CART decision trees (classification and regression).

Both trees use vectorized split search: per feature, sort the values,
sweep prefix statistics, and score every boundary between distinct
values in one pass.  The classification tree supports per-sample
weights (needed by AdaBoost); the regression tree supports
gradient/hessian leaf statistics (needed by the XGBoost-style booster).
"""

from __future__ import annotations

import numpy as np


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value=None):
        self.feature = -1
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_gini(X, y, w, feature_indices, min_leaf):
    """(feature, threshold, score) minimising weighted Gini impurity."""
    best = (None, 0.0, np.inf)
    total_w = w.sum()
    total_pos = float(w[y == 1].sum())
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        ws = w[order]
        ps = ws * (y[order] == 1)
        cw = np.cumsum(ws)
        cp = np.cumsum(ps)
        # Valid boundaries: value changes and both sides big enough.
        boundaries = np.nonzero(np.diff(xs) > 1e-12)[0]
        if boundaries.size == 0:
            continue
        counts = np.arange(1, xs.shape[0])
        valid = boundaries[(boundaries + 1 >= min_leaf)
                           & (xs.shape[0] - boundaries - 1 >= min_leaf)]
        if valid.size == 0:
            continue
        lw = cw[valid]
        lp = cp[valid]
        rw = total_w - lw
        rp = total_pos - lp
        gini_l = 1.0 - ((lp / lw) ** 2 + (1 - lp / lw) ** 2)
        gini_r = 1.0 - ((rp / rw) ** 2 + (1 - rp / rw) ** 2)
        score = (lw * gini_l + rw * gini_r) / total_w
        arg = int(np.argmin(score))
        if score[arg] < best[2]:
            thr = 0.5 * (xs[valid[arg]] + xs[valid[arg] + 1])
            best = (int(f), float(thr), float(score[arg]))
    return best


def _best_split_sse(X, g, h, feature_indices, min_leaf, lam):
    """(feature, threshold, gain) maximising the second-order gain
    ``GL^2/(HL+lam) + GR^2/(HR+lam) - G^2/(H+lam)``."""
    best = (None, 0.0, 0.0)
    G, H = g.sum(), h.sum()
    parent = G * G / (H + lam)
    for f in feature_indices:
        order = np.argsort(X[:, f], kind="stable")
        xs = X[order, f]
        cg = np.cumsum(g[order])
        ch = np.cumsum(h[order])
        boundaries = np.nonzero(np.diff(xs) > 1e-12)[0]
        valid = boundaries[(boundaries + 1 >= min_leaf)
                           & (xs.shape[0] - boundaries - 1 >= min_leaf)]
        if valid.size == 0:
            continue
        GL, HL = cg[valid], ch[valid]
        GR, HR = G - GL, H - HL
        gain = GL * GL / (HL + lam) + GR * GR / (HR + lam) - parent
        arg = int(np.argmax(gain))
        if gain[arg] > best[2]:
            thr = 0.5 * (xs[valid[arg]] + xs[valid[arg] + 1])
            best = (int(f), float(thr), float(gain[arg]))
    return best


class DecisionTree:
    """Gini-impurity CART classifier with optional sample weights."""

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 2,
                 max_features: float | None = None, seed: int = 0):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._root: _Node | None = None

    def fit(self, X, y, sample_weight=None) -> "DecisionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        w = (np.ones(y.shape[0]) if sample_weight is None
             else np.asarray(sample_weight, dtype=np.float64))
        self._n_features = X.shape[1]
        self._root = self._build(X, y, w, 0)
        return self

    def _feature_subset(self) -> np.ndarray:
        if self.max_features is None:
            return np.arange(self._n_features)
        k = max(1, int(self.max_features * self._n_features))
        return self.rng.choice(self._n_features, size=k, replace=False)

    def _build(self, X, y, w, depth) -> _Node:
        pos = float(w[y == 1].sum())
        total = float(w.sum())
        leaf_value = 1 if pos * 2 >= total else 0
        if (depth >= self.max_depth or y.shape[0] < 2 * self.min_samples_leaf
                or pos == 0 or pos == total):
            return _Node(value=leaf_value)
        feature, threshold, score = _best_split_gini(
            X, y, w, self._feature_subset(), self.min_samples_leaf)
        if feature is None:
            return _Node(value=leaf_value)
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():
            return _Node(value=leaf_value)
        node = _Node()
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() before predict()")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.int64)
        idx = np.arange(X.shape[0])
        stack = [(self._root, idx)]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out


class RegressionTree:
    """Second-order regression tree: fits gradient/hessian statistics.

    With unit hessians and ``lam=0`` this is a plain squared-error
    regression tree on the (negative) gradients — the weak learner of
    classic gradient boosting; with logistic hessians and ``lam > 0`` it
    is the XGBoost weak learner.
    """

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 5,
                 lam: float = 1.0, seed: int = 0):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.lam = lam
        self._root: _Node | None = None

    def fit(self, X, grad, hess=None) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        g = np.asarray(grad, dtype=np.float64)
        h = (np.ones_like(g) if hess is None
             else np.asarray(hess, dtype=np.float64))
        self._root = self._build(X, g, h, 0)
        return self

    def _leaf_value(self, g, h) -> float:
        return float(-g.sum() / (h.sum() + self.lam))

    def _build(self, X, g, h, depth) -> _Node:
        if depth >= self.max_depth or g.shape[0] < 2 * self.min_samples_leaf:
            return _Node(value=self._leaf_value(g, h))
        feature, threshold, gain = _best_split_sse(
            X, g, h, np.arange(X.shape[1]), self.min_samples_leaf, self.lam)
        if feature is None or gain <= 1e-12:
            return _Node(value=self._leaf_value(g, h))
        mask = X[:, feature] <= threshold
        node = _Node()
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], g[mask], h[mask], depth + 1)
        node.right = self._build(X[~mask], g[~mask], h[~mask], depth + 1)
        return node

    def predict(self, X) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("fit() before predict()")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0], dtype=np.float64)
        stack = [(self._root, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out
