"""Binary classification metrics (accuracy and F1, as in Figure 3)."""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between labels and predictions")
    if y_true.size == 0:
        raise ValueError("empty label vector")
    return float(np.mean(y_true == y_pred))


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall for the positive class.

    Returns 0.0 when the positive class is never predicted and never
    present (the degenerate case scikit-learn warns about).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = float(np.sum((y_true == 1) & (y_pred == 1)))
    fp = float(np.sum((y_true == 0) & (y_pred == 1)))
    fn = float(np.sum((y_true == 1) & (y_pred == 0)))
    denom = 2 * tp + fp + fn
    if denom == 0:
        return 0.0
    return 2 * tp / denom
