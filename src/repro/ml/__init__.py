"""Classifier panel for the evaluation's Metric II.

The paper trains nine standard classifiers (scikit-learn + XGBoost) on
synthetic data and tests them on held-out true data.  None of those
libraries exist in this environment, so this package implements the
whole panel in numpy:

LogisticRegression, AdaBoost, GradientBoost, XGBoost (second-order
boosting), RandomForest, BernoulliNB, DecisionTree, Bagging, and MLP —
all binary classifiers over one-hot + standardized features, plus
accuracy and F1 metrics.

Every classifier follows the same minimal protocol::

    clf = SomeClassifier(seed=0)
    clf.fit(X, y)            # X: (n, d) float64, y: (n,) in {0, 1}
    yhat = clf.predict(X)    # (n,) in {0, 1}
"""

from repro.ml.features import FeatureEncoder, binarize_target
from repro.ml.metrics import accuracy_score, f1_score
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import BernoulliNB
from repro.ml.tree import DecisionTree, RegressionTree
from repro.ml.forest import Bagging, RandomForest
from repro.ml.boosting import AdaBoost, GradientBoost, XGBoost
from repro.ml.mlp import MLPClassifier

#: The paper's nine-model panel (§7.1 Metric II), by name.
CLASSIFIER_PANEL = {
    "LogisticRegression": LogisticRegression,
    "AdaBoost": AdaBoost,
    "GradientBoost": GradientBoost,
    "XGBoost": XGBoost,
    "RandomForest": RandomForest,
    "BernoulliNB": BernoulliNB,
    "DecisionTree": DecisionTree,
    "Bagging": Bagging,
    "MLP": MLPClassifier,
}

__all__ = [
    "AdaBoost",
    "Bagging",
    "BernoulliNB",
    "CLASSIFIER_PANEL",
    "DecisionTree",
    "FeatureEncoder",
    "GradientBoost",
    "LogisticRegression",
    "MLPClassifier",
    "RandomForest",
    "RegressionTree",
    "XGBoost",
    "accuracy_score",
    "binarize_target",
    "f1_score",
]
