"""L2-regularised logistic regression trained by full-batch gradient
descent with a fixed step schedule."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import sigmoid


class LogisticRegression:
    """Binary logistic regression.

    Parameters
    ----------
    lr:
        Gradient-descent step size.
    epochs:
        Number of full-batch iterations.
    l2:
        Ridge penalty on the weights (not the intercept).
    seed:
        Unused (deterministic); kept for panel-uniform construction.
    """

    def __init__(self, lr: float = 0.5, epochs: int = 200, l2: float = 1e-3,
                 seed: int = 0):
        self.lr = lr
        self.epochs = epochs
        self.l2 = l2
        self.weights: np.ndarray | None = None
        self.bias = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        for _ in range(self.epochs):
            margin = X @ self.weights + self.bias
            grad = sigmoid(margin) - y
            self.weights -= self.lr * (X.T @ grad / n
                                       + self.l2 * self.weights)
            self.bias -= self.lr * float(grad.mean())
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() before predict()")
        return sigmoid(np.asarray(X) @ self.weights + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)
