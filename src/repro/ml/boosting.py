"""Boosted ensembles: AdaBoost, gradient boosting, and an XGBoost-style
second-order booster."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import sigmoid
from repro.ml.tree import DecisionTree, RegressionTree


class AdaBoost:
    """SAMME AdaBoost over depth-1 decision stumps."""

    def __init__(self, n_estimators: int = 30, seed: int = 0):
        self.n_estimators = n_estimators
        self.seed = seed
        self._stumps: list[DecisionTree] = []
        self._alphas: list[float] = []

    def fit(self, X, y) -> "AdaBoost":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n = X.shape[0]
        w = np.full(n, 1.0 / n)
        self._stumps, self._alphas = [], []
        for e in range(self.n_estimators):
            stump = DecisionTree(max_depth=1, min_samples_leaf=1,
                                 seed=self.seed + e)
            stump.fit(X, y, sample_weight=w)
            pred = stump.predict(X)
            err = float(w[pred != y].sum())
            if err >= 0.5:
                break
            err = max(err, 1e-10)
            alpha = 0.5 * np.log((1 - err) / err)
            self._stumps.append(stump)
            self._alphas.append(alpha)
            signs = np.where(pred == y, -1.0, 1.0)
            w = w * np.exp(alpha * signs)
            w /= w.sum()
            if err < 1e-9:
                break
        if not self._stumps:
            # All stumps were worse than chance: constant majority vote.
            majority = DecisionTree(max_depth=1, seed=self.seed)
            majority.fit(X, y)
            self._stumps = [majority]
            self._alphas = [1.0]
        return self

    def predict(self, X) -> np.ndarray:
        if not self._stumps:
            raise RuntimeError("fit() before predict()")
        score = np.zeros(np.asarray(X).shape[0])
        for stump, alpha in zip(self._stumps, self._alphas):
            score += alpha * (2.0 * stump.predict(X) - 1.0)
        return (score >= 0).astype(np.int64)


class _LogisticBooster:
    """Shared logic of gradient boosting on the logistic loss."""

    def __init__(self, n_estimators: int, lr: float, max_depth: int,
                 lam: float, seed: int):
        self.n_estimators = n_estimators
        self.lr = lr
        self.max_depth = max_depth
        self.lam = lam
        self.seed = seed
        self._trees: list[RegressionTree] = []
        self._bias = 0.0
        self._second_order = False

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rate = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        self._bias = float(np.log(rate / (1 - rate)))
        margin = np.full(X.shape[0], self._bias)
        self._trees = []
        for e in range(self.n_estimators):
            p = sigmoid(margin)
            grad = p - y
            hess = p * (1 - p) if self._second_order else None
            tree = RegressionTree(max_depth=self.max_depth, lam=self.lam,
                                  seed=self.seed + e)
            tree.fit(X, grad, hess)
            margin = margin + self.lr * tree.predict(X)
            self._trees.append(tree)
        return self

    def decision_function(self, X) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("fit() before predict()")
        margin = np.full(np.asarray(X).shape[0], self._bias)
        for tree in self._trees:
            margin = margin + self.lr * tree.predict(X)
        return margin

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)


class GradientBoost(_LogisticBooster):
    """First-order gradient boosting (unit hessian, no regularisation)."""

    def __init__(self, n_estimators: int = 30, lr: float = 0.3,
                 max_depth: int = 3, seed: int = 0):
        super().__init__(n_estimators, lr, max_depth, lam=1e-6, seed=seed)
        self._second_order = False


class XGBoost(_LogisticBooster):
    """Second-order boosting with hessian leaf weights and L2 lambda —
    the core of the XGBoost algorithm (Chen & Guestrin 2016)."""

    def __init__(self, n_estimators: int = 30, lr: float = 0.3,
                 max_depth: int = 3, lam: float = 1.0, seed: int = 0):
        super().__init__(n_estimators, lr, max_depth, lam=lam, seed=seed)
        self._second_order = True
