"""Feature encoding for the classifier panel.

The paper's Metric II trains, for *every* attribute of a dataset, a
binary classifier predicting a binarised version of that attribute from
all others.  This module provides:

* :class:`FeatureEncoder` — one-hot encoding for categorical attributes
  and (public-bounds) standardization for numerical ones, fit on the
  schema rather than the data so the same encoder applies to true and
  synthetic tables;
* :func:`binarize_target` — the paper's per-attribute binary labels
  ("income more than 50K or not, age is senior or not, ..."): the
  majority value vs the rest for categoricals, above-median (of the
  *true* data) for numericals.
"""

from __future__ import annotations

import numpy as np

from repro.schema.table import Table


class FeatureEncoder:
    """Schema-driven table -> matrix encoding.

    Parameters
    ----------
    relation:
        The schema to encode.
    exclude:
        Attribute names left out of the feature matrix (the current
        classification target).
    max_onehot:
        Width cap for one categorical attribute's one-hot block.  Domains
        wider than this are deterministically hash-bucketed (value mod
        ``max_onehot``) so huge domains (e.g. Tax ``zip`` with ~2000
        values) do not blow up the feature matrix and the tree-based
        classifiers' split search.
    """

    def __init__(self, relation, exclude=(), max_onehot: int = 64):
        if max_onehot < 2:
            raise ValueError("max_onehot must be at least 2")
        self.relation = relation
        self.exclude = set(exclude)
        self.max_onehot = max_onehot
        self.columns: list[tuple[str, str]] = []
        for attr in relation:
            if attr.name in self.exclude:
                continue
            kind = "cat" if attr.is_categorical else "num"
            self.columns.append((attr.name, kind))

    def _onehot_width(self, name: str) -> int:
        return min(self.relation[name].domain.size, self.max_onehot)

    @property
    def dim(self) -> int:
        total = 0
        for name, kind in self.columns:
            if kind == "cat":
                total += self._onehot_width(name)
            else:
                total += 1
        return total

    def transform(self, table: Table) -> np.ndarray:
        """Encode a table into an ``(n, dim)`` float64 matrix."""
        parts = []
        for name, kind in self.columns:
            col = table.column(name)
            if kind == "cat":
                width = self._onehot_width(name)
                onehot = np.zeros((table.n, width))
                codes = col.astype(np.int64) % width
                onehot[np.arange(table.n), codes] = 1.0
                parts.append(onehot)
            else:
                dom = self.relation[name].domain
                mid = 0.5 * (dom.low + dom.high)
                scale = max((dom.high - dom.low) / 4.0, 1e-12)
                parts.append(((col - mid) / scale)[:, None])
        return np.concatenate(parts, axis=1)


def binarize_target(table: Table, attr_name: str,
                    reference: Table | None = None) -> np.ndarray:
    """Binary labels for attribute ``attr_name`` (paper §7.1 Metric II).

    Categorical: 1 if the cell equals the *reference* table's majority
    value (default: the table itself), else 0.  Numerical: 1 if above
    the reference median.  Passing the true table as ``reference``
    guarantees the synthetic and true labelings use the same threshold.
    """
    reference = reference if reference is not None else table
    attr = table.relation[attr_name]
    col = table.column(attr_name)
    ref_col = reference.column(attr_name)
    if attr.is_categorical:
        counts = np.bincount(ref_col.astype(np.int64),
                             minlength=attr.domain.size)
        majority = int(np.argmax(counts))
        return (col == majority).astype(np.int64)
    threshold = float(np.median(ref_col))
    return (col > threshold).astype(np.int64)
